#include "lint/checker.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace hlock::lint {

using trace::EventKind;
using trace::TraceEvent;

std::string to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kIncompatibleHolds:
      return "incompatible-holds";
    case ViolationKind::kUnauthorizedGrant:
      return "unauthorized-grant";
    case ViolationKind::kQueueForwardMismatch:
      return "queue-forward-mismatch";
    case ViolationKind::kMissingFreeze:
      return "missing-freeze";
    case ViolationKind::kFrozenGrant:
      return "frozen-grant";
    case ViolationKind::kFifoInversion:
      return "fifo-inversion";
    case ViolationKind::kStarvation:
      return "starvation";
    case ViolationKind::kTokenConservation:
      return "token-conservation";
  }
  return "?";
}

std::string LintReport::render() const {
  std::ostringstream os;
  for (const Violation& violation : violations) {
    os << "VIOLATION " << to_string(violation.kind) << " at event #"
       << violation.event_index << " (" << to_string(violation.lock)
       << "): " << violation.message << '\n';
    for (const std::string& line : violation.window) {
      os << "  | " << line << '\n';
    }
  }
  if (violations.empty()) {
    os << "lint: ok — " << events_checked << " events conform to the spec\n";
  } else {
    os << "lint: " << violations.size() << " violation(s) in "
       << events_checked << " events\n";
  }
  return os.str();
}

Checker::Checker(LintOptions options) : options_(options) {}

Checker::LockState& Checker::state(proto::LockId lock) {
  auto [it, inserted] = locks_.try_emplace(lock.value());
  if (inserted) it->second.token = options_.initial_token;
  return it->second;
}

LockMode Checker::owned_estimate(const LockState& ls,
                                 proto::NodeId node) const {
  LockMode strongest = LockMode::kNL;
  if (auto it = ls.held.find(node.value()); it != ls.held.end()) {
    strongest = it->second;
  }
  if (auto cs = ls.copyset.find(node.value()); cs != ls.copyset.end()) {
    for (const auto& [child, mode] : cs->second) {
      if (spec_stronger(mode, strongest)) strongest = mode;
    }
  }
  return strongest;
}

ModeSet Checker::required_frozen(const LockState& ls,
                                 std::uint64_t before_order) const {
  const LockMode owned = owned_estimate(ls, ls.token);
  ModeSet required;
  for (const Waiting& waiting : ls.waiting) {
    if (waiting.at_token && waiting.order < before_order) {
      required |= spec_freeze_set(owned, waiting.mode);
    }
  }
  if (ls.upgrading) required |= spec_freeze_set(owned, LockMode::kW);
  return required;
}

void Checker::report(ViolationKind kind, const TraceEvent& event,
                     std::size_t index, std::string message) {
  Violation violation;
  violation.kind = kind;
  violation.event_index = index;
  violation.lock = event.lock;
  violation.message = std::move(message);
  violation.window.assign(context_.begin(), context_.end());
  report_.violations.push_back(std::move(violation));
}

std::uint64_t Checker::resolve_waiting(LockState& ls, proto::NodeId requester,
                                       std::uint64_t seq) {
  auto it = std::find_if(ls.waiting.begin(), ls.waiting.end(),
                         [&](const Waiting& waiting) {
                           return waiting.requester == requester &&
                                  waiting.seq == seq;
                         });
  if (it == ls.waiting.end()) return ls.next_order;
  const std::uint64_t order = it->order;
  ls.waiting.erase(it);
  return order;
}

void Checker::check_token_flag(LockState& ls, const TraceEvent& event,
                               std::size_t index) {
  if (ls.token.is_none()) {
    // First sighting: adopt the claim as ground truth.
    if (event.token) ls.token = event.node;
    return;
  }
  if (ls.token_in_flight) {
    // The token travels in a message: its destination keeps acting as a
    // non-token node until delivery (add() clears the flag on the
    // destination's first token-flagged act). Any other node claiming the
    // token meanwhile has duplicated it.
    if (event.token) {
      std::ostringstream os;
      os << to_string(event.node) << " acted as token holder while the "
         << "token is in flight to " << to_string(ls.token);
      report(ViolationKind::kTokenConservation, event, index, os.str());
    }
    return;
  }
  const bool should_be_token = event.node == ls.token;
  if (event.token != should_be_token) {
    std::ostringstream os;
    os << to_string(event.node)
       << (event.token ? " acted as token holder but " : " acted without "
                                                         "the token but ")
       << to_string(ls.token) << " holds it";
    report(ViolationKind::kTokenConservation, event, index, os.str());
  }
}

void Checker::check_pending_freeze(LockState& ls, const TraceEvent& event,
                                   std::size_t index) {
  if (!options_.freezing || ls.pending_freeze.empty()) return;
  const ModeSet actual =
      ls.token.is_none() ? ModeSet{} : ls.frozen[ls.token.value()];
  if ((ls.pending_freeze | actual) != actual) {
    std::ostringstream os;
    os << "token granted with Table 1(d) freezes still owed: required "
       << to_string(ls.pending_freeze) << " but frozen set is "
       << to_string(actual);
    report(ViolationKind::kMissingFreeze, event, index, os.str());
  }
  ls.pending_freeze.clear();
}

void Checker::check_hold_compatibility(LockState& ls, const TraceEvent& event,
                                       std::size_t index,
                                       LockMode entering) {
  for (const auto& [node, mode] : ls.held) {
    if (node == event.node.value() || mode == LockMode::kNL) continue;
    if (spec_incompatible(mode, entering)) {
      std::ostringstream os;
      os << to_string(event.node) << " entered in "
         << proto::to_string(entering) << " while "
         << to_string(proto::NodeId{node}) << " holds "
         << proto::to_string(mode) << " (Table 1(a) conflict)";
      report(ViolationKind::kIncompatibleHolds, event, index, os.str());
    }
  }
}

void Checker::check_fifo(LockState& ls, const TraceEvent& event,
                         std::size_t index, std::uint64_t grant_order,
                         std::uint8_t priority) {
  if (!options_.freezing) return;  // fairness is waived without Rule 6
  if (ls.fifo_suspended) return;   // post-fence order is reconstructed
  for (const Waiting& waiting : ls.waiting) {
    if (!waiting.at_token || waiting.order >= grant_order) continue;
    if (waiting.priority < priority) continue;  // priority overtake is legal
    // A waiter that could not be granted at decision time — its mode
    // conflicts with the granter's owned context, or the granter froze it
    // on behalf of a still-earlier waiter — is lawfully bypassed within a
    // single queue-service pass ("grant as many compatible requests as
    // possible"); the post-service freeze refresh then blocks any further
    // bypass, which the kFreeze/kMissingFreeze checks enforce. Only a
    // grantable waiter being overtaken is a genuine FIFO inversion.
    if (spec_incompatible(event.ctx, waiting.mode)) continue;
    if (auto frozen = ls.frozen.find(event.node.value());
        frozen != ls.frozen.end() && frozen->second.contains(waiting.mode)) {
      continue;
    }
    if (spec_incompatible(event.mode, waiting.mode)) {
      std::ostringstream os;
      os << "grant of " << proto::to_string(event.mode)
         << " overtook the earlier queued " << proto::to_string(waiting.mode)
         << " request of " << to_string(waiting.requester) << " (seq "
         << waiting.seq << ") it conflicts with";
      report(ViolationKind::kFifoInversion, event, index, os.str());
    }
  }
}

void Checker::on_grant(LockState& ls, const TraceEvent& event,
                       std::size_t index) {
  check_token_flag(ls, event, index);
  if (event.token) check_pending_freeze(ls, event, index);

  // Rule 3 authority. The decision context (the granter's owned mode at
  // decision time) rides on the event itself.
  if (event.token) {
    if (!spec_token_can_grant(event.ctx, event.mode)) {
      std::ostringstream os;
      os << "token granted " << proto::to_string(event.mode)
         << " while owning the incompatible " << proto::to_string(event.ctx);
      report(ViolationKind::kUnauthorizedGrant, event, index, os.str());
    } else if (event.kind != EventKind::kLocalGrant &&
               spec_token_grant_transfers(event.ctx, event.mode)) {
      std::ostringstream os;
      os << "token copy-granted " << proto::to_string(event.mode)
         << " over owned " << proto::to_string(event.ctx)
         << " where the spec demands a token transfer";
      report(ViolationKind::kUnauthorizedGrant, event, index, os.str());
    }
  } else {
    if (!options_.child_grants) {
      report(ViolationKind::kUnauthorizedGrant, event, index,
             to_string(event.node) +
                 " granted although child grants are disabled");
    } else if (!spec_non_token_can_grant(event.ctx, event.mode)) {
      std::ostringstream os;
      os << to_string(event.node) << " granted "
         << proto::to_string(event.mode) << " with owned mode "
         << proto::to_string(event.ctx)
         << " — no Table 1(b) authority";
      report(ViolationKind::kUnauthorizedGrant, event, index, os.str());
    }
  }

  // Rule 6: a node must not grant a mode it has frozen.
  if (options_.freezing &&
      ls.frozen[event.node.value()].contains(event.mode)) {
    std::ostringstream os;
    os << to_string(event.node) << " granted frozen mode "
       << proto::to_string(event.mode) << " (frozen set "
       << to_string(ls.frozen[event.node.value()]) << ')';
    report(ViolationKind::kFrozenGrant, event, index, os.str());
  }

  const proto::NodeId requester =
      event.kind == EventKind::kLocalGrant ? event.node : event.peer;
  const std::uint64_t order = resolve_waiting(ls, requester, event.seq);
  if (event.token) check_fifo(ls, event, index, order, event.priority);
}

void Checker::on_queue(LockState& ls, const TraceEvent& event,
                       std::size_t index) {
  check_token_flag(ls, event, index);

  if (!event.token) {
    // Rule 4.1 / Table 1(c): a non-token node may only queue while its own
    // request is pending, and only per the table — unless path compression
    // is on, which lawfully makes every pending node absorbing.
    if (event.ctx == LockMode::kNL) {
      report(ViolationKind::kQueueForwardMismatch, event, index,
             to_string(event.node) +
                 " queued a request without a pending request of its own");
    } else if (!options_.path_compression) {
      if (!options_.local_queueing) {
        report(ViolationKind::kQueueForwardMismatch, event, index,
               to_string(event.node) +
                   " queued although local queueing is disabled");
      } else if (spec_queue_or_forward(event.ctx, event.mode) !=
                 SpecQueueOrForward::kQueue) {
        std::ostringstream os;
        os << to_string(event.node) << " queued a "
           << proto::to_string(event.mode) << " request while pending "
           << proto::to_string(event.ctx) << " — Table 1(c) says forward";
        report(ViolationKind::kQueueForwardMismatch, event, index, os.str());
      }
    }
  } else if (options_.freezing) {
    // Rule 6 / Table 1(d): admitting this entry obliges the token to
    // freeze the bypass modes; settled at the token's next grant (no event
    // is emitted when the frozen set already covers them).
    ls.pending_freeze |= spec_freeze_set(event.ctx, event.mode);
  }

  // Track the entry. Re-queueing (a forwarded request arriving at the
  // token) refreshes position but keeps the original admission time so
  // starvation is measured from the first queueing.
  auto it = std::find_if(ls.waiting.begin(), ls.waiting.end(),
                         [&](const Waiting& waiting) {
                           return waiting.requester == event.peer &&
                                  waiting.seq == event.seq;
                         });
  if (it == ls.waiting.end()) {
    ls.waiting.push_back(Waiting{event.peer, event.seq, event.mode,
                                 event.priority, event.token,
                                 ls.next_order++, index, false});
  } else {
    it->at_token = event.token;
    it->order = ls.next_order++;
    it->mode = event.mode;
  }
}

void Checker::on_forward(LockState& ls, const TraceEvent& event,
                         std::size_t index) {
  if (event.ctx != LockMode::kNL) {
    // The node forwarded while its own request was pending.
    if (options_.path_compression) {
      report(ViolationKind::kQueueForwardMismatch, event, index,
             to_string(event.node) +
                 " forwarded while pending — path compression requires "
                 "pending nodes to queue every request");
    } else if (options_.local_queueing &&
               spec_queue_or_forward(event.ctx, event.mode) ==
                   SpecQueueOrForward::kQueue) {
      std::ostringstream os;
      os << to_string(event.node) << " forwarded a "
         << proto::to_string(event.mode) << " request while pending "
         << proto::to_string(event.ctx) << " — Table 1(c) says queue";
      report(ViolationKind::kQueueForwardMismatch, event, index, os.str());
    }
  }
  // A previously locally-queued entry that is forwarded leaves that queue.
  auto it = std::find_if(ls.waiting.begin(), ls.waiting.end(),
                         [&](const Waiting& waiting) {
                           return waiting.requester == event.peer &&
                                  waiting.seq == event.seq &&
                                  !waiting.at_token;
                         });
  if (it != ls.waiting.end()) ls.waiting.erase(it);
}

void Checker::on_token_transfer(LockState& ls, const TraceEvent& event,
                                std::size_t index) {
  if (!event.token) {
    report(ViolationKind::kTokenConservation, event, index,
           to_string(event.node) +
               " shipped the token without claiming to hold it");
  }
  check_token_flag(ls, event, index);
  if (options_.freezing) check_pending_freeze(ls, event, index);

  const std::uint64_t order = resolve_waiting(ls, event.peer, event.seq);
  check_fifo(ls, event, index, order, event.priority);
  ls.token = event.peer;
  ls.token_in_flight = true;
  ls.pending_freeze.clear();
}

void Checker::check_starvation(std::size_t index) {
  for (auto& [lock, ls] : locks_) {
    for (Waiting& waiting : ls.waiting) {
      if (waiting.starved_reported ||
          index - waiting.queued_index <= options_.starvation_limit) {
        continue;
      }
      waiting.starved_reported = true;
      Violation violation;
      violation.kind = ViolationKind::kStarvation;
      violation.event_index = index;
      violation.lock = proto::LockId{lock};
      std::ostringstream os;
      os << "the " << proto::to_string(waiting.mode) << " request of "
         << to_string(waiting.requester) << " (seq " << waiting.seq
         << ") queued at event #" << waiting.queued_index
         << " is still waiting after " << index - waiting.queued_index
         << " events";
      violation.message = os.str();
      violation.window.assign(context_.begin(), context_.end());
      report_.violations.push_back(std::move(violation));
    }
  }
}

void Checker::add(const TraceEvent& event) {
  const std::size_t index = index_++;
  report_.events_checked = index_;
  {
    std::ostringstream os;
    os << '#' << index << ' ' << to_string(event.node) << ' '
       << to_string(event);
    context_.push_back(os.str());
    if (context_.size() > options_.context_window + 1) context_.pop_front();
  }

  LockState& ls = state(event.lock);
  if (event.epoch > ls.epoch && event.kind != EventKind::kFence) {
    // A non-fence event from a newer epoch passed the runtime's epoch gate,
    // which only admits post-fence traffic — proof a fence landed even when
    // the campaign took the lockless-placeholder path for this lock (no
    // per-lock fence broadcast; survivors learn the root via
    // set_default_origin, docs/recovery.md). Open the epoch implicitly and
    // reseat the token at the first node acting as its holder; conservation
    // keeps being judged within the new epoch. Unfenced regenerations are
    // still caught: a node reviving a token without a fence keeps emitting
    // at its OLD epoch, which this branch never launders.
    ls.epoch = event.epoch;
    ls.fence_root = proto::NodeId::none();
    ls.token = event.token ? event.node : proto::NodeId::none();
    ls.token_in_flight = false;
    ls.waiting.clear();
    ls.pending_freeze.clear();
    ls.fifo_suspended = true;
  }
  if (ls.token_in_flight && event.token && event.node == ls.token) {
    ls.token_in_flight = false;  // delivery observed: the destination acts
  }
  switch (event.kind) {
    case EventKind::kGrant:
    case EventKind::kLocalGrant:
      on_grant(ls, event, index);
      break;
    case EventKind::kQueue:
      on_queue(ls, event, index);
      break;
    case EventKind::kForward:
      on_forward(ls, event, index);
      break;
    case EventKind::kTokenTransfer:
      on_token_transfer(ls, event, index);
      break;
    case EventKind::kFreeze:
    case EventKind::kUnfreeze:
      ls.frozen[event.node.value()] = event.modes;
      if (options_.freezing && !ls.token.is_none() &&
          event.node == ls.token) {
        // Refresh-time Table 1(d) check: the token's recomputed frozen set
        // must cover every still-waiting incompatible queue entry.
        const ModeSet required =
            required_frozen(ls, std::numeric_limits<std::uint64_t>::max());
        if ((required | event.modes) != event.modes) {
          std::ostringstream os;
          os << "token refreshed its frozen set to "
             << to_string(event.modes) << " but the queued requests demand "
             << to_string(required);
          report(ViolationKind::kMissingFreeze, event, index, os.str());
        }
        ls.pending_freeze.clear();
      }
      break;
    case EventKind::kEnterCs:
      if (event.mode != LockMode::kNL) {
        check_hold_compatibility(ls, event, index, event.mode);
        ls.held[event.node.value()] = event.mode;
      }
      break;
    case EventKind::kExitCs:
      ls.held.erase(event.node.value());
      break;
    case EventKind::kUpgradeBegin:
      ls.upgrading = true;
      break;
    case EventKind::kUpgraded:
      ls.upgrading = false;
      check_hold_compatibility(ls, event, index, LockMode::kW);
      ls.held[event.node.value()] = LockMode::kW;
      break;
    case EventKind::kCopysetJoin:
      ls.copyset[event.node.value()][event.peer.value()] = event.mode;
      break;
    case EventKind::kCopysetLeave:
      ls.copyset[event.node.value()].erase(event.peer.value());
      break;
    case EventKind::kNodeDead:
      // `peer` crashed (crash-stop): its holds, freezes, copyset
      // relationships and queued requests are gone on every lock. The
      // token is NOT reseated here — only a kFence may do that, so any
      // node acting as token holder between a crash and its fence is
      // flagged as an unfenced regeneration.
      on_node_dead(event.peer);
      break;
    case EventKind::kFence:
      on_fence(ls, event, index);
      break;
    case EventKind::kMessage:
    case EventKind::kRequest:
    case EventKind::kNote:
      break;
  }
  check_starvation(index);
}

void Checker::on_node_dead(proto::NodeId dead) {
  for (auto& [lock, ls] : locks_) {
    ls.held.erase(dead.value());
    ls.frozen.erase(dead.value());
    ls.copyset.erase(dead.value());
    for (auto& [granter, children] : ls.copyset) children.erase(dead.value());
    std::erase_if(ls.waiting, [&](const Waiting& waiting) {
      return waiting.requester == dead;
    });
  }
}

void Checker::on_fence(LockState& ls, const TraceEvent& event,
                       std::size_t index) {
  // Every survivor emits one kFence per lock per campaign, all carrying the
  // campaign epoch and the elected root. The first one reseats the token;
  // the rest must agree — two same-epoch fences appointing different roots
  // is the double-regeneration bug (two "live" tokens in one epoch).
  if (event.epoch > ls.epoch) {
    ls.epoch = event.epoch;
    ls.fence_root = event.peer;
    ls.token = event.peer;
    ls.token_in_flight = false;
    // Queues are rebuilt at the new root from the survivors' reports; the
    // pre-crash waiting picture is void (re-granted entries never re-emit
    // kQueue, so FIFO/starvation tracking restarts from the fence).
    ls.waiting.clear();
    ls.pending_freeze.clear();
    ls.fifo_suspended = true;
  } else if (event.epoch == ls.epoch && ls.fence_root.is_none()) {
    // The epoch was opened implicitly (add()'s newer-epoch branch) before
    // this straggler fence arrived; adopt its root rather than comparing
    // against a root nobody recorded.
    ls.fence_root = event.peer;
  } else if (event.epoch == ls.epoch && event.peer != ls.fence_root) {
    std::ostringstream os;
    os << "fence of epoch " << event.epoch << " appointed "
       << to_string(event.peer) << " as root but " << to_string(ls.fence_root)
       << " was already fenced in as the epoch's root";
    report(ViolationKind::kTokenConservation, event, index, os.str());
  }
  // The fencing node rebuilds its own relationships from the fence; its
  // pre-crash copyset row is void (the root's new entries re-arrive as
  // kCopysetJoin events right after the fence event).
  ls.copyset.erase(event.node.value());
}

LintReport Checker::finish() {
  // End-of-trace obligations: freezes still owed and requests that never
  // resolved within the starvation budget.
  for (auto& [lock, ls] : locks_) {
    if (!options_.freezing || ls.pending_freeze.empty()) continue;
    const ModeSet actual =
        ls.token.is_none() ? ModeSet{} : ls.frozen[ls.token.value()];
    if ((ls.pending_freeze | actual) != actual) {
      Violation violation;
      violation.kind = ViolationKind::kMissingFreeze;
      violation.event_index = index_ == 0 ? 0 : index_ - 1;
      violation.lock = proto::LockId{lock};
      std::ostringstream os;
      os << "trace ended with Table 1(d) freezes still owed: required "
         << to_string(ls.pending_freeze) << " but frozen set is "
         << to_string(actual);
      violation.message = os.str();
      violation.window.assign(context_.begin(), context_.end());
      report_.violations.push_back(std::move(violation));
    }
  }
  check_starvation(index_);
  return std::move(report_);
}

LintReport check(const std::vector<TraceEvent>& events,
                 const LintOptions& options) {
  Checker checker{options};
  for (const TraceEvent& event : events) checker.add(event);
  return checker.finish();
}

LintReport check(const std::deque<TraceEvent>& events,
                 const LintOptions& options) {
  Checker checker{options};
  for (const TraceEvent& event : events) checker.add(event);
  return checker.finish();
}

}  // namespace hlock::lint
