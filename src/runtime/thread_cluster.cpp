#include "runtime/thread_cluster.hpp"

#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::runtime {

ThreadCluster::ThreadCluster(const ThreadClusterOptions& options) {
  if (options.transport == TransportKind::kTcp) {
    transport_ =
        std::make_unique<transport::TcpTransport>(options.node_count);
  } else {
    transport_ = std::make_unique<transport::InProcTransport>(
        transport::InProcOptions{options.node_count, options.message_latency,
                                 options.seed, options.codec_roundtrip});
  }
  if (options.faults.any()) {
    transport::FaultPlan plan = options.faults;
    if (plan.seed == 0) plan.seed = options.seed;
    auto faulty = std::make_unique<transport::FaultyTransport>(
        std::move(transport_), plan);
    faulty_ = faulty.get();
    transport_ = std::move(faulty);
  }
  HLOCK_REQUIRE(options.node_count >= 1, "a cluster needs at least one node");
  HLOCK_REQUIRE(options.initial_root.value() < options.node_count,
                "the initial root must be one of the cluster's nodes");
  nodes_.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const NodeId self{static_cast<std::uint32_t>(i)};
    auto rt = std::make_unique<NodeRuntime>();
    // No thread can see the node yet, but `engine` is lock-guarded state of
    // a foreign object as far as the analysis is concerned — take the
    // (uncontended, once-per-node) lock rather than suppress.
    MutexLock guard(rt->mutex);
    if (options.protocol == Protocol::kHierarchical) {
      rt->engine = std::make_unique<HierEngine>(self, options.initial_root,
                                                options.hier_config);
    } else {
      rt->engine = std::make_unique<NaimiEngine>(self, options.initial_root);
    }
    nodes_.push_back(std::move(rt));
  }
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const NodeId self{static_cast<std::uint32_t>(i)};
    nodes_[i]->receiver = std::thread([this, self] { receiver_loop(self); });
  }
}

ThreadCluster::~ThreadCluster() {
  stopping_.store(true);
  // Notify while holding each node's mutex: a client thread that already
  // checked its predicate but has not entered the wait yet would otherwise
  // miss the wake-up and block forever (and the unsynchronized flag write
  // would race with the predicate read).
  for (auto& rt : nodes_) {
    MutexLock guard(rt->mutex);
    rt->cv.notify_all();
  }
  transport_->shutdown();
  for (auto& rt : nodes_) {
    if (rt->receiver.joinable()) rt->receiver.join();
  }
  // Wait until every woken client call has left its wait; destroying the
  // node state under a thread still inside lock()/upgrade() would be a
  // use-after-free.
  for (auto& rt : nodes_) {
    MutexLock guard(rt->mutex);
    while (rt->waiters != 0) rt->cv.wait(rt->mutex);
  }
}

void ThreadCluster::set_event_sink(EventSink sink) {
  // Under event_mutex_: receivers read the sink while applying effects, so
  // an unguarded write here would race with every in-flight event (a real
  // defect the capability analysis flagged when the slot was annotated).
  MutexLock guard(event_mutex_);
  event_sink_ = std::move(sink);
}

ThreadCluster::NodeRuntime& ThreadCluster::runtime_of(NodeId node) {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return *nodes_[node.value()];
}

void ThreadCluster::receiver_loop(NodeId node) {
  NodeRuntime& rt = runtime_of(node);
  while (auto message = transport_->recv(node)) {
    // An exception escaping a std::thread calls std::terminate, so a
    // receiver converts failures into a counted, logged error effect and
    // keeps draining its mailbox.
    try {
      MutexLock guard(rt.mutex);
      rt.clock.observe(message->lamport);
      Effects effects = rt.engine->deliver(*message);
      apply(rt, message->lock, std::move(effects));
    } catch (const std::exception& error) {
      receiver_errors_.fetch_add(1, std::memory_order_relaxed);
      HLOCK_LOG(kError, "node " << node.value()
                                << ": error applying message: "
                                << error.what());
    }
  }
}

void ThreadCluster::apply(NodeRuntime& rt, LockId lock, Effects&& effects) {
  // One Lamport tick per automaton step; every event of the step shares it,
  // every send ticks further (obs/lamport.hpp).
  const std::uint64_t step_time = rt.clock.tick();
  // Events are sunk before the step's messages go out so the sink's global
  // order respects causality (see set_event_sink). The sink slot is only
  // readable under event_mutex_ — checking it unguarded raced with
  // set_event_sink().
  if (!effects.events.empty()) {
    const auto elapsed = std::chrono::steady_clock::now() - started_;
    const SimTime at = SimTime::ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    MutexLock sink_guard(event_mutex_);
    if (event_sink_) {
      for (trace::TraceEvent& event : effects.events) {
        event.at = at;
        event.lamport = step_time;
        event_sink_(std::move(event));
      }
    }
  }
  for (proto::Message& message : effects.messages) {
    message.lamport = rt.clock.tick();
    transport_->send(message);
  }
  bool notify = false;
  if (effects.entered_cs) {
    rt.granted.insert(lock);
    notify = true;
  }
  if (effects.upgraded) {
    rt.upgraded.insert(lock);
    notify = true;
  }
  if (notify) rt.cv.notify_all();
}

void ThreadCluster::lock(NodeId node, LockId lock, LockMode mode,
                         std::uint8_t priority) {
  NodeRuntime& rt = runtime_of(node);
  MutexLock guard(rt.mutex);
  Effects effects = rt.engine->request(lock, mode, priority);
  apply(rt, lock, std::move(effects));
  ++rt.waiters;
  while (!stopping_ && rt.granted.count(lock) == 0) rt.cv.wait(rt.mutex);
  rt.granted.erase(lock);
  --rt.waiters;
  rt.cv.notify_all();  // a tearing-down destructor may be draining waiters
}

void ThreadCluster::unlock(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  MutexLock guard(rt.mutex);
  Effects effects = rt.engine->release(lock);
  apply(rt, lock, std::move(effects));
}

void ThreadCluster::upgrade(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  MutexLock guard(rt.mutex);
  Effects effects = rt.engine->upgrade(lock);
  apply(rt, lock, std::move(effects));
  ++rt.waiters;
  while (!stopping_ && rt.upgraded.count(lock) == 0) rt.cv.wait(rt.mutex);
  rt.upgraded.erase(lock);
  --rt.waiters;
  rt.cv.notify_all();  // a tearing-down destructor may be draining waiters
}

bool ThreadCluster::holds(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  MutexLock guard(rt.mutex);
  return rt.engine->holds(lock);
}

}  // namespace hlock::runtime
