// A LockEngine decorator that publishes per-engine telemetry.
//
// Wraps any LockEngine and derives metrics purely from the interface
// traffic — the operation calls and the Effects they return — so one
// decorator instruments all three protocols (hier/naimi/raymond) without
// touching automaton code:
//
//   hlock_engine_requests_total{proto,node,mode}   request() calls
//   hlock_engine_grants_total{proto,node,mode}     entered_cs effects
//   hlock_engine_releases_total{proto,node}        release() calls
//   hlock_engine_upgrades_total{proto,node}        upgrade completions
//   hlock_engine_forwards_total{proto,node}        request msgs re-sent for
//                                                  another node
//   hlock_engine_freezes_total{proto,node}         outgoing FREEZE msgs
//   hlock_messages_sent_total{proto,node,kind}     every outgoing message
//   hlock_wait_ms{proto,node}                      request -> grant
//   hlock_hold_ms{proto,node}                      grant -> release
//   hlock_token_location{lock}                     node id the token was
//                                                  last sent to / landed on
//
// Threading: engines live one-per-shard behind the shard mutex
// (ThreadCluster) or in a single-threaded harness (SimCluster), so the
// decorator's own bookkeeping maps need no lock. The metric *record* calls
// are relaxed atomics (telemetry/metric.hpp), so series shared across
// shards — all shards of a node write the same counters — stay exact.
// Instrument pointers are resolved once at construction (or first touch of
// a lock, for token_location); the per-operation cost is the map lookups
// plus a few relaxed atomic adds, in keeping with the registry's "no mutex
// on the delivery hot path" contract.
#pragma once

#include <array>
#include <chrono>
#include <memory>
#include <unordered_map>

#include "runtime/engine.hpp"
#include "telemetry/registry.hpp"

namespace hlock::runtime {

/// See file comment.
class InstrumentedEngine final : public LockEngine {
 public:
  InstrumentedEngine(std::unique_ptr<LockEngine> inner,
                     telemetry::Registry& registry, Protocol protocol,
                     NodeId self);

  Effects request(LockId lock, LockMode mode,
                  std::uint8_t priority = 0) override;
  Effects release(LockId lock) override;
  Effects upgrade(LockId lock) override;
  Effects deliver(const proto::Message& message) override;
  bool holds(LockId lock) const override;
  std::size_t queued_requests() const override;
  std::size_t tokens_held() const override;

  // recovery::Host forwards to the wrapped engine; fence effects flow
  // through observe() like any protocol step so recovery messages and
  // re-grants are counted too.
  std::vector<LockId> recovery_locks() override;
  recovery::LockReport report(LockId lock) override;
  Effects install_fence(LockId lock,
                        const proto::EpochFence& fence) override;
  std::uint32_t recovery_epoch(LockId lock) override;
  void set_default_origin(NodeId root, std::uint32_t epoch) override;

  /// The wrapped engine, for tests and invariant checks.
  LockEngine& inner() { return *inner_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Counts outgoing messages / forwards / freezes, moves the token
  /// gauge, and resolves grant and upgrade completions.
  void observe(LockId lock, const Effects& effects);
  telemetry::Gauge& token_gauge(LockId lock);

  const std::unique_ptr<LockEngine> inner_;
  telemetry::Registry& registry_;
  const NodeId self_;

  std::array<telemetry::Counter*, proto::kModeCount> requests_{};
  std::array<telemetry::Counter*, proto::kModeCount> grants_{};
  std::array<telemetry::Counter*, proto::kMessageKindCount> sent_{};
  telemetry::Counter* releases_ = nullptr;
  telemetry::Counter* upgrades_ = nullptr;
  telemetry::Counter* forwards_ = nullptr;
  telemetry::Counter* freezes_ = nullptr;
  telemetry::Histogram* wait_ms_ = nullptr;
  telemetry::Histogram* hold_ms_ = nullptr;

  struct PendingRequest {
    LockMode mode = LockMode::kNL;
    Clock::time_point since;
  };
  std::unordered_map<LockId, PendingRequest> pending_;
  std::unordered_map<LockId, Clock::time_point> held_since_;
  std::unordered_map<LockId, telemetry::Gauge*> token_gauges_;
};

}  // namespace hlock::runtime
