// Minimal leveled logger.
//
// Simulations process millions of events, so the logger is designed for a
// cheap disabled path: level checks are a single atomic load and message
// formatting only happens when the level is enabled. Output is line-buffered
// to stderr and serialized with a mutex so threaded-transport runs do not
// interleave lines.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace hlock {

/// Log severity, ordered; messages below the global threshold are dropped.
enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns the process-wide log threshold (default kWarn; tests and
/// benchmarks keep protocol tracing off unless explicitly enabled).
LogLevel log_threshold();

/// Sets the process-wide log threshold. Thread-safe.
void set_log_threshold(LogLevel level);

/// True if messages at `level` would currently be emitted.
bool log_enabled(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace hlock

/// Logs a message composed with stream syntax:
///   HLOCK_LOG(kDebug, "node " << id << " granted " << mode);
#define HLOCK_LOG(level, stream_expr)                              \
  do {                                                             \
    if (::hlock::log_enabled(::hlock::LogLevel::level)) {          \
      std::ostringstream hlock_log_os;                             \
      hlock_log_os << stream_expr;                                 \
      ::hlock::detail::log_emit(::hlock::LogLevel::level,          \
                                hlock_log_os.str());               \
    }                                                              \
  } while (false)
