// Deadlock-free multi-lock acquisition.
//
// Two nodes acquiring overlapping lock sets in different orders deadlock
// (the paper makes Naimi's same-work variant acquire per-entry locks "in a
// predefined order" for exactly this reason). MultiGuard generalizes that
// discipline to the public API: it sorts the requested (lock, mode) pairs
// into the global canonical order — ascending LockId, which puts coarse
// locks (lower ids by the workload convention) before fine ones — acquires
// them sequentially, and releases in reverse on destruction.
#pragma once

#include <algorithm>
#include <vector>

#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"
#include "runtime/thread_cluster.hpp"
#include "util/check.hpp"

namespace hlock::runtime {

/// One element of a multi-lock acquisition request.
struct LockRequest {
  LockId lock;
  LockMode mode = proto::LockMode::kNL;
  std::uint8_t priority = 0;
};

/// Scoped ownership of a set of locks, acquired in canonical order.
/// Movable, not copyable.
class MultiGuard {
 public:
  /// Blocks until every requested lock is granted. Duplicate lock ids are
  /// rejected (one mode per lock per holder).
  MultiGuard(ThreadCluster& cluster, NodeId node,
             std::vector<LockRequest> requests)
      : cluster_(&cluster), node_(node), requests_(std::move(requests)) {
    HLOCK_REQUIRE(!requests_.empty(), "MultiGuard needs at least one lock");
    std::sort(requests_.begin(), requests_.end(),
              [](const LockRequest& a, const LockRequest& b) {
                return a.lock < b.lock;
              });
    for (std::size_t i = 1; i < requests_.size(); ++i) {
      HLOCK_REQUIRE(requests_[i - 1].lock != requests_[i].lock,
                    "duplicate lock in a MultiGuard request");
    }
    for (std::size_t i = 0; i < requests_.size(); ++i) {
      HLOCK_REQUIRE(requests_[i].mode != proto::LockMode::kNL,
                    "cannot request the empty mode");
      cluster.lock(node_, requests_[i].lock, requests_[i].mode,
                   requests_[i].priority);
      ++acquired_;
    }
  }

  MultiGuard(MultiGuard&& other) noexcept
      : cluster_(other.cluster_), node_(other.node_),
        requests_(std::move(other.requests_)), acquired_(other.acquired_) {
    other.cluster_ = nullptr;
  }
  MultiGuard(const MultiGuard&) = delete;
  MultiGuard& operator=(const MultiGuard&) = delete;
  MultiGuard& operator=(MultiGuard&&) = delete;

  ~MultiGuard() { release(); }

  /// Releases all locks (reverse acquisition order); idempotent.
  void release() {
    if (cluster_ == nullptr) return;
    for (std::size_t i = acquired_; i-- > 0;) {
      cluster_->unlock(node_, requests_[i].lock);
    }
    cluster_ = nullptr;
  }

  /// Locks held by this guard, in acquisition (canonical) order.
  const std::vector<LockRequest>& requests() const { return requests_; }

 private:
  ThreadCluster* cluster_;
  NodeId node_;
  std::vector<LockRequest> requests_;
  std::size_t acquired_ = 0;
};

}  // namespace hlock::runtime
