// Closed-loop workload driver for simulated clusters.
//
// Reproduces the paper's measurement setup: every node runs one instance of
// the multi-airline reservation application, iteratively issuing lock
// operations with randomized critical-section lengths and inter-request
// idle times. The driver implements the per-node state machine (idle ->
// acquire steps -> critical section [-> upgrade -> critical section] ->
// release -> idle), records per-operation metrics, and runs the simulation
// to completion with livelock/deadlock detection.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/sim_cluster.hpp"
#include "stats/metrics.hpp"
#include "util/distributions.hpp"
#include "workload/mode_mix.hpp"
#include "workload/op_plan.hpp"

namespace hlock::workload {

using proto::NodeId;

/// Parameters of one workload run. Defaults follow the paper's Linux
/// cluster experiment (§4.1): 15 ms critical sections, 150 ms idle times,
/// both uniformly randomized around the mean, and the 80/10/4/5/1 mode mix.
struct WorkloadSpec {
  AppVariant variant = AppVariant::kHierarchical;
  std::size_t node_count = 16;
  /// Entries in the shared ticket table (the paper does not quote a count;
  /// 6 reproduces the same-work variant's whole-table cost in the regime
  /// the paper plots — see EXPERIMENTS.md).
  std::size_t table_entries = 6;
  /// Operations each node performs before retiring.
  int ops_per_node = 50;
  DurationDist cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
  DurationDist idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
  ModeMix mix = ModeMix::paper();
  /// Probability that an entry-level operation targets the node's HOME
  /// entry (node id mod table_entries) instead of a uniform draw. 0 = the
  /// paper's uniform workload; higher values model access locality, which
  /// the dynamic probable-owner structures exploit (bench/locality).
  double entry_locality = 0.0;
  std::uint64_t seed = 1;
  /// Abort threshold for simulator events; 0 derives a generous bound from
  /// the workload size. Exceeding it indicates protocol livelock.
  std::uint64_t max_events = 0;
  /// Crash-stop schedule (docs/recovery.md): each entry kills one node at
  /// the given simulated time. Requires the cluster to run with
  /// SimClusterOptions::recovery.enabled; the killed node's unfinished
  /// operations are forgiven — run() only demands that survivors drain.
  struct Kill {
    NodeId node;
    SimTime at;
  };
  std::vector<Kill> kills;
};

/// Per-run results beyond what the cluster's MetricsRegistry collects.
struct DriverStats {
  /// Completed application operations.
  std::uint64_t ops = 0;
  /// Lock acquisitions issued (>= ops; the hierarchical variant issues two
  /// per entry operation, the same-work variant E per whole-table op).
  std::uint64_t acquisitions = 0;
  /// Completed operations per kind, indexed by OpKind.
  std::array<std::uint64_t, 5> ops_by_kind{};
  /// End-to-end acquisition latency per op: first request to entering the
  /// critical section with every lock of the plan held (multi-lock plans
  /// accumulate their sequential acquisitions here).
  stats::LatencyRecorder op_latency;
  /// Latency of each individual lock acquisition (request issue to grant) —
  /// the paper's per-request latency metric (Figs. 8 and 10).
  stats::LatencyRecorder acq_latency;
  /// Acquisition latency split per op kind.
  std::array<stats::LatencyRecorder, 5> latency_by_kind;
  /// Rule 7 upgrade waits (upgrade() call to completion).
  stats::LatencyRecorder upgrade_latency;
};

/// See file comment.
class SimWorkloadDriver {
 public:
  /// The cluster's protocol must match the spec's variant (hierarchical
  /// variant on a hierarchical cluster, Naimi variants on a Naimi cluster).
  SimWorkloadDriver(runtime::SimCluster& cluster, WorkloadSpec spec);

  /// Runs the whole workload to completion. Throws InvariantError if the
  /// simulation exceeds the event budget (livelock) or drains with
  /// unfinished operations (deadlock / lost request).
  void run();

  /// Optional hook invoked every `every` executed events during run() —
  /// property tests use it to assert safety invariants mid-flight.
  void set_periodic_check(std::uint64_t every, std::function<void()> check);

  const DriverStats& stats() const { return stats_; }
  const WorkloadSpec& spec() const { return spec_; }

 private:
  enum class Phase { kIdle, kAcquiring, kInCs, kWaitUpgrade, kDone };

  struct NodeState {
    Rng rng;
    int remaining = 0;
    bool dead = false;
    Phase phase = Phase::kIdle;
    OpKind kind = OpKind::kEntryRead;
    std::vector<LockStep> steps;
    std::size_t next_step = 0;
    SimTime op_start{};
    SimTime step_start{};
    SimTime upgrade_start{};
    SimTime cs_remaining{};
  };

  void schedule_idle(NodeId node);
  void begin_op(NodeId node);
  void issue_next_step(NodeId node);
  void on_grant(NodeId node, proto::LockId lock, bool upgraded);
  void enter_cs(NodeId node);
  void start_upgrade(NodeId node);
  void finish_cs(NodeId node);
  NodeState& state(NodeId node) { return nodes_[node.value()]; }

  runtime::SimCluster& cluster_;
  const WorkloadSpec spec_;
  std::vector<NodeState> nodes_;
  DriverStats stats_;
  std::uint64_t check_every_ = 0;
  std::function<void()> periodic_check_;
};

}  // namespace hlock::workload
