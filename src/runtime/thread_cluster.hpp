// A cluster of protocol nodes on real threads with a blocking client API.
//
// Each node owns a receiver thread that drains its transport mailbox and
// feeds the protocol engine; application threads call lock()/unlock()/
// upgrade() and block until the grant arrives. The engine of each node is
// guarded by a per-node mutex, preserving the automatons' single-threaded
// contract while messages race freely between nodes — this is the harness
// that validates hlock under genuine concurrency (examples and integration
// tests run on it).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/hier_config.hpp"
#include "runtime/engine.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/tcp_transport.hpp"

namespace hlock::runtime {

/// Which transport carries the cluster's messages.
enum class TransportKind {
  kInProc,  ///< in-process mailboxes (fast; supports injected latency)
  kTcp,     ///< real TCP sockets over loopback (paper's Linux testbed)
};

/// Construction parameters of a threaded cluster.
struct ThreadClusterOptions {
  std::size_t node_count = 2;
  Protocol protocol = Protocol::kHierarchical;
  core::HierConfig hier_config = {};
  TransportKind transport = TransportKind::kInProc;
  /// Injected one-way message latency (real time; kInProc only — TCP has
  /// its own genuine latency).
  DurationDist message_latency = DurationDist::constant(SimTime::ns(0));
  std::uint64_t seed = 1;
  /// Round-trip messages through the wire codec (kInProc only; TCP always
  /// ships real encoded frames).
  bool codec_roundtrip = true;
  NodeId initial_root = NodeId{0};
};

/// See file comment.
class ThreadCluster {
 public:
  explicit ThreadCluster(const ThreadClusterOptions& options);

  /// Shuts down and joins all receiver threads. Outstanding blocked client
  /// calls are woken with an exception-free spurious return, so tests must
  /// join their own application threads first.
  ~ThreadCluster();

  /// Acquires `lock` in `mode` on behalf of `node`; blocks until granted.
  /// Higher `priority` requests overtake queued lower-priority waiters
  /// (never current holders).
  void lock(NodeId node, LockId lock, LockMode mode,
            std::uint8_t priority = 0);

  /// Releases `lock` held by `node`.
  void unlock(NodeId node, LockId lock);

  /// Upgrades `node`'s U hold on `lock` to W; blocks until complete
  /// (hierarchical protocol only).
  void upgrade(NodeId node, LockId lock);

  /// True if `node` currently holds `lock`.
  bool holds(NodeId node, LockId lock);

  /// Total protocol messages sent so far.
  std::uint64_t messages_sent() const { return transport_->messages_sent(); }

  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct NodeRuntime {
    std::unique_ptr<LockEngine> engine;
    std::mutex mutex;
    std::condition_variable cv;
    /// Locks whose grant / upgrade-completion arrived but has not been
    /// consumed by the blocked client call yet.
    std::unordered_set<LockId> granted;
    std::unordered_set<LockId> upgraded;
    std::thread receiver;
  };

  void receiver_loop(NodeId node);
  /// Applies effects under the node's mutex (sends after unlocking would
  /// also be correct; sends never block so holding it is safe and simpler).
  void apply(NodeRuntime& rt, LockId lock, Effects&& effects);
  NodeRuntime& runtime_of(NodeId node);

  std::unique_ptr<transport::Transport> transport_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  /// Read by client threads in cv predicates under per-node mutexes while
  /// the destructor writes it: atomic, not mutex-protected.
  std::atomic<bool> stopping_{false};
};

}  // namespace hlock::runtime
