// The paper's motivating application (§4): a multi-airline reservation
// system. Ticket prices live in a table replicated across all nodes; the
// whole table and each entry are protected by hierarchical locks, so
// entry-level bookings proceed in parallel while whole-table operations
// (market-wide repricing, consistent snapshots) serialize exactly as far
// as necessary.
//
// Runs on the threaded runtime: every "agency" is a node on its own thread.
//
// Build & run:  ./build/examples/airline_reservation
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "proto/lock_mode.hpp"
#include "runtime/thread_cluster.hpp"
#include "util/rng.hpp"
#include "workload/op_plan.hpp"

using hlock::Rng;
using hlock::proto::LockId;
using hlock::proto::LockMode;
using hlock::proto::NodeId;
using hlock::runtime::ThreadCluster;
using hlock::runtime::ThreadClusterOptions;

namespace {

constexpr std::size_t kAgencies = 5;
constexpr std::size_t kFlights = 6;
constexpr int kBookingsPerAgency = 30;

/// The shared business state. The protocol serializes access; the plain
/// (non-atomic) fields prove it — any race would corrupt the totals.
struct TicketTable {
  long price[kFlights];
  long seats_sold[kFlights];
};

}  // namespace

int main() {
  ThreadClusterOptions options;
  options.node_count = kAgencies;
  ThreadCluster cluster{options};

  TicketTable table{};
  for (std::size_t f = 0; f < kFlights; ++f) table.price[f] = 100 + 10 * long(f);

  const LockId table_lock = hlock::workload::table_lock();
  auto flight_lock = [](std::size_t f) {
    return hlock::workload::entry_lock(f);
  };

  std::atomic<long> revenue{0};

  std::vector<std::thread> agencies;
  for (std::uint32_t a = 0; a < kAgencies; ++a) {
    agencies.emplace_back([&, a] {
      const NodeId node{a};
      Rng rng{1000 + a};
      for (int i = 0; i < kBookingsPerAgency; ++i) {
        const std::size_t flight = rng.below(kFlights);
        if (rng.chance(0.9)) {
          // Book one seat: intent-write on the table, write on the flight.
          cluster.lock(node, table_lock, LockMode::kIW);
          cluster.lock(node, flight_lock(flight), LockMode::kW);
          table.seats_sold[flight] += 1;
          revenue.fetch_add(table.price[flight]);
          cluster.unlock(node, flight_lock(flight));
          cluster.unlock(node, table_lock);
        } else {
          // Market-wide repricing: a read of the whole table under U,
          // atomically upgraded to W for the update (Rule 7) — no other
          // writer can slip between the read and the write.
          cluster.lock(node, table_lock, LockMode::kU);
          long max_sold = 0;
          for (std::size_t f = 0; f < kFlights; ++f) {
            max_sold = std::max(max_sold, table.seats_sold[f]);
          }
          cluster.upgrade(node, table_lock);
          for (std::size_t f = 0; f < kFlights; ++f) {
            if (table.seats_sold[f] == max_sold) table.price[f] += 5;
          }
          cluster.unlock(node, table_lock);
        }
      }
    });
  }
  for (std::thread& t : agencies) t.join();

  long total_sold = 0;
  for (std::size_t f = 0; f < kFlights; ++f) {
    std::printf("flight %zu: price %4ld, seats sold %3ld\n", f,
                table.price[f], table.seats_sold[f]);
    total_sold += table.seats_sold[f];
  }
  std::printf("total seats sold: %ld (revenue %ld)\n", total_sold,
              revenue.load());
  std::printf("protocol messages: %llu\n",
              static_cast<unsigned long long>(cluster.messages_sent()));

  // Consistency check: with correct locking, every booking is counted.
  const long expected = kAgencies * kBookingsPerAgency;
  if (total_sold > expected || total_sold < expected * 80 / 100) {
    std::printf("NOTE: bookings=%ld of %ld ops were bookings (rest were "
                "repricings)\n",
                total_sold, expected);
  }
  return 0;
}
