#include "proto/codec.hpp"

#include <cstring>

#include "util/check.hpp"

namespace hlock::proto {

void WireWriter::u8(std::uint8_t v) { out_.push_back(std::byte{v}); }

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
  }
}

void WireWriter::node(NodeId id) { u32(id.value()); }
void WireWriter::lock(LockId id) { u32(id.value()); }
void WireWriter::mode(LockMode m) {
  u8(static_cast<std::uint8_t>(mode_index(m)));
}

void WireWriter::patch_u32(std::size_t at, std::uint32_t v) {
  HLOCK_REQUIRE(at + 4 <= out_.size(), "patch_u32 outside written bytes");
  for (int i = 0; i < 4; ++i) {
    out_[at + static_cast<std::size_t>(i)] =
        std::byte{static_cast<std::uint8_t>(v >> (8 * i))};
  }
}

std::optional<std::uint8_t> WireReader::u8() {
  if (remaining() < 1) return std::nullopt;
  return static_cast<std::uint8_t>(in_[pos_++]);
}

std::optional<std::uint32_t> WireReader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> WireReader::u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::optional<NodeId> WireReader::node() {
  auto v = u32();
  if (!v) return std::nullopt;
  return NodeId{*v};
}

std::optional<LockId> WireReader::lock() {
  auto v = u32();
  if (!v) return std::nullopt;
  return LockId{*v};
}

std::optional<LockMode> WireReader::mode() {
  auto v = u8();
  if (!v || *v >= kModeCount) return std::nullopt;
  return static_cast<LockMode>(*v);
}

std::optional<std::span<const std::byte>> WireReader::bytes(
    std::size_t size) {
  if (remaining() < size) return std::nullopt;
  std::span<const std::byte> out = in_.subspan(pos_, size);
  pos_ += size;
  return out;
}

namespace {

struct PayloadEncoder {
  WireWriter& w;

  void operator()(const HierRequest& p) const {
    w.node(p.requester);
    w.mode(p.mode);
    w.u64(p.seq);
    w.u8(p.priority);
  }
  void operator()(const HierGrant& p) const {
    w.mode(p.mode);
    w.mode(p.entry_mode);
    w.u32(p.epoch);
  }
  void operator()(const HierToken& p) const {
    // A queue above the wire cap means corrupted automaton state (a cluster
    // holds at most one queued request per node); truncating it through the
    // u32 count would silently drop requests, so refuse to encode instead.
    HLOCK_REQUIRE(p.queue.size() <= kMaxTokenQueueEntries,
                  "HierToken queue exceeds the wire format cap");
    w.mode(p.granted_mode);
    w.mode(p.sender_owned);
    w.u32(static_cast<std::uint32_t>(p.queue.size()));
    for (const QueuedRequest& q : p.queue) {
      w.node(q.requester);
      w.mode(q.mode);
      w.u64(q.seq);
      w.u8(q.priority);
    }
  }
  void operator()(const HierRelease& p) const {
    w.mode(p.new_owned);
    w.u32(p.epoch);
  }
  void operator()(const HierFreeze& p) const { w.u8(p.modes.bits()); }
  void operator()(const NaimiRequest& p) const {
    w.node(p.requester);
    w.u64(p.seq);
  }
  void operator()(const NaimiToken&) const {}
  void operator()(const Heartbeat&) const {}
  void operator()(const Suspect& p) const { w.node(p.dead); }
  void operator()(const ElectToken& p) const {
    HLOCK_REQUIRE(p.dead.size() <= kMaxFenceNodes,
                  "ElectToken dead set exceeds the wire format cap");
    w.u32(static_cast<std::uint32_t>(p.dead.size()));
    for (NodeId n : p.dead) w.node(n);
    w.u32(p.lock_count);
    w.u32(p.lock_index);
    w.u32(p.epoch);
    w.u8(p.has_token ? 1 : 0);
    w.mode(p.held);
    w.u8(p.waiting ? 1 : 0);
    w.mode(p.wait_mode);
    w.u64(p.wait_seq);
    w.u8(p.wait_priority);
    w.u8(p.upgrading ? 1 : 0);
  }
  void operator()(const EpochFence& p) const {
    HLOCK_REQUIRE(p.dead.size() <= kMaxFenceNodes &&
                      p.holders.size() <= kMaxFenceNodes,
                  "EpochFence node lists exceed the wire format cap");
    HLOCK_REQUIRE(p.queue.size() <= kMaxTokenQueueEntries,
                  "EpochFence queue exceeds the wire format cap");
    w.u32(static_cast<std::uint32_t>(p.dead.size()));
    for (NodeId n : p.dead) w.node(n);
    w.u32(p.epoch);
    w.node(p.new_root);
    w.u32(static_cast<std::uint32_t>(p.holders.size()));
    for (const FenceHolder& h : p.holders) {
      w.node(h.node);
      w.mode(h.mode);
    }
    w.u32(static_cast<std::uint32_t>(p.queue.size()));
    for (const QueuedRequest& q : p.queue) {
      w.node(q.requester);
      w.mode(q.mode);
      w.u64(q.seq);
      w.u8(q.priority);
    }
    w.u32(p.fence_index);
    w.u32(p.fence_count);
  }
};

/// Reads a u8 0/1 as bool; nullopt for anything else (hostile frames must
/// not smuggle wider values into a bool).
std::optional<bool> read_bool(WireReader& r) {
  auto v = r.u8();
  if (!v || *v > 1) return std::nullopt;
  return *v != 0;
}

/// Reads a length-prefixed node list bounded by kMaxFenceNodes and the
/// remaining buffer (4 bytes per entry).
std::optional<std::vector<NodeId>> read_node_list(WireReader& r) {
  auto count = r.u32();
  if (!count || *count > kMaxFenceNodes) return std::nullopt;
  if (*count > r.remaining() / 4) return std::nullopt;
  std::vector<NodeId> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto n = r.node();
    if (!n) return std::nullopt;
    out.push_back(*n);
  }
  return out;
}

std::optional<Payload> decode_payload(MessageKind kind, WireReader& r) {
  switch (kind) {
    case MessageKind::kHierRequest: {
      auto requester = r.node();
      auto mode = r.mode();
      auto seq = r.u64();
      auto priority = r.u8();
      if (!requester || !mode || !seq || !priority) return std::nullopt;
      return Payload{HierRequest{*requester, *mode, *seq, *priority}};
    }
    case MessageKind::kHierGrant: {
      auto mode = r.mode();
      auto entry_mode = r.mode();
      auto epoch = r.u32();
      if (!mode || !entry_mode || !epoch) return std::nullopt;
      return Payload{HierGrant{*mode, *entry_mode, *epoch}};
    }
    case MessageKind::kHierToken: {
      auto granted = r.mode();
      auto owned = r.mode();
      auto count = r.u32();
      if (!granted || !owned || !count) return std::nullopt;
      // Each queue entry occupies 14 bytes; reject counts the buffer cannot
      // possibly hold — and counts above the wire cap regardless of buffer
      // size — before allocating.
      if (*count > kMaxTokenQueueEntries) return std::nullopt;
      if (*count > r.remaining() / 14) return std::nullopt;
      HierToken token{*granted, *owned, {}};
      token.queue.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto requester = r.node();
        auto mode = r.mode();
        auto seq = r.u64();
        auto priority = r.u8();
        if (!requester || !mode || !seq || !priority) return std::nullopt;
        token.queue.push_back(
            QueuedRequest{*requester, *mode, *seq, *priority});
      }
      return Payload{std::move(token)};
    }
    case MessageKind::kHierRelease: {
      auto mode = r.mode();
      auto epoch = r.u32();
      if (!mode || !epoch) return std::nullopt;
      return Payload{HierRelease{*mode, *epoch}};
    }
    case MessageKind::kHierFreeze: {
      auto bits = r.u8();
      if (!bits || (*bits & ~std::uint8_t{0x3F}) != 0) return std::nullopt;
      return Payload{HierFreeze{ModeSet::from_bits(*bits)}};
    }
    case MessageKind::kNaimiRequest: {
      auto requester = r.node();
      auto seq = r.u64();
      if (!requester || !seq) return std::nullopt;
      return Payload{NaimiRequest{*requester, *seq}};
    }
    case MessageKind::kNaimiToken:
      return Payload{NaimiToken{}};
    case MessageKind::kHeartbeat:
      return Payload{Heartbeat{}};
    case MessageKind::kSuspect: {
      auto dead = r.node();
      if (!dead) return std::nullopt;
      return Payload{Suspect{*dead}};
    }
    case MessageKind::kElectToken: {
      auto dead = read_node_list(r);
      auto lock_count = r.u32();
      auto lock_index = r.u32();
      auto epoch = r.u32();
      auto has_token = read_bool(r);
      auto held = r.mode();
      auto waiting = read_bool(r);
      auto wait_mode = r.mode();
      auto wait_seq = r.u64();
      auto wait_priority = r.u8();
      auto upgrading = read_bool(r);
      if (!dead || !lock_count || !lock_index || !epoch || !has_token ||
          !held || !waiting || !wait_mode || !wait_seq || !wait_priority ||
          !upgrading) {
        return std::nullopt;
      }
      return Payload{ElectToken{std::move(*dead), *lock_count, *lock_index,
                                *epoch, *has_token, *held, *waiting,
                                *wait_mode, *wait_seq, *wait_priority,
                                *upgrading}};
    }
    case MessageKind::kEpochFence: {
      auto dead = read_node_list(r);
      auto epoch = r.u32();
      auto new_root = r.node();
      if (!dead || !epoch || !new_root) return std::nullopt;
      auto holder_count = r.u32();
      if (!holder_count || *holder_count > kMaxFenceNodes) {
        return std::nullopt;
      }
      // A holder occupies 5 bytes; reject counts the buffer cannot hold.
      if (*holder_count > r.remaining() / 5) return std::nullopt;
      EpochFence fence{std::move(*dead), *epoch, *new_root, {}, {}, 0, 0};
      fence.holders.reserve(*holder_count);
      for (std::uint32_t i = 0; i < *holder_count; ++i) {
        auto node = r.node();
        auto mode = r.mode();
        if (!node || !mode) return std::nullopt;
        fence.holders.push_back(FenceHolder{*node, *mode});
      }
      auto queue_count = r.u32();
      if (!queue_count || *queue_count > kMaxTokenQueueEntries) {
        return std::nullopt;
      }
      if (*queue_count > r.remaining() / 14) return std::nullopt;
      fence.queue.reserve(*queue_count);
      for (std::uint32_t i = 0; i < *queue_count; ++i) {
        auto requester = r.node();
        auto mode = r.mode();
        auto seq = r.u64();
        auto priority = r.u8();
        if (!requester || !mode || !seq || !priority) return std::nullopt;
        fence.queue.push_back(QueuedRequest{*requester, *mode, *seq,
                                            *priority});
      }
      auto fence_index = r.u32();
      auto fence_count = r.u32();
      if (!fence_index || !fence_count) return std::nullopt;
      fence.fence_index = *fence_index;
      fence.fence_count = *fence_count;
      return Payload{std::move(fence)};
    }
  }
  return std::nullopt;
}

}  // namespace

void encode_into(const Message& m, std::vector<std::byte>& out) {
  WireWriter w{out};
  w.u8(kWireFormatVersion);
  w.node(m.from);
  w.node(m.to);
  w.lock(m.lock);
  w.node(m.request.origin);
  w.u64(m.request.seq);
  w.u64(m.lamport);
  w.u32(m.epoch);
  w.u8(static_cast<std::uint8_t>(kind_of(m.payload)));
  std::visit(PayloadEncoder{w}, m.payload);
}

std::vector<std::byte> encode(const Message& m) {
  std::vector<std::byte> out;
  out.reserve(48);
  encode_into(m, out);
  return out;
}

std::optional<Message> decode(std::span<const std::byte> bytes) {
  WireReader r{bytes};
  auto version = r.u8();
  if (!version || *version != kWireFormatVersion) return std::nullopt;
  auto from = r.node();
  auto to = r.node();
  auto lock = r.lock();
  auto request_origin = r.node();
  auto request_seq = r.u64();
  auto lamport = r.u64();
  auto epoch = r.u32();
  auto kind_raw = r.u8();
  if (!from || !to || !lock || !request_origin || !request_seq || !lamport ||
      !epoch || !kind_raw) {
    return std::nullopt;
  }
  if (*kind_raw >= kMessageKindCount) return std::nullopt;
  auto payload = decode_payload(static_cast<MessageKind>(*kind_raw), r);
  if (!payload || r.remaining() != 0) return std::nullopt;
  return Message{*from,
                 *to,
                 *lock,
                 std::move(*payload),
                 RequestId{*request_origin, *request_seq},
                 *lamport,
                 *epoch};
}

void encode_batch_into(std::span<const Message> messages,
                       std::vector<std::byte>& out) {
  HLOCK_REQUIRE(messages.size() <= kMaxBatchMessages,
                "batch exceeds the wire format cap");
  WireWriter w{out};
  w.u8(kBatchMarker);
  w.u32(static_cast<std::uint32_t>(messages.size()));
  for (const Message& m : messages) {
    // Backpatch each sub-message's length prefix after encoding it: one
    // pass, no per-message scratch buffer.
    const std::size_t prefix_at = w.size();
    w.u32(0);
    const std::size_t body_start = w.size();
    encode_into(m, out);
    w.patch_u32(prefix_at,
                static_cast<std::uint32_t>(w.size() - body_start));
  }
}

std::optional<std::vector<Message>> decode_batch(
    std::span<const std::byte> bytes) {
  WireReader r{bytes};
  auto marker = r.u8();
  if (!marker || *marker != kBatchMarker) return std::nullopt;
  auto count = r.u32();
  if (!count || *count > kMaxBatchMessages) return std::nullopt;
  // Each sub-message occupies at least a length prefix plus the smallest
  // encoding; reject counts the buffer cannot possibly hold first.
  if (*count > r.remaining() / (4 + kMinEncodedMessageBytes)) {
    return std::nullopt;
  }
  std::vector<Message> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto length = r.u32();
    if (!length || *length < kMinEncodedMessageBytes) return std::nullopt;
    auto body = r.bytes(*length);
    if (!body) return std::nullopt;
    auto message = decode(*body);
    if (!message) return std::nullopt;
    out.push_back(std::move(*message));
  }
  if (r.remaining() != 0) return std::nullopt;
  return out;
}

}  // namespace hlock::proto
