// Per-node protocol engines.
//
// A LockEngine bundles all per-lock automatons of one node behind a
// protocol-agnostic interface, so cluster harnesses and workload drivers
// run identically over the hierarchical protocol and the Naimi baseline.
// Automatons are created lazily on first use of a lock id; every engine in
// a cluster must agree on the initial token holder (`initial_root`), which
// starts as the root of every lock's probable-owner tree (a star, as in the
// paper's "initially, the root is the token owner").
#pragma once

#include <memory>
#include <unordered_map>

#include "core/effects.hpp"
#include "core/hier_automaton.hpp"
#include "naimi/naimi_automaton.hpp"
#include "proto/ids.hpp"
#include "proto/message.hpp"
#include "raymond/raymond_automaton.hpp"
#include "recovery/host.hpp"

namespace hlock::runtime {

using core::Effects;
using proto::LockId;
using proto::LockMode;
using proto::NodeId;

/// Which protocol a cluster of engines runs.
enum class Protocol {
  kHierarchical,  ///< the paper's multi-mode protocol (src/core)
  kNaimi,         ///< the Naimi-Tréhel baseline (src/naimi)
  kRaymond,       ///< Raymond's static-tree baseline (src/raymond)
};

/// Returns "hierarchical", "naimi" or "raymond".
std::string to_string(Protocol protocol);

/// True for single-exclusive-mode protocols (Naimi, Raymond), which ignore
/// request modes and map any workload onto exclusive acquisitions.
inline bool is_mode_less(Protocol protocol) {
  return protocol != Protocol::kHierarchical;
}

/// Protocol-agnostic face of one node: issue requests, releases, upgrades
/// and deliver incoming messages; every call returns the effects to apply.
///
/// Engines double as the recovery::Host of the node's recovery::Manager
/// (docs/recovery.md). The base implementations reject — a protocol
/// supports crash recovery only by overriding them (the hierarchical
/// protocol and the Naimi baseline do; Raymond's static tree cannot
/// re-root and does not).
class LockEngine : public recovery::Host {
 public:
  ~LockEngine() override = default;

  /// Requests `lock` in `mode` (mode and priority are ignored by mode-less
  /// protocols).
  virtual Effects request(LockId lock, LockMode mode,
                          std::uint8_t priority = 0) = 0;
  /// Releases the held lock.
  virtual Effects release(LockId lock) = 0;
  /// Upgrades U -> W (Rule 7); only meaningful for the hierarchical
  /// protocol — mode-less engines reject it.
  virtual Effects upgrade(LockId lock) = 0;
  /// Delivers one incoming message to the addressed lock's automaton.
  virtual Effects deliver(const proto::Message& message) = 0;
  /// True if this node currently holds `lock` (in any mode).
  virtual bool holds(LockId lock) const = 0;
  /// Requests queued locally at this node across all locks (telemetry;
  /// waiting lists threaded through remote nodes count at the node that
  /// queues them).
  virtual std::size_t queued_requests() const = 0;
  /// Locks whose token currently rests at this node (telemetry).
  virtual std::size_t tokens_held() const = 0;

  // ---- recovery::Host (overridden by recovery-capable protocols) ----
  std::vector<LockId> recovery_locks() override;
  recovery::LockReport report(LockId lock) override;
  Effects install_fence(LockId lock,
                        const proto::EpochFence& fence) override;
  std::uint32_t recovery_epoch(LockId lock) override;
  void set_default_origin(NodeId root, std::uint32_t epoch) override;
};

/// Engine running the paper's hierarchical multi-mode protocol.
class HierEngine final : public LockEngine {
 public:
  HierEngine(NodeId self, NodeId initial_root, core::HierConfig config = {});

  Effects request(LockId lock, LockMode mode,
                  std::uint8_t priority = 0) override;
  Effects release(LockId lock) override;
  Effects upgrade(LockId lock) override;
  Effects deliver(const proto::Message& message) override;
  bool holds(LockId lock) const override;
  std::size_t queued_requests() const override;
  std::size_t tokens_held() const override;

  std::vector<LockId> recovery_locks() override;
  recovery::LockReport report(LockId lock) override;
  Effects install_fence(LockId lock,
                        const proto::EpochFence& fence) override;
  std::uint32_t recovery_epoch(LockId lock) override;
  void set_default_origin(NodeId root, std::uint32_t epoch) override;

  /// Direct access for invariant checks and tests; creates the automaton
  /// if this node has not touched the lock yet.
  core::HierAutomaton& automaton(LockId lock);

 private:
  const NodeId self_;
  /// Root/epoch of lazily created automatons; rebased by
  /// set_default_origin() after a crash recovery.
  NodeId initial_root_;
  std::uint32_t initial_epoch_ = 0;
  const core::HierConfig config_;
  std::unordered_map<LockId, core::HierAutomaton> automatons_;
};

/// Engine running the Naimi-Tréhel baseline (single exclusive mode).
class NaimiEngine final : public LockEngine {
 public:
  NaimiEngine(NodeId self, NodeId initial_root);

  Effects request(LockId lock, LockMode mode,
                  std::uint8_t priority = 0) override;
  Effects release(LockId lock) override;
  Effects upgrade(LockId lock) override;
  Effects deliver(const proto::Message& message) override;
  bool holds(LockId lock) const override;
  std::size_t queued_requests() const override;
  std::size_t tokens_held() const override;

  std::vector<LockId> recovery_locks() override;
  recovery::LockReport report(LockId lock) override;
  Effects install_fence(LockId lock,
                        const proto::EpochFence& fence) override;
  std::uint32_t recovery_epoch(LockId lock) override;
  void set_default_origin(NodeId root, std::uint32_t epoch) override;

  /// Direct access for invariant checks and tests.
  naimi::NaimiAutomaton& automaton(LockId lock);

 private:
  const NodeId self_;
  /// Root/epoch of lazily created automatons; rebased by
  /// set_default_origin() after a crash recovery.
  NodeId initial_root_;
  std::uint32_t initial_epoch_ = 0;
  std::unordered_map<LockId, naimi::NaimiAutomaton> automatons_;
};

/// Engine running Raymond's static-tree baseline on a balanced binary
/// tree rooted at node 0 (the initial token holder of every lock).
class RaymondEngine final : public LockEngine {
 public:
  RaymondEngine(NodeId self, std::size_t node_count);

  Effects request(LockId lock, LockMode mode,
                  std::uint8_t priority = 0) override;
  Effects release(LockId lock) override;
  Effects upgrade(LockId lock) override;
  Effects deliver(const proto::Message& message) override;
  bool holds(LockId lock) const override;
  std::size_t queued_requests() const override;
  std::size_t tokens_held() const override;

  /// Direct access for invariant checks and tests.
  raymond::RaymondAutomaton& automaton(LockId lock);

 private:
  const NodeId self_;
  raymond::TreeNode position_;  // this node's place in the static tree
  std::unordered_map<LockId, raymond::RaymondAutomaton> automatons_;
};

}  // namespace hlock::runtime
