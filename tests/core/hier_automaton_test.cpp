// Rule-level unit tests of HierAutomaton beyond the paper-figure scenarios:
// API contracts, Rule 2 local decisions, queue drains, freeze lifecycle and
// copyset maintenance edge cases.
#include "core/hier_automaton.hpp"

#include <gtest/gtest.h>

#include "core/mode_tables.hpp"
#include "tests/core/test_net.hpp"
#include "util/check.hpp"

namespace hlock::test {
namespace {

using hlock::UsageError;
using proto::HierGrant;
using proto::HierRelease;
using proto::HierRequest;
using proto::Message;
using proto::ModeSet;
constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kU = LockMode::kU;
constexpr LockMode kIW = LockMode::kIW;
constexpr LockMode kW = LockMode::kW;
constexpr std::size_t A = 0, B = 1, C = 2, D = 3;

bool copyset_contains(const HierAutomaton& node, NodeId child) {
  for (const core::CopysetEntry& entry : node.copyset()) {
    if (entry.node == child) return true;
  }
  return false;
}

// ---- Construction ----------------------------------------------------------

TEST(Construction, TokenNodeHasNoParent) {
  HierAutomaton token{NodeId{0}, LockId{0}, true, NodeId::none()};
  EXPECT_TRUE(token.is_token());
  EXPECT_TRUE(token.parent().is_none());
  EXPECT_EQ(token.held(), kNL);
  EXPECT_EQ(token.owned(), kNL);
  EXPECT_EQ(token.pending(), kNL);
}

TEST(Construction, TokenWithParentRejected) {
  EXPECT_THROW(HierAutomaton(NodeId{0}, LockId{0}, true, NodeId{1}),
               UsageError);
}

TEST(Construction, NonTokenNeedsRealParent) {
  EXPECT_THROW(HierAutomaton(NodeId{1}, LockId{0}, false, NodeId::none()),
               UsageError);
  EXPECT_THROW(HierAutomaton(NodeId{1}, LockId{0}, false, NodeId{1}),
               UsageError);
}

// ---- API preconditions -----------------------------------------------------

TEST(ApiContract, CannotRequestEmptyMode) {
  HierNet net{2};
  EXPECT_THROW(net.node(A).request(kNL), UsageError);
}

TEST(ApiContract, CannotRequestWhileHolding) {
  HierNet net{2};
  net.request(A, kR);
  EXPECT_THROW(net.node(A).request(kR), UsageError);
}

TEST(ApiContract, CannotRequestWhilePending) {
  HierNet net{2};
  net.request(A, kW);
  net.request(B, kW);  // queued at A
  EXPECT_THROW(net.node(B).request(kIR), UsageError);
}

TEST(ApiContract, CannotReleaseWithoutHolding) {
  HierNet net{2};
  EXPECT_THROW(net.node(A).release(), UsageError);
}

TEST(ApiContract, UpgradeRequiresU) {
  HierNet net{2};
  net.request(A, kR);
  EXPECT_THROW(net.node(A).upgrade(), UsageError);
}

TEST(ApiContract, CannotReleaseDuringUpgrade) {
  HierNet net{3};
  net.request(B, kIR);
  net.settle();
  net.request(A, kU);
  net.settle();
  net.upgrade(A);
  EXPECT_TRUE(net.node(A).upgrading());
  EXPECT_THROW(net.node(A).release(), UsageError);
}

TEST(ApiContract, MisaddressedMessageRejected) {
  HierNet net{2};
  HierAutomaton& a = net.node(A);
  const Message wrong_node{NodeId{1}, NodeId{1}, LockId{0},
                           HierRequest{NodeId{1}, kR, 0}};
  EXPECT_THROW(a.on_message(wrong_node), UsageError);
  const Message wrong_lock{NodeId{1}, NodeId{0}, LockId{9},
                           HierRequest{NodeId{1}, kR, 0}};
  EXPECT_THROW(a.on_message(wrong_lock), UsageError);
}

// ---- Rule 2: local decisions ----------------------------------------------

TEST(Rule2, TokenSelfGrantsCompatibleModes) {
  HierNet net{2};
  net.request(A, kIR);
  EXPECT_EQ(net.cs_entries(A), 1);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(Rule2, NonTokenSelfGrantsWhenOwnedSuffices) {
  // B holds R as a copyset member, releases, then re-requests IR while its
  // child still owns R -> Rule 2: no message needed.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(A, kR);
  net.request(B, kR);
  net.settle();
  net.request(C, kR);  // granted by B itself
  net.settle();
  net.release(B);
  ASSERT_EQ(net.node(B).owned(), kR);

  const std::uint64_t before = net.total_messages();
  net.request(B, kIR);
  EXPECT_EQ(net.cs_entries(B), 2);
  EXPECT_EQ(net.total_messages(), before) << "Rule 2: entered without messages";
}

TEST(Rule2, NonTokenMustRequestStrongerMode) {
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}};
  HierNet net{parents};
  net.request(A, kR);
  net.request(B, kIR);
  net.settle();
  net.release(B);
  // B's owned mode dropped to NL; the next request needs messages.
  const std::uint64_t before = net.total_messages();
  net.request(B, kIR);
  EXPECT_GT(net.total_messages(), before);
}

TEST(Rule2, IncompatibleOwnedModeForcesRequest) {
  // A node owning IW cannot locally grant itself R (incompatible).
  HierNet net{3};
  net.request(A, kIW);
  EXPECT_EQ(net.node(A).owned(), kIW);
  // Token: but R conflicts with IW -> must queue, not self-grant.
  net.request(B, kR);
  net.settle();
  EXPECT_EQ(net.cs_entries(B), 0);
  EXPECT_EQ(net.node(A).queue().size(), 1u);
}

// ---- Rule 3: grants --------------------------------------------------------

TEST(Rule3, TokenCopyGrantKeepsToken) {
  HierNet net{3};
  net.request(A, kW);
  net.release(A);
  net.request(A, kR);
  net.request(B, kIR);
  net.settle();
  EXPECT_TRUE(net.node(A).is_token());
  EXPECT_EQ(net.node(B).held(), kIR);
}

TEST(Rule3, TokenTransferShipsResidualOwnership) {
  // Token A holds IR and has child C in IR; transfer to B for R must
  // report A's residual owned mode IR so B's copyset aggregates correctly.
  HierNet net{4};
  net.request(A, kIR);
  net.request(C, kIR);
  net.settle();
  net.request(B, kR);
  net.settle();
  EXPECT_TRUE(net.node(B).is_token());
  EXPECT_EQ(net.node(B).owned(), kR);
  ASSERT_EQ(net.node(B).copyset().size(), 1u);
  EXPECT_EQ(net.node(B).copyset()[0].node, NodeId{0});
  EXPECT_EQ(net.node(B).copyset()[0].mode, kIR);
}

TEST(Rule3, TransferToExistingChildRemovesItFromCopyset) {
  // B first becomes A's child in IR, releases (stays linked), re-requests
  // R and receives the token: A must drop B from its copyset or the
  // parent/child relation would become cyclic.
  HierNet net{3};
  net.request(A, kIR);
  net.request(B, kIR);
  net.settle();
  net.release(B);
  net.settle();
  net.request(B, kR);
  net.settle();
  EXPECT_TRUE(net.node(B).is_token());
  EXPECT_EQ(net.node(A).parent(), NodeId{1});
  for (const core::CopysetEntry& entry : net.node(A).copyset()) {
    EXPECT_NE(entry.node, NodeId{1});
  }
  // A is B's child with residual IR (it still holds IR itself).
  ASSERT_EQ(net.node(B).copyset().size(), 1u);
  EXPECT_EQ(net.node(B).copyset()[0].mode, kIR);
}

TEST(Rule3, WHolderIsAlwaysTheTokenNode) {
  HierNet net{4};
  net.request(B, kW);
  net.settle();
  EXPECT_TRUE(net.node(B).is_token());
  net.release(B);
  net.request(C, kW);
  net.settle();
  EXPECT_TRUE(net.node(C).is_token());
  EXPECT_EQ(net.node(C).held(), kW);
}

TEST(Rule3, UHolderIsAlwaysTheTokenNode) {
  HierNet net{4};
  net.request(B, kU);
  net.settle();
  EXPECT_TRUE(net.node(B).is_token());
  EXPECT_EQ(net.node(B).held(), kU);
}

// ---- Rule 4: queue drains --------------------------------------------------

TEST(Rule4, DrainForwardsWhatItCannotGrant) {
  // D queues (C,W) behind its own pending W (Table 1(c) row W); when D's
  // request resolves, the queued W cannot be granted by D (non-token nodes
  // never grant W) and must be forwarded.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{3},
                              NodeId{0}};
  HierNet net{parents};
  net.request(A, kR);

  net.request(D, kW);   // D -> A: queued at the token (R vs W conflict)
  net.settle();
  net.request(C, kW);   // C -> D: D has pending W -> queued at D
  net.settle();
  EXPECT_EQ(net.node(D).queue().size(), 1u);

  net.release(A);
  net.settle();
  // D got the token with W; C's forwarded request is now queued at D.
  EXPECT_TRUE(net.node(D).is_token());
  EXPECT_EQ(net.node(D).held(), kW);
  EXPECT_EQ(net.node(D).queue().size(), 1u);
  EXPECT_EQ(net.cs_entries(C), 0);

  net.release(D);
  net.settle();
  EXPECT_EQ(net.node(C).held(), kW);
  EXPECT_EQ(net.cs_entries(C), 1);
}

TEST(Rule4, DrainGrantsWhatItCan) {
  // B queues (C,R) behind its pending R; once B holds R it grants C
  // itself without involving the token.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(A, kIW);
  net.request(B, kR);   // conflicts with IW -> queued at A
  net.settle();
  net.request(C, kR);   // queued at B (pending R, request R)
  net.settle();

  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kR);
  EXPECT_EQ(net.node(C).held(), kR);
  EXPECT_TRUE(copyset_contains(net.node(B), NodeId{2}));
}

TEST(Rule4, TokenQueuesOwnUngrantableRequest) {
  HierNet net{2};
  net.request(B, kW);
  net.settle();
  // A (no longer token) requests W; B queues it; B's own release serves it.
  net.request(A, kW);
  net.settle();
  EXPECT_EQ(net.cs_entries(A), 0);
  EXPECT_EQ(net.node(B).queue().size(), 1u);
  net.release(B);
  net.settle();
  EXPECT_EQ(net.cs_entries(A), 1);
  EXPECT_EQ(net.node(A).held(), kW);
}

// ---- Rule 5: releases ------------------------------------------------------

TEST(Rule5, ReleaseWithRemainingChildrenSendsNothing) {
  HierNet net{3};
  net.request(A, kR);
  net.request(B, kR);
  net.settle();
  // B is a child holding R; A releases but still owns R through B.
  const std::uint64_t before = net.total_messages();
  net.release(A);
  EXPECT_EQ(net.total_messages(), before);
  EXPECT_EQ(net.node(A).owned(), kR);
}

TEST(Rule5, ReleaseAggregatesAcrossGrandchildren) {
  // One release message per copyset level — "one message suffices,
  // irrespective of the number of grandchildren".
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{1}};
  HierNet net{parents};
  net.request(A, kR);
  net.request(B, kR);
  net.settle();
  net.request(C, kR);
  net.request(D, kR);
  net.settle();  // granted by B itself
  net.release(B);

  // C and D release: each notifies B only; B notifies A once, after the
  // second child leaves.
  net.release(C);
  net.settle();
  EXPECT_EQ(net.node(A).owned(), kR);
  const std::uint64_t before = net.total_messages();
  net.release(D);
  net.settle();
  EXPECT_EQ(net.total_messages() - before, 2u)
      << "exactly D->B and B->A release messages";
  EXPECT_EQ(net.node(A).owned(), kR) << "A itself still holds R";
}

TEST(Rule5, WeakeningReleaseUpdatesCopysetMode) {
  // B's owned mode weakens from R to IR (it held R, its child holds IR):
  // the release message carries the new mode and A's copyset reflects it.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(A, kR);
  net.request(B, kR);
  net.settle();
  net.request(C, kIR);  // B grants IR itself (owned R >= IR, compatible)
  net.settle();

  net.release(B);
  net.settle();
  EXPECT_EQ(net.node(B).owned(), kIR);
  ASSERT_EQ(net.node(A).copyset().size(), 1u);
  EXPECT_EQ(net.node(A).copyset()[0].mode, kIR);
}

// ---- Rule 6: freeze lifecycle ---------------------------------------------

TEST(Rule6, FrozenStateClearsOnFullRelease) {
  HierNet net{4};
  net.request(A, kR);
  net.request(B, kR);
  net.settle();
  net.request(C, kW);
  net.settle();
  EXPECT_TRUE(net.node(B).frozen().contains(kR));

  net.release(B);
  net.settle();
  EXPECT_TRUE(net.node(B).frozen().empty())
      << "owned dropped to NL: freeze episode over";
}

TEST(Rule6, FreshChildOfFrozenTokenIsFrozenImmediately) {
  // The token grants IR while R/U are frozen (IW queued); the new child
  // could grant IR to others — but must learn that nothing frozen may pass.
  HierNet net{5};
  net.request(A, kR);
  net.request(B, kIW);  // queued; freeze {R, U}
  net.settle();
  net.request(C, kIR);  // grantable; C becomes a fresh child
  net.settle();
  EXPECT_EQ(net.node(C).held(), kIR);
  // C can only grant IR, and IR is not frozen -> no FREEZE needed for C.
  EXPECT_TRUE(net.node(C).frozen().empty());

  // D requests R through the token: frozen, queued. FIFO: once A and C
  // release, B (IW) must be served before D's R? No — R and IW conflict,
  // but D arrived after B: B first, then D.
  net.request(D, kR);
  net.settle();
  EXPECT_EQ(net.cs_entries(D), 0);
  net.release(A);
  net.settle();
  net.release(C);
  net.settle();
  EXPECT_EQ(net.cs_entries(B), 1) << "IW served first (FIFO)";
  EXPECT_EQ(net.cs_entries(D), 0);
  net.release(B);
  net.settle();
  EXPECT_EQ(net.cs_entries(D), 1);
}

TEST(Rule6, DisabledFreezingAllowsBypass) {
  core::HierConfig config;
  config.freezing = false;
  HierNet net{4, config};
  net.request(A, kR);
  net.request(B, kW);  // queued, but nothing is frozen
  net.settle();
  net.request(C, kR);  // bypasses the queued W
  net.settle();
  EXPECT_EQ(net.cs_entries(C), 1) << "without Rule 6 the R request bypasses";
}

// ---- Multi-lock independence ----------------------------------------------

TEST(MultiLock, AutomatonsArePerLock) {
  HierAutomaton lock_a{NodeId{0}, LockId{1}, true, NodeId::none()};
  const Message foreign{NodeId{1}, NodeId{0}, LockId{2},
                        HierRequest{NodeId{1}, kR, 0}};
  EXPECT_THROW(lock_a.on_message(foreign), UsageError);
}

// ---- Introspection ---------------------------------------------------------

TEST(Describe, MentionsKeyState) {
  HierNet net{2};
  net.request(A, kR);
  const std::string s = net.node(A).describe();
  EXPECT_NE(s.find("tok=1"), std::string::npos);
  EXPECT_NE(s.find("held=R"), std::string::npos);
}

}  // namespace
}  // namespace hlock::test
