#include "telemetry/sampler.hpp"

#include <cstdio>
#include <utility>

#include "telemetry/exposition.hpp"
#include "util/log.hpp"

namespace hlock::telemetry {

Sampler::Sampler(Registry& registry, SamplerOptions options)
    : registry_(registry), options_(std::move(options)) {}

Sampler::~Sampler() { stop(); }

void Sampler::add_sink(std::function<void(const Snapshot&)> sink) {
  sinks_.push_back(std::move(sink));
}

void Sampler::start() {
  {
    MutexLock lock(mutex_);
    if (running_) {
      return;
    }
    running_ = true;
    stopping_ = false;
  }
  thread_ = sched::Thread("telemetry-sampler", [this] { run(); });
}

void Sampler::stop() {
  {
    MutexLock lock(mutex_);
    if (!running_) {
      return;
    }
    stopping_ = true;
    wake_cv_.notify_all();
  }
  thread_.join();
  {
    MutexLock lock(mutex_);
    running_ = false;
  }
  // Final tick after the join: exports the true end state, and runs on the
  // caller so sinks see it even when the interval never elapsed.
  tick();
}

void Sampler::run() {
  for (;;) {
    {
      MutexLock lock(mutex_);
      const auto deadline =
          std::chrono::steady_clock::now() + options_.interval;
      while (!stopping_) {
        if (wake_cv_.wait_until(mutex_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) {
        return;
      }
    }
    tick();
  }
}

void Sampler::tick() {
  Snapshot snapshot = registry_.snapshot();
  for (const auto& sink : sinks_) {
    sink(snapshot);
  }
  export_file(snapshot);
  MutexLock lock(mutex_);
  ++ticks_;
  latest_ = std::move(snapshot);
}

void Sampler::export_file(const Snapshot& snapshot) {
  if (options_.out_path.empty()) {
    return;
  }
  if (!write_file_atomic(options_.out_path, render_prometheus(snapshot))) {
    HLOCK_LOG(kWarn,
              "telemetry: failed to write metrics file " << options_.out_path);
  }
}

Snapshot Sampler::latest() const {
  MutexLock lock(mutex_);
  return latest_;
}

std::uint64_t Sampler::tick_count() const {
  MutexLock lock(mutex_);
  return ticks_;
}

bool write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const bool wrote =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace hlock::telemetry
