#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace hlock {
namespace {

double mean_of_samples(const DurationDist& dist, Rng& rng, int n) {
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(dist.sample(rng).count_ns());
  }
  return sum / n;
}

TEST(DurationDist, DefaultIsZero) {
  DurationDist dist;
  Rng rng{1};
  EXPECT_EQ(dist.sample(rng), SimTime::ns(0));
  EXPECT_EQ(dist.mean(), SimTime::ns(0));
}

TEST(DurationDist, ConstantAlwaysMean) {
  DurationDist dist = DurationDist::constant(SimTime::ms(15));
  Rng rng{1};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dist.sample(rng), SimTime::ms(15));
  }
}

TEST(DurationDist, UniformStaysWithinSpread) {
  DurationDist dist = DurationDist::uniform(SimTime::ms(100), 0.5);
  Rng rng{2};
  for (int i = 0; i < 10000; ++i) {
    const SimTime v = dist.sample(rng);
    ASSERT_GE(v, SimTime::ms(50));
    ASSERT_LE(v, SimTime::ms(150));
  }
}

TEST(DurationDist, UniformMeanConverges) {
  DurationDist dist = DurationDist::uniform(SimTime::ms(100), 0.5);
  Rng rng{3};
  EXPECT_NEAR(mean_of_samples(dist, rng, 50000), 100e6, 1e6);
}

TEST(DurationDist, UniformZeroSpreadIsConstant) {
  DurationDist dist = DurationDist::uniform(SimTime::ms(10), 0.0);
  Rng rng{4};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(rng), SimTime::ms(10));
}

TEST(DurationDist, ExponentialMeanConverges) {
  DurationDist dist = DurationDist::exponential(SimTime::ms(20));
  Rng rng{5};
  EXPECT_NEAR(mean_of_samples(dist, rng, 200000), 20e6, 0.5e6);
}

TEST(DurationDist, ExponentialNeverNegative) {
  DurationDist dist = DurationDist::exponential(SimTime::us(1));
  Rng rng{6};
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(dist.sample(rng).count_ns(), 0);
  }
}

TEST(DurationDist, LogNormalMeanConverges) {
  DurationDist dist = DurationDist::lognormal(SimTime::ms(30), 0.5);
  Rng rng{7};
  // Log-normal sample means converge slowly; 3% tolerance at 200k draws.
  EXPECT_NEAR(mean_of_samples(dist, rng, 200000), 30e6, 1e6);
}

TEST(DurationDist, RejectsNegativeMean) {
  EXPECT_THROW(DurationDist(DistKind::kUniform, SimTime::ms(-1), 0.5),
               UsageError);
}

TEST(DurationDist, RejectsNegativeSpread) {
  EXPECT_THROW(DurationDist(DistKind::kUniform, SimTime::ms(1), -0.1),
               UsageError);
}

TEST(DurationDist, DescribeNamesKindAndMean) {
  EXPECT_EQ(DurationDist::uniform(SimTime::ms(15), 0.5).describe(),
            "uniform(mean=15.000 ms, spread=0.5)");
  EXPECT_EQ(DurationDist::constant(SimTime::us(2)).describe(),
            "constant(mean=2.000 us)");
}

TEST(DistKind, Names) {
  EXPECT_EQ(to_string(DistKind::kConstant), "constant");
  EXPECT_EQ(to_string(DistKind::kUniform), "uniform");
  EXPECT_EQ(to_string(DistKind::kExponential), "exponential");
  EXPECT_EQ(to_string(DistKind::kLogNormal), "lognormal");
}

TEST(DurationDist, SameSeedSameSamples) {
  DurationDist dist = DurationDist::exponential(SimTime::ms(5));
  Rng a{11};
  Rng b{11};
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(dist.sample(a), dist.sample(b));
  }
}

}  // namespace
}  // namespace hlock
