// Integration tests of the threaded runtime: real threads, real message
// races, blocking client API. Mutual exclusion is validated the classic
// way — a shared plain counter that only stays consistent if the protocol
// serializes writers.
#include "runtime/thread_cluster.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace hlock::runtime {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

ThreadClusterOptions options_for(Protocol protocol, std::size_t n) {
  ThreadClusterOptions options;
  options.node_count = n;
  options.protocol = protocol;
  options.seed = 42;
  return options;
}

TEST(ThreadCluster, DestructorWakesAndDrainsBlockedClients) {
  // Regression: teardown used to flip the stop flag without the node
  // mutexes and notify only after joining, so a client between its
  // predicate check and its wait could sleep forever — and a woken client
  // could race the destructor freeing node state.
  for (int round = 0; round < 10; ++round) {
    auto cluster = std::make_unique<ThreadCluster>(
        options_for(Protocol::kHierarchical, 2));
    cluster->lock(NodeId{0}, LockId{0}, LockMode::kW);
    std::atomic<bool> entered{false};
    // Raw pointer: the client must not touch the unique_ptr itself, which
    // the main thread concurrently reset()s.
    ThreadCluster* raw = cluster.get();
    std::thread blocked([&entered, raw] {
      entered = true;
      // Blocks forever: node 0 never releases. Only teardown can wake it.
      raw->lock(NodeId{1}, LockId{0}, LockMode::kW);
    });
    while (!entered) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    cluster.reset();  // must wake the blocked client, then drain it
    blocked.join();
  }
}

TEST(ThreadCluster, SingleNodeLockUnlock) {
  ThreadCluster cluster{options_for(Protocol::kHierarchical, 1)};
  cluster.lock(NodeId{0}, LockId{0}, LockMode::kW);
  EXPECT_TRUE(cluster.holds(NodeId{0}, LockId{0}));
  cluster.unlock(NodeId{0}, LockId{0});
  EXPECT_FALSE(cluster.holds(NodeId{0}, LockId{0}));
  EXPECT_EQ(cluster.messages_sent(), 0u);
}

TEST(ThreadCluster, ExclusiveCounterUnderContention) {
  constexpr std::size_t kNodes = 6;
  constexpr int kIncrementsPerNode = 40;
  ThreadCluster cluster{options_for(Protocol::kHierarchical, kNodes)};
  const LockId lock{0};

  // Deliberately NOT atomic: the lock must provide the exclusion.
  long counter = 0;

  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    workers.emplace_back([&cluster, &counter, i, lock] {
      for (int k = 0; k < kIncrementsPerNode; ++k) {
        cluster.lock(NodeId{i}, lock, LockMode::kW);
        const long snapshot = counter;
        std::this_thread::yield();
        counter = snapshot + 1;
        cluster.unlock(NodeId{i}, lock);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(counter, static_cast<long>(kNodes) * kIncrementsPerNode);
}

TEST(ThreadCluster, EventSinkInstalledAndSwappedDuringTraffic) {
  // Regression: set_event_sink() used to write the sink slot unguarded
  // while receiver threads read it inside apply(), so installing or
  // swapping a sink with operations in flight was a data race (TSan) and a
  // capability-analysis error once the slot was annotated. Now the slot is
  // guarded by the same mutex that serializes sink calls, making mid-run
  // installs legal — which this test does continuously.
  constexpr std::size_t kNodes = 4;
  constexpr int kOpsPerNode = 30;
  ThreadClusterOptions options = options_for(Protocol::kHierarchical, kNodes);
  options.hier_config.trace_events = true;
  ThreadCluster cluster{options};
  const LockId lock{0};

  std::atomic<std::uint64_t> sunk{0};
  std::atomic<bool> done{false};
  std::thread installer([&cluster, &sunk, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      cluster.set_event_sink(
          [&sunk](const trace::TraceEvent&) { sunk.fetch_add(1); });
      std::this_thread::yield();
      cluster.set_event_sink(nullptr);  // and uninstall mid-traffic too
      std::this_thread::yield();
    }
    // Leave a sink installed for the tail of the run.
    cluster.set_event_sink(
        [&sunk](const trace::TraceEvent&) { sunk.fetch_add(1); });
  });

  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    workers.emplace_back([&cluster, i, lock] {
      for (int k = 0; k < kOpsPerNode; ++k) {
        cluster.lock(NodeId{i}, lock, LockMode::kW);
        cluster.unlock(NodeId{i}, lock);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  done = true;
  installer.join();

  // How many events land is a race by design; that nothing tore or leaked
  // is the assertion (TSan/ASan enforce it), plus basic liveness:
  EXPECT_EQ(cluster.receiver_errors(), 0u);
}

TEST(ThreadCluster, ReadersOverlapWritersExclude) {
  constexpr std::size_t kNodes = 5;
  ThreadCluster cluster{options_for(Protocol::kHierarchical, kNodes)};
  const LockId lock{0};

  std::atomic<int> readers_inside{0};
  std::atomic<int> writers_inside{0};
  std::atomic<int> max_readers{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    workers.emplace_back([&, i] {
      for (int k = 0; k < 30; ++k) {
        const bool writer = (k % 10) == static_cast<int>(i % 10);
        const LockMode mode = writer ? LockMode::kW : LockMode::kR;
        cluster.lock(NodeId{i}, lock, mode);
        if (writer) {
          if (readers_inside.load() != 0 ||
              writers_inside.fetch_add(1) != 0) {
            violation = true;
          }
          std::this_thread::yield();
          writers_inside.fetch_sub(1);
        } else {
          if (writers_inside.load() != 0) violation = true;
          const int now = readers_inside.fetch_add(1) + 1;
          int expected = max_readers.load();
          while (now > expected &&
                 !max_readers.compare_exchange_weak(expected, now)) {
          }
          std::this_thread::yield();
          readers_inside.fetch_sub(1);
        }
        cluster.unlock(NodeId{i}, lock);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_FALSE(violation.load()) << "readers and writers overlapped";
  EXPECT_GT(max_readers.load(), 1) << "readers never actually overlapped";
}

TEST(ThreadCluster, UpgradePreservesReadToWriteAtomicity) {
  ThreadCluster cluster{options_for(Protocol::kHierarchical, 3)};
  const LockId lock{0};
  long value = 100;

  // Node 1 performs a read-modify-write under U->W; node 2 tries to write
  // in between — it must not interleave.
  std::thread upgrader([&] {
    cluster.lock(NodeId{1}, lock, LockMode::kU);
    const long read = value;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    cluster.upgrade(NodeId{1}, lock);
    value = read + 1;
    cluster.unlock(NodeId{1}, lock);
  });
  std::thread writer([&] {
    cluster.lock(NodeId{2}, lock, LockMode::kW);
    value += 1000;
    cluster.unlock(NodeId{2}, lock);
  });
  upgrader.join();
  writer.join();
  EXPECT_EQ(value, 1101) << "the upgrade lost an update";
}

TEST(ThreadCluster, NaimiCounterUnderContention) {
  constexpr std::size_t kNodes = 4;
  ThreadCluster cluster{options_for(Protocol::kNaimi, kNodes)};
  const LockId lock{0};
  long counter = 0;
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    workers.emplace_back([&cluster, &counter, i, lock] {
      for (int k = 0; k < 50; ++k) {
        cluster.lock(NodeId{i}, lock, LockMode::kW);
        const long snapshot = counter;
        std::this_thread::yield();
        counter = snapshot + 1;
        cluster.unlock(NodeId{i}, lock);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(counter, static_cast<long>(kNodes) * 50);
}

TEST(ThreadCluster, ManyLocksInParallel) {
  constexpr std::size_t kNodes = 4;
  ThreadCluster cluster{options_for(Protocol::kHierarchical, kNodes)};
  std::vector<std::thread> workers;
  std::vector<long> counters(8, 0);
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    workers.emplace_back([&cluster, &counters, i] {
      for (int k = 0; k < 40; ++k) {
        const LockId lock{(static_cast<std::uint32_t>(k) + i) % 8};
        cluster.lock(NodeId{i}, lock, LockMode::kW);
        ++counters[lock.value()];
        cluster.unlock(NodeId{i}, lock);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  long total = 0;
  for (long c : counters) total += c;
  EXPECT_EQ(total, static_cast<long>(kNodes) * 40);
}

TEST(ThreadCluster, DefaultsToShardedEnginesAndHonorsOverrides) {
  ThreadCluster defaulted{options_for(Protocol::kHierarchical, 2)};
  EXPECT_EQ(defaulted.engine_shards(), kDefaultEngineShards);

  ThreadClusterOptions legacy = options_for(Protocol::kHierarchical, 2);
  legacy.engine_shards = 1;
  EXPECT_EQ(ThreadCluster{legacy}.engine_shards(), 1u);

  ThreadClusterOptions wide = options_for(Protocol::kHierarchical, 2);
  wide.engine_shards = 3;
  EXPECT_EQ(ThreadCluster{wide}.engine_shards(), 3u);
}

/// Shard-correctness workload: many locks striped across shards, every
/// counter protected only by its lock. Run for each shard count so the
/// single-shard legacy path and the sharded path prove the same exclusion.
void run_sharded_counters(std::size_t engine_shards, bool batching) {
  constexpr std::size_t kNodes = 4;
  constexpr int kOpsPerNode = 25;
  constexpr std::uint32_t kLocks = 16;  // spans shard indices 0..7 twice
  ThreadClusterOptions options = options_for(Protocol::kHierarchical, kNodes);
  options.engine_shards = engine_shards;
  options.batching = batching;
  ThreadCluster cluster{options};

  std::vector<long> counters(kLocks, 0);  // each guarded by its lock alone
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    workers.emplace_back([&cluster, &counters, i] {
      for (int k = 0; k < kOpsPerNode; ++k) {
        const LockId lock{(static_cast<std::uint32_t>(k) * 5 + i) % kLocks};
        cluster.lock(NodeId{i}, lock, LockMode::kW);
        const long snapshot = counters[lock.value()];
        std::this_thread::yield();
        counters[lock.value()] = snapshot + 1;
        cluster.unlock(NodeId{i}, lock);
      }
    });
  }
  for (std::thread& t : workers) t.join();
  long total = 0;
  for (long c : counters) total += c;
  EXPECT_EQ(total, static_cast<long>(kNodes) * kOpsPerNode)
      << "lost increments with engine_shards=" << engine_shards
      << " batching=" << batching;
  EXPECT_EQ(cluster.receiver_errors(), 0u);
}

TEST(ThreadCluster, ShardedEnginesPreserveExclusionAcrossManyLocks) {
  run_sharded_counters(/*engine_shards=*/8, /*batching=*/true);
}

TEST(ThreadCluster, SingleShardLegacyModeStillCorrect) {
  run_sharded_counters(/*engine_shards=*/1, /*batching=*/true);
}

TEST(ThreadCluster, BatchingOffStillCorrect) {
  run_sharded_counters(/*engine_shards=*/8, /*batching=*/false);
}

TEST(ThreadCluster, OddShardCountStillRoutesEveryLock) {
  // 16 locks modulo 5 shards exercises uneven routing (shards 0 holds 4
  // locks, the rest 3) including wraparound.
  run_sharded_counters(/*engine_shards=*/5, /*batching=*/true);
}

TEST(ThreadCluster, CountsEncodedWireBytes) {
  ThreadCluster cluster{options_for(Protocol::kHierarchical, 2)};
  cluster.lock(NodeId{1}, LockId{0}, LockMode::kW);
  cluster.unlock(NodeId{1}, LockId{0});
  EXPECT_GT(cluster.messages_sent(), 0u);
  // Every message is >= the 34-byte codec minimum once encoded.
  EXPECT_GE(cluster.bytes_sent(), cluster.messages_sent() * 34u);

  ThreadClusterOptions raw = options_for(Protocol::kHierarchical, 2);
  raw.codec_roundtrip = false;  // nothing encodes, so nothing counts
  ThreadCluster raw_cluster{raw};
  raw_cluster.lock(NodeId{1}, LockId{0}, LockMode::kW);
  raw_cluster.unlock(NodeId{1}, LockId{0});
  EXPECT_EQ(raw_cluster.bytes_sent(), 0u);
}

TEST(ThreadCluster, WithInjectedLatency) {
  ThreadClusterOptions options = options_for(Protocol::kHierarchical, 3);
  options.message_latency = DurationDist::uniform(SimTime::us(200), 0.5);
  ThreadCluster cluster{options};
  long counter = 0;
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < 3; ++i) {
    workers.emplace_back([&cluster, &counter, i] {
      for (int k = 0; k < 10; ++k) {
        cluster.lock(NodeId{i}, LockId{0}, LockMode::kW);
        counter += 1;
        cluster.unlock(NodeId{i}, LockId{0});
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(counter, 30);
}

}  // namespace
}  // namespace hlock::runtime
