// hlock_check — run the exhaustive model checker from the command line.
//
// Explores every interleaving of a small scripted scenario and reports the
// state count, or the violation with its action trace. With --lint (hier
// only) every first-visit terminal path is additionally checked against the
// paper's Tables 1(a)-(d) by the conformance linter, and a counterexample's
// structured event trace is dumped and re-linted post hoc. Scenarios:
//
//   hlock_check --protocol hier --scenario mixed --nodes 3
//   hlock_check --protocol raymond --scenario exclusive --nodes 5
//   hlock_check --protocol hier --scenario upgrade --lint
#include <cstdio>

#include "lint/checker.hpp"
#include "modelcheck/explorer.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"
#include "trace/event.hpp"
#include "trace/recorder.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace hlock;
using modelcheck::ExploreOptions;
using modelcheck::ExploreResult;
using modelcheck::Script;
using modelcheck::ScriptOp;
using proto::LockMode;

namespace {

std::vector<Script> build_scripts(const std::string& scenario,
                                  std::size_t nodes) {
  const Script exclusive{ScriptOp::acquire(LockMode::kW),
                         ScriptOp::release()};
  if (scenario == "exclusive") {
    return std::vector<Script>(nodes, exclusive);
  }
  if (scenario == "mixed") {
    std::vector<Script> scripts;
    const LockMode modes[] = {LockMode::kIR, LockMode::kR, LockMode::kW,
                              LockMode::kIW, LockMode::kU};
    for (std::size_t i = 0; i < nodes; ++i) {
      scripts.push_back({ScriptOp::acquire(modes[i % 5]),
                         ScriptOp::release()});
    }
    return scripts;
  }
  if (scenario == "upgrade") {
    std::vector<Script> scripts(nodes, {ScriptOp::acquire(LockMode::kIR),
                                        ScriptOp::release()});
    scripts[0] = {ScriptOp::acquire(LockMode::kU), ScriptOp::upgrade(),
                  ScriptOp::release()};
    return scripts;
  }
  if (scenario == "repeat") {
    return std::vector<Script>(
        nodes, {ScriptOp::acquire(LockMode::kR), ScriptOp::release(),
                ScriptOp::acquire(LockMode::kW), ScriptOp::release()});
  }
  throw UsageError("unknown scenario: " + scenario +
                   " (exclusive | mixed | upgrade | repeat)");
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"hlock_check",
                "exhaustively model-check a scripted lock scenario"};
  cli.add_option("protocol", "hier", "hier | naimi | raymond");
  cli.add_option("scenario", "mixed",
                 "exclusive | mixed | upgrade | repeat");
  cli.add_option("nodes", "3", "number of nodes (1-8; state spaces grow "
                               "factorially)");
  cli.add_option("max-states", "5000000", "exploration budget");
  cli.add_flag("lint",
               "conformance-lint every terminal path against the paper's "
               "spec tables (hier only)");
  cli.add_option("obs-out", "",
                 "on a violation, export the counterexample's event trace "
                 "as a flight record (plus Chrome trace JSON) under this "
                 "directory");

  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return 0;
    }
    const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 1, 8));
    const auto budget = static_cast<std::uint64_t>(
        cli.get_int("max-states", 1, 1'000'000'000));
    const std::string protocol = cli.get_string("protocol");
    const auto scripts = build_scripts(cli.get_string("scenario"), nodes);

    const bool lint = cli.get_flag("lint");
    if (lint && protocol != "hier") {
      throw UsageError("--lint applies to --protocol hier only");
    }
    ExploreResult result;
    if (protocol == "hier") {
      ExploreOptions options;
      options.max_states = budget;
      options.lint = lint;
      result = modelcheck::explore(scripts, options);
    } else if (protocol == "naimi") {
      result = modelcheck::explore_naimi(scripts, budget);
    } else if (protocol == "raymond") {
      result = modelcheck::explore_raymond(scripts, budget);
    } else {
      throw UsageError("unknown protocol: " + protocol);
    }

    std::printf("states explored : %llu\n",
                static_cast<unsigned long long>(result.states_explored));
    std::printf("transitions     : %llu\n",
                static_cast<unsigned long long>(result.transitions));
    std::printf("terminal states : %llu\n",
                static_cast<unsigned long long>(result.terminal_states));
    if (result.ok) {
      std::printf("verdict         : OK — every interleaving is safe, "
                  "live and convergent%s\n",
                  lint ? " (and every linted path conforms to the spec "
                         "tables)"
                       : "");
      return 0;
    }
    std::printf("verdict         : VIOLATION — %s\ntrace:\n",
                result.violation.c_str());
    for (const std::string& line : result.trace) {
      std::printf("  %s\n", line.c_str());
    }
    if (!result.events.empty()) {
      // Post-hoc conformance lint of the counterexample: the structured
      // events pinpoint which rule/table broke, with event context.
      std::printf("counterexample events:\n");
      for (const trace::TraceEvent& event : result.events) {
        std::printf("  %s\n", trace::format_event(event).c_str());
      }
      // Defaults of LintOptions mirror the default HierConfig this tool
      // explores with; only the initial token holder needs pinning.
      lint::LintOptions lint_options;
      lint_options.initial_token = proto::NodeId{0};
      const lint::LintReport report =
          lint::check(result.events, lint_options);
      std::fputs(report.render().c_str(), stdout);
    }
    const std::string obs_out = cli.get_string("obs-out");
    if (!obs_out.empty() && !result.events.empty()) {
      // Ship the counterexample as a flight record: the rendered ring plus
      // spans/Chrome trace make the violating interleaving replayable in a
      // trace viewer instead of a wall of event lines.
      trace::TraceRecorder ring;
      obs::SpanCollector collector;
      for (const trace::TraceEvent& event : result.events) {
        collector.observe(event);
        ring.record(event);
      }
      obs::FlightRecordSources sources;
      sources.recorder = &ring;
      sources.spans = &collector;
      sources.node_count = nodes;
      const std::string record = obs::dump_flight_record(
          obs_out, "model-check violation: " + result.violation, sources);
      if (!record.empty()) {
        std::printf("flight record   : %s\n", record.c_str());
      }
    }
    return 1;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }
}
