#include "trace/recorder.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace hlock::trace {

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  HLOCK_REQUIRE(capacity > 0, "trace capacity must be positive");
}

void TraceRecorder::push(TraceEvent event) {
  ++total_;
  events_.push_back(std::move(event));
  if (events_.size() > capacity_) events_.pop_front();
}

void TraceRecorder::record(TraceEvent event) { push(std::move(event)); }

void TraceRecorder::record(SimTime at, TraceEvent event) {
  event.at = at;
  push(std::move(event));
}

void TraceRecorder::record_message(SimTime at, const proto::Message& message) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kMessage;
  event.node = message.from;
  event.peer = message.to;
  event.lock = message.lock;
  event.detail = to_string(message);
  push(std::move(event));
}

void TraceRecorder::record_enter_cs(SimTime at, proto::NodeId node,
                                    const std::string& detail) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kEnterCs;
  event.node = node;
  event.detail = detail;
  push(std::move(event));
}

void TraceRecorder::record_exit_cs(SimTime at, proto::NodeId node) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kExitCs;
  event.node = node;
  push(std::move(event));
}

void TraceRecorder::record_upgrade(SimTime at, proto::NodeId node) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kUpgraded;
  event.node = node;
  push(std::move(event));
}

void TraceRecorder::note(SimTime at, proto::NodeId node,
                         const std::string& text) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kNote;
  event.node = node;
  event.detail = text;
  push(std::move(event));
}

void TraceRecorder::clear() {
  events_.clear();
  total_ = 0;
}

std::string TraceRecorder::render(proto::NodeId node_filter) const {
  std::ostringstream os;
  if (truncated()) {
    os << "... (" << total_ - events_.size() << " earlier events dropped)\n";
  }
  for (const TraceEvent& event : events_) {
    if (!node_filter.is_none() && event.node != node_filter &&
        event.peer != node_filter) {
      continue;
    }
    char head[64];
    std::snprintf(head, sizeof head, "%12s  %-7s ",
                  to_string(event.at).c_str(),
                  to_string(event.node).c_str());
    os << head << to_string(event) << '\n';
  }
  return os.str();
}

std::vector<std::size_t> TraceRecorder::histogram() const {
  std::vector<std::size_t> counts(kEventKindCount, 0);
  for (const TraceEvent& event : events_) {
    ++counts[static_cast<std::size_t>(event.kind)];
  }
  return counts;
}

}  // namespace hlock::trace
