// Annotated concurrency primitives for compile-time lock-discipline checks.
//
// The threaded runtime's implementation safety rests on lock discipline
// across four transports and the cluster harness — exactly the layer where
// chaos testing keeps finding shutdown/send races. TSan only catches races
// an interleaving happens to hit; Clang's Thread Safety Analysis proves the
// discipline at compile time. This header wraps std::mutex and
// std::condition_variable in capability-annotated types so every guarded
// field can declare its lock (`HLOCK_GUARDED_BY`) and every lock-requiring
// method its contract (`HLOCK_REQUIRES`), with `-Wthread-safety
// -Wthread-safety-beta` enforcing them on Clang builds (promoted to errors
// under HLOCK_WERROR). On GCC every annotation degrades to a no-op, so the
// primary toolchain builds identically. See docs/static-analysis.md for
// conventions and the escape-hatch policy.
// Runtime observability: every operation additionally reports to the
// process-global sched::SyncObserver when one is installed (lockdep
// lock-order recording, deterministic schedule exploration — src/sched/,
// docs/sched.md). Uninstalled cost is a single relaxed atomic load per
// operation, so the hot path (docs/performance.md) is unchanged.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <source_location>

#include "util/sync_observer.hpp"

// ---------------------------------------------------------------------------
// Attribute macros (Clang Thread Safety Analysis; no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && !defined(SWIG)
#define HLOCK_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define HLOCK_TS_ATTRIBUTE(x)  // no-op on GCC and other compilers
#endif

/// Marks a type as a capability (lockable). Argument names the capability
/// kind in diagnostics ("mutex").
#define HLOCK_CAPABILITY(x) HLOCK_TS_ATTRIBUTE(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define HLOCK_SCOPED_CAPABILITY HLOCK_TS_ATTRIBUTE(scoped_lockable)

/// Declares that a field may only be read or written while holding `x`.
#define HLOCK_GUARDED_BY(x) HLOCK_TS_ATTRIBUTE(guarded_by(x))

/// Declares that the data a pointer/smart-pointer field points to may only
/// be touched while holding `x` (the pointer itself needs HLOCK_GUARDED_BY).
#define HLOCK_PT_GUARDED_BY(x) HLOCK_TS_ATTRIBUTE(pt_guarded_by(x))

/// Declares that the caller must hold the listed capabilities (and keeps
/// holding them; the function neither acquires nor releases).
#define HLOCK_REQUIRES(...) \
  HLOCK_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Declares that a function acquires the listed capabilities.
#define HLOCK_ACQUIRE(...) \
  HLOCK_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Declares that a function releases the listed capabilities.
#define HLOCK_RELEASE(...) \
  HLOCK_TS_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Declares a try-acquire: returns `val` on success.
#define HLOCK_TRY_ACQUIRE(...) \
  HLOCK_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Declares that the caller must NOT hold the listed capabilities
/// (non-reentrancy / deadlock documentation).
#define HLOCK_EXCLUDES(...) HLOCK_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Tells the analysis a capability is held (runtime-checked elsewhere).
#define HLOCK_ASSERT_CAPABILITY(x) \
  HLOCK_TS_ATTRIBUTE(assert_capability(x))

/// Declares that a function returns a reference to the capability guarding
/// its result.
#define HLOCK_RETURN_CAPABILITY(x) HLOCK_TS_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Policy
/// (docs/static-analysis.md): every use carries a comment saying WHY the
/// analysis cannot see the invariant that makes the code safe; it is never
/// an alternative to fixing a genuine discipline violation.
#define HLOCK_NO_THREAD_SAFETY_ANALYSIS \
  HLOCK_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace hlock {

/// A std::mutex the analysis can reason about. Prefer the RAII guards
/// below; bare lock()/unlock() are for the rare staircase pattern only.
class HLOCK_CAPABILITY("mutex") Mutex {
 public:
  /// `name` (optional) names the lock in lockdep / explorer reports;
  /// without one the construction site identifies it. The site of a
  /// default-initialized member resolves to its enclosing class, which is
  /// exactly the lockdep notion of a lock *class*: all instances of
  /// Shard::mutex share one identity, so an ordering learned on one shard
  /// covers them all.
  explicit Mutex(
      const char* name = nullptr,
      std::source_location site = std::source_location::current())
      : id_{this, site.file_name(), site.line(), name} {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() HLOCK_ACQUIRE() {
    sched::SyncObserver* obs = sched::sync_observer();
    if (obs == nullptr) [[likely]] {
      mu_.lock();
      return;
    }
    obs->acquiring(id_);
    if (!obs->acquire(id_, mu_)) mu_.lock();
    obs->acquired(id_);
  }

  void unlock() HLOCK_RELEASE() {
    mu_.unlock();
    if (sched::SyncObserver* obs = sched::sync_observer();
        obs != nullptr) [[unlikely]] {
      obs->released(id_);
    }
  }

  bool try_lock() HLOCK_TRY_ACQUIRE(true) {
    sched::SyncObserver* obs = sched::sync_observer();
    if (obs == nullptr) [[likely]] return mu_.try_lock();
    const bool ok = obs->try_acquire(id_, mu_);
    if (ok) obs->acquired(id_);
    return ok;
  }

  /// The wrapped mutex, for CondVar's wait plumbing only.
  std::mutex& native() { return mu_; }

  /// This lock's identity in observer reports.
  const sched::SyncId& id() const { return id_; }

 private:
  std::mutex mu_;
  const sched::SyncId id_;
};

/// RAII lock: acquires in the constructor, releases in the destructor.
class HLOCK_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) HLOCK_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() HLOCK_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock that can be released before scope exit (and stays released).
/// For the pattern "compute under the lock, then act outside it".
class HLOCK_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex& mu) HLOCK_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~ReleasableMutexLock() HLOCK_RELEASE() {
    if (held_) mu_.unlock();
  }

  /// Releases the mutex early; the destructor then does nothing.
  void Release() HLOCK_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// A condition variable usable with Mutex. Waits are annotated
/// HLOCK_REQUIRES(mu): the caller holds `mu` across the call (the internal
/// unlock/relock is invisible to — and irrelevant for — the analysis).
/// Write waits as explicit predicate loops so the predicate's guarded reads
/// are checked in the calling function:
///
///   MutexLock lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
class CondVar {
 public:
  /// Site/name identity, as for Mutex.
  explicit CondVar(
      const char* name = nullptr,
      std::source_location site = std::source_location::current())
      : id_{this, site.file_name(), site.line(), name} {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() {
    cv_.notify_one();
    if (sched::SyncObserver* obs = sched::sync_observer();
        obs != nullptr) [[unlikely]] {
      obs->notify(id_, /*all=*/false);
    }
  }
  void notify_all() {
    cv_.notify_all();
    if (sched::SyncObserver* obs = sched::sync_observer();
        obs != nullptr) [[unlikely]] {
      obs->notify(id_, /*all=*/true);
    }
  }

  /// Blocks until notified (spurious wake-ups possible, loop on the
  /// predicate). Caller holds `mu`.
  void wait(Mutex& mu) HLOCK_REQUIRES(mu) {
    if (sched::SyncObserver* obs = sched::sync_observer();
        obs != nullptr) [[unlikely]] {
      if (obs->wait(id_, mu.id(), mu.native())) return;
    }
    std::unique_lock<std::mutex> inner(mu.native(), std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  /// Blocks until notified or `deadline`; std::cv_status::timeout if the
  /// deadline passed. Caller holds `mu`.
  std::cv_status wait_until(Mutex& mu,
                            std::chrono::steady_clock::time_point deadline)
      HLOCK_REQUIRES(mu) {
    if (sched::SyncObserver* obs = sched::sync_observer();
        obs != nullptr) [[unlikely]] {
      std::cv_status status = std::cv_status::no_timeout;
      if (obs->wait_until(id_, mu.id(), mu.native(), deadline, &status)) {
        return status;
      }
    }
    std::unique_lock<std::mutex> inner(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(inner, deadline);
    inner.release();
    return status;
  }

  /// Blocks until notified or `timeout` elapsed. Caller holds `mu`.
  std::cv_status wait_for(Mutex& mu, std::chrono::nanoseconds timeout)
      HLOCK_REQUIRES(mu) {
    return wait_until(mu, std::chrono::steady_clock::now() + timeout);
  }

 private:
  std::condition_variable cv_;
  const sched::SyncId id_;
};

}  // namespace hlock
