#include "stats/metrics.hpp"

#include <sstream>

namespace hlock::stats {

std::string to_string(const TransportCounterSnapshot& snapshot) {
  std::ostringstream os;
  os << "faults{drops=" << snapshot.drops << " delays=" << snapshot.delays
     << " dups=" << snapshot.duplicates << " reorders=" << snapshot.reorders
     << " partition_drops=" << snapshot.partition_drops << "} healing{"
     << "retransmits=" << snapshot.retransmits
     << " dup_discards=" << snapshot.duplicates_discarded
     << " resequenced=" << snapshot.resequenced << "} tcp{"
     << "send_retries=" << snapshot.send_retries
     << " reconnects=" << snapshot.reconnects
     << " send_failures=" << snapshot.send_failures
     << " misaddressed=" << snapshot.misaddressed_frames << "}";
  return os.str();
}

TransportCounterSnapshot TransportCounters::snapshot() const {
  TransportCounterSnapshot out;
#define HLOCK_TC_LOAD(name, desc) \
  out.name = name.load(std::memory_order_relaxed);
  HLOCK_TRANSPORT_COUNTER_FIELDS(HLOCK_TC_LOAD)
#undef HLOCK_TC_LOAD
  return out;
}

void MessageCounter::add(proto::MessageKind kind) {
  counts_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t MessageCounter::count(proto::MessageKind kind) const {
  return counts_[static_cast<std::size_t>(kind)].load(
      std::memory_order_relaxed);
}

std::uint64_t MessageCounter::total() const {
  std::uint64_t sum = 0;
  for (const std::atomic<std::uint64_t>& c : counts_) {
    sum += c.load(std::memory_order_relaxed);
  }
  return sum;
}

void LatencyRecorder::record(SimTime latency) {
  samples_ms_.push_back(latency.to_ms());
}

double MetricsRegistry::messages_per_request() const {
  if (latency_.count() == 0) return 0.0;
  return static_cast<double>(messages_.total()) /
         static_cast<double>(latency_.count());
}

}  // namespace hlock::stats
