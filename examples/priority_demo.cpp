// Prioritized locking (the extension of the paper's refs [15, 16]):
// an urgent administrative write overtakes a backlog of ordinary writers
// while never preempting the current holder.
//
// Build & run:  ./build/examples/priority_demo
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/thread_cluster.hpp"

using hlock::proto::LockId;
using hlock::proto::LockMode;
using hlock::proto::NodeId;

int main() {
  hlock::runtime::ThreadClusterOptions options;
  options.node_count = 6;
  hlock::runtime::ThreadCluster cluster{options};
  const LockId ledger{0};

  std::mutex io;
  std::vector<std::string> order;

  // Node 0 holds the ledger while the others pile up behind it.
  cluster.lock(NodeId{0}, ledger, LockMode::kW);
  std::printf("node0 holds W; queueing 4 ordinary writers and 1 urgent "
              "writer...\n");

  std::vector<std::thread> writers;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    writers.emplace_back([&, i] {
      cluster.lock(NodeId{i}, ledger, LockMode::kW);  // priority 0
      {
        std::lock_guard<std::mutex> guard(io);
        order.push_back("ordinary node" + std::to_string(i));
      }
      cluster.unlock(NodeId{i}, ledger);
    });
    // Stagger so the queue order is deterministic.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::thread urgent([&] {
    cluster.lock(NodeId{5}, ledger, LockMode::kW, /*priority=*/10);
    {
      std::lock_guard<std::mutex> guard(io);
      order.push_back("URGENT node5");
    }
    cluster.unlock(NodeId{5}, ledger);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  std::printf("releasing the holder...\n");
  cluster.unlock(NodeId{0}, ledger);
  for (std::thread& t : writers) t.join();
  urgent.join();

  std::printf("grant order:\n");
  for (const std::string& entry : order) {
    std::printf("  %s\n", entry.c_str());
  }
  std::printf("(the urgent writer overtook every queued ordinary writer "
              "but not the holder)\n");
  return 0;
}
