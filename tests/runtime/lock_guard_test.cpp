// Tests of the RAII guards over the threaded cluster API.
#include "runtime/lock_guard.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/check.hpp"

namespace hlock::runtime {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

ThreadClusterOptions two_nodes() {
  ThreadClusterOptions options;
  options.node_count = 2;
  return options;
}

TEST(LockGuard, AcquiresAndReleasesInScope) {
  ThreadCluster cluster{two_nodes()};
  {
    LockGuard guard{cluster, NodeId{0}, LockId{0}, LockMode::kR};
    EXPECT_TRUE(cluster.holds(NodeId{0}, LockId{0}));
    EXPECT_EQ(guard.mode(), LockMode::kR);
  }
  EXPECT_FALSE(cluster.holds(NodeId{0}, LockId{0}));
}

TEST(LockGuard, EarlyReleaseIsIdempotent) {
  ThreadCluster cluster{two_nodes()};
  LockGuard guard{cluster, NodeId{0}, LockId{0}, LockMode::kW};
  guard.release();
  EXPECT_FALSE(cluster.holds(NodeId{0}, LockId{0}));
  guard.release();  // no-op; destructor later is also a no-op
}

TEST(LockGuard, MoveTransfersOwnership) {
  ThreadCluster cluster{two_nodes()};
  LockGuard outer = [&] {
    LockGuard inner{cluster, NodeId{1}, LockId{0}, LockMode::kIR};
    return inner;
  }();
  EXPECT_TRUE(cluster.holds(NodeId{1}, LockId{0}));
  outer.release();
  EXPECT_FALSE(cluster.holds(NodeId{1}, LockId{0}));
}

TEST(LockGuard, UpgradeFlow) {
  ThreadCluster cluster{two_nodes()};
  LockGuard guard{cluster, NodeId{0}, LockId{0}, LockMode::kU};
  guard.upgrade();
  EXPECT_EQ(guard.mode(), LockMode::kW);
  // A second upgrade is a contract violation (no longer holding U).
  EXPECT_THROW(guard.upgrade(), UsageError);
}

TEST(LockGuard, UpgradeRequiresU) {
  ThreadCluster cluster{two_nodes()};
  LockGuard guard{cluster, NodeId{0}, LockId{0}, LockMode::kR};
  EXPECT_THROW(guard.upgrade(), UsageError);
}

TEST(HierGuard, IntentMapping) {
  EXPECT_EQ(HierGuard::intent_for(LockMode::kR), LockMode::kIR);
  EXPECT_EQ(HierGuard::intent_for(LockMode::kIR), LockMode::kIR);
  EXPECT_EQ(HierGuard::intent_for(LockMode::kW), LockMode::kIW);
  EXPECT_EQ(HierGuard::intent_for(LockMode::kU), LockMode::kIW);
  EXPECT_EQ(HierGuard::intent_for(LockMode::kIW), LockMode::kIW);
  EXPECT_THROW(HierGuard::intent_for(LockMode::kNL), UsageError);
}

TEST(HierGuard, AcquiresBothLevels) {
  ThreadCluster cluster{two_nodes()};
  const LockId table{0};
  const LockId entry{1};
  {
    HierGuard guard{cluster, NodeId{0}, table, entry, LockMode::kW};
    EXPECT_TRUE(cluster.holds(NodeId{0}, table));
    EXPECT_TRUE(cluster.holds(NodeId{0}, entry));
  }
  EXPECT_FALSE(cluster.holds(NodeId{0}, table));
  EXPECT_FALSE(cluster.holds(NodeId{0}, entry));
}

TEST(HierGuard, ConcurrentEntryWritersShareTheTableIntent) {
  ThreadClusterOptions options;
  options.node_count = 3;
  ThreadCluster cluster{options};
  const LockId table{0};

  // Writers to DIFFERENT entries must proceed concurrently thanks to the
  // IW/IW compatibility of the table intent.
  std::thread t1([&] {
    HierGuard guard{cluster, NodeId{1}, table, LockId{1}, LockMode::kW};
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  std::thread t2([&] {
    HierGuard guard{cluster, NodeId{2}, table, LockId{2}, LockMode::kW};
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  t1.join();
  t2.join();
}

TEST(HierGuard, UpgradeAtTheFineLevel) {
  ThreadCluster cluster{two_nodes()};
  HierGuard guard{cluster, NodeId{0}, LockId{0}, LockId{1}, LockMode::kU};
  guard.upgrade();
  EXPECT_TRUE(cluster.holds(NodeId{0}, LockId{1}));
  guard.release();
  EXPECT_FALSE(cluster.holds(NodeId{0}, LockId{0}));
}

}  // namespace
}  // namespace hlock::runtime
