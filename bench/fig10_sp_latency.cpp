// Figure 10 — Absolute Request Latency (paper §4.2).
//
// Mean request latency of the hierarchical protocol on the IBM SP testbed
// model, per non-critical:critical ratio (1, 5, 10, 25; CS fixed at 15 ms),
// as the node count grows to 120.
//
// Paper shape to reproduce: after an initial superlinear (queueing-
// dominated) region, every curve grows linearly; lower ratios (higher
// concurrency) sit far above higher ratios and bend earlier; the ratio-25
// curve stays in single-digit milliseconds across small node counts.
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"

using namespace hlock;
using bench::ExperimentConfig;
using bench::ExperimentResult;

int main() {
  const auto preset = sim::ibm_sp_preset();
  const int ratios[] = {1, 5, 10, 25};

  stats::TextTable table;
  table.set_header(
      {"nodes", "ratio=1", "ratio=5", "ratio=10", "ratio=25"});

  std::printf("Fig. 10 — mean request latency (ms) vs. number of nodes, per "
              "non-critical:critical ratio\n");
  std::printf("testbed: %s, latency %s, CS 15 ms, idle = ratio x 15 ms\n\n",
              preset.name.c_str(),
              preset.message_latency.describe().c_str());

  for (std::size_t nodes : {2u, 5u, 10u, 20u, 30u, 40u, 60u, 80u, 100u,
                            120u}) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (int ratio : ratios) {
      ExperimentConfig config;
      config.nodes = nodes;
      config.net_latency = preset.message_latency;
      config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
      config.idle_time =
          DurationDist::uniform(SimTime::ms(15L * ratio), 0.5);
      config.ops_per_node = 40;
      config.seed = 29 + nodes + static_cast<std::uint64_t>(ratio);
      const ExperimentResult result = bench::run_averaged(config, 2);
      row.push_back(stats::TextTable::num(result.mean_request_latency_ms, 2));
    }
    table.add_row(std::move(row));
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
