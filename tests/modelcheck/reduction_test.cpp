// State-space reduction tests: partial-order reduction, symmetry
// canonicalization, liveness lassos and counterexample minimization.
//
// The load-bearing assertions are CROSS-VALIDATIONS: the same scripted
// configuration explored unreduced and under every reduction combination
// must agree on the verdict and on the violation fingerprint (the
// exploration-order-independent descriptor of WHAT was violated —
// counterexample paths may legitimately differ). The reductions are only
// allowed to make exploration cheaper, never to change an answer.
#include "modelcheck/explorer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "modelcheck/symmetry.hpp"

namespace hlock::modelcheck {
namespace {

using proto::LockMode;

Script contender() {
  // Re-acquisition under contention; the docs/modelcheck.md reference
  // script (token keeps circulating, so interleavings explode).
  return {ScriptOp::acquire(LockMode::kU), ScriptOp::release(),
          ScriptOp::acquire(LockMode::kIR)};
}

Script upgrader() {
  return {ScriptOp::acquire(LockMode::kU), ScriptOp::upgrade(),
          ScriptOp::release()};
}

Script simple(LockMode mode) {
  return {ScriptOp::acquire(mode), ScriptOp::release()};
}

ExploreResult run(const std::vector<Script>& scripts, bool por, bool sym,
                  bool liveness = false, bool minimize = false,
                  DoctoredSpec doctor = {}) {
  ExploreOptions options;
  options.por = por;
  options.symmetry = sym;
  options.liveness = liveness;
  options.minimize = minimize;
  options.doctor = doctor;
  return explore(scripts, options);
}

// Every reduction combination must reproduce the unreduced verdict and
// violation fingerprint. Returns the unreduced result for further checks.
ExploreResult cross_validate(const std::vector<Script>& scripts,
                             DoctoredSpec doctor = {}) {
  const ExploreResult base = run(scripts, false, false, false, false, doctor);
  const struct {
    bool por, sym, minimize;
    const char* name;
  } combos[] = {
      {true, false, false, "por"},
      {false, true, false, "symmetry"},
      {true, true, false, "por+symmetry"},
      {false, false, true, "minimize"},
      {true, true, true, "por+symmetry+minimize"},
  };
  for (const auto& combo : combos) {
    const ExploreResult reduced =
        run(scripts, combo.por, combo.sym, false, combo.minimize, doctor);
    EXPECT_EQ(base.verdict, reduced.verdict) << combo.name;
    EXPECT_EQ(base.violation_fingerprint, reduced.violation_fingerprint)
        << combo.name;
    EXPECT_LE(reduced.states_explored, base.states_explored) << combo.name;
  }
  return base;
}

TEST(Reduction, CleanConfigurationsCrossValidate) {
  const ExploreResult a = cross_validate({contender(), contender(),
                                          contender()});
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.verdict, Verdict::kOk);
  const ExploreResult b = cross_validate({upgrader(), upgrader(),
                                          upgrader()});
  EXPECT_TRUE(b.ok);
  const ExploreResult c = cross_validate({simple(LockMode::kW),
                                          simple(LockMode::kR),
                                          simple(LockMode::kR)});
  EXPECT_TRUE(c.ok);
}

TEST(Reduction, SeededViolationCrossValidates) {
  DoctoredSpec doctor;
  doctor.conflicts.push_back({LockMode::kR, LockMode::kIR});
  const ExploreResult base = cross_validate(
      {simple(LockMode::kR), simple(LockMode::kIR)}, doctor);
  EXPECT_FALSE(base.ok);
  EXPECT_EQ(base.verdict, Verdict::kSafety);
  EXPECT_EQ(base.violation_fingerprint, "incompatible:IR+R");
}

// The headline acceptance criterion: on the reference configuration
// (3 nodes, 3-op scripts), POR + symmetry shrink the explored state count
// by at least 5x while returning the identical verdict. Exploration is
// deterministic, so these are exact, reproducible counts.
TEST(Reduction, ReferenceConfigShrinksFiveFold) {
  const std::vector<Script> scripts{contender(), contender(), contender()};
  const ExploreResult base = run(scripts, false, false);
  const ExploreResult reduced = run(scripts, true, true);
  ASSERT_TRUE(base.ok);
  ASSERT_TRUE(reduced.ok);
  EXPECT_GE(base.states_explored, 5 * reduced.states_explored)
      << "base=" << base.states_explored
      << " reduced=" << reduced.states_explored;
  EXPECT_GT(reduced.stats.por_reduced_states, 0u);
  EXPECT_EQ(reduced.stats.symmetry_permutations, 6u);  // 3 identical = 3!
}

TEST(Reduction, PorAloneAndSymmetryAloneBothReduce) {
  const std::vector<Script> scripts{contender(), contender(), contender()};
  const ExploreResult base = run(scripts, false, false);
  const ExploreResult por = run(scripts, true, false);
  const ExploreResult sym = run(scripts, false, true);
  EXPECT_LT(por.states_explored, base.states_explored);
  EXPECT_LT(sym.states_explored, base.states_explored);
  EXPECT_GT(por.stats.por_pruned_actions, 0u);
}

TEST(Reduction, SymmetryRequiresIdenticalScripts) {
  // Distinct scripts leave only the identity permutation: symmetry must
  // quietly do nothing (equal state count, equal verdict).
  const std::vector<Script> scripts{simple(LockMode::kW),
                                    simple(LockMode::kR),
                                    simple(LockMode::kU)};
  const ExploreResult base = run(scripts, false, false);
  const ExploreResult sym = run(scripts, false, true);
  EXPECT_EQ(base.states_explored, sym.states_explored);
  EXPECT_EQ(sym.stats.symmetry_permutations, 1u);
}

TEST(Reduction, MixedScriptsUsePartialSymmetry) {
  // Two interchangeable contenders + one distinct reader: group size 2.
  // (The odd one out must also end in an IR-compatible mode, or the
  // configuration would genuinely deadlock on its terminal hold.)
  const Script reader{ScriptOp::acquire(LockMode::kR), ScriptOp::release(),
                      ScriptOp::acquire(LockMode::kIR)};
  const std::vector<Script> scripts{reader, contender(), contender()};
  const ExploreResult sym = run(scripts, false, true);
  EXPECT_EQ(sym.stats.symmetry_permutations, 2u);
  EXPECT_TRUE(sym.ok);
}

TEST(Minimize, BfsCounterexampleIsNoLongerThanDfs) {
  DoctoredSpec doctor;
  doctor.conflicts.push_back({LockMode::kR, LockMode::kIR});
  const std::vector<Script> scripts{simple(LockMode::kR),
                                    simple(LockMode::kIR)};
  const ExploreResult dfs = run(scripts, false, false, false, false, doctor);
  const ExploreResult bfs = run(scripts, false, false, false, true, doctor);
  ASSERT_EQ(dfs.verdict, Verdict::kSafety);
  ASSERT_EQ(bfs.verdict, Verdict::kSafety);
  EXPECT_LE(bfs.trace.size(), dfs.trace.size());
  // Hand-checkable minimum: deliver R-request, grant, deliver IR-request,
  // grant — both held, doctored conflict fires. 4 actions.
  EXPECT_EQ(bfs.trace.size(), 4u);
  // The counterexample replays into structured events for lint/obs.
  EXPECT_FALSE(bfs.events.empty());
}

TEST(Liveness, SeededStarvationYieldsALasso) {
  DoctoredSpec doctor;
  doctor.bounce = proto::NodeId{1};  // node 1's requests orbit forever
  const std::vector<Script> scripts{simple(LockMode::kW),
                                    simple(LockMode::kW)};
  const ExploreResult result =
      run(scripts, false, false, true, false, doctor);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, Verdict::kStarvation);
  EXPECT_EQ(result.violation_fingerprint, "starvation:node1");
  // Lasso shape: non-empty repeating cycle at the tail of the trace.
  EXPECT_GE(result.lasso_cycle_length, 1u);
  EXPECT_GE(result.trace.size(), result.lasso_cycle_length);
}

TEST(Liveness, StarvationSurvivesPartialOrderReduction) {
  DoctoredSpec doctor;
  doctor.bounce = proto::NodeId{1};
  const std::vector<Script> scripts{simple(LockMode::kW),
                                    simple(LockMode::kW)};
  const ExploreResult reduced =
      run(scripts, true, false, true, false, doctor);
  EXPECT_EQ(reduced.verdict, Verdict::kStarvation);
  EXPECT_EQ(reduced.violation_fingerprint, "starvation:node1");
}

TEST(Liveness, CleanProtocolHasNoFalseLasso) {
  // The real protocol is starvation-free on finite scripts: every
  // explored cycle must make someone progress.
  const std::vector<Script> scripts{upgrader(), simple(LockMode::kIR),
                                    simple(LockMode::kR)};
  const ExploreResult plain = run(scripts, false, false, true);
  EXPECT_TRUE(plain.ok) << plain.violation;
  const ExploreResult reduced = run(scripts, true, false, true);
  EXPECT_TRUE(reduced.ok) << reduced.violation;
}

TEST(StateLimit, AbortReportsDistinctVerdict) {
  ExploreOptions options;
  options.max_states = 25;
  const ExploreResult result = explore(
      {simple(LockMode::kW), simple(LockMode::kW), simple(LockMode::kW)},
      options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, Verdict::kStateLimit);
  EXPECT_EQ(result.violation_fingerprint, "statelimit");
  EXPECT_GT(result.states_explored, 25u);
}

TEST(SymmetryGroup, EnumeratesScriptPreservingPermutations) {
  // Three identical scripts: the full S3 (node 0 participates — its
  // initial token is relabeled state, not an identity pin).
  const SymmetryGroup s3 = SymmetryGroup::from_classes({0, 0, 0});
  EXPECT_EQ(s3.perms().size(), 6u);
  EXPECT_FALSE(s3.trivial());
  // Orbit {1, 2} only.
  const SymmetryGroup s2 = SymmetryGroup::from_classes({0, 1, 1});
  EXPECT_EQ(s2.perms().size(), 2u);
  // All distinct: identity only.
  const SymmetryGroup id = SymmetryGroup::from_classes({0, 1, 2});
  EXPECT_TRUE(id.trivial());
  EXPECT_FALSE(id.truncated());
  // Element 0 is the identity in every group.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(s3.perms()[0][i], i);
  }
}

TEST(SymmetryGroup, TruncationFallsBackToIdentity) {
  const SymmetryGroup group =
      SymmetryGroup::from_classes({0, 0, 0, 0}, /*max_perms=*/5);
  EXPECT_TRUE(group.trivial());
  EXPECT_TRUE(group.truncated());
}

TEST(SymmetryGroup, RemapMessagePermutesEveryEmbeddedId) {
  proto::Message m;
  m.from = proto::NodeId{0};
  m.to = proto::NodeId{1};
  m.request.origin = proto::NodeId{2};
  proto::HierRequest request;
  request.requester = proto::NodeId{2};
  m.payload = request;
  const std::vector<std::uint32_t> swap{1, 0, 2};
  const proto::Message out = remap_message(m, swap);
  EXPECT_EQ(out.from.value(), 1u);
  EXPECT_EQ(out.to.value(), 0u);
  EXPECT_EQ(out.request.origin.value(), 2u);
  EXPECT_EQ(std::get<proto::HierRequest>(out.payload).requester.value(), 2u);
}

}  // namespace
}  // namespace hlock::modelcheck
