#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hlock {
namespace {

TEST(Check, InvariantPassesSilently) {
  EXPECT_NO_THROW(HLOCK_INVARIANT(1 + 1 == 2, "math works"));
}

TEST(Check, InvariantThrowsWithContext) {
  try {
    HLOCK_INVARIANT(false, "token lost");
    FAIL() << "expected InvariantError";
  } catch (const InvariantError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("token lost"), std::string::npos);
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(Check, RequirePassesSilently) {
  EXPECT_NO_THROW(HLOCK_REQUIRE(true, "ok"));
}

TEST(Check, RequireThrowsUsageError) {
  try {
    HLOCK_REQUIRE(2 < 1, "bad argument");
    FAIL() << "expected UsageError";
  } catch (const UsageError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("bad argument"), std::string::npos);
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
  }
}

TEST(Check, ErrorsAreDistinctTypes) {
  EXPECT_THROW(HLOCK_INVARIANT(false, ""), std::logic_error);
  EXPECT_THROW(HLOCK_REQUIRE(false, ""), std::invalid_argument);
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto bump = [&] {
    ++calls;
    return true;
  };
  HLOCK_INVARIANT(bump(), "");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace hlock
