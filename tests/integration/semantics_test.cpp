// Semantic end-to-end properties: the two-level locking convention, the
// empirical O(log n)-ish message complexity both token protocols claim,
// and determinism guarantees at the full-harness level.
#include <gtest/gtest.h>

#include "runtime/lock_guard.hpp"
#include "runtime/sim_cluster.hpp"
#include "runtime/thread_cluster.hpp"
#include "workload/sim_driver.hpp"

#include <thread>

namespace hlock {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

TEST(TwoLevelSemantics, TableWriterExcludesEntryWriters) {
  // The CORBA-style convention the airline app uses: entry access takes
  // table-intent + entry lock, whole-table access takes table-real. A
  // table W must therefore exclude every concurrent entry writer even
  // though the entry locks themselves never conflict.
  runtime::ThreadClusterOptions options;
  options.node_count = 3;
  runtime::ThreadCluster cluster{options};
  const LockId table{0};
  const LockId entry{1};

  long cells_written_under_snapshot = 0;
  std::atomic<bool> table_locked{false};

  std::thread writer([&] {
    for (int i = 0; i < 20; ++i) {
      runtime::HierGuard guard{cluster, NodeId{1}, table, entry,
                               LockMode::kW};
      if (table_locked.load()) ++cells_written_under_snapshot;
    }
  });
  std::thread snapshotter([&] {
    for (int i = 0; i < 10; ++i) {
      runtime::LockGuard guard{cluster, NodeId{2}, table, LockMode::kW};
      table_locked.store(true);
      std::this_thread::yield();
      table_locked.store(false);
    }
  });
  writer.join();
  snapshotter.join();
  EXPECT_EQ(cells_written_under_snapshot, 0)
      << "an entry write overlapped a whole-table write";
}

TEST(TwoLevelSemantics, EntryWritersOnDistinctEntriesOverlap) {
  // The concurrency the hierarchy buys: IW/IW table intents are
  // compatible, so disjoint entry writers proceed in parallel. Proven by
  // latency: serialized writers would need >= 2x the single-writer time.
  SimClusterOptions options;
  options.node_count = 3;
  options.protocol = Protocol::kHierarchical;
  options.message_latency = DurationDist::constant(SimTime::ms(1));
  SimCluster cluster{options};
  sim::Simulator& sim = cluster.simulator();

  int granted = 0;
  cluster.set_grant_handler(
      [&granted](NodeId, LockId, bool) { ++granted; });
  // Both nodes acquire (table IW, own entry W) concurrently.
  cluster.request(NodeId{1}, LockId{0}, LockMode::kIW);
  cluster.request(NodeId{2}, LockId{0}, LockMode::kIW);
  sim.run_to_completion();
  cluster.request(NodeId{1}, LockId{1}, LockMode::kW);
  cluster.request(NodeId{2}, LockId{2}, LockMode::kW);
  sim.run_to_completion();
  EXPECT_EQ(granted, 4) << "all four acquisitions granted without waiting "
                           "on each other";
}

TEST(MessageComplexity, TokenProtocolsGrowSublinearly) {
  // Empirical check of the O(log n) claim shared by Naimi and the paper:
  // 8x the nodes must cost far less than 8x the messages per request.
  auto msgs_per_acq = [](Protocol protocol, workload::AppVariant variant,
                         std::size_t nodes) {
    SimClusterOptions options;
    options.node_count = nodes;
    options.protocol = protocol;
    options.message_latency = DurationDist::uniform(SimTime::ms(1), 0.5);
    options.seed = 47;
    SimCluster cluster{options};
    workload::WorkloadSpec spec;
    spec.variant = variant;
    spec.node_count = nodes;
    spec.ops_per_node = 40;
    spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
    spec.idle_time = DurationDist::uniform(SimTime::ms(10), 0.5);
    spec.seed = 47;
    workload::SimWorkloadDriver driver{cluster, spec};
    driver.run();
    return static_cast<double>(cluster.metrics().messages().total()) /
           static_cast<double>(driver.stats().acquisitions);
  };

  const double naimi_growth =
      msgs_per_acq(Protocol::kNaimi, workload::AppVariant::kNaimiPure, 64) /
      msgs_per_acq(Protocol::kNaimi, workload::AppVariant::kNaimiPure, 8);
  EXPECT_LT(naimi_growth, 2.0) << "Naimi no longer O(log n)-ish";

  const double hier_growth =
      msgs_per_acq(Protocol::kHierarchical,
                   workload::AppVariant::kHierarchical, 64) /
      msgs_per_acq(Protocol::kHierarchical,
                   workload::AppVariant::kHierarchical, 8);
  EXPECT_LT(hier_growth, 2.0) << "hierarchical no longer O(log n)-ish";
}

TEST(Determinism, NodeStreamsAreIndependentOfClusterSize) {
  // Split-stream property surfaced at the workload level: node i's first
  // operations draw identically whether the cluster has 4 or 8 nodes
  // (its protocol interactions differ, but its own RNG stream must not).
  workload::WorkloadSpec small;
  small.node_count = 4;
  workload::WorkloadSpec large;
  large.node_count = 8;
  // Compare the mode-mix draws directly through the same split recipe the
  // driver uses.
  Rng root_small{small.seed};
  Rng root_large{large.seed};
  for (std::size_t i = 1; i <= 4; ++i) {
    Rng a = root_small.split(i);
    Rng b = root_large.split(i);
    for (int draw = 0; draw < 32; ++draw) {
      ASSERT_EQ(small.mix.sample(a), large.mix.sample(b))
          << "node " << i << " draw " << draw;
    }
  }
}

TEST(Determinism, DistributionFamiliesPreserveRunDeterminism) {
  // Exponential and lognormal workloads must be exactly repeatable too
  // (they draw different numbers of RNG words per sample).
  for (DistKind kind : {DistKind::kExponential, DistKind::kLogNormal}) {
    auto run = [&] {
      SimClusterOptions options;
      options.node_count = 6;
      options.protocol = Protocol::kHierarchical;
      options.message_latency = DurationDist(kind, SimTime::ms(1), 0.4);
      options.seed = 51;
      SimCluster cluster{options};
      workload::WorkloadSpec spec;
      spec.node_count = 6;
      spec.ops_per_node = 25;
      spec.cs_length = DurationDist(kind, SimTime::ms(1), 0.4);
      spec.idle_time = DurationDist(kind, SimTime::ms(4), 0.4);
      spec.seed = 51;
      workload::SimWorkloadDriver driver{cluster, spec};
      driver.run();
      return std::make_pair(cluster.metrics().messages().total(),
                            cluster.simulator().now().count_ns());
    };
    EXPECT_EQ(run(), run()) << to_string(kind);
  }
}

}  // namespace
}  // namespace hlock
