#include "runtime/sim_cluster.hpp"

#include "util/check.hpp"

namespace hlock::runtime {

SimCluster::SimCluster(const SimClusterOptions& options)
    : options_(options),
      network_(options.message_latency, Rng{options.seed}.split(0xABCDu)),
      loss_rng_(Rng{options.seed}.split(0x105Eu)) {
  HLOCK_REQUIRE(options.node_count >= 1, "a cluster needs at least one node");
  HLOCK_REQUIRE(options.message_loss_probability >= 0.0 &&
                    options.message_loss_probability <= 1.0,
                "loss probability must be within [0, 1]");
  HLOCK_REQUIRE(options.initial_root.value() < options.node_count,
                "the initial root must be one of the cluster's nodes");
  clocks_.resize(options.node_count);
  engines_.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const NodeId self{static_cast<std::uint32_t>(i)};
    if (options.protocol == Protocol::kHierarchical) {
      engines_.push_back(std::make_unique<HierEngine>(
          self, options.initial_root, options.hier_config));
    } else if (options.protocol == Protocol::kRaymond) {
      HLOCK_REQUIRE(options.initial_root == NodeId{0},
                    "the Raymond tree is rooted at node 0");
      engines_.push_back(
          std::make_unique<RaymondEngine>(self, options.node_count));
    } else {
      engines_.push_back(
          std::make_unique<NaimiEngine>(self, options.initial_root));
    }
  }
}

void SimCluster::set_grant_handler(GrantHandler handler) {
  grant_handler_ = std::move(handler);
}

void SimCluster::set_message_observer(MessageObserver observer) {
  message_observer_ = std::move(observer);
}

void SimCluster::set_event_observer(EventObserver observer) {
  event_observer_ = std::move(observer);
}

LockEngine& SimCluster::engine(NodeId node) {
  HLOCK_REQUIRE(node.value() < engines_.size(), "unknown node id");
  return *engines_[node.value()];
}

core::HierAutomaton& SimCluster::hier_automaton(NodeId node, LockId lock) {
  HLOCK_REQUIRE(options_.protocol == Protocol::kHierarchical,
                "cluster does not run the hierarchical protocol");
  return static_cast<HierEngine&>(engine(node)).automaton(lock);
}

naimi::NaimiAutomaton& SimCluster::naimi_automaton(NodeId node, LockId lock) {
  HLOCK_REQUIRE(options_.protocol == Protocol::kNaimi,
                "cluster does not run the Naimi protocol");
  return static_cast<NaimiEngine&>(engine(node)).automaton(lock);
}

raymond::RaymondAutomaton& SimCluster::raymond_automaton(NodeId node,
                                                         LockId lock) {
  HLOCK_REQUIRE(options_.protocol == Protocol::kRaymond,
                "cluster does not run the Raymond protocol");
  return static_cast<RaymondEngine&>(engine(node)).automaton(lock);
}

void SimCluster::request(NodeId node, LockId lock, LockMode mode,
                         std::uint8_t priority) {
  apply(node, lock, engine(node).request(lock, mode, priority));
}

void SimCluster::release(NodeId node, LockId lock) {
  apply(node, lock, engine(node).release(lock));
}

void SimCluster::upgrade(NodeId node, LockId lock) {
  apply(node, lock, engine(node).upgrade(lock));
}

void SimCluster::apply(NodeId node, LockId lock, Effects&& effects) {
  // One Lamport tick per automaton step; every event of the step shares it,
  // every send ticks further (obs/lamport.hpp).
  obs::LamportClock& clock = clocks_[node.value()];
  const std::uint64_t step_time = clock.tick();
  if (event_observer_) {
    for (trace::TraceEvent& event : effects.events) {
      event.at = simulator_.now();
      event.lamport = step_time;
      event_observer_(std::move(event));
    }
  }
  for (proto::Message& message : effects.messages) {
    message.lamport = clock.tick();
    transmit(message);
  }
  if (effects.entered_cs || effects.upgraded) {
    HLOCK_INVARIANT(static_cast<bool>(grant_handler_),
                    "a grant fired but no grant handler is registered");
    grant_handler_(node, lock, effects.upgraded);
  }
}

void SimCluster::transmit(const proto::Message& message) {
  metrics_.messages().add(proto::kind_of(message.payload));
  if (message_observer_) message_observer_(simulator_.now(), message);
  if (options_.message_loss_probability > 0.0 &&
      loss_rng_.chance(options_.message_loss_probability)) {
    return;  // injected loss: the message vanishes after being counted
  }
  const SimTime at =
      network_.delivery_time(simulator_.now(), message.from, message.to);
  simulator_.schedule_at(at, [this, message] {
    clocks_[message.to.value()].observe(message.lamport);
    apply(message.to, message.lock, engine(message.to).deliver(message));
  });
}

}  // namespace hlock::runtime
