// End-to-end tests of the CLI tools as a user runs them: spawn the real
// binaries, capture stdout, assert on the output. Binaries are located
// relative to this test's own path (build/tests/ -> build/tools/).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

/// Runs a command, returns (exit status, stdout+stderr).
std::pair<int, std::string> run_command(const std::string& command) {
  std::array<char, 4096> buffer{};
  std::string output;
  FILE* pipe = ::popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return {-1, ""};
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = ::pclose(pipe);
  return {status, output};
}

std::string tool(const std::string& name) {
  // ctest runs with CWD build/tests; the tools live in build/tools.
  return "../tools/" + name;
}

TEST(HlockSimCli, TextOutputContainsTheMetrics) {
  const auto [status, output] =
      run_command(tool("hlock_sim") + " --nodes 8 --ops 20 --ratio 5");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("messages/request"), std::string::npos);
  EXPECT_NE(output.find("hierarchical, 8 nodes"), std::string::npos);
}

TEST(HlockSimCli, CsvOutputIsParseable) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --protocol naimi-pure --nodes 6 --ops 15 --csv");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("protocol,nodes,ops,msgs_per_request"),
            std::string::npos);
  EXPECT_NE(output.find("naimi-pure,6,90,"), std::string::npos);
}

TEST(HlockSimCli, HistogramFlagPrintsBuckets) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --nodes 6 --ops 20 --histogram 4");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("request latency distribution"), std::string::npos);
  EXPECT_NE(output.find('#'), std::string::npos);
}

TEST(HlockSimCli, ChaosModeReportsMutualExclusionAndFaults) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --chaos --nodes 4 --ops 10 --fault-drop 0.1"
                          " --fault-dup 0.1 --fault-reorder 0.1"
                          " --partition-ms 30 --seed 9");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("mutual exclusion OK"), std::string::npos) << output;
  EXPECT_NE(output.find("faults{"), std::string::npos);
  EXPECT_NE(output.find("healing{"), std::string::npos);
}

TEST(HlockSimCli, ChaosModeRejectsBadTransport) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --chaos --chaos-transport carrier-pigeon");
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("--chaos-transport must be"), std::string::npos);
}

TEST(HlockSimCli, BadArgumentsFailWithHelp) {
  const auto [status, output] =
      run_command(tool("hlock_sim") + " --bogus 1");
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("unknown option"), std::string::npos);
  EXPECT_NE(output.find("--protocol"), std::string::npos) << "help shown";
}

TEST(HlockSimCli, HelpExitsZero) {
  const auto [status, output] = run_command(tool("hlock_sim") + " --help");
  EXPECT_EQ(status, 0);
  EXPECT_NE(output.find("run one hlock experiment"), std::string::npos);
}

TEST(HlockCheckCli, VerifiesAScenario) {
  const auto [status, output] = run_command(
      tool("hlock_check") + " --scenario upgrade --nodes 3");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("verdict         : OK"), std::string::npos);
  EXPECT_NE(output.find("states explored"), std::string::npos);
}

TEST(HlockCheckCli, AllProtocolsWork) {
  for (const char* protocol : {"hier", "naimi", "raymond"}) {
    const auto [status, output] =
        run_command(tool("hlock_check") + " --protocol " + protocol +
                    " --scenario exclusive --nodes 3");
    EXPECT_EQ(status, 0) << protocol << ": " << output;
    EXPECT_NE(output.find("OK"), std::string::npos) << protocol;
  }
}

TEST(HlockTraceCli, PrintsATimeline) {
  const auto [status, output] = run_command(
      tool("hlock_trace") + " --scenario readers-writer --nodes 4");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("enter-cs"), std::string::npos);
  EXPECT_NE(output.find("REQUEST"), std::string::npos);
  EXPECT_NE(output.find("protocol messages"), std::string::npos);
}

TEST(HlockTraceCli, NodeFilterNarrowsTheView) {
  const auto [status, output] = run_command(
      tool("hlock_trace") + " --scenario upgrade --node-filter 2");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("upgraded"), std::string::npos);
}

TEST(HlockSimCli, LintFlagReportsConformance) {
  const auto [status, output] =
      run_command(tool("hlock_sim") + " --nodes 6 --ops 12 --lint");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("events conform to the spec"), std::string::npos);
}

TEST(HlockSimCli, LintRejectsNonHierProtocols) {
  const auto [status, output] =
      run_command(tool("hlock_sim") + " --protocol naimi --lint");
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("hier"), std::string::npos) << output;
}

TEST(HlockSimCli, ChaosLintWithDelayFaultsIsClean) {
  // Delay faults are masked by the protocol's FIFO assumption staying
  // intact, so the lint verdict must be clean; lossy runs are excluded
  // (a dropped grant genuinely breaks the recorded causality).
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --chaos --nodes 4 --ops 8 --fault-delay 0.3"
                          " --fault-delay-us 200 --lint --seed 5");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("mutual exclusion OK"), std::string::npos) << output;
  EXPECT_NE(output.find("events conform to the spec"), std::string::npos)
      << output;
}

TEST(HlockCheckCli, LintedScenarioConforms) {
  const auto [status, output] = run_command(
      tool("hlock_check") + " --scenario mixed --nodes 3 --lint");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("every linted path conforms"), std::string::npos);
}

TEST(HlockCheckCli, ReductionsCrossValidateOnTheReferenceScenario) {
  const auto [status, output] = run_command(
      tool("hlock_check") +
      " --scenario contend --nodes 3 --por --symmetry --cross-validate"
      " --stats");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("cross-validate  : verdicts agree"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("por reduced states"), std::string::npos);
  EXPECT_NE(output.find("symmetry permutations : 6"), std::string::npos);
}

TEST(HlockCheckCli, StateLimitAbortExitsThree) {
  const auto [status, output] = run_command(
      tool("hlock_check") + " --scenario exclusive --nodes 3"
      " --max-states 25");
  EXPECT_EQ(WEXITSTATUS(status), 3) << output;
  EXPECT_NE(output.find("ABORTED"), std::string::npos);
  EXPECT_NE(output.find("state budget"), std::string::npos)
      << "watermark line missing: " << output;
}

TEST(HlockCheckCli, DoctoredConflictIsFoundAndMinimized) {
  const auto [status, output] = run_command(
      tool("hlock_check") +
      " --scenario mixed --nodes 3 --doctor conflict --minimize");
  EXPECT_EQ(WEXITSTATUS(status), 1) << output;
  EXPECT_NE(output.find("VIOLATION (safety)"), std::string::npos) << output;
  EXPECT_NE(output.find("fingerprint     : incompatible:IR+R"),
            std::string::npos)
      << output;
}

TEST(HlockCheckCli, DoctoredStarveYieldsALasso) {
  const auto [status, output] = run_command(
      tool("hlock_check") +
      " --scenario exclusive --nodes 3 --doctor starve --liveness");
  EXPECT_EQ(WEXITSTATUS(status), 1) << output;
  EXPECT_NE(output.find("VIOLATION (starvation)"), std::string::npos)
      << output;
  EXPECT_NE(output.find("cycle (repeats forever)"), std::string::npos)
      << output;
}

TEST(HlockCheckCli, StatsOutWritesParseableJson) {
  const auto [status, output] = run_command(
      tool("hlock_check") +
      " --scenario contend --nodes 3 --por --symmetry"
      " --stats-out check_stats.json && cat check_stats.json");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("\"states_explored\""), std::string::npos);
  EXPECT_NE(output.find("\"symmetry_permutations\": 6"), std::string::npos);
  EXPECT_NE(output.find("\"verdict\": \"ok\""), std::string::npos);
}

TEST(HlockCheckCli, ReductionFlagsAreHierOnly) {
  const auto [status, output] = run_command(
      tool("hlock_check") + " --protocol naimi --scenario exclusive --por");
  EXPECT_EQ(WEXITSTATUS(status), 2) << output;
  EXPECT_NE(output.find("hier only"), std::string::npos);
}

TEST(HlockLintCli, DumpedSimTraceLintsClean) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --nodes 5 --ops 10 --trace-dump sim_cli.trace" +
      " && " + tool("hlock_lint") + " sim_cli.trace");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("trace dump"), std::string::npos);
  EXPECT_NE(output.find("conform to the spec"), std::string::npos);
}

TEST(HlockLintCli, DumpedScenarioTraceLintsClean) {
  const auto [status, output] = run_command(
      tool("hlock_trace") + " --scenario upgrade --dump > upgrade_cli.trace"
      " && " + tool("hlock_lint") + " upgrade_cli.trace");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("conform to the spec"), std::string::npos);
}

TEST(HlockLintCli, FlagsAHandCraftedViolation) {
  // Two incompatible concurrent holds, written straight in wire format.
  const auto [status, output] = run_command(
      "printf '1 enter-cs 1 - 0 R NL 0 . 0 0 |\\n"
      "2 enter-cs 2 - 0 W NL 0 T 0 0 |\\n' > bad_cli.trace && " +
      tool("hlock_lint") + " bad_cli.trace");
  EXPECT_EQ(WEXITSTATUS(status), 1) << output;
  EXPECT_NE(output.find("VIOLATION incompatible-holds"), std::string::npos)
      << output;
}

TEST(HlockLintCli, RejectsMissingAndMalformedTraces) {
  const auto [missing_status, missing_output] =
      run_command(tool("hlock_lint") + " does_not_exist.trace");
  EXPECT_EQ(WEXITSTATUS(missing_status), 2) << missing_output;
  EXPECT_NE(missing_output.find("cannot open"), std::string::npos);

  const auto [bad_status, bad_output] = run_command(
      "echo garbage > malformed_cli.trace && " + tool("hlock_lint") +
      " malformed_cli.trace");
  EXPECT_EQ(WEXITSTATUS(bad_status), 2) << bad_output;
  EXPECT_NE(bad_output.find("malformed event at line 1"), std::string::npos);
}

TEST(HlockSimCli, SpansFlagPrintsThePhaseBreakdown) {
  const auto [status, output] =
      run_command(tool("hlock_sim") + " --nodes 6 --ops 12 --spans");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("phase-latency breakdown"), std::string::npos);
  EXPECT_NE(output.find("acquire (issued->cs-enter)"), std::string::npos);
}

TEST(HlockSimCli, SpansRequireASingleSeed) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --nodes 6 --ops 12 --spans --seeds 3");
  EXPECT_NE(status, 0);
  EXPECT_NE(output.find("--seeds 1"), std::string::npos) << output;
}

TEST(HlockSimCli, ObsOutWritesAChromeTrace) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --nodes 5 --ops 10 --obs-out obs_cli"
      " && test -s obs_cli/sim-trace.json");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("chrome trace"), std::string::npos);
  EXPECT_NE(output.find("sim-trace.json"), std::string::npos);
}

TEST(HlockSimCli, ChaosModeHonorsTheObservabilityKnobs) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --chaos --nodes 4 --ops 8 --fault-delay 0.2"
      " --seed 7 --spans --obs-out chaos_obs_cli"
      " && test -s chaos_obs_cli/chaos-trace.json");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("mutual exclusion OK"), std::string::npos) << output;
  EXPECT_NE(output.find("phase-latency breakdown"), std::string::npos);
  EXPECT_NE(output.find("chaos-trace.json"), std::string::npos);
}

TEST(HlockTraceCli, ExportChromeWritesTheSpanFile) {
  // Parenthesized so run_command's stderr redirection covers the whole
  // chain, not just the trailing `test`.
  const auto [status, output] = run_command(
      "(" + tool("hlock_trace") +
      " --scenario upgrade --export-chrome up_cli.json"
      " && test -s up_cli.json)");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("chrome trace:"), std::string::npos) << output;
}

TEST(HlockSimCli, MetricsOutWritesACleanExposition) {
  const auto [status, output] = run_command(
      "(" + tool("hlock_sim") + " --nodes 5 --ops 10 --metrics-out"
      " sim_cli.prom && " + tool("hlock_metrics_check") + " sim_cli.prom)");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("0 violation(s)"), std::string::npos) << output;
  EXPECT_NE(output.find("metrics"), std::string::npos);
}

TEST(HlockSimCli, ChaosMetricsOutSurvivesTheChecker) {
  const auto [status, output] = run_command(
      "(" + tool("hlock_sim") + " --chaos --nodes 4 --ops 10 --seed 3"
      " --metrics-out chaos_cli.prom"
      " && " + tool("hlock_metrics_check") + " chaos_cli.prom"
      " --expect-nonzero"
      " hlock_engine_grants_total,hlock_messages_sent_total)");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("0 violation(s)"), std::string::npos) << output;
  EXPECT_NE(output.find("expect-nonzero: hlock_engine_grants_total"),
            std::string::npos)
      << output;
}

TEST(HlockSimCli, DoctoredStallTripsTheWatchdog) {
  // --doctor-stall-ms parks the first critical section, so the watchdog
  // must flag at least one stall (the CI telemetry-smoke assertion).
  // Parenthesized so the watchdog's stderr report is captured too.
  const auto [status, output] = run_command(
      "(" + tool("hlock_sim") + " --chaos --nodes 3 --ops 6 --seed 2"
      " --doctor-stall-ms 400 --watchdog-floor-ms 50"
      " --metrics-out stall_cli.prom"
      " && " + tool("hlock_metrics_check") + " stall_cli.prom"
      " --expect-nonzero hlock_stalled_requests_total)");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("WATCHDOG:"), std::string::npos) << output;
  EXPECT_NE(output.find("expect-nonzero: hlock_stalled_requests_total"),
            std::string::npos)
      << output;
}

TEST(HlockMetricsCheckCli, FlagsADoctoredExposition) {
  const auto [status, output] = run_command(
      "printf '# TYPE hlock_x_total counter\\nhlock_x_total -1\\n"
      "hlock_x_total 2\\n' > bad_metrics_cli.prom && " +
      tool("hlock_metrics_check") + " bad_metrics_cli.prom");
  EXPECT_EQ(WEXITSTATUS(status), 1) << output;
  EXPECT_NE(output.find("FAIL"), std::string::npos);
  EXPECT_NE(output.find("duplicate series"), std::string::npos) << output;
  EXPECT_NE(output.find("negative counter"), std::string::npos) << output;
}

TEST(HlockMetricsCheckCli, TwoFilesCheckCounterMonotonicity) {
  const auto [status, output] = run_command(
      "printf '# TYPE hlock_x_total counter\\nhlock_x_total 10\\n'"
      " > earlier_cli.prom && "
      "printf '# TYPE hlock_x_total counter\\nhlock_x_total 4\\n'"
      " > later_cli.prom && " +
      tool("hlock_metrics_check") + " earlier_cli.prom later_cli.prom");
  EXPECT_EQ(WEXITSTATUS(status), 1) << output;
  EXPECT_NE(output.find("counter decreased"), std::string::npos) << output;
}

TEST(HlockMetricsCheckCli, RejectsMissingFilesWithUsage) {
  const auto [status, output] =
      run_command(tool("hlock_metrics_check") + " does_not_exist.prom");
  EXPECT_EQ(WEXITSTATUS(status), 2) << output;
  EXPECT_NE(output.find("cannot read"), std::string::npos);
}

TEST(HlockTopCli, RendersAOneShotFrameFromAFile) {
  const auto [status, output] = run_command(
      tool("hlock_sim") + " --chaos --nodes 4 --ops 12 --seed 4"
      " --metrics-out top_cli.prom"
      " && " + tool("hlock_top") +
      " --from top_cli.prom --iterations 1 --no-clear");
  EXPECT_EQ(status, 0) << output;
  EXPECT_NE(output.find("hlock_top —"), std::string::npos) << output;
  EXPECT_NE(output.find("requests"), std::string::npos);
  EXPECT_NE(output.find("grants"), std::string::npos);
  EXPECT_NE(output.find("wait time"), std::string::npos) << output;
  EXPECT_NE(output.find("tokens:"), std::string::npos) << output;
}

TEST(HlockTopCli, RequiresExactlyOneSource) {
  const auto [status, output] = run_command(tool("hlock_top"));
  EXPECT_EQ(WEXITSTATUS(status), 2) << output;
  EXPECT_NE(output.find("exactly one of --from or --connect"),
            std::string::npos)
      << output;
}

TEST(HlockLintCli, HelpNamesThePositionalArgument) {
  const auto [status, output] = run_command(tool("hlock_lint") + " --help");
  EXPECT_EQ(status, 0);
  EXPECT_NE(output.find("TRACE-FILE"), std::string::npos);
  EXPECT_NE(output.find("--freezing"), std::string::npos);
}

}  // namespace
