// Sensitivity analysis: the table-entry count (the one workload parameter
// the paper does not quote) vs. the Fig. 7 metric at 24 nodes. This makes
// the calibration in EXPERIMENTS.md transparent: the hierarchical and pure
// variants are nearly insensitive to it, while the same-work variant's
// cost scales with it — exactly why it had to be calibrated against the
// published same-work curve.
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"

using namespace hlock;
using bench::AppVariant;
using bench::ExperimentConfig;
using bench::ExperimentResult;

int main() {
  const auto preset = sim::linux_cluster_preset();
  const AppVariant variants[] = {AppVariant::kNaimiSameWork,
                                 AppVariant::kNaimiPure,
                                 AppVariant::kHierarchical};

  stats::TextTable table;
  table.set_header({"entries", "naimi-same-work", "naimi-pure",
                    "hierarchical"});

  std::printf("Sensitivity — messages per lock request vs. table entries "
              "(24 nodes, Fig. 7 setup)\n\n");

  for (std::size_t entries : {2u, 4u, 6u, 8u, 12u, 16u}) {
    std::vector<std::string> row{std::to_string(entries)};
    for (AppVariant variant : variants) {
      ExperimentConfig config;
      config.variant = variant;
      config.nodes = 24;
      config.net_latency = preset.message_latency;
      config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
      config.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
      config.table_entries = entries;
      config.ops_per_node = 60;
      config.seed = 61 + entries;
      const ExperimentResult result = bench::run_averaged(config, 2);
      row.push_back(
          stats::TextTable::num(bench::paper_message_metric(variant, result)));
    }
    table.add_row(std::move(row));
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
