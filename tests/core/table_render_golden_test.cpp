// Golden rendering of the printed Table 1: bench/table1_rules is the
// human-facing regeneration of the paper's specification table, so its
// exact output is pinned here (cells are asserted semantically in
// mode_tables_test.cpp; this guards the rendering itself).
#include <gtest/gtest.h>

#include "core/mode_tables.hpp"

namespace hlock::core {
namespace {

TEST(TableRenderGolden, TableA) {
  EXPECT_EQ(render_table('a'),
            "Table 1(a) Incompatible — rows M1, columns M2\n"
            "M1\\M2   IR        R         U         IW        W         \n"
            "-       .         .         .         .         .         \n"
            "IR      .         .         .         .         X         \n"
            "R       .         .         .         X         X         \n"
            "U       .         .         X         X         X         \n"
            "IW      .         X         X         .         X         \n"
            "W       X         X         X         X         X         \n");
}

TEST(TableRenderGolden, TableB) {
  EXPECT_EQ(render_table('b'),
            "Table 1(b) No Child Grant — rows M1, columns M2\n"
            "M1\\M2   IR        R         U         IW        W         \n"
            "-       X         X         X         X         X         \n"
            "IR      .         X         X         X         X         \n"
            "R       .         .         X         X         X         \n"
            "U       .         .         X         X         X         \n"
            "IW      .         X         X         .         X         \n"
            "W       X         X         X         X         X         \n");
}

TEST(TableRenderGolden, TableC) {
  EXPECT_EQ(render_table('c'),
            "Table 1(c) Queue/Forward — rows M1, columns M2\n"
            "M1\\M2   IR        R         U         IW        W         \n"
            "-       F         F         F         F         F         \n"
            "IR      Q         F         F         F         F         \n"
            "R       F         Q         F         F         F         \n"
            "U       F         F         Q         Q         Q         \n"
            "IW      F         F         F         Q         F         \n"
            "W       Q         Q         Q         Q         Q         \n");
}

TEST(TableRenderGolden, TableD) {
  EXPECT_EQ(render_table('d'),
            "Table 1(d) Freezing Modes at Token — rows M1, columns M2\n"
            "M1\\M2   IR        R         U         IW        W         \n"
            "-       .         .         .         .         .         \n"
            "IR      .         .         .         .         IR,R,U,IW \n"
            "R       .         .         .         R,U       IR,R,U    \n"
            "U       .         .         .         R         IR,R      \n"
            "IW      .         IW        IW        .         IR,IW     \n"
            "W       .         .         .         .         .         \n");
}

}  // namespace
}  // namespace hlock::core
