// Micro-benchmarks of the protocol hot paths (google-benchmark): rule-table
// lookups, automaton request/grant/release steps, and the wire codec. These
// quantify the per-message CPU cost of the protocol engine, which the paper
// treats as negligible next to network latency — the numbers here justify
// that assumption.
#include <benchmark/benchmark.h>

#include "core/hier_automaton.hpp"
#include "core/mode_tables.hpp"
#include "naimi/naimi_automaton.hpp"
#include "proto/codec.hpp"

namespace {

using namespace hlock;
using core::HierAutomaton;
using proto::LockId;
using proto::LockMode;
using proto::NodeId;

void BM_TableCompatibility(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const LockMode a = proto::kAllModes[i % 6];
    const LockMode b = proto::kRealModes[i % 5];
    benchmark::DoNotOptimize(core::incompatible(a, b));
    ++i;
  }
}
BENCHMARK(BM_TableCompatibility);

void BM_TableFreezeSet(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const LockMode a = proto::kAllModes[i % 6];
    const LockMode b = proto::kRealModes[i % 5];
    benchmark::DoNotOptimize(core::freeze_set(a, b));
    ++i;
  }
}
BENCHMARK(BM_TableFreezeSet);

void BM_HierSelfGrantCycle(benchmark::State& state) {
  // Token-local request/release: the zero-message fast path of Rule 2.
  HierAutomaton token{NodeId{0}, LockId{0}, true, NodeId::none()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(token.request(LockMode::kIR));
    benchmark::DoNotOptimize(token.release());
  }
}
BENCHMARK(BM_HierSelfGrantCycle);

void BM_HierGrantRoundTrip(benchmark::State& state) {
  // Request -> copy grant -> release -> release notification between a
  // token and one child, exercising the full message path of both sides.
  for (auto _ : state) {
    state.PauseTiming();
    HierAutomaton token{NodeId{0}, LockId{0}, true, NodeId::none()};
    HierAutomaton child{NodeId{1}, LockId{0}, false, NodeId{0}};
    core::Effects token_fx = token.request(LockMode::kR);
    state.ResumeTiming();

    core::Effects request = child.request(LockMode::kR);
    core::Effects grant = token.on_message(request.messages.at(0));
    core::Effects entered = child.on_message(grant.messages.at(0));
    core::Effects release = child.release();
    core::Effects done = token.on_message(release.messages.at(0));
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_HierGrantRoundTrip);

void BM_NaimiTokenPass(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    naimi::NaimiAutomaton a{NodeId{0}, LockId{0}, true, NodeId::none()};
    naimi::NaimiAutomaton b{NodeId{1}, LockId{0}, false, NodeId{0}};
    state.ResumeTiming();

    core::Effects request = b.request();
    core::Effects pass = a.on_message(request.messages.at(0));
    core::Effects entered = b.on_message(pass.messages.at(0));
    benchmark::DoNotOptimize(entered);
  }
}
BENCHMARK(BM_NaimiTokenPass);

void BM_CodecEncode(benchmark::State& state) {
  const proto::Message message{
      NodeId{1}, NodeId{2}, LockId{3},
      proto::HierToken{LockMode::kW, LockMode::kIR,
                       {proto::QueuedRequest{NodeId{4}, LockMode::kR, 9},
                        proto::QueuedRequest{NodeId{5}, LockMode::kW, 10}}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::encode(message));
  }
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  const proto::Message message{
      NodeId{1}, NodeId{2}, LockId{3},
      proto::HierToken{LockMode::kW, LockMode::kIR,
                       {proto::QueuedRequest{NodeId{4}, LockMode::kR, 9}}}};
  const std::vector<std::byte> wire = proto::encode(message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::decode(wire));
  }
}
BENCHMARK(BM_CodecDecode);

}  // namespace

BENCHMARK_MAIN();
