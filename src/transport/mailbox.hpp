// A thread-safe mailbox with earliest-deadline delivery.
//
// Building block of the in-process transport: producers deposit messages
// with an absolute delivery time (wall clock); the consumer blocks until
// the earliest message becomes deliverable. Injected delivery times model
// network latency while per-channel FIFO is enforced by the transport.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "proto/message.hpp"
#include "util/sync.hpp"

namespace hlock::transport {

/// Multi-producer single-consumer mailbox ordered by delivery time.
class Mailbox {
 public:
  using Clock = std::chrono::steady_clock;

  /// Deposits a message that becomes deliverable at `deliver_at`.
  /// No-op after close().
  void push(proto::Message message, Clock::time_point deliver_at);

  /// Blocks until a message is deliverable or the mailbox is closed and
  /// empty. Returns std::nullopt only in the latter case.
  std::optional<proto::Message> pop();

  /// Like pop() but gives up at `deadline`; std::nullopt on timeout or
  /// closed-and-empty.
  std::optional<proto::Message> pop_until(Clock::time_point deadline);

  /// Closes the mailbox: pending messages remain poppable, new pushes are
  /// dropped, and blocked consumers wake up.
  void close();

  /// Messages deposited over the mailbox's lifetime.
  std::uint64_t pushed() const;

 private:
  struct Entry {
    Clock::time_point deliver_at;
    std::uint64_t seq;
    proto::Message message;
    /// Min-ordering by (deliver_at, seq) via inverted comparison.
    bool operator<(const Entry& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return seq > other.seq;
    }
  };

  mutable Mutex mutex_;
  CondVar cv_;
  std::priority_queue<Entry> heap_ HLOCK_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ HLOCK_GUARDED_BY(mutex_) = 0;
  std::uint64_t pushed_ HLOCK_GUARDED_BY(mutex_) = 0;
  bool closed_ HLOCK_GUARDED_BY(mutex_) = false;
};

}  // namespace hlock::transport
