// Bounded exhaustive model checking of the hierarchical protocol.
//
// The randomized tests sample schedules; the explorer enumerates EVERY
// reachable interleaving of a small configuration: each node executes a
// fixed script of lock operations, and the explorer branches over all
// enabled actions (issue next script step, deliver the head of any FIFO
// channel), deduplicating states via complete fingerprints.
//
// Checked in every reachable state:
//   * pairwise compatibility of held modes (Rule 1 safety),
//   * token conservation (exactly one, at rest or in flight).
// Checked in every terminal state (no enabled actions):
//   * all scripts ran to completion — i.e. no deadlock, no lost request,
//   * the structures converged (quiescent copyset/parent consistency).
//
// State counts grow quickly; scripts of 2-4 operations on 2-4 nodes stay
// in the 10^3..10^6 range and finish in seconds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hier_config.hpp"
#include "proto/lock_mode.hpp"
#include "trace/event.hpp"

namespace hlock::modelcheck {

/// One step of a node's script.
struct ScriptOp {
  enum class Kind { kAcquire, kRelease, kUpgrade } kind = Kind::kAcquire;
  proto::LockMode mode = proto::LockMode::kNL;  // for kAcquire
  std::uint8_t priority = 0;                    // for kAcquire

  static ScriptOp acquire(proto::LockMode mode, std::uint8_t priority = 0) {
    return {Kind::kAcquire, mode, priority};
  }
  static ScriptOp release() {
    return {Kind::kRelease, proto::LockMode::kNL, 0};
  }
  static ScriptOp upgrade() {
    return {Kind::kUpgrade, proto::LockMode::kNL, 0};
  }
};

/// A node's whole script, executed in order.
using Script = std::vector<ScriptOp>;

/// Exploration limits and protocol configuration.
struct ExploreOptions {
  core::HierConfig config = {};
  /// Abort (as a failure) beyond this many distinct states.
  std::uint64_t max_states = 5'000'000;
  /// Record structured trace events (forces config.trace_events on the
  /// explored automatons) and run the conformance linter (src/lint) over
  /// the event trace of every first-visit terminal path — the fairness /
  /// Table 1(a)-(d) pass on top of the explorer's built-in safety checks.
  /// A lint violation fails the exploration like any other. Coverage note:
  /// state deduplication means each reachable state is linted along the
  /// first path that discovers it, not every path.
  bool lint = false;
};

/// Outcome of one exploration.
struct ExploreResult {
  bool ok = false;
  std::uint64_t states_explored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminal_states = 0;
  /// Empty when ok; otherwise the first violation found and the action
  /// trace (one line per action) that reaches it.
  std::string violation;
  std::vector<std::string> trace;
  /// With ExploreOptions::lint: the structured events emitted along the
  /// counterexample path (empty when ok). Feed to lint::check or
  /// trace::format_event for post-hoc analysis (tools/hlock_check).
  std::vector<trace::TraceEvent> events;
};

/// Exhaustively explores `scripts` (scripts[i] runs on node i; node 0 is
/// the initial token holder) under every possible interleaving.
ExploreResult explore(const std::vector<Script>& scripts,
                      const ExploreOptions& options = {});

/// Same exploration for the Naimi baseline. Scripts are mode-less:
/// acquire/release only (modes and priorities in ScriptOps are ignored;
/// upgrades are rejected). Checks: at most one node in its critical
/// section, token conservation, liveness and quiescent structure (one
/// root, nobody requesting).
ExploreResult explore_naimi(const std::vector<Script>& scripts,
                            std::uint64_t max_states = 5'000'000);

/// Same exploration for Raymond's algorithm on a balanced binary tree
/// rooted at node 0. Scripts as in explore_naimi().
ExploreResult explore_raymond(const std::vector<Script>& scripts,
                              std::uint64_t max_states = 5'000'000);

}  // namespace hlock::modelcheck
