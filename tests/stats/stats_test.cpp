#include <gtest/gtest.h>

#include "stats/metrics.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "util/check.hpp"

namespace hlock::stats {
namespace {

using proto::MessageKind;

TEST(Summary, EmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Summary, SingleSample) {
  const Summary s = summarize({4.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.p50, 4.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownPopulation) {
  const Summary s = summarize({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.p50, 5.5);
  EXPECT_NEAR(s.p90, 9.1, 1e-9);
  EXPECT_NEAR(s.p95, 9.55, 1e-9);
  EXPECT_NEAR(s.stddev, 3.02765, 1e-4);
}

TEST(Summary, OrderIndependent) {
  const Summary a = summarize({3, 1, 2});
  const Summary b = summarize({1, 2, 3});
  EXPECT_DOUBLE_EQ(a.p50, b.p50);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
}

TEST(Summary, ToStringPrintsEveryReportedQuantile) {
  Summary s;
  s.count = 4;
  s.mean = 1.5;
  s.p50 = 1.0;
  s.p90 = 2.0;
  s.p95 = 2.5;
  s.p99 = 3.0;
  s.p999 = 3.5;
  s.max = 4.0;
  EXPECT_EQ(to_string(s),
            "n=4 mean=1.5 p50=1 p90=2 p95=2.5 p99=3 p999=3.5 max=4");
}

TEST(Summary, P999TracksExtremeTail) {
  // Twenty huge outliers in ten thousand samples: p99 stays small while
  // p999 lands inside the outlier cluster — the tail story p99 misses.
  std::vector<double> samples(9980, 1.0);
  samples.insert(samples.end(), 20, 1000.0);
  const Summary s = summarize(samples);
  EXPECT_LT(s.p99, 2.0);
  EXPECT_GT(s.p999, 900.0);
  EXPECT_LE(s.p999, 1000.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 2.5);
}

TEST(Quantile, RejectsOutOfRange) {
  EXPECT_THROW(quantile_sorted({1.0}, -0.1), hlock::UsageError);
  EXPECT_THROW(quantile_sorted({1.0}, 1.1), hlock::UsageError);
}

TEST(MessageCounter, CountsPerKindAndTotal) {
  MessageCounter counter;
  counter.add(MessageKind::kHierRequest);
  counter.add(MessageKind::kHierRequest);
  counter.add(MessageKind::kHierGrant);
  EXPECT_EQ(counter.count(MessageKind::kHierRequest), 2u);
  EXPECT_EQ(counter.count(MessageKind::kHierGrant), 1u);
  EXPECT_EQ(counter.count(MessageKind::kNaimiToken), 0u);
  EXPECT_EQ(counter.total(), 3u);
}

TEST(LatencyRecorder, RecordsMilliseconds) {
  LatencyRecorder recorder;
  recorder.record(SimTime::ms(2));
  recorder.record(SimTime::us(500));
  EXPECT_EQ(recorder.count(), 2u);
  EXPECT_DOUBLE_EQ(recorder.samples_ms()[0], 2.0);
  EXPECT_DOUBLE_EQ(recorder.samples_ms()[1], 0.5);
  EXPECT_DOUBLE_EQ(recorder.summarize().mean, 1.25);
}

TEST(MetricsRegistry, MessagesPerRequest) {
  MetricsRegistry metrics;
  EXPECT_EQ(metrics.messages_per_request(), 0.0);
  metrics.messages().add(MessageKind::kHierRequest);
  metrics.messages().add(MessageKind::kHierGrant);
  metrics.messages().add(MessageKind::kHierRelease);
  metrics.latency().record(SimTime::ms(1));
  metrics.latency().record(SimTime::ms(2));
  EXPECT_DOUBLE_EQ(metrics.messages_per_request(), 1.5);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable table;
  table.set_header({"nodes", "msgs"});
  table.add_row({"2", "3.10"});
  table.add_row({"100", "3.25"});
  const std::string out = table.render();
  EXPECT_NE(out.find("nodes  msgs"), std::string::npos);
  EXPECT_NE(out.find("  2"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"a,b", "he said \"hi\""});
  const std::string csv = table.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, RowWidthValidated) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), hlock::UsageError);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(1.5, 3), "1.500");
}

}  // namespace
}  // namespace hlock::stats
