// End-to-end crash-recovery tests on the simulated cluster
// (docs/recovery.md): kill the token holder mid-hold and verify the
// survivors detect the death, mint a fenced epoch, regenerate the token
// and grant every surviving waiter — on both the hierarchical protocol
// and the Naimi baseline, with lint-clean traces.
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "lint/checker.hpp"
#include "runtime/sim_cluster.hpp"
#include "trace/event.hpp"
#include "util/check.hpp"

namespace hlock {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

SimClusterOptions recovery_options(Protocol protocol, std::size_t nodes) {
  SimClusterOptions options;
  options.node_count = nodes;
  options.protocol = protocol;
  options.seed = 42;
  options.recovery.enabled = true;
  options.recovery.heartbeat_interval = SimTime::ms(100);
  options.recovery.suspect_after = SimTime::ms(600);
  options.recovery_horizon = SimTime::ms(30'000);
  options.hier_config.trace_events = true;
  return options;
}

struct Grant {
  NodeId node;
  LockId lock;
  bool upgraded;
};

/// Runs the canonical crash scenario: node 1 takes the token and holds W,
/// node 2 waits, node 1 is killed. Returns the grants observed after the
/// kill.
std::vector<Grant> run_holder_crash(SimCluster& cluster) {
  std::vector<Grant> grants;
  cluster.set_grant_handler([&](NodeId node, LockId lock, bool upgraded) {
    grants.push_back({node, lock, upgraded});
  });

  const LockId lock{7};
  cluster.request(NodeId{1}, lock, LockMode::kW);
  cluster.simulator().run_until(SimTime::ms(2'000));
  EXPECT_TRUE(cluster.engine(NodeId{1}).holds(lock));

  cluster.request(NodeId{2}, lock, LockMode::kR);
  cluster.simulator().run_until(SimTime::ms(3'000));
  grants.clear();  // only post-kill grants matter below

  cluster.kill_at(NodeId{1}, SimTime::ms(3'100));
  cluster.simulator().run_to_completion();
  return grants;
}

TEST(RecoverySim, HierTokenHolderCrashRecovers) {
  SimCluster cluster(recovery_options(Protocol::kHierarchical, 3));
  const std::vector<Grant> grants = run_holder_crash(cluster);

  // The survivors ran exactly one campaign and agree on its epoch.
  EXPECT_TRUE(cluster.manager(NodeId{0}).is_dead(NodeId{1}));
  EXPECT_TRUE(cluster.manager(NodeId{2}).is_dead(NodeId{1}));
  const std::uint32_t epoch = cluster.manager(NodeId{0}).current_epoch();
  EXPECT_GT(epoch, 0u);
  EXPECT_EQ(cluster.manager(NodeId{2}).current_epoch(), epoch);
  EXPECT_FALSE(cluster.manager(NodeId{0}).halted());
  EXPECT_FALSE(cluster.manager(NodeId{2}).halted());

  // The waiting reader was granted after the fence.
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].node, NodeId{2});
  EXPECT_TRUE(cluster.engine(NodeId{2}).holds(LockId{7}));

  // Recovery latency samples were recorded on every survivor.
  EXPECT_EQ(cluster.manager(NodeId{0}).counters().recoveries, 1u);
  EXPECT_EQ(cluster.manager(NodeId{2}).counters().recoveries, 1u);
  EXPECT_FALSE(cluster.manager(NodeId{0}).recovery_durations_ms().empty());
}

TEST(RecoverySim, NaimiTokenHolderCrashRecovers) {
  SimCluster cluster(recovery_options(Protocol::kNaimi, 3));
  const std::vector<Grant> grants = run_holder_crash(cluster);

  EXPECT_GT(cluster.manager(NodeId{0}).current_epoch(), 0u);
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].node, NodeId{2});
  EXPECT_TRUE(cluster.engine(NodeId{2}).holds(LockId{7}));
}

TEST(RecoverySim, HierRecoveryTraceIsLintClean) {
  SimCluster cluster(recovery_options(Protocol::kHierarchical, 4));
  std::vector<trace::TraceEvent> events;
  cluster.set_event_observer(
      [&](trace::TraceEvent event) { events.push_back(std::move(event)); });
  std::vector<Grant> grants;
  cluster.set_grant_handler([&](NodeId node, LockId lock, bool upgraded) {
    grants.push_back({node, lock, upgraded});
  });

  const LockId lock{1};
  cluster.request(NodeId{1}, lock, LockMode::kW);
  cluster.simulator().run_until(SimTime::ms(2'000));
  cluster.request(NodeId{2}, lock, LockMode::kR);
  cluster.request(NodeId{3}, lock, LockMode::kR);
  cluster.simulator().run_until(SimTime::ms(3'000));
  cluster.kill_at(NodeId{1}, SimTime::ms(3'050));
  cluster.simulator().run_to_completion();

  // Both surviving readers were eventually granted.
  std::set<std::uint32_t> granted;
  for (const Grant& grant : grants) granted.insert(grant.node.value());
  EXPECT_TRUE(granted.count(2));
  EXPECT_TRUE(granted.count(3));

  lint::LintOptions lint_options;
  lint_options.initial_token = NodeId{0};
  const lint::LintReport report = lint::check(events, lint_options);
  EXPECT_TRUE(report.ok()) << report.render();
}

TEST(RecoverySim, HierFreshLockFirstTouchedAfterRecoveryIsGranted) {
  // Regression: recovery_epoch() used to report 0 for locks with no
  // automaton yet, while lazily created automatons start in the
  // post-recovery epoch. The newer-epoch park gate then parked the very
  // first message of any lock first touched after a recovery — forever,
  // because the receiver is not halted and parked messages are only
  // replayed on unhalt.
  SimCluster cluster(recovery_options(Protocol::kHierarchical, 3));
  run_holder_crash(cluster);
  ASSERT_GT(cluster.manager(NodeId{0}).current_epoch(), 0u);

  std::vector<Grant> grants;
  cluster.set_grant_handler([&](NodeId node, LockId lock, bool upgraded) {
    grants.push_back({node, lock, upgraded});
  });
  // Node 2's request for a brand-new lock travels to the post-recovery
  // default root (node 0), which has never touched the lock either.
  const LockId fresh{99};
  cluster.request(NodeId{2}, fresh, LockMode::kW);
  cluster.simulator().run_to_completion();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].node, NodeId{2});
  EXPECT_TRUE(cluster.engine(NodeId{2}).holds(fresh));
}

TEST(RecoverySim, NaimiFreshLockFirstTouchedAfterRecoveryIsGranted) {
  // Same regression on the Naimi baseline (NaimiEngine::recovery_epoch had
  // the identical automaton-miss bug).
  SimCluster cluster(recovery_options(Protocol::kNaimi, 3));
  run_holder_crash(cluster);
  ASSERT_GT(cluster.manager(NodeId{0}).current_epoch(), 0u);

  std::vector<Grant> grants;
  cluster.set_grant_handler([&](NodeId node, LockId lock, bool upgraded) {
    grants.push_back({node, lock, upgraded});
  });
  const LockId fresh{99};
  cluster.request(NodeId{2}, fresh, LockMode::kW);
  cluster.simulator().run_to_completion();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].node, NodeId{2});
  EXPECT_TRUE(cluster.engine(NodeId{2}).holds(fresh));
}

TEST(RecoverySim, StaleMessagesAreDroppedAndCounted) {
  // Killing the holder of a contended lock leaves pre-crash traffic in
  // flight; after the fence it must be dropped by the epoch gate, not
  // processed.
  SimCluster cluster(recovery_options(Protocol::kHierarchical, 4));
  std::vector<Grant> grants;
  cluster.set_grant_handler([&](NodeId node, LockId lock, bool upgraded) {
    grants.push_back({node, lock, upgraded});
  });
  const LockId lock{3};
  cluster.request(NodeId{1}, lock, LockMode::kW);
  cluster.simulator().run_until(SimTime::ms(2'000));
  cluster.request(NodeId{2}, lock, LockMode::kW);
  cluster.request(NodeId{3}, lock, LockMode::kW);
  // Kill while the release/token traffic for the waiters is in flight.
  cluster.release(NodeId{1}, lock);
  cluster.kill_at(NodeId{1}, SimTime::ms(2'001));
  cluster.simulator().run_to_completion();

  // Everyone alive agreed on one epoch and nobody is halted.
  const std::uint32_t epoch = cluster.manager(NodeId{0}).current_epoch();
  EXPECT_GT(epoch, 0u);
  for (std::uint32_t i : {0u, 2u, 3u}) {
    EXPECT_EQ(cluster.manager(NodeId{i}).current_epoch(), epoch);
    EXPECT_FALSE(cluster.manager(NodeId{i}).halted());
  }
}

TEST(RecoverySim, KillRequiresRecoveryEnabled) {
  SimClusterOptions options;
  options.node_count = 2;
  SimCluster cluster(options);
  EXPECT_THROW(cluster.kill_at(NodeId{1}, SimTime::ms(1)),
               UsageError);
}

TEST(RecoverySim, RaymondRejectsRecovery) {
  SimClusterOptions options = recovery_options(Protocol::kRaymond, 3);
  EXPECT_THROW(SimCluster cluster(options), UsageError);
}

}  // namespace
}  // namespace hlock
