// Tests of the prioritized queueing extension (paper refs [15, 16]):
// priority orders WAITING queues — higher first, FIFO within a level —
// while never preempting current holders and never weakening Rule 6.
#include <gtest/gtest.h>

#include "tests/core/test_net.hpp"

namespace hlock::test {
namespace {

constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kW = LockMode::kW;
constexpr std::size_t A = 0, B = 1, C = 2, D = 3;

TEST(Priority, HigherPriorityOvertakesQueuedWaiters) {
  HierNet net{4};
  net.request(A, kW);  // A holds W as token
  net.request(B, kW);  // queued first, default priority
  net.settle();
  net.request(C, kW, 5);
  net.settle();

  // A's queue: C (priority 5) must now be ahead of B (priority 0).
  ASSERT_EQ(net.node(A).queue().size(), 2u);
  EXPECT_EQ(net.node(A).queue().front().requester, NodeId{2});

  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(C).held(), kW) << "high priority served first";
  EXPECT_EQ(net.cs_entries(B), 0);
  net.release(C);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kW);
}

TEST(Priority, FifoWithinEqualPriority) {
  HierNet net{4};
  net.request(A, kW);
  net.request(B, kW, 3);
  net.settle();
  net.request(C, kW, 3);
  net.settle();
  ASSERT_EQ(net.node(A).queue().size(), 2u);
  EXPECT_EQ(net.node(A).queue()[0].requester, NodeId{1});
  EXPECT_EQ(net.node(A).queue()[1].requester, NodeId{2});
}

TEST(Priority, DoesNotPreemptHolders) {
  HierNet net{3};
  net.request(A, kR);  // A holds R
  net.request(B, kW, 255);
  net.settle();
  EXPECT_EQ(net.cs_entries(B), 0)
      << "even maximum priority waits for the current holder";
  EXPECT_EQ(net.node(A).held(), kR);
  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kW);
}

TEST(Priority, FreezingStillProtectsHighPriorityWaiter) {
  // A high-priority W freezes reader modes exactly like a FIFO W would.
  HierNet net{4};
  net.request(A, kR);
  net.request(B, kW, 9);
  net.settle();
  net.request(C, kIR);
  net.settle();
  EXPECT_EQ(net.cs_entries(C), 0) << "IR must not bypass the queued W";
  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kW);
}

TEST(Priority, SurvivesTokenTransferWithQueue) {
  // Priorities are preserved when the queue ships with the token.
  HierNet net{5};
  net.request(A, kR);
  net.request(B, kR);  // copy grant, B shares R
  net.settle();
  net.request(C, kW, 1);
  net.settle();
  net.request(D, kW, 7);
  net.settle();
  ASSERT_EQ(net.node(A).queue().size(), 2u);
  EXPECT_EQ(net.node(A).queue().front().requester, NodeId{3});

  net.release(A);
  net.release(B);
  net.settle();
  EXPECT_EQ(net.node(D).held(), kW) << "priority 7 first";
  net.release(D);
  net.settle();
  EXPECT_EQ(net.node(C).held(), kW);
}

TEST(Priority, DefaultZeroReducesToPaperFifo) {
  HierNet net{4};
  net.request(A, kW);
  net.request(B, kW);
  net.settle();
  net.request(C, kW);
  net.settle();
  ASSERT_EQ(net.node(A).queue().size(), 2u);
  EXPECT_EQ(net.node(A).queue()[0].requester, NodeId{1});
  EXPECT_EQ(net.node(A).queue()[1].requester, NodeId{2});
}

}  // namespace
}  // namespace hlock::test
