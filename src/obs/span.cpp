#include "obs/span.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <sstream>

namespace hlock::obs {

namespace {

using proto::NodeId;
using proto::RequestId;
using trace::EventKind;
using trace::TraceEvent;

constexpr std::array<const char*, kPhaseCount> kPhaseNames = {
    "issued",  "queued-local", "frozen",  "forwarded",
    "granted", "cs-enter",     "cs-exit",
};

std::pair<std::uint32_t, std::uint32_t> holder_key(const TraceEvent& event) {
  return {event.node.value(), event.lock.value()};
}

}  // namespace

std::string to_string(Phase phase) {
  const auto index = static_cast<std::size_t>(phase);
  return index < kPhaseNames.size() ? kPhaseNames[index] : "?";
}

const SpanEvent* RequestSpan::find(Phase phase) const {
  for (const SpanEvent& event : events) {
    if (event.phase == phase) return &event;
  }
  return nullptr;
}

std::size_t SpanCollector::ensure(RequestId id, const TraceEvent& event) {
  const SpanKey key{event.lock.value(), id.origin.value(), id.seq};
  const auto [it, inserted] = index_.try_emplace(key, spans_.size());
  if (inserted) {
    RequestSpan span;
    span.id = id;
    span.lock = event.lock;
    span.mode = event.mode;
    span.priority = event.priority;
    spans_.push_back(std::move(span));
    aux_.push_back(Aux{});
    return spans_.size() - 1;
  }
  // A span opened by a downstream event (a queue observed before the issue
  // under reordering) may lack the request's mode; backfill it.
  RequestSpan& span = spans_[it->second];
  if (span.mode == proto::LockMode::kNL) span.mode = event.mode;
  if (span.priority == 0) span.priority = event.priority;
  return it->second;
}

void SpanCollector::append(std::size_t index, Phase phase,
                           const TraceEvent& event) {
  RequestSpan& span = spans_[index];
  const bool repeatable =
      phase == Phase::kQueuedLocal || phase == Phase::kForwarded;
  if (!repeatable && span.find(phase) != nullptr) return;
  span.events.push_back(SpanEvent{phase, event.at, event.lamport, event.node});
}

void SpanCollector::observe(const TraceEvent& event) {
  MutexLock guard(mutex_);
  switch (event.kind) {
    case EventKind::kRequest: {
      if (event.seq == 0) return;
      append(ensure(RequestId{event.node, event.seq}, event), Phase::kIssued,
             event);
      return;
    }
    case EventKind::kQueue: {
      if (event.seq == 0 || event.peer.is_none()) return;
      const std::size_t i = ensure(RequestId{event.peer, event.seq}, event);
      aux_[i].queued_at = event.node;
      append(i, Phase::kQueuedLocal, event);
      return;
    }
    case EventKind::kForward: {
      if (event.seq == 0 || event.peer.is_none()) return;
      const std::size_t i = ensure(RequestId{event.peer, event.seq}, event);
      // The request left this node's queue; it may be re-queued elsewhere.
      if (aux_[i].queued_at == event.node) aux_[i].queued_at = NodeId::none();
      append(i, Phase::kForwarded, event);
      return;
    }
    case EventKind::kFreeze: {
      // `event.modes` is the freezing node's complete frozen set; the
      // freeze applies to every request it is still queueing whose mode is
      // now in that set.
      for (std::size_t i = 0; i < spans_.size(); ++i) {
        if (aux_[i].granted || aux_[i].queued_at != event.node) continue;
        if (spans_[i].lock != event.lock) continue;
        if (!event.modes.contains(spans_[i].mode)) continue;
        append(i, Phase::kFrozen, event);
      }
      return;
    }
    case EventKind::kGrant:
    case EventKind::kTokenTransfer: {
      if (event.seq == 0 || event.peer.is_none()) return;
      const std::size_t i = ensure(RequestId{event.peer, event.seq}, event);
      aux_[i].granted = true;
      append(i, Phase::kGranted, event);
      return;
    }
    case EventKind::kLocalGrant: {
      if (event.seq == 0) return;
      const std::size_t i = ensure(RequestId{event.node, event.seq}, event);
      aux_[i].granted = true;
      append(i, Phase::kGranted, event);
      return;
    }
    case EventKind::kEnterCs:
    case EventKind::kUpgraded: {
      // kUpgraded is the Rule 7 completion: the W request's critical
      // section begins, superseding the U span's.
      if (event.seq == 0) return;
      const std::size_t i = ensure(RequestId{event.node, event.seq}, event);
      aux_[i].granted = true;
      append(i, Phase::kCsEntered, event);
      holder_[holder_key(event)] = i;
      return;
    }
    case EventKind::kExitCs: {
      // exit-cs carries no seq; attribute it to the request currently in
      // its critical section on (node, lock).
      const auto it = holder_.find(holder_key(event));
      if (it == holder_.end()) return;
      append(it->second, Phase::kCsExited, event);
      holder_.erase(it);
      return;
    }
    default:
      return;  // messages, copyset changes, unfreezes, notes: not lifecycle
  }
}

std::vector<RequestSpan> SpanCollector::spans() const {
  MutexLock guard(mutex_);
  return spans_;
}

std::size_t SpanCollector::span_count() const {
  MutexLock guard(mutex_);
  return spans_.size();
}

std::size_t SpanCollector::completed_count() const {
  MutexLock guard(mutex_);
  std::size_t n = 0;
  for (const RequestSpan& span : spans_) {
    if (span.complete()) ++n;
  }
  return n;
}

std::vector<double> SpanCollector::acquire_latencies_ms() const {
  MutexLock guard(mutex_);
  std::vector<double> out;
  for (const RequestSpan& span : spans_) {
    const SpanEvent* issued = span.find(Phase::kIssued);
    const SpanEvent* entered = span.find(Phase::kCsEntered);
    if (issued != nullptr && entered != nullptr) {
      out.push_back((entered->at - issued->at).to_ms());
    }
  }
  return out;
}

std::vector<PhaseStats> SpanCollector::phase_breakdown() const {
  MutexLock guard(mutex_);
  // Keyed by (from, to) phase pair so rows come out in nominal phase order.
  std::map<std::pair<int, int>, std::vector<double>> buckets;
  std::vector<double> acquire;
  for (const RequestSpan& span : spans_) {
    for (std::size_t k = 1; k < span.events.size(); ++k) {
      const SpanEvent& a = span.events[k - 1];
      const SpanEvent& b = span.events[k];
      buckets[{static_cast<int>(a.phase), static_cast<int>(b.phase)}]
          .push_back((b.at - a.at).to_ms());
    }
    const SpanEvent* issued = span.find(Phase::kIssued);
    const SpanEvent* entered = span.find(Phase::kCsEntered);
    if (issued != nullptr && entered != nullptr) {
      acquire.push_back((entered->at - issued->at).to_ms());
    }
  }
  std::vector<PhaseStats> rows;
  rows.reserve(buckets.size() + 1);
  for (const auto& [key, samples] : buckets) {
    rows.push_back(PhaseStats{
        to_string(static_cast<Phase>(key.first)) + "->" +
            to_string(static_cast<Phase>(key.second)),
        stats::summarize(samples)});
  }
  rows.push_back(
      PhaseStats{"acquire (issued->cs-enter)", stats::summarize(acquire)});
  return rows;
}

std::string render_phase_table(const std::vector<PhaseStats>& rows) {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof line,
                "%-28s %8s %10s %10s %10s %10s %10s %10s\n", "phase (ms)",
                "count", "mean", "p50", "p95", "p99", "p999", "max");
  os << line;
  for (const PhaseStats& row : rows) {
    std::snprintf(line, sizeof line,
                  "%-28s %8zu %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                  row.interval.c_str(), row.summary_ms.count,
                  row.summary_ms.mean, row.summary_ms.p50, row.summary_ms.p95,
                  row.summary_ms.p99, row.summary_ms.p999,
                  row.summary_ms.max);
    os << line;
  }
  return os.str();
}

}  // namespace hlock::obs
