// Doctored defects the sched analyses must catch — the suite that keeps
// the analyses honest. A detector nobody has ever seen fire is
// indistinguishable from one that cannot fire: these tests plant a known
// lock-order inversion and a known ABBA deadlock and require lockdep /
// the schedule explorer to flag them (see docs/sched.md).
#include <cstdlib>

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/harness.hpp"
#include "sched/lockdep.hpp"
#include "util/sync.hpp"
#include "util/sync_observer.hpp"

namespace hlock {
namespace {

/// Installs a private Lockdep for one test body and restores the previous
/// observer (normally the default-on global lockdep from
/// tests/support/sched_env.cpp) afterwards, so the doctored inversion
/// never reaches — and never fails — the shared instance.
class ScopedLockdep {
 public:
  ScopedLockdep()
      : lockdep_([](const sched::LockdepReport&) {}),
        previous_(sched::exchange_sync_observer(&lockdep_)) {}
  ~ScopedLockdep() { sched::exchange_sync_observer(previous_); }
  sched::Lockdep& operator*() { return lockdep_; }
  sched::Lockdep* operator->() { return &lockdep_; }

 private:
  sched::Lockdep lockdep_;
  sched::SyncObserver* previous_;
};

TEST(LockdepSelfTest, DoctoredInversionIsFlaggedWithBothStacks) {
  ScopedLockdep lockdep;
  Mutex a{"doctored.A"};
  Mutex b{"doctored.B"};
  {
    // Teach the recorder A -> B ...
    MutexLock first(a);
    MutexLock second(b);
  }
  ASSERT_EQ(lockdep->violation_count(), 0u);
  {
    // ... then acquire in the inverse order. No deadlock manifests (the
    // two orders never overlap in time) — lockdep must flag the
    // *potential* anyway.
    MutexLock first(b);
    MutexLock second(a);
  }
  ASSERT_EQ(lockdep->violation_count(), 1u);
  const std::vector<sched::LockdepReport> reports = lockdep->reports();
  ASSERT_EQ(reports.size(), 1u);
  const sched::LockdepReport& report = reports.front();
  // The cycle names both doctored classes ...
  ASSERT_GE(report.cycle.size(), 3u);
  EXPECT_EQ(report.cycle.front(), report.cycle.back());
  bool saw_a = false;
  bool saw_b = false;
  for (const std::string& node : report.cycle) {
    saw_a = saw_a || node == "doctored.A";
    saw_b = saw_b || node == "doctored.B";
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
  // ... and carries the acquisition stacks of BOTH orders.
  EXPECT_FALSE(report.forward_stack.empty());
  EXPECT_FALSE(report.inverse_stack.empty());
  EXPECT_NE(report.render().find("POTENTIAL DEADLOCK"), std::string::npos);
}

TEST(LockdepSelfTest, InversionAcrossThreadsIsFlagged) {
  ScopedLockdep lockdep;
  Mutex a{"doctored.threads.A"};
  Mutex b{"doctored.threads.B"};
  sched::Thread forward("forward", [&a, &b] {
    MutexLock first(a);
    MutexLock second(b);
  });
  forward.join();
  sched::Thread inverse("inverse", [&a, &b] {
    MutexLock first(b);
    MutexLock second(a);
  });
  inverse.join();
  EXPECT_EQ(lockdep->violation_count(), 1u);
}

/// The doctored ABBA body: two threads repeatedly take {A then B} and
/// {B then A}. Most interleavings complete; a schedule that preempts one
/// thread between its two acquisitions while the other grabs its first
/// lock deadlocks — which is exactly what the explorer must prove.
void abba_body() {
  Mutex a{"abba.A"};
  Mutex b{"abba.B"};
  {
    sched::Thread ab("ab", [&a, &b] {
      for (int i = 0; i < 8; ++i) {
        MutexLock first(a);
        sched::yield_point("abba.between");
        MutexLock second(b);
      }
    });
    sched::Thread ba("ba", [&a, &b] {
      for (int i = 0; i < 8; ++i) {
        MutexLock first(b);
        sched::yield_point("abba.between");
        MutexLock second(a);
      }
    });
    ab.join();
    ba.join();
  }
}

TEST(ExplorerSelfTest, DoctoredAbbaDeadlockFoundWithin32Seeds) {
  std::optional<std::uint64_t> deadlock_seed;
  std::string deadlock_output;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    sched::ExplorerOptions options;
    options.seed = seed;
    options.change_interval = 6;  // preemption-heavy: tiny doctored body
    const sched::SeedResult result = sched::run_seed(options, abba_body);
    ASSERT_NE(result.verdict, sched::SeedVerdict::kCrash)
        << "seed " << seed << ":\n"
        << result.output;
    if (result.verdict == sched::SeedVerdict::kDeadlock) {
      deadlock_seed = seed;
      deadlock_output = result.output;
      break;
    }
  }
  ASSERT_TRUE(deadlock_seed.has_value())
      << "no seed in 1..32 deadlocked the doctored ABBA body";
  // The report names the deadlock, the held locks, and the replay seed.
  EXPECT_NE(deadlock_output.find("DEADLOCK"), std::string::npos);
  EXPECT_NE(deadlock_output.find("abba.A"), std::string::npos);
  EXPECT_NE(deadlock_output.find("abba.B"), std::string::npos);
  EXPECT_NE(deadlock_output.find("--sched-seed"), std::string::npos);

  // Replaying the printed seed reproduces the identical interleaving:
  // same verdict, same schedule fingerprint, twice.
  sched::ExplorerOptions options;
  options.seed = *deadlock_seed;
  options.change_interval = 6;
  const sched::SeedResult first = sched::run_seed(options, abba_body);
  const sched::SeedResult second = sched::run_seed(options, abba_body);
  EXPECT_EQ(first.verdict, sched::SeedVerdict::kDeadlock);
  EXPECT_EQ(second.verdict, sched::SeedVerdict::kDeadlock);
  ASSERT_TRUE(first.fingerprint.has_value()) << first.output;
  ASSERT_TRUE(second.fingerprint.has_value()) << second.output;
  EXPECT_EQ(*first.fingerprint, *second.fingerprint);
  const std::optional<std::uint64_t> original =
      sched::parse_fingerprint(deadlock_output);
  ASSERT_TRUE(original.has_value()) << deadlock_output;
  EXPECT_EQ(*first.fingerprint, *original);
}

TEST(ExplorerSelfTest, CleanSeedsCompleteAndReplayDeterministically) {
  // A racy-but-correct body: producer/consumer over a mutex + condvar.
  const auto body = [] {
    Mutex mu{"clean.mu"};
    CondVar cv{"clean.cv"};
    int stage = 0;
    sched::Thread worker("worker", [&mu, &cv, &stage] {
      MutexLock lock(mu);
      while (stage == 0) cv.wait(mu);
      stage = 2;
      cv.notify_all();
    });
    {
      MutexLock lock(mu);
      stage = 1;
      cv.notify_all();
      while (stage != 2) cv.wait(mu);
    }
    worker.join();
  };
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sched::ExplorerOptions options;
    options.seed = seed;
    const sched::SeedResult once = sched::run_seed(options, body);
    const sched::SeedResult again = sched::run_seed(options, body);
    ASSERT_EQ(once.verdict, sched::SeedVerdict::kOk)
        << "seed " << seed << ":\n"
        << once.output;
    ASSERT_EQ(again.verdict, sched::SeedVerdict::kOk);
    ASSERT_TRUE(once.fingerprint.has_value());
    EXPECT_EQ(*once.fingerprint, *again.fingerprint)
        << "seed " << seed << " replay diverged";
  }
}

TEST(ExplorerSelfTest, BudgetOverrunIsClassifiedNotHung) {
  // A livelocked schedule — two threads yield forever — must exit with
  // the budget verdict instead of wedging the harness.
  const auto body = [] {
    Mutex mu{"budget.mu"};
    bool done = false;  // never set: the loop only ends via the budget
    sched::Thread spinner("spinner", [&mu, &done] {
      for (;;) {
        MutexLock lock(mu);
        if (done) return;
      }
    });
    spinner.join();
  };
  sched::ExplorerOptions options;
  options.seed = 1;
  options.max_steps = 5'000;
  const sched::SeedResult result = sched::run_seed(options, body);
  EXPECT_EQ(result.verdict, sched::SeedVerdict::kBudgetExceeded)
      << result.output;
}

}  // namespace
}  // namespace hlock
