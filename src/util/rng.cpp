#include "util/rng.hpp"

#include "util/check.hpp"

namespace hlock {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) : origin_seed_(seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64_next(x);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  HLOCK_REQUIRE(bound > 0, "Rng::below requires a positive bound");
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  HLOCK_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? (*this)() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform01() {
  // 53 high bits -> double in [0, 1), the standard xoshiro recipe.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Derive a fresh 256-bit state by hashing (origin seed, stream id)
  // through splitmix64. Distinct (seed, stream) pairs map to distinct
  // well-mixed states, and the result does not depend on how many draws
  // have been made from the parent.
  std::uint64_t x = origin_seed_;
  std::uint64_t h = splitmix64_next(x) ^ (stream_id * 0xD1B54A32D192ED03ull);
  std::array<std::uint64_t, 4> state;
  for (auto& word : state) word = splitmix64_next(h);
  Rng child{state};
  child.origin_seed_ = h;
  return child;
}

}  // namespace hlock
