// Plain-text and CSV table rendering for benchmark output.
//
// Every figure-reproduction binary prints one aligned table (the series the
// paper plots) plus an optional CSV block for downstream plotting, so runs
// are both human-readable in a terminal and machine-consumable.
#pragma once

#include <string>
#include <vector>

namespace hlock::stats {

/// A simple column-aligned text table with an optional CSV rendering.
class TextTable {
 public:
  /// Sets the header row; must be called before add_row and fixes the
  /// column count.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders with space-padded, right-aligned columns (header left-aligned).
  std::string render() const;

  /// Renders as RFC-4180-ish CSV (fields containing commas are quoted).
  std::string render_csv() const;

  /// Number of data rows.
  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hlock::stats
