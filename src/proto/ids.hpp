// Strong identifier types for protocol participants and lock objects.
//
// NodeId and LockId are distinct types (not raw integers) so a node index
// can never be passed where a lock index is expected; both are cheap value
// types usable as container keys.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace hlock::proto {

/// Identifies one protocol participant (a process/machine in the paper's
/// terminology). Dense indices [0, n) are assigned by the runtime.
class NodeId {
 public:
  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t v) : value_(v) {}

  /// Sentinel meaning "no node" (e.g. the token root has no parent).
  static constexpr NodeId none() { return NodeId{kNone}; }

  constexpr bool is_none() const { return value_ == kNone; }
  constexpr std::uint32_t value() const { return value_; }
  constexpr auto operator<=>(const NodeId&) const = default;

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;
  std::uint32_t value_ = kNone;
};

/// Identifies one lock object (one shared resource). A deployment hosts an
/// arbitrary number of locks; each runs an independent protocol instance.
class LockId {
 public:
  constexpr LockId() = default;
  constexpr explicit LockId(std::uint32_t v) : value_(v) {}

  constexpr std::uint32_t value() const { return value_; }
  constexpr auto operator<=>(const LockId&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// Identifies one application-level lock request end to end: the node that
/// issued it plus that node's issuer-side sequence number. RequestIds ride
/// in the Message envelope so every hop a request's causal chain takes —
/// forwards, grants, token transfers — can be attributed to the request
/// that caused it (the substrate of the per-request spans in src/obs).
struct RequestId {
  NodeId origin = NodeId::none();
  std::uint64_t seq = 0;

  /// Sentinel meaning "this message serves no particular request"
  /// (releases, freezes).
  static constexpr RequestId none() { return RequestId{}; }

  constexpr bool is_none() const { return origin.is_none(); }
  constexpr auto operator<=>(const RequestId&) const = default;
};

/// "node<k>#<seq>" / "none" — for logs and test diagnostics.
std::string to_string(RequestId id);

/// "node<k>" / "none" — for logs and test diagnostics.
std::string to_string(NodeId id);
/// "lock<k>" — for logs and test diagnostics.
std::string to_string(LockId id);

}  // namespace hlock::proto

template <>
struct std::hash<hlock::proto::NodeId> {
  std::size_t operator()(hlock::proto::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};

template <>
struct std::hash<hlock::proto::LockId> {
  std::size_t operator()(hlock::proto::LockId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
