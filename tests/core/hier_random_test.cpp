// Property tests of the hierarchical protocol under randomized schedules:
// at every delivery step the multiset of held modes must be pairwise
// compatible and at most one token may exist; when the schedule drains,
// every request must have been served (liveness), structures must have
// converged (copysets mutual and accurate, parent chains acyclic), and the
// FIFO/freezing machinery must prevent writer starvation.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/mode_tables.hpp"
#include "tests/core/test_net.hpp"
#include "util/rng.hpp"

namespace hlock::test {
namespace {

using core::HierConfig;
using proto::kRealModes;
constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kU = LockMode::kU;
constexpr LockMode kW = LockMode::kW;

LockMode random_mode(Rng& rng) {
  // Read-heavy, like the paper's mix, but with enough writers to stress
  // queueing and freezing.
  const double draw = rng.uniform01();
  if (draw < 0.50) return LockMode::kIR;
  if (draw < 0.70) return LockMode::kR;
  if (draw < 0.80) return LockMode::kU;
  if (draw < 0.92) return LockMode::kIW;
  return LockMode::kW;
}

void assert_safety(HierNet& net, std::size_t n, int step) {
  std::size_t tokens = 0;
  std::vector<LockMode> held;
  for (std::size_t i = 0; i < n; ++i) {
    if (net.node(i).is_token()) ++tokens;
    if (net.node(i).held() != kNL) held.push_back(net.node(i).held());
  }
  // While a TOKEN message is in flight no node is the token node; at any
  // instant tokens-at-rest + tokens-in-flight must equal exactly one.
  for (const proto::Message& message : net.wire()) {
    if (std::holds_alternative<proto::HierToken>(message.payload)) ++tokens;
  }
  ASSERT_EQ(tokens, 1u) << "token count broken at step " << step;
  for (std::size_t a = 0; a < held.size(); ++a) {
    for (std::size_t b = a + 1; b < held.size(); ++b) {
      ASSERT_TRUE(core::compatible(held[a], held[b]))
          << "mutual exclusion violated at step " << step << ": "
          << to_string(held[a]) << " with " << to_string(held[b]);
    }
  }
}

void assert_quiescent_structure(HierNet& net, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(net.node(i).pending(), kNL) << "node " << i << " starved";
    EXPECT_TRUE(net.node(i).queue().empty()) << "stuck queue at node " << i;
    // Parent chains terminate at the token without cycles.
    std::size_t walker = i;
    std::size_t hops = 0;
    while (!net.node(walker).is_token()) {
      const NodeId parent = net.node(walker).parent();
      ASSERT_FALSE(parent.is_none());
      walker = parent.value();
      ASSERT_LE(++hops, n) << "parent cycle from node " << i;
    }
    // Copysets are mutual and carry the child's true owned mode.
    for (const core::CopysetEntry& entry : net.node(i).copyset()) {
      EXPECT_EQ(net.node(entry.node.value()).parent(),
                NodeId{static_cast<std::uint32_t>(i)})
          << "copyset of node " << i << " not mutual";
      EXPECT_EQ(net.node(entry.node.value()).owned(), entry.mode)
          << "stale copyset mode at node " << i;
    }
  }
}

struct RandomParam {
  std::size_t nodes;
  std::uint64_t seed;
  bool local_queueing;
  bool child_grants;
};

class HierRandomized : public ::testing::TestWithParam<RandomParam> {};

TEST_P(HierRandomized, SafetyLivenessAndConvergence) {
  const RandomParam param = GetParam();
  HierConfig config;
  config.local_queueing = param.local_queueing;
  config.child_grants = param.child_grants;

  const std::size_t n = param.nodes;
  HierNet net{n, config};
  Rng rng{param.seed};
  int issued = 0;
  int served_before = 0;

  for (int step = 0; step < 4000; ++step) {
    const std::size_t i = static_cast<std::size_t>(rng.below(n));
    HierAutomaton& node = net.node(i);
    if (node.held() != kNL) {
      if (node.held() == kU && !node.upgrading() && rng.chance(0.3)) {
        net.upgrade(i);
      } else if (!node.upgrading() && rng.chance(0.6)) {
        net.release(i);
      }
    } else if (node.pending() == kNL && rng.chance(0.5)) {
      net.request(i, random_mode(rng));
      ++issued;
    }
    // Deliver a random amount of traffic, checking safety after each hop.
    const std::uint64_t hops = rng.below(4);
    for (std::uint64_t h = 0; h < hops; ++h) {
      if (!net.deliver_one()) break;
      assert_safety(net, n, step);
    }
    assert_safety(net, n, step);
  }

  // Drain: settle the network and release every holder until nothing is
  // outstanding. Completing upgrades first keeps release() legal.
  for (int round = 0; round < 20000; ++round) {
    net.settle();
    bool any = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (net.node(i).held() != kNL && !net.node(i).upgrading()) {
        net.release(i);
        any = true;
      }
    }
    if (!any && net.wire().empty()) break;
  }
  net.settle();

  // Liveness: every issued request entered its critical section.
  int served = 0;
  for (std::size_t i = 0; i < n; ++i) served += net.cs_entries(i);
  EXPECT_EQ(served - served_before, issued);

  assert_quiescent_structure(net, n);
}

std::vector<RandomParam> sweep() {
  std::vector<RandomParam> params;
  for (std::size_t n : {2u, 3u, 5u, 8u, 16u}) {
    for (std::uint64_t seed : {1u, 7u, 1234u}) {
      params.push_back({n, seed, true, true});
    }
  }
  // Feature-flag ablations must preserve safety and liveness too.
  params.push_back({6, 99, false, true});
  params.push_back({6, 99, true, false});
  params.push_back({6, 99, false, false});
  params.push_back({12, 5, false, false});
  return params;
}

std::string param_name(const ::testing::TestParamInfo<RandomParam>& info) {
  const RandomParam& p = info.param;
  std::string name = "n" + std::to_string(p.nodes) + "_s" +
                     std::to_string(p.seed);
  if (!p.local_queueing) name += "_noQ";
  if (!p.child_grants) name += "_noCG";
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, HierRandomized, ::testing::ValuesIn(sweep()),
                         param_name);

// ---- Starvation / fairness --------------------------------------------------

TEST(Fairness, WriterIsNotStarvedByReaderStream) {
  // One writer queues behind a stream of IR readers; with freezing the
  // writer must be served as soon as the in-flight readers drain, no
  // matter how many new readers keep arriving.
  constexpr std::size_t kNodes = 8;
  HierNet net{kNodes};
  Rng rng{77};

  // Readers 1..6 hold IR; node 7 requests W.
  for (std::size_t i = 1; i <= 6; ++i) net.request(i, kIR);
  net.settle();
  net.request(7, kW);
  net.settle();
  ASSERT_EQ(net.cs_entries(7), 0);

  // Keep issuing new IR requests while draining the old ones. None of the
  // new ones may be served before the writer (they are frozen).
  for (std::size_t i = 1; i <= 6; ++i) {
    net.release(i);
    net.settle();
    if (net.node(0).held() != kNL) {
      net.release(0);
      net.settle();
    }
    // A fresh reader tries to sneak in.
    if (net.node(i).pending() == kNL && net.node(i).held() == kNL) {
      net.request(i, kIR);
      net.settle();
      if (net.cs_entries(7) == 0) {
        EXPECT_EQ(net.node(i).held(), kNL)
            << "reader " << i << " bypassed the waiting writer";
      }
    }
  }
  // Also drain the initial token holder's implicit ownership if any.
  net.settle();
  EXPECT_EQ(net.cs_entries(7), 1) << "writer starved";
  EXPECT_EQ(net.node(7).held(), kW);
}

TEST(Fairness, WithoutFreezingWriterCanStarve) {
  // The negative control: disable Rule 6 and show the same schedule lets
  // readers bypass the writer indefinitely. Path compression is also off:
  // its absorbing queueing incidentally parks readers behind the pending
  // writer, masking the bypass this test demonstrates.
  HierConfig config;
  config.freezing = false;
  config.path_compression = false;
  HierNet net{4, config};

  net.request(1, kIR);
  net.settle();
  net.request(3, kW);
  net.settle();
  ASSERT_EQ(net.cs_entries(3), 0);

  // Readers keep overlapping so the owned mode never drops to NL.
  for (int round = 0; round < 20; ++round) {
    net.request(2, kIR);
    net.settle();
    net.release(1);
    net.settle();
    net.request(1, kIR);
    net.settle();
    net.release(2);
    net.settle();
  }
  EXPECT_EQ(net.cs_entries(3), 0)
      << "without freezing the writer should still be waiting in this "
         "schedule (if this fails the ablation flag is broken)";
}

}  // namespace
}  // namespace hlock::test
