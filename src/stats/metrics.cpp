#include "stats/metrics.hpp"

namespace hlock::stats {

void MessageCounter::add(proto::MessageKind kind) {
  ++counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t MessageCounter::count(proto::MessageKind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t MessageCounter::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts_) sum += c;
  return sum;
}

void LatencyRecorder::record(SimTime latency) {
  samples_ms_.push_back(latency.to_ms());
}

double MetricsRegistry::messages_per_request() const {
  if (latency_.count() == 0) return 0.0;
  return static_cast<double>(messages_.total()) /
         static_cast<double>(latency_.count());
}

}  // namespace hlock::stats
