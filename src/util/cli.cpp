#include "util/cli.hpp"

#include <charconv>
#include <sstream>

#include "util/check.hpp"

namespace hlock {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_option(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  HLOCK_REQUIRE(!options_.count(name), "duplicate option declaration");
  options_[name] = Option{default_value, help, /*is_flag=*/false, {}};
  declaration_order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  HLOCK_REQUIRE(!options_.count(name), "duplicate option declaration");
  options_[name] = Option{"false", help, /*is_flag=*/true, {}};
  declaration_order_.push_back(name);
}

void CliParser::allow_positionals(const std::string& placeholder) {
  HLOCK_REQUIRE(!placeholder.empty(), "positionals need a help placeholder");
  positional_placeholder_ = placeholder;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return false;
    if (arg.rfind("--", 0) != 0) {
      HLOCK_REQUIRE(!positional_placeholder_.empty(),
                    "expected --option syntax, got: " + arg);
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);

    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    auto it = options_.find(name);
    HLOCK_REQUIRE(it != options_.end(), "unknown option: --" + name);
    Option& option = it->second;

    if (inline_value) {
      option.value = *inline_value;
    } else if (option.is_flag) {
      option.value = "true";
    } else {
      HLOCK_REQUIRE(i + 1 < argc, "missing value for --" + name);
      option.value = argv[++i];
    }
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name) const {
  auto it = options_.find(name);
  HLOCK_REQUIRE(it != options_.end(), "undeclared option queried: " + name);
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Option& option = find(name);
  return option.value.value_or(option.default_value);
}

std::int64_t CliParser::get_int(const std::string& name, std::int64_t min,
                                std::int64_t max) const {
  const std::string text = get_string(name);
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  HLOCK_REQUIRE(ec == std::errc{} && ptr == text.data() + text.size(),
                "--" + name + " expects an integer, got: " + text);
  HLOCK_REQUIRE(value >= min && value <= max,
                "--" + name + " out of range [" + std::to_string(min) + ", " +
                    std::to_string(max) + "]: " + text);
  return value;
}

double CliParser::get_double(const std::string& name, double min,
                             double max) const {
  const std::string text = get_string(name);
  std::size_t consumed = 0;
  double value = 0;
  try {
    value = std::stod(text, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  HLOCK_REQUIRE(consumed == text.size() && !text.empty(),
                "--" + name + " expects a number, got: " + text);
  HLOCK_REQUIRE(value >= min && value <= max,
                "--" + name + " out of range: " + text);
  return value;
}

bool CliParser::get_flag(const std::string& name) const {
  const Option& option = find(name);
  HLOCK_REQUIRE(option.is_flag, "--" + name + " is not a flag");
  const std::string text = get_string(name);
  if (text == "true" || text == "1") return true;
  if (text == "false" || text == "0") return false;
  throw UsageError("--" + name + " expects true/false, got: " + text);
}

bool CliParser::was_set(const std::string& name) const {
  return find(name).value.has_value();
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n";
  if (!positional_placeholder_.empty()) {
    os << "\nusage: " << program_ << " [options] "
       << positional_placeholder_ << "\n";
  }
  os << "\noptions:\n";
  for (const std::string& name : declaration_order_) {
    const Option& option = options_.at(name);
    os << "  --" << name;
    if (!option.is_flag) os << " <value>";
    os << "\n      " << option.help;
    if (!option.is_flag) os << " (default: " << option.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      print this text\n";
  return os.str();
}

}  // namespace hlock
