#include "runtime/thread_cluster.hpp"

#include "runtime/instrumented_engine.hpp"
#include "telemetry/exports.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::runtime {

namespace {

std::unique_ptr<LockEngine> make_engine(const ThreadClusterOptions& options,
                                        NodeId self) {
  std::unique_ptr<LockEngine> engine;
  if (options.protocol == Protocol::kHierarchical) {
    engine = std::make_unique<HierEngine>(self, options.initial_root,
                                          options.hier_config);
  } else if (options.protocol == Protocol::kRaymond) {
    HLOCK_REQUIRE(options.initial_root == NodeId{0},
                  "the Raymond tree is rooted at node 0");
    engine = std::make_unique<RaymondEngine>(self, options.node_count);
  } else {
    engine = std::make_unique<NaimiEngine>(self, options.initial_root);
  }
  if (options.metrics != nullptr) {
    engine = std::make_unique<InstrumentedEngine>(
        std::move(engine), *options.metrics, options.protocol, self);
  }
  return engine;
}

}  // namespace

ThreadCluster::ThreadCluster(const ThreadClusterOptions& options)
    : metrics_(options.metrics), watchdog_(options.watchdog) {
  if (options.transport == TransportKind::kTcp) {
    transport::TcpOptions tcp_options;
    tcp_options.batching = options.batching;
    auto tcp = std::make_unique<transport::TcpTransport>(options.node_count,
                                                         tcp_options);
    tcp_ = tcp.get();
    transport_ = std::move(tcp);
  } else {
    transport_ = std::make_unique<transport::InProcTransport>(
        transport::InProcOptions{options.node_count, options.message_latency,
                                 options.seed, options.codec_roundtrip,
                                 options.batching});
  }
  if (options.faults.any()) {
    transport::FaultPlan plan = options.faults;
    if (plan.seed == 0) plan.seed = options.seed;
    auto faulty = std::make_unique<transport::FaultyTransport>(
        std::move(transport_), plan);
    faulty_ = faulty.get();
    transport_ = std::move(faulty);
  }
  HLOCK_REQUIRE(options.node_count >= 1, "a cluster needs at least one node");
  HLOCK_REQUIRE(options.initial_root.value() < options.node_count,
                "the initial root must be one of the cluster's nodes");
  shard_count_ = options.engine_shards == 0 ? kDefaultEngineShards
                                            : options.engine_shards;
  if (metrics_ != nullptr) register_transport_metrics(options.node_count);
  nodes_.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const NodeId self{static_cast<std::uint32_t>(i)};
    auto rt = std::make_unique<NodeRuntime>();
    if (metrics_ != nullptr) {
      rt->recv_batch = &metrics_->histogram(
          telemetry::labeled("hlock_recv_batch_size",
                             {{"node", std::to_string(i)}}),
          telemetry::linear_bounds(1.0, 1.0, 16));
    }
    rt->shards.reserve(shard_count_);
    for (std::size_t s = 0; s < shard_count_; ++s) {
      auto shard = std::make_unique<Shard>();
      if (metrics_ != nullptr) {
        shard->queue_depth = &metrics_->gauge(telemetry::labeled(
            "hlock_engine_queue_depth",
            {{"node", std::to_string(i)}, {"shard", std::to_string(s)}}));
        shard->tokens_held = &metrics_->gauge(telemetry::labeled(
            "hlock_tokens_held",
            {{"node", std::to_string(i)}, {"shard", std::to_string(s)}}));
      }
      // No thread can see the node yet, but `engine` is lock-guarded state
      // of a foreign object as far as the analysis is concerned — take the
      // (uncontended, once-per-shard) lock rather than suppress.
      MutexLock guard(shard->mutex);
      shard->engine = make_engine(options, self);
      rt->shards.push_back(std::move(shard));
    }
    nodes_.push_back(std::move(rt));
  }
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const NodeId self{static_cast<std::uint32_t>(i)};
    const std::string name = "recv-" + std::to_string(i);
    nodes_[i]->receiver =
        sched::Thread(name.c_str(), [this, self] { receiver_loop(self); });
  }
}

void ThreadCluster::register_transport_metrics(std::size_t node_count) {
  transport::Transport* transport = transport_.get();
  metrics_->register_counter_fn(
      "hlock_transport_messages_sent_total",
      [transport] { return transport->messages_sent(); });
  metrics_->register_counter_fn("hlock_transport_bytes_sent_total",
                                [transport] {
                                  return transport->bytes_sent();
                                });
  // Fault/retry counter structs fold in via their X-macro field tables.
  // With both decorator and TCP present the TCP retry counters get their
  // own prefix so the two field sets cannot collide.
  if (faulty_ != nullptr) {
    telemetry::export_transport_counters(*metrics_, faulty_->counters(),
                                         "hlock_transport_");
    if (tcp_ != nullptr) {
      telemetry::export_transport_counters(*metrics_, tcp_->counters(),
                                           "hlock_tcp_transport_");
    }
  } else if (tcp_ != nullptr) {
    telemetry::export_transport_counters(*metrics_, tcp_->counters(),
                                         "hlock_transport_");
  }
  // Mailbox depth per node. Safe as a snapshot-time callback: the mailbox
  // mutex is a leaf — nothing acquired under it — so registry -> mailbox
  // cannot complete a cycle (unlike shard mutexes; see Shard).
  for (std::size_t i = 0; i < node_count; ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    metrics_->register_gauge_fn(
        telemetry::labeled("hlock_mailbox_depth",
                           {{"node", std::to_string(i)}}),
        [transport, node] {
          return static_cast<double>(transport->inbox_depth(node));
        });
  }
}

ThreadCluster::~ThreadCluster() {
  // The callback series read transport_ — stop the polling before the
  // teardown so a concurrent sampler snapshot never touches a dying
  // transport.
  if (metrics_ != nullptr) {
    metrics_->unregister_callbacks("hlock_transport_");
    metrics_->unregister_callbacks("hlock_tcp_transport_");
    metrics_->unregister_callbacks("hlock_mailbox_depth");
  }
  stopping_.store(true);
  // Notify while holding each shard's mutex: a client thread that already
  // checked its predicate but has not entered the wait yet would otherwise
  // miss the wake-up and block forever (and the unsynchronized flag write
  // would race with the predicate read).
  for (auto& rt : nodes_) {
    for (auto& shard : rt->shards) {
      MutexLock guard(shard->mutex);
      shard->cv.notify_all();
    }
  }
  transport_->shutdown();
  for (auto& rt : nodes_) {
    if (rt->receiver.joinable()) rt->receiver.join();
  }
  // Wait until every woken client call has left its wait; destroying the
  // node state under a thread still inside lock()/upgrade() would be a
  // use-after-free.
  for (auto& rt : nodes_) {
    for (auto& shard : rt->shards) {
      MutexLock guard(shard->mutex);
      while (shard->waiters != 0) shard->cv.wait(shard->mutex);
    }
  }
}

void ThreadCluster::set_event_sink(EventSink sink) {
  // Under event_mutex_: receivers read the sink while applying effects, so
  // an unguarded write here would race with every in-flight event (a real
  // defect the capability analysis flagged when the slot was annotated).
  MutexLock guard(event_mutex_);
  event_sink_ = std::move(sink);
}

ThreadCluster::NodeRuntime& ThreadCluster::runtime_of(NodeId node) {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return *nodes_[node.value()];
}

void ThreadCluster::receiver_loop(NodeId node) {
  NodeRuntime& rt = runtime_of(node);
  for (;;) {
    // One transport call drains every matured message (one mailbox lock
    // acquisition for the whole burst); an empty batch means shutdown.
    std::vector<proto::Message> batch = transport_->recv_ready(node);
    if (batch.empty()) return;
    if (rt.recv_batch != nullptr) {
      rt.recv_batch->record(static_cast<double>(batch.size()));
    }
    // Explicit schedule point: under the explorer a client thread may slip
    // in between the drain and the dispatch (shutdown/close races live
    // exactly there).
    sched::yield_point("thread_cluster.recv-batch");
    // Dispatch consecutive same-shard runs under one shard lock
    // acquisition, moving each message straight into delivery — batches
    // never cross shards out of order, preserving per-channel FIFO.
    std::size_t i = 0;
    while (i < batch.size()) {
      Shard& shard = shard_of(rt, batch[i].lock);
      MutexLock guard(shard.mutex);
      do {
        proto::Message& message = batch[i];
        // An exception escaping a std::thread calls std::terminate, so a
        // receiver converts failures into a counted, logged error effect
        // and keeps draining its mailbox.
        try {
          rt.clock.observe(message.lamport);
          Effects effects = shard.engine->deliver(message);
          apply(rt, shard, message.lock, std::move(effects));
        } catch (const std::exception& error) {
          receiver_errors_.fetch_add(1, std::memory_order_relaxed);
          HLOCK_LOG(kError, "node " << node.value()
                                    << ": error applying message: "
                                    << error.what());
        }
        ++i;
      } while (i < batch.size() &&
               &shard_of(rt, batch[i].lock) == &shard);
    }
  }
}

void ThreadCluster::apply(NodeRuntime& rt, Shard& shard, LockId lock,
                          Effects&& effects) {
  // One Lamport tick per automaton step; every event of the step shares it,
  // every send ticks further (obs/lamport.hpp).
  const std::uint64_t step_time = rt.clock.tick();
  // Events are sunk before the step's messages go out so the sink's global
  // order respects causality (see set_event_sink). The sink slot is only
  // readable under event_mutex_ — checking it unguarded raced with
  // set_event_sink().
  if (!effects.events.empty()) {
    const auto elapsed = std::chrono::steady_clock::now() - started_;
    const SimTime at = SimTime::ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    MutexLock sink_guard(event_mutex_);
    if (event_sink_) {
      for (trace::TraceEvent& event : effects.events) {
        event.at = at;
        event.lamport = step_time;
        event_sink_(std::move(event));
      }
    }
  }
  if (!effects.messages.empty()) {
    for (proto::Message& message : effects.messages) {
      message.lamport = rt.clock.tick();
    }
    // One transport call for the whole step: the transport coalesces
    // same-destination runs into batch frames (when batching is on) and
    // falls back to per-message sends otherwise.
    transport_->send_batch(std::move(effects.messages));
  }
  bool notify = false;
  if (effects.entered_cs) {
    shard.granted.insert(lock);
    notify = true;
  }
  if (effects.upgraded) {
    shard.upgraded.insert(lock);
    notify = true;
  }
  if (notify) shard.cv.notify_all();
  // Refresh the shard's depth gauges after every step, under the shard
  // mutex we already hold — value gauges rather than snapshot callbacks to
  // keep the registry mutex out of the shard-lock order (see Shard).
  if (shard.queue_depth != nullptr) {
    shard.queue_depth->set(
        static_cast<double>(shard.engine->queued_requests()));
    shard.tokens_held->set(static_cast<double>(shard.engine->tokens_held()));
  }
}

void ThreadCluster::lock(NodeId node, LockId lock, LockMode mode,
                         std::uint8_t priority) {
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = shard_of(rt, lock);
  // Watchdog bracket around the whole blocking wait. begin() before the
  // shard mutex (it takes the watchdog's own); end() under it is fine —
  // shard -> watchdog is the only order these two ever compose in.
  std::uint64_t stall_key = 0;
  if (watchdog_ != nullptr) {
    stall_key = watchdog_->begin(
        "node=" + std::to_string(node.value()) +
        " lock=" + std::to_string(lock.value()) +
        " mode=" + proto::to_string(mode));
  }
  sched::yield_point("thread_cluster.lock");
  MutexLock guard(shard.mutex);
  Effects effects = shard.engine->request(lock, mode, priority);
  apply(rt, shard, lock, std::move(effects));
  ++shard.waiters;
  while (!stopping_ && shard.granted.count(lock) == 0) {
    shard.cv.wait(shard.mutex);
  }
  shard.granted.erase(lock);
  --shard.waiters;
  shard.cv.notify_all();  // a tearing-down destructor may drain waiters
  if (watchdog_ != nullptr) watchdog_->end(stall_key);
}

void ThreadCluster::unlock(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = shard_of(rt, lock);
  MutexLock guard(shard.mutex);
  Effects effects = shard.engine->release(lock);
  apply(rt, shard, lock, std::move(effects));
}

void ThreadCluster::upgrade(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = shard_of(rt, lock);
  std::uint64_t stall_key = 0;
  if (watchdog_ != nullptr) {
    stall_key = watchdog_->begin("node=" + std::to_string(node.value()) +
                                 " lock=" + std::to_string(lock.value()) +
                                 " upgrade");
  }
  MutexLock guard(shard.mutex);
  Effects effects = shard.engine->upgrade(lock);
  apply(rt, shard, lock, std::move(effects));
  ++shard.waiters;
  while (!stopping_ && shard.upgraded.count(lock) == 0) {
    shard.cv.wait(shard.mutex);
  }
  shard.upgraded.erase(lock);
  --shard.waiters;
  shard.cv.notify_all();  // a tearing-down destructor may drain waiters
  if (watchdog_ != nullptr) watchdog_->end(stall_key);
}

bool ThreadCluster::holds(NodeId node, LockId lock) {
  NodeRuntime& rt = runtime_of(node);
  Shard& shard = shard_of(rt, lock);
  MutexLock guard(shard.mutex);
  return shard.engine->holds(lock);
}

}  // namespace hlock::runtime
