// Tests of the simulated-cluster harness: engine wiring, metrics
// collection, grant callbacks, and the cluster-wide invariant helpers.
#include "runtime/sim_cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/invariants.hpp"
#include "util/check.hpp"

namespace hlock::runtime {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::MessageKind;
using proto::NodeId;

SimClusterOptions small_options(Protocol protocol, std::size_t n = 4) {
  SimClusterOptions options;
  options.node_count = n;
  options.protocol = protocol;
  options.message_latency = DurationDist::constant(SimTime::ms(1));
  options.seed = 1;
  return options;
}

struct GrantLog {
  std::vector<std::pair<NodeId, LockId>> grants;
  std::vector<std::pair<NodeId, LockId>> upgrades;

  void attach(SimCluster& cluster) {
    cluster.set_grant_handler(
        [this](NodeId node, LockId lock, bool upgraded) {
          if (upgraded) {
            upgrades.emplace_back(node, lock);
          } else {
            grants.emplace_back(node, lock);
          }
        });
  }
};

TEST(SimCluster, RejectsInvalidOptions) {
  SimClusterOptions options;
  options.node_count = 0;
  EXPECT_THROW(SimCluster{options}, UsageError);
  options.node_count = 2;
  options.initial_root = NodeId{5};
  EXPECT_THROW(SimCluster{options}, UsageError);
}

TEST(SimCluster, HierRequestGrantReleaseRoundTrip) {
  SimCluster cluster{small_options(Protocol::kHierarchical)};
  GrantLog log;
  log.attach(cluster);
  const LockId lock{0};

  cluster.request(NodeId{1}, lock, LockMode::kR);
  EXPECT_TRUE(log.grants.empty()) << "grant needs message round trips";
  cluster.simulator().run_to_completion();
  ASSERT_EQ(log.grants.size(), 1u);
  EXPECT_EQ(log.grants[0].first, NodeId{1});

  // The paper's elementary cost: REQUEST + TOKEN here (node0 owns nothing,
  // so the token transfers).
  EXPECT_EQ(cluster.metrics().messages().count(MessageKind::kHierRequest),
            1u);
  EXPECT_EQ(cluster.metrics().messages().count(MessageKind::kHierToken), 1u);

  cluster.release(NodeId{1}, lock);
  cluster.simulator().run_to_completion();
  const auto report = check_quiescent_structure(cluster, {lock});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SimCluster, GrantTimesRespectNetworkLatency) {
  SimCluster cluster{small_options(Protocol::kHierarchical)};
  GrantLog log;
  log.attach(cluster);
  cluster.request(NodeId{1}, LockId{0}, LockMode::kR);
  cluster.simulator().run_to_completion();
  // REQUEST (1 ms) + TOKEN (1 ms) with constant latency.
  EXPECT_EQ(cluster.simulator().now(), SimTime::ms(2));
}

TEST(SimCluster, ConcurrentCompatibleGrants) {
  SimCluster cluster{small_options(Protocol::kHierarchical, 6)};
  GrantLog log;
  log.attach(cluster);
  const LockId lock{0};
  for (std::uint32_t i = 1; i < 6; ++i) {
    cluster.request(NodeId{i}, lock, LockMode::kIR);
  }
  cluster.simulator().run_to_completion();
  EXPECT_EQ(log.grants.size(), 5u) << "IR is compatible with IR";
  const auto safety = check_safety(
      cluster, std::vector<proto::LockId>{lock});
  EXPECT_TRUE(safety.ok()) << safety.to_string();
}

TEST(SimCluster, UpgradeCallback) {
  SimCluster cluster{small_options(Protocol::kHierarchical)};
  GrantLog log;
  log.attach(cluster);
  const LockId lock{0};
  cluster.request(NodeId{2}, lock, LockMode::kU);
  cluster.simulator().run_to_completion();
  ASSERT_EQ(log.grants.size(), 1u);
  cluster.upgrade(NodeId{2}, lock);
  cluster.simulator().run_to_completion();
  ASSERT_EQ(log.upgrades.size(), 1u);
  EXPECT_EQ(log.upgrades[0].first, NodeId{2});
}

TEST(SimCluster, NaimiMutualExclusion) {
  SimCluster cluster{small_options(Protocol::kNaimi)};
  GrantLog log;
  log.attach(cluster);
  const LockId lock{3};
  cluster.request(NodeId{1}, lock, LockMode::kW);
  cluster.request(NodeId{2}, lock, LockMode::kW);
  cluster.simulator().run_to_completion();
  // Only one may hold; the second waits for a release.
  EXPECT_EQ(log.grants.size(), 1u);
  const NodeId holder = log.grants[0].first;
  cluster.release(holder, lock);
  cluster.simulator().run_to_completion();
  EXPECT_EQ(log.grants.size(), 2u);
  cluster.release(log.grants[1].first, lock);
  cluster.simulator().run_to_completion();
  const auto report = check_quiescent_structure(
      cluster, std::vector<proto::LockId>{lock});
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SimCluster, MultipleIndependentLocks) {
  SimCluster cluster{small_options(Protocol::kHierarchical)};
  GrantLog log;
  log.attach(cluster);
  cluster.request(NodeId{1}, LockId{0}, LockMode::kW);
  cluster.request(NodeId{2}, LockId{1}, LockMode::kW);
  cluster.simulator().run_to_completion();
  EXPECT_EQ(log.grants.size(), 2u) << "distinct locks do not contend";
}

TEST(SimCluster, ProtocolMismatchAccessorsRejected) {
  SimCluster hier{small_options(Protocol::kHierarchical)};
  EXPECT_THROW(hier.naimi_automaton(NodeId{0}, LockId{0}), UsageError);
  SimCluster naimi{small_options(Protocol::kNaimi)};
  EXPECT_THROW(naimi.hier_automaton(NodeId{0}, LockId{0}), UsageError);
  EXPECT_THROW(naimi.upgrade(NodeId{0}, LockId{0}), UsageError);
}

TEST(SimCluster, GrantWithoutHandlerIsAnError) {
  SimCluster cluster{small_options(Protocol::kHierarchical)};
  EXPECT_THROW(cluster.request(NodeId{0}, LockId{0}, LockMode::kR),
               InvariantError);
}

TEST(InvariantHelpers, DetectIncompatibleHolds) {
  // check_safety must actually flag violations, not just pass vacuously:
  // fabricate one by driving two automatons of different clusters... not
  // possible through the public API, so instead verify it reports the
  // correct shape on a healthy cluster and a count on a token-less lock id
  // that was never touched (token exists lazily at node 0).
  SimCluster cluster{small_options(Protocol::kHierarchical)};
  GrantLog log;
  log.attach(cluster);
  const auto report = check_safety(cluster, {LockId{0}});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.to_string(), "");
}

TEST(ProtocolName, ToString) {
  EXPECT_EQ(to_string(Protocol::kHierarchical), "hierarchical");
  EXPECT_EQ(to_string(Protocol::kNaimi), "naimi");
}

}  // namespace
}  // namespace hlock::runtime
