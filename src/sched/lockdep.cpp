#include "sched/lockdep.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <sstream>

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define HLOCK_SCHED_HAVE_BACKTRACE 1
#endif

namespace hlock::sched {

namespace {

/// Captures and symbolizes the current call stack (best effort; empty
/// where the platform offers no backtrace). Only runs when an edge is
/// recorded for the first time, never on the per-acquire fast path.
std::string capture_stack() {
#ifdef HLOCK_SCHED_HAVE_BACKTRACE
  void* frames[32];
  const int depth = backtrace(frames, 32);
  char** symbols = backtrace_symbols(frames, depth);
  if (symbols == nullptr) return {};
  std::ostringstream out;
  // Skip the capture machinery itself (this function + the hook).
  for (int i = 2; i < depth; ++i) out << "    " << symbols[i] << "\n";
  std::free(symbols);
  return out.str();
#else
  return {};
#endif
}

/// "file.cpp:123" (basename only) or the explicit name.
std::string display_name(const SyncId& id) {
  if (id.name != nullptr) return id.name;
  std::string file = id.file;
  const std::size_t slash = file.find_last_of('/');
  if (slash != std::string::npos) file.erase(0, slash + 1);
  return file + ":" + std::to_string(id.line);
}

}  // namespace

struct Lockdep::ClassInfo {
  std::string name;
  std::vector<std::size_t> out;  ///< adjacency: classes acquired after this
};

struct Lockdep::Edge {
  std::string stack;     ///< acquisition stack of the first occurrence
  bool reported = false; ///< a cycle through this edge was already reported
};

namespace {

/// One lock currently held by a thread, tagged with the recorder that saw
/// the acquire (a thread can outlive or predate any given Lockdep).
struct HeldLock {
  const Lockdep* owner;
  const void* object;
  std::size_t cls;
};

thread_local std::vector<HeldLock> t_held;

}  // namespace

std::string LockdepReport::render() const {
  std::ostringstream out;
  out << "lockdep: POTENTIAL DEADLOCK (lock-order inversion)\n  cycle: ";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i != 0) out << " -> ";
    out << cycle[i];
  }
  out << "\n  order recorded earlier at:\n"
      << (forward_stack.empty() ? "    (no backtrace available)\n"
                                : forward_stack)
      << "  inverse order at:\n"
      << (inverse_stack.empty() ? "    (no backtrace available)\n"
                                : inverse_stack);
  return out.str();
}

Lockdep::Lockdep(std::function<void(const LockdepReport&)> on_report)
    : on_report_(std::move(on_report)) {
  if (!on_report_) {
    on_report_ = [](const LockdepReport& report) {
      std::fprintf(stderr, "%s", report.render().c_str());
    };
  }
}

Lockdep::~Lockdep() = default;

std::size_t Lockdep::class_of(const SyncId& id) {
  const auto site_key = id.name != nullptr
                            ? std::make_pair(
                                  static_cast<const void*>(id.name), 0u)
                            : std::make_pair(
                                  static_cast<const void*>(id.file), id.line);
  if (const auto hit = site_index_.find(site_key);
      hit != site_index_.end()) {
    return hit->second;
  }
  std::string key = id.name != nullptr
                        ? std::string("n:") + id.name
                        : std::string(id.file) + ":" +
                              std::to_string(id.line);
  const auto [it, inserted] = class_index_.try_emplace(
      std::move(key), classes_.size());
  if (inserted) classes_.push_back(ClassInfo{display_name(id), {}});
  site_index_.emplace(site_key, it->second);
  return it->second;
}

bool Lockdep::reaches(std::size_t to, std::size_t from) const {
  if (to == from) return true;
  std::vector<bool> seen(classes_.size(), false);
  std::deque<std::size_t> frontier{to};
  seen[to] = true;
  while (!frontier.empty()) {
    const std::size_t at = frontier.front();
    frontier.pop_front();
    for (const std::size_t next : classes_[at].out) {
      if (next == from) return true;
      if (!seen[next]) {
        seen[next] = true;
        frontier.push_back(next);
      }
    }
  }
  return false;
}

void Lockdep::acquiring(const SyncId& id) {
  // Snapshot this thread's held locks (ours only) before taking mu_ so the
  // graph mutex is never held while touching thread-local state.
  std::vector<std::pair<const void*, std::size_t>> held;
  for (const HeldLock& h : t_held) {
    if (h.owner == this) held.emplace_back(h.object, h.cls);
  }
  if (held.empty()) return;

  std::lock_guard<std::mutex> guard(mu_);
  const std::size_t cls = class_of(id);
  for (const auto& [object, from] : held) {
    if (object == id.object) continue;  // relocking the same instance: UB
                                        // elsewhere, not an ordering fact
    const auto edge_key = std::make_pair(from, cls);
    auto it = edges_.find(edge_key);
    const bool is_new = it == edges_.end();
    if (is_new) {
      // Cycle check BEFORE inserting: does the new from -> cls edge close
      // a loop, i.e. does cls already reach from?
      const bool cycle = reaches(cls, from);
      it = edges_.emplace(edge_key, Edge{capture_stack(), false}).first;
      classes_[from].out.push_back(cls);
      if (cycle && !it->second.reported) {
        it->second.reported = true;
        ++violations_;
        LockdepReport report;
        report.cycle = {classes_[from].name, classes_[cls].name,
                        classes_[from].name};
        // The earlier, opposite-order edge. For a 2-cycle it is (cls,
        // from) directly; for longer cycles the first hop out of cls that
        // reaches from still carries the representative stack.
        const auto reverse = edges_.find(std::make_pair(cls, from));
        if (reverse != edges_.end()) {
          report.forward_stack = reverse->second.stack;
        } else {
          for (const std::size_t next : classes_[cls].out) {
            const auto hop = edges_.find(std::make_pair(cls, next));
            if (hop != edges_.end() && reaches(next, from)) {
              report.cycle = {classes_[from].name, classes_[cls].name,
                              classes_[next].name, "...",
                              classes_[from].name};
              report.forward_stack = hop->second.stack;
              break;
            }
          }
        }
        report.inverse_stack = it->second.stack;
        if (reports_.size() < 32) reports_.push_back(report);
        on_report_(report);
      }
    }
  }
}

void Lockdep::acquired(const SyncId& id) {
  std::size_t cls;
  {
    std::lock_guard<std::mutex> guard(mu_);
    cls = class_of(id);
  }
  t_held.push_back(HeldLock{this, id.object, cls});
}

void Lockdep::released(const SyncId& id) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->owner == this && it->object == id.object) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::size_t Lockdep::violation_count() const {
  std::lock_guard<std::mutex> guard(mu_);
  return violations_;
}

std::vector<LockdepReport> Lockdep::reports() const {
  std::lock_guard<std::mutex> guard(mu_);
  return reports_;
}

std::string Lockdep::render_graph() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> lines;
  lines.reserve(edges_.size());
  for (const auto& [key, edge] : edges_) {
    lines.push_back(classes_[key.first].name + " -> " +
                    classes_[key.second].name);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

void Lockdep::reset() {
  std::lock_guard<std::mutex> guard(mu_);
  for (ClassInfo& cls : classes_) cls.out.clear();
  edges_.clear();
  reports_.clear();
  violations_ = 0;
}

Lockdep* install_global_lockdep() {
  // Deliberately leaked: threads may hit sync hooks during static
  // destruction, after any destructor order we could arrange.
  static Lockdep* const instance = new Lockdep();  // NOLINT
  SyncObserver* expected = nullptr;
  if (g_sync_observer.compare_exchange_strong(expected, instance,
                                              std::memory_order_acq_rel)) {
    return instance;
  }
  return expected == instance ? instance : nullptr;
}

}  // namespace hlock::sched
