// Experiment metrics: message counts and request latencies.
//
// The paper's two headline metrics are (1) the average number of protocol
// messages per application-level lock request and (2) the request latency —
// "the time elapsed between issuing a request and entering the critical
// section". MetricsRegistry collects both across a run; harnesses read one
// registry per simulated cluster.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "proto/message.hpp"
#include "stats/summary.hpp"
#include "util/sim_time.hpp"

namespace hlock::stats {

/// Plain-value copy of TransportCounters, safe to compare and print.
struct TransportCounterSnapshot {
  // Injection side (faults put on the wire).
  std::uint64_t drops = 0;            ///< wire losses (later retransmitted)
  std::uint64_t delays = 0;           ///< messages given extra latency
  std::uint64_t duplicates = 0;       ///< extra wire copies injected
  std::uint64_t reorders = 0;         ///< messages allowed to be overtaken
  std::uint64_t partition_drops = 0;  ///< messages blocked by a partition
  // Healing side (recovery actions that masked a fault).
  std::uint64_t retransmits = 0;           ///< lost messages re-sent
  std::uint64_t duplicates_discarded = 0;  ///< wire copies deduplicated
  std::uint64_t resequenced = 0;           ///< overtaken messages re-ordered
  // TCP send/receive recovery.
  std::uint64_t send_retries = 0;  ///< failed writes retried with backoff
  std::uint64_t reconnects = 0;    ///< channels re-established after failure
  std::uint64_t send_failures = 0; ///< frames dropped after retry exhaustion
  std::uint64_t misaddressed_frames = 0;  ///< frames discarded by routing

  /// Total faults put on the wire.
  std::uint64_t faults_injected() const {
    return drops + delays + duplicates + reorders + partition_drops;
  }

  bool operator==(const TransportCounterSnapshot&) const = default;
};

/// One-line human-readable rendering of a counter snapshot.
std::string to_string(const TransportCounterSnapshot& snapshot);

/// Cumulative per-transport fault and recovery counters.
///
/// Shared by the fault-injecting transport decorator and the TCP transport's
/// retry path; counters are atomic because transports are touched from
/// receiver, client, and delivery threads concurrently. Relaxed ordering is
/// sufficient — these are statistics, not synchronization.
class TransportCounters {
 public:
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> duplicates{0};
  std::atomic<std::uint64_t> reorders{0};
  std::atomic<std::uint64_t> partition_drops{0};
  std::atomic<std::uint64_t> retransmits{0};
  std::atomic<std::uint64_t> duplicates_discarded{0};
  std::atomic<std::uint64_t> resequenced{0};
  std::atomic<std::uint64_t> send_retries{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> send_failures{0};
  std::atomic<std::uint64_t> misaddressed_frames{0};

  /// Consistent-enough copy of all counters (each load is atomic; the set
  /// is not a cross-counter snapshot, which statistics do not need).
  TransportCounterSnapshot snapshot() const;
};

/// Message counts broken down by protocol message kind.
///
/// Counters are atomic: harnesses read totals (progress displays, chaos
/// snapshots) while senders are still counting, and the previous plain
/// integers made every such snapshot read a data race. Relaxed ordering is
/// sufficient — statistics, not synchronization. Like TransportCounters,
/// reads are per-counter atomic, not a cross-counter snapshot.
class MessageCounter {
 public:
  /// Counts one sent message. Thread-safe.
  void add(proto::MessageKind kind);

  /// Messages of one kind. Thread-safe snapshot read.
  std::uint64_t count(proto::MessageKind kind) const;

  /// All messages. Thread-safe snapshot read.
  std::uint64_t total() const;

 private:
  std::array<std::atomic<std::uint64_t>, proto::kMessageKindCount> counts_{};
};

/// Latency samples of completed application-level requests.
class LatencyRecorder {
 public:
  /// Records one completed request's latency.
  void record(SimTime latency);

  /// Number of recorded requests.
  std::size_t count() const { return samples_ms_.size(); }

  /// Latency samples in milliseconds, in completion order.
  const std::vector<double>& samples_ms() const { return samples_ms_; }

  /// Exact summary over all samples (milliseconds).
  Summary summarize() const { return stats::summarize(samples_ms_); }

 private:
  std::vector<double> samples_ms_;
};

/// Everything one experiment run collects.
class MetricsRegistry {
 public:
  MessageCounter& messages() { return messages_; }
  const MessageCounter& messages() const { return messages_; }

  LatencyRecorder& latency() { return latency_; }
  const LatencyRecorder& latency() const { return latency_; }

  /// Messages per completed application-level request — the paper's
  /// Fig. 7/9 metric. Zero when no request completed.
  double messages_per_request() const;

 private:
  MessageCounter messages_;
  LatencyRecorder latency_;
};

}  // namespace hlock::stats
