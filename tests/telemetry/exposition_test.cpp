// Exposition round-trip tests: render a registry snapshot to Prometheus
// text, parse it back, and prove the checker accepts the real thing while
// flagging every doctored violation it exists to catch.
#include "telemetry/exposition.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/text_parse.hpp"

namespace hlock::telemetry {
namespace {

void populate(Registry& registry) {
  registry.counter(labeled("hlock_requests_total", {{"node", "0"}})).inc(5);
  registry.counter(labeled("hlock_requests_total", {{"node", "1"}})).inc(7);
  registry.gauge("hlock_queue_depth").set(3.0);
  Histogram& wait =
      registry.histogram("hlock_wait_ms", linear_bounds(1.0, 1.0, 4));
  wait.record(0.5);
  wait.record(2.5);
  wait.record(50.0);
}

TEST(Exposition, RenderParseRoundTripIsClean) {
  Registry registry;
  populate(registry);
  const std::string text = render_prometheus(registry.snapshot());

  const ParsedExposition parsed = parse_exposition(text);
  EXPECT_TRUE(parsed.errors.empty());
  EXPECT_TRUE(check_exposition(parsed).empty())
      << check_exposition(parsed).front();

  EXPECT_EQ(parsed.types.at("hlock_requests_total"), "counter");
  EXPECT_EQ(parsed.types.at("hlock_queue_depth"), "gauge");
  EXPECT_EQ(parsed.types.at("hlock_wait_ms"), "histogram");

  const ParsedSeries* node0 =
      parsed.find("hlock_requests_total{node=\"0\"}");
  ASSERT_NE(node0, nullptr);
  EXPECT_EQ(node0->value, 5.0);
  EXPECT_EQ(node0->family, "hlock_requests_total");
  EXPECT_EQ(parsed.prefixed_sum("hlock_requests_total"), 12.0);

  // Histogram expansion: cumulative buckets ending in +Inf, sum, count.
  const ParsedSeries* inf = parsed.find("hlock_wait_ms_bucket{le=\"+Inf\"}");
  ASSERT_NE(inf, nullptr);
  EXPECT_EQ(inf->value, 3.0);
  const ParsedSeries* count = parsed.find("hlock_wait_ms_count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->value, 3.0);
  const ParsedSeries* sum = parsed.find("hlock_wait_ms_sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(sum->value, 53.0);
}

TEST(Exposition, TypeLinesAppearOncePerFamily) {
  Registry registry;
  populate(registry);
  const std::string text = render_prometheus(registry.snapshot());
  std::size_t count = 0;
  std::size_t at = 0;
  while ((at = text.find("# TYPE hlock_requests_total ", at)) !=
         std::string::npos) {
    ++count;
    ++at;
  }
  EXPECT_EQ(count, 1u);
}

TEST(Exposition, RenderingIsByteDeterministic) {
  Registry registry;
  populate(registry);
  EXPECT_EQ(render_prometheus(registry.snapshot()),
            render_prometheus(registry.snapshot()));
}

std::vector<std::string> violations_of(const std::string& text) {
  return check_exposition(parse_exposition(text));
}

bool mentions(const std::vector<std::string>& violations,
              const std::string& needle) {
  for (const std::string& v : violations) {
    if (v.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(ExpositionChecker, FlagsDuplicateSeries) {
  const std::string text =
      "# TYPE hlock_x_total counter\n"
      "hlock_x_total 1\n"
      "hlock_x_total 2\n";
  EXPECT_TRUE(mentions(violations_of(text), "duplicate series"));
}

TEST(ExpositionChecker, FlagsMissingTypeLine) {
  EXPECT_TRUE(mentions(violations_of("hlock_untyped_total 1\n"),
                       "without TYPE line"));
}

TEST(ExpositionChecker, FlagsNegativeCounters) {
  const std::string text =
      "# TYPE hlock_x_total counter\n"
      "hlock_x_total -3\n";
  EXPECT_TRUE(mentions(violations_of(text), "negative counter"));
  // A negative gauge is fine.
  EXPECT_TRUE(violations_of("# TYPE hlock_g gauge\nhlock_g -3\n").empty());
}

TEST(ExpositionChecker, FlagsNonCumulativeBuckets) {
  const std::string text =
      "# TYPE hlock_ms histogram\n"
      "hlock_ms_bucket{le=\"1\"} 5\n"
      "hlock_ms_bucket{le=\"2\"} 3\n"
      "hlock_ms_bucket{le=\"+Inf\"} 5\n"
      "hlock_ms_sum 9\n"
      "hlock_ms_count 5\n";
  EXPECT_TRUE(mentions(violations_of(text), "not cumulative"));
}

TEST(ExpositionChecker, FlagsBucketsOutOfOrder) {
  const std::string text =
      "# TYPE hlock_ms histogram\n"
      "hlock_ms_bucket{le=\"2\"} 3\n"
      "hlock_ms_bucket{le=\"1\"} 3\n"
      "hlock_ms_bucket{le=\"+Inf\"} 3\n"
      "hlock_ms_sum 6\n"
      "hlock_ms_count 3\n";
  EXPECT_TRUE(mentions(violations_of(text), "out of order"));
}

TEST(ExpositionChecker, FlagsMissingInfBucket) {
  const std::string text =
      "# TYPE hlock_ms histogram\n"
      "hlock_ms_bucket{le=\"1\"} 2\n"
      "hlock_ms_sum 2\n"
      "hlock_ms_count 2\n";
  EXPECT_TRUE(mentions(violations_of(text), "missing +Inf"));
}

TEST(ExpositionChecker, FlagsCountInfMismatch) {
  const std::string text =
      "# TYPE hlock_ms histogram\n"
      "hlock_ms_bucket{le=\"1\"} 2\n"
      "hlock_ms_bucket{le=\"+Inf\"} 2\n"
      "hlock_ms_sum 2\n"
      "hlock_ms_count 7\n";
  EXPECT_TRUE(mentions(violations_of(text), "_count != +Inf"));
}

TEST(ExpositionChecker, LabeledHistogramsAreKeyedPerLabelSet) {
  // Two nodes' histograms must not be conflated into one bucket run.
  const std::string text =
      "# TYPE hlock_ms histogram\n"
      "hlock_ms_bucket{node=\"0\",le=\"1\"} 2\n"
      "hlock_ms_bucket{node=\"0\",le=\"+Inf\"} 2\n"
      "hlock_ms_sum{node=\"0\"} 2\n"
      "hlock_ms_count{node=\"0\"} 2\n"
      "hlock_ms_bucket{node=\"1\",le=\"1\"} 9\n"
      "hlock_ms_bucket{node=\"1\",le=\"+Inf\"} 9\n"
      "hlock_ms_sum{node=\"1\"} 9\n"
      "hlock_ms_count{node=\"1\"} 9\n";
  EXPECT_TRUE(violations_of(text).empty());
}

TEST(ExpositionChecker, ReportsParseErrors) {
  EXPECT_TRUE(mentions(violations_of("# TYPE broken\n"), "malformed TYPE"));
  EXPECT_TRUE(mentions(violations_of("hlock_x_total\n"),
                       "no value separator"));
  EXPECT_TRUE(mentions(
      violations_of("# TYPE hlock_x gauge\nhlock_x potato\n"),
      "unparseable value"));
}

TEST(ExpositionChecker, MonotoneComparesCountersAcrossScrapes) {
  const std::string earlier =
      "# TYPE hlock_x_total counter\n"
      "# TYPE hlock_g gauge\n"
      "hlock_x_total 10\n"
      "hlock_g 10\n";
  const std::string later_ok =
      "# TYPE hlock_x_total counter\n"
      "# TYPE hlock_g gauge\n"
      "hlock_x_total 12\n"
      "hlock_g 1\n";  // gauges may fall freely
  const std::string later_bad =
      "# TYPE hlock_x_total counter\n"
      "hlock_x_total 4\n";
  EXPECT_TRUE(check_monotone(parse_exposition(earlier),
                             parse_exposition(later_ok))
                  .empty());
  const std::vector<std::string> decreases = check_monotone(
      parse_exposition(earlier), parse_exposition(later_bad));
  ASSERT_EQ(decreases.size(), 1u);
  EXPECT_NE(decreases[0].find("counter decreased"), std::string::npos);
  EXPECT_NE(decreases[0].find("hlock_x_total"), std::string::npos);
}

}  // namespace
}  // namespace hlock::telemetry
