// One node's TCP endpoint — the building block of a genuinely
// multi-process (or multi-machine, with address changes) deployment.
//
// Unlike TcpTransport, which hosts all N endpoints in one process for
// convenient testing, a TcpNode owns exactly ONE node's listener and a
// table of peer ports. Each OS process constructs its own TcpNode; the
// processes share nothing but the sockets. The fork-based integration test
// (tests/transport/multiprocess_test.cpp) runs the full protocol this way
// and verifies mutual exclusion through a shared-memory counter.
//
// Framing and FIFO guarantees are identical to TcpTransport (see
// tcp_socket.hpp): one persistent connection per ordered channel, TCP
// in-order delivery.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "transport/mailbox.hpp"
#include "transport/transport.hpp"
#include "util/sync.hpp"

namespace hlock::transport {

/// Address of one peer (loopback + port; extendable to full addresses).
struct TcpPeer {
  proto::NodeId node;
  std::uint16_t port = 0;
};

/// See file comment.
class TcpNode final : public Transport {
 public:
  /// Binds a fresh loopback listener for `self` (ephemeral port) and
  /// starts the acceptor. `peers` lists every OTHER node's port; peers may
  /// also be added later via add_peer() (ports are often only known after
  /// all processes bound their listeners).
  TcpNode(proto::NodeId self, std::vector<TcpPeer> peers = {});

  /// Adopts an already-bound listening socket (ownership transfers).
  /// Lets a parent process bind all listeners BEFORE forking, so children
  /// know every port with no rendezvous protocol.
  TcpNode(proto::NodeId self, int adopted_listen_fd,
          std::vector<TcpPeer> peers);

  ~TcpNode() override;

  /// Registers/overrides a peer's address. Not thread-safe against
  /// concurrent send() to the same peer; configure before traffic starts.
  void add_peer(const TcpPeer& peer);

  /// The port this node's listener is bound to.
  std::uint16_t port() const { return port_; }
  proto::NodeId self() const { return self_; }

  // Transport interface. send() requires message.from == self() and a
  // registered peer; recv() only serves this node.
  void send(const proto::Message& message) override;
  std::optional<proto::Message> recv(proto::NodeId node) override;
  std::optional<proto::Message> recv_for(
      proto::NodeId node, std::chrono::milliseconds timeout) override;
  void shutdown() override;
  std::uint64_t messages_sent() const override { return sent_.load(); }

 private:
  void start();
  void acceptor_loop();
  void reader_loop(int fd);

  /// listen_fd_ and port_ are set in the constructor and immutable after.
  const proto::NodeId self_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Mailbox inbox_;
  std::thread acceptor_;
  std::vector<std::thread> readers_ HLOCK_GUARDED_BY(readers_mutex_);
  /// Accepted connection fds, so shutdown() can unblock their readers
  /// even while the remote ends stay open.
  std::vector<int> accepted_fds_ HLOCK_GUARDED_BY(readers_mutex_);
  Mutex readers_mutex_;

  Mutex peers_mutex_;
  std::map<std::uint32_t, std::uint16_t> peer_ports_
      HLOCK_GUARDED_BY(peers_mutex_);
  struct Channel {
    /// Serializes writes on the peer connection and guards its fd.
    Mutex send_mutex;
    int fd HLOCK_GUARDED_BY(send_mutex) = -1;
  };
  std::map<std::uint32_t, std::unique_ptr<Channel>> channels_
      HLOCK_GUARDED_BY(peers_mutex_);
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<bool> stopping_{false};
};

}  // namespace hlock::transport
