// Throughput scaling (supplementary): completed operations per simulated
// second, total and per node, as the cluster grows — the system-level
// consequence of the paper's message/latency curves. Under the read-heavy
// mix total throughput should scale out (reads parallelize) while the
// writer fraction bounds it (Amdahl, which the paper name-checks for its
// latency discussion).
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "runtime/sim_cluster.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"
#include "workload/sim_driver.hpp"

using namespace hlock;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;
using workload::SimWorkloadDriver;
using workload::WorkloadSpec;

int main() {
  const auto preset = sim::ibm_sp_preset();

  stats::TextTable table;
  table.set_header({"nodes", "ops/s total", "ops/s per node",
                    "efficiency vs 2 nodes"});

  std::printf("Throughput scaling — airline workload, %s testbed, "
              "ratio 10\n\n",
              preset.name.c_str());

  double per_node_at_2 = 0;
  for (std::size_t nodes : {2u, 4u, 8u, 16u, 32u, 64u, 96u, 120u}) {
    SimClusterOptions cluster_options;
    cluster_options.node_count = nodes;
    cluster_options.protocol = Protocol::kHierarchical;
    cluster_options.message_latency = preset.message_latency;
    cluster_options.seed = 71 + nodes;
    SimCluster cluster{cluster_options};

    WorkloadSpec spec;
    spec.variant = workload::AppVariant::kHierarchical;
    spec.node_count = nodes;
    spec.ops_per_node = 60;
    spec.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
    spec.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
    spec.seed = 5 + nodes;

    SimWorkloadDriver driver{cluster, spec};
    driver.run();

    const double seconds = cluster.simulator().now().to_sec();
    const double total =
        static_cast<double>(driver.stats().ops) / seconds;
    const double per_node = total / static_cast<double>(nodes);
    if (nodes == 2) per_node_at_2 = per_node;
    table.add_row(
        {std::to_string(nodes), stats::TextTable::num(total, 1),
         stats::TextTable::num(per_node, 2),
         stats::TextTable::num(per_node / per_node_at_2 * 100, 1) + "%"});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
