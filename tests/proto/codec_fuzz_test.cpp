// Adversarial decoding: the codec must never crash, over-read or accept
// malformed input, no matter what bytes arrive. Deterministic fuzzing with
// seeded RNG (reproducible failures) across three input classes: random
// garbage, bit-flipped valid messages, and random truncations/extensions.
#include <gtest/gtest.h>

#include <vector>

#include "proto/codec.hpp"
#include "util/rng.hpp"

namespace hlock::proto {
namespace {

Message sample_message(Rng& rng) {
  const NodeId from{static_cast<std::uint32_t>(rng.below(64))};
  const NodeId to{static_cast<std::uint32_t>(rng.below(64))};
  const LockId lock{static_cast<std::uint32_t>(rng.below(16))};
  const auto mode = [&] {
    return static_cast<LockMode>(1 + rng.below(5));
  };
  switch (rng.below(11)) {
    case 0:
      return Message{from, to, lock,
                     HierRequest{NodeId{static_cast<std::uint32_t>(
                                     rng.below(64))},
                                 mode(), rng()}};
    case 1:
      return Message{from, to, lock, HierGrant{mode(), mode(),
                                               static_cast<std::uint32_t>(
                                                   rng.below(1000))}};
    case 2: {
      HierToken token{mode(), static_cast<LockMode>(rng.below(6)), {}};
      const std::uint64_t entries = rng.below(5);
      for (std::uint64_t i = 0; i < entries; ++i) {
        token.queue.push_back(QueuedRequest{
            NodeId{static_cast<std::uint32_t>(rng.below(64))}, mode(),
            rng()});
      }
      return Message{from, to, lock, std::move(token)};
    }
    case 3:
      return Message{from, to, lock,
                     HierRelease{static_cast<LockMode>(rng.below(6)),
                                 static_cast<std::uint32_t>(rng.below(1000))}};
    case 4:
      return Message{from, to, lock,
                     HierFreeze{ModeSet::from_bits(
                         static_cast<std::uint8_t>(rng.below(64)))}};
    case 5:
      return Message{from, to, lock,
                     NaimiRequest{NodeId{static_cast<std::uint32_t>(
                                      rng.below(64))},
                                  rng()}};
    case 6:
      return Message{from, to, lock, NaimiToken{}};
    case 7:
      return Message{from, to, lock, Heartbeat{}};
    case 8:
      return Message{from, to, lock,
                     Suspect{NodeId{static_cast<std::uint32_t>(
                         rng.below(64))}}};
    case 9: {
      ElectToken report;
      const std::uint64_t dead = rng.below(4);
      for (std::uint64_t i = 0; i < dead; ++i) {
        report.dead.push_back(
            NodeId{static_cast<std::uint32_t>(rng.below(64))});
      }
      report.lock_count = static_cast<std::uint32_t>(rng.below(8));
      report.lock_index = static_cast<std::uint32_t>(rng.below(8));
      report.epoch = static_cast<std::uint32_t>(rng.below(1000));
      report.has_token = rng.chance(0.5);
      report.held = static_cast<LockMode>(rng.below(6));
      report.waiting = rng.chance(0.5);
      report.wait_mode = static_cast<LockMode>(rng.below(6));
      report.wait_seq = rng();
      report.wait_priority = static_cast<std::uint8_t>(rng.below(256));
      report.upgrading = rng.chance(0.5);
      return Message{from, to, lock, std::move(report)};
    }
    default: {
      EpochFence fence;
      const std::uint64_t dead = rng.below(4);
      for (std::uint64_t i = 0; i < dead; ++i) {
        fence.dead.push_back(
            NodeId{static_cast<std::uint32_t>(rng.below(64))});
      }
      fence.epoch = static_cast<std::uint32_t>(rng.below(1000));
      fence.new_root = NodeId{static_cast<std::uint32_t>(rng.below(64))};
      const std::uint64_t holders = rng.below(4);
      for (std::uint64_t i = 0; i < holders; ++i) {
        fence.holders.push_back(
            {NodeId{static_cast<std::uint32_t>(rng.below(64))}, mode()});
      }
      const std::uint64_t queued = rng.below(4);
      for (std::uint64_t i = 0; i < queued; ++i) {
        fence.queue.push_back(QueuedRequest{
            NodeId{static_cast<std::uint32_t>(rng.below(64))}, mode(),
            rng(), static_cast<std::uint8_t>(rng.below(256))});
      }
      fence.fence_index = static_cast<std::uint32_t>(rng.below(8));
      fence.fence_count = static_cast<std::uint32_t>(rng.below(8));
      return Message{from, to, lock, std::move(fence)};
    }
  }
}

TEST(CodecFuzz, RandomMessagesRoundTrip) {
  Rng rng{2003};
  for (int i = 0; i < 20000; ++i) {
    const Message message = sample_message(rng);
    const auto decoded = decode(encode(message));
    ASSERT_TRUE(decoded.has_value()) << to_string(message);
    ASSERT_EQ(*decoded, message);
  }
}

TEST(CodecFuzz, RandomGarbageNeverCrashes) {
  Rng rng{77};
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::byte> garbage(rng.below(64));
    for (std::byte& b : garbage) {
      b = static_cast<std::byte>(rng.below(256));
    }
    // Must either decode to something or return nullopt — never throw or
    // crash; if it decodes, re-encoding must reproduce the bytes exactly
    // (a canonical-form check).
    const auto decoded = decode(garbage);
    if (decoded.has_value()) {
      EXPECT_EQ(encode(*decoded), garbage)
          << "decoder accepted a non-canonical encoding";
    }
  }
}

TEST(CodecFuzz, BitFlippedMessagesNeverCrash) {
  Rng rng{13};
  for (int i = 0; i < 10000; ++i) {
    const Message message = sample_message(rng);
    std::vector<std::byte> wire = encode(message);
    const std::size_t byte = rng.below(wire.size());
    const auto bit = static_cast<std::uint8_t>(1u << rng.below(8));
    wire[byte] ^= std::byte{bit};
    const auto decoded = decode(wire);  // any outcome but UB/throw is fine
    if (decoded.has_value()) {
      EXPECT_EQ(encode(*decoded), wire);
    }
  }
}

TEST(CodecFuzz, TruncationsAndExtensionsRejectedOrCanonical) {
  Rng rng{21};
  for (int i = 0; i < 5000; ++i) {
    const Message message = sample_message(rng);
    std::vector<std::byte> wire = encode(message);
    // Truncate to a random prefix: must reject (all payloads have fixed
    // minimum sizes beyond any valid prefix ambiguity).
    const std::size_t cut = rng.below(wire.size());
    EXPECT_FALSE(decode(std::span(wire.data(), cut)).has_value());
    // Extend with junk: must reject (trailing bytes).
    wire.push_back(std::byte{0x5A});
    EXPECT_FALSE(decode(wire).has_value());
  }
}

}  // namespace
}  // namespace hlock::proto
