// Allocation accounting for the Mailbox hot path.
//
// The delivery path used to deep-copy every popped message out of a
// std::priority_queue (the adapter only exposes a const top()), which
// duplicated the payload buffer of every token handover. These tests pin
// the fix with two independent instruments: a global operator new/delete
// counter proving the pop path allocates nothing, and pointer identity on a
// token queue's buffer proving the very same heap block that was pushed
// comes back out.
//
// This file replaces the global allocator, so it must stay its own test
// binary — linking it into another test would count that test's
// allocations too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "transport/mailbox.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

// Counting replacements for the global allocator. Deliberately minimal:
// count, then defer to malloc/free (the replaceable-function contract).
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hlock::transport {
namespace {

proto::Message token_message(std::size_t queue_entries) {
  proto::HierToken token{proto::LockMode::kW, proto::LockMode::kNL, {}};
  for (std::size_t i = 0; i < queue_entries; ++i) {
    token.queue.push_back(proto::QueuedRequest{
        proto::NodeId{static_cast<std::uint32_t>(i)}, proto::LockMode::kR,
        i, 0});
  }
  return proto::Message{proto::NodeId{0}, proto::NodeId{1}, proto::LockId{7},
                        proto::Payload{std::move(token)}};
}

const std::vector<proto::QueuedRequest>& queue_of(const proto::Message& m) {
  return std::get<proto::HierToken>(m.payload).queue;
}

TEST(MailboxAlloc, PopMovesThePayloadBufferInsteadOfCopyingIt) {
  Mailbox mailbox;
  proto::Message message = token_message(64);
  const proto::QueuedRequest* buffer = queue_of(message).data();
  mailbox.push(std::move(message), Mailbox::Clock::now());

  const auto popped = mailbox.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(queue_of(*popped).size(), 64u);
  // The exact heap block that went in comes back out: every hop —
  // push into the heap entry, extraction, return by value — was a move.
  EXPECT_EQ(queue_of(*popped).data(), buffer);
}

TEST(MailboxAlloc, PopAllocatesNothing) {
  Mailbox mailbox;
  for (int i = 0; i < 8; ++i) {
    mailbox.push(token_message(32), Mailbox::Clock::now());
  }

  const std::uint64_t before = allocations();
  proto::Message first = *mailbox.pop();
  proto::Message second = *mailbox.pop();
  const std::uint64_t during = allocations() - before;
  EXPECT_EQ(during, 0u)
      << "popping made " << during
      << " allocation(s); extraction must move, never deep-copy";
  EXPECT_EQ(queue_of(first).size(), 32u);
  EXPECT_EQ(queue_of(second).size(), 32u);
}

TEST(MailboxAlloc, PopAllReadyMakesOneAllocationForTheBatchVector) {
  Mailbox mailbox;
  std::vector<proto::Message> burst;
  std::vector<const proto::QueuedRequest*> buffers;
  for (int i = 0; i < 16; ++i) {
    burst.push_back(token_message(16));
    buffers.push_back(queue_of(burst.back()).data());
  }
  mailbox.push_all(std::move(burst), Mailbox::Clock::now());

  const std::uint64_t before = allocations();
  const std::vector<proto::Message> drained = mailbox.pop_all_ready();
  const std::uint64_t during = allocations() - before;
  ASSERT_EQ(drained.size(), 16u);
  // One reserve for the returned vector; the messages themselves move.
  EXPECT_LE(during, 2u);
  for (std::size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(queue_of(drained[i]).data(), buffers[i])
        << "message " << i << " was deep-copied on the way through";
  }
}

}  // namespace
}  // namespace hlock::transport
