// Periodic snapshot producer over a telemetry Registry.
//
// The Sampler owns one background thread that ticks at a fixed interval;
// each tick takes Registry::snapshot(), retains it as latest(), forwards
// it to registered sinks (hlock_sim progress hooks, tests), and — when an
// output path is configured — rewrites the exposition file atomically
// (write to `<path>.tmp`, then rename), so a concurrently polling
// hlock_top never reads a torn file. stop() performs one final tick
// before joining, so short runs still export their end state.
//
// Consumers that want snapshots without a thread (tests, the sim's
// final-state export) call tick() directly on an unstarted Sampler.
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "util/sync.hpp"

namespace hlock::telemetry {

struct SamplerOptions {
  std::chrono::milliseconds interval{500};
  /// Exposition file rewritten on every tick; empty disables file export.
  std::string out_path;
};

/// See file comment.
class Sampler {
 public:
  Sampler(Registry& registry, SamplerOptions options);
  /// Stops the thread (with a final tick) if still running.
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Called after every tick with the fresh snapshot, on the sampler
  /// thread. Register sinks before start().
  void add_sink(std::function<void(const Snapshot&)> sink);

  /// Launches the background thread. No-op when already running.
  void start();

  /// Final tick, then stops and joins the thread. No-op when not running.
  void stop();

  /// Snapshot + sinks + file export, synchronously on the caller.
  void tick();

  /// The most recent snapshot (empty before the first tick).
  Snapshot latest() const HLOCK_EXCLUDES(mutex_);

  /// Ticks taken so far (including direct tick() calls).
  std::uint64_t tick_count() const HLOCK_EXCLUDES(mutex_);

 private:
  void run();
  void export_file(const Snapshot& snapshot);

  Registry& registry_;
  const SamplerOptions options_;
  std::vector<std::function<void(const Snapshot&)>> sinks_;

  mutable Mutex mutex_;
  CondVar wake_cv_;
  bool stopping_ HLOCK_GUARDED_BY(mutex_) = false;
  bool running_ HLOCK_GUARDED_BY(mutex_) = false;
  Snapshot latest_ HLOCK_GUARDED_BY(mutex_);
  std::uint64_t ticks_ HLOCK_GUARDED_BY(mutex_) = 0;

  sched::Thread thread_;
};

/// Writes `text` to `path` atomically (tmp file + rename). Returns false
/// (and leaves any previous file intact) on I/O failure.
bool write_file_atomic(const std::string& path, const std::string& text);

}  // namespace hlock::telemetry
