// libFuzzer harness for the wire codec (src/proto/codec.*), the one
// component that parses bytes straight off the network: a malformed or
// hostile frame must be rejected with std::nullopt — never a crash, an
// overflow, a huge allocation or an exception.
//
// The harness routes the input exactly like a transport would (batch
// marker 0xB5 vs single-message frame) and additionally checks semantic
// round-trip stability: anything decode() accepts must re-encode to a
// frame that decodes to an equal Message. Build with -DHLOCK_FUZZ=ON
// (Clang only); docs/static-analysis.md covers running it.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "proto/codec.hpp"
#include "proto/message.hpp"

namespace {

[[noreturn]] void die(const char* what) {
  std::fprintf(stderr, "codec_fuzzer: %s\n", what);
  std::abort();
}

void check_single(std::span<const std::byte> bytes) {
  const auto decoded = hlock::proto::decode(bytes);
  if (!decoded) return;
  // Accepted frames must round-trip: the decoder may not lose or invent
  // information the encoder cannot reproduce.
  const std::vector<std::byte> wire = hlock::proto::encode(*decoded);
  const auto again = hlock::proto::decode(wire);
  if (!again) die("re-encoded frame rejected");
  if (!(*again == *decoded)) die("round-trip changed the message");
}

void check_batch(std::span<const std::byte> bytes) {
  const auto batch = hlock::proto::decode_batch(bytes);
  if (!batch) return;
  std::vector<std::byte> wire;
  hlock::proto::encode_batch_into(*batch, wire);
  const auto again = hlock::proto::decode_batch(wire);
  if (!again) die("re-encoded batch rejected");
  if (!(*again == *batch)) die("batch round-trip changed the messages");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::byte> bytes(
      reinterpret_cast<const std::byte*>(data), size);
  if (hlock::proto::is_batch_frame(bytes)) {
    check_batch(bytes);
  } else {
    check_single(bytes);
  }
  return 0;
}

#ifdef HLOCK_FUZZ_STANDALONE
// Corpus-replay driver (any compiler, no libFuzzer): runs the harness over
// the files given on the command line. Registered as a ctest test so the
// committed corpus is regression-checked on every build, even where Clang
// is unavailable and the real fuzzer target cannot be built.
#include <fstream>

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "codec_fuzzer: cannot open %s\n", argv[i]);
      return 1;
    }
    const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::printf("codec_fuzzer: replayed %d corpus file(s), no crashes\n",
              replayed);
  return 0;
}
#endif
