// Raymond's tree-based mutual exclusion algorithm (K. Raymond, "A
// tree-based algorithm for distributed mutual exclusion", TOCS 1989) —
// the second related-work baseline the paper discusses (§5): "Raymond's
// algorithm uses a fixed logical structure while we use a dynamic one,
// which results in dynamic path compression."
//
// Nodes form a STATIC tree. Each node tracks `holder` — the tree neighbor
// in whose direction the token currently lies (self at the token holder) —
// and a local FIFO of neighbors (or self) awaiting the privilege. Requests
// travel hop by hop toward the token; the token retraces the path, and
// `holder` pointers flip along it. The structure never changes, so message
// cost is bounded by the tree diameter (O(log n) on a balanced tree) but
// cannot adapt to locality — exactly the contrast the paper draws.
//
// Same pure-state-machine contract as the other automatons: single
// exclusive mode, effects returned to the caller.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/effects.hpp"
#include "proto/ids.hpp"
#include "proto/message.hpp"

namespace hlock::raymond {

using core::Effects;
using proto::LockId;
using proto::NodeId;

/// Per-(node, lock) state machine of Raymond's algorithm.
class RaymondAutomaton {
 public:
  /// `holder` points toward the initial token holder along the static
  /// tree (self for the holder itself). `neighbors` are the node's tree
  /// neighbors; requests may only arrive from them.
  RaymondAutomaton(NodeId self, LockId lock, NodeId holder,
                   std::vector<NodeId> neighbors);

  // ---- Application API ----

  /// Requests the (exclusive) lock. Precondition: not holding, not
  /// waiting. Effects::entered_cs reports immediate entry.
  Effects request();

  /// Releases the lock; forwards the privilege if someone waits.
  Effects release();

  /// Delivers one protocol message addressed to this node.
  Effects on_message(const proto::Message& message);

  // ---- Introspection ----

  NodeId self() const { return self_; }
  /// True while this node possesses the token (even if not in the CS).
  bool has_token() const { return holder_ == self_; }
  bool in_cs() const { return in_cs_; }
  /// True while this node waits for the privilege.
  bool requesting() const { return requesting_; }
  /// Tree neighbor toward the token (self at the holder).
  NodeId holder() const { return holder_; }
  /// Requests waiting locally, in FIFO order (self_ may appear once).
  const std::deque<NodeId>& request_queue() const { return queue_; }
  std::string describe() const;

  /// Complete canonical state serialization (model-checker dedup).
  std::string fingerprint() const;

 private:
  /// Raymond's ASSIGN_PRIVILEGE + MAKE_REQUEST pair, run after every
  /// state-changing step.
  void pump(Effects& fx);
  void send(NodeId to, proto::Payload payload, Effects& fx) const;
  bool is_neighbor(NodeId node) const;

  const NodeId self_;
  const LockId lock_;
  const std::vector<NodeId> neighbors_;

  NodeId holder_;
  std::deque<NodeId> queue_;
  bool asked_ = false;
  bool in_cs_ = false;
  bool requesting_ = false;
  std::uint64_t next_seq_ = 0;
};

/// Builds the `holder` pointers and neighbor lists of a balanced k-ary
/// tree over nodes [0, n) rooted at node 0 (the initial token holder):
/// out[i] = {holder, neighbors}. Used by engines and tests.
struct TreeNode {
  NodeId holder;
  std::vector<NodeId> neighbors;
};
std::vector<TreeNode> balanced_tree(std::size_t node_count,
                                    std::size_t arity = 2);

}  // namespace hlock::raymond
