// Figure 7 — Scalability of Message Overhead (paper §4.1).
//
// Average number of protocol messages per lock request as the node count
// grows, on the Linux-cluster testbed parameters (critical section 15 ms,
// inter-request idle time 150 ms, one-way network latency 150 ms, all
// uniformly randomized; request mix IR/R/U/IW/W = 80/10/4/5/1). Three
// series: the hierarchical protocol, Naimi "pure" (same number of lock
// operations, weaker functionality) and Naimi "same work" (equal
// functionality via per-entry locks acquired in a fixed order).
//
// Paper shape to reproduce: our protocol flattens out lowest (~3 messages);
// pure is roughly 20% above it; same-work grows superlinearly.
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"

using namespace hlock;
using bench::AppVariant;
using bench::ExperimentConfig;
using bench::ExperimentResult;

int main() {
  const auto preset = sim::linux_cluster_preset();
  const AppVariant variants[] = {AppVariant::kNaimiSameWork,
                                 AppVariant::kNaimiPure,
                                 AppVariant::kHierarchical};

  stats::TextTable table;
  table.set_header({"nodes", "naimi-same-work", "naimi-pure",
                    "hierarchical"});

  std::printf("Fig. 7 — messages per lock request vs. number of nodes\n");
  std::printf("testbed: %s, latency %s, CS 15 ms, idle 150 ms, mix "
              "80/10/4/5/1\n\n",
              preset.name.c_str(),
              preset.message_latency.describe().c_str());

  for (std::size_t nodes : {2u, 4u, 6u, 8u, 10u, 15u, 20u, 25u, 30u}) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (AppVariant variant : variants) {
      ExperimentConfig config;
      config.variant = variant;
      config.nodes = nodes;
      config.net_latency = preset.message_latency;
      config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
      config.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
      config.ops_per_node = 60;
      config.seed = 7 + nodes;
      const ExperimentResult result = bench::run_averaged(config, 3);
      row.push_back(
          stats::TextTable::num(bench::paper_message_metric(variant, result)));
    }
    table.add_row(std::move(row));
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
