// Tests of Raymond's static-tree baseline: privilege passing along the
// tree, FIFO local queues, safety/liveness under randomized schedules, and
// the full cluster/workload integration.
#include "raymond/raymond_automaton.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "runtime/invariants.hpp"
#include "runtime/sim_cluster.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/sim_driver.hpp"

namespace hlock::raymond {
namespace {

using proto::LockId;
using proto::Message;
using proto::NodeId;

constexpr LockId kLock{0};

/// Minimal deterministic harness (mirrors tests/core/test_net.hpp).
class RaymondNet {
 public:
  explicit RaymondNet(std::size_t n, std::size_t arity = 2) {
    const auto tree = balanced_tree(n, arity);
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, kLock,
                          tree[i].holder, tree[i].neighbors);
    }
    cs_entries_.assign(n, 0);
  }

  RaymondAutomaton& node(std::size_t i) { return nodes_.at(i); }
  void request(std::size_t i) { absorb(i, nodes_.at(i).request()); }
  void release(std::size_t i) { absorb(i, nodes_.at(i).release()); }

  bool deliver_one() {
    if (wire_.empty()) return false;
    const Message message = wire_.front();
    wire_.pop_front();
    absorb(message.to.value(),
           nodes_.at(message.to.value()).on_message(message));
    return true;
  }
  std::size_t settle() {
    std::size_t delivered = 0;
    while (deliver_one()) {
      HLOCK_INVARIANT(++delivered < 100000, "net does not quiesce");
    }
    return delivered;
  }
  std::uint64_t total_messages() const { return total_; }
  int cs_entries(std::size_t i) const { return cs_entries_.at(i); }

 private:
  void absorb(std::size_t i, core::Effects&& fx) {
    for (Message& message : fx.messages) {
      wire_.push_back(std::move(message));
      ++total_;
    }
    if (fx.entered_cs) ++cs_entries_[i];
  }
  std::vector<RaymondAutomaton> nodes_;
  std::deque<Message> wire_;
  std::vector<int> cs_entries_;
  std::uint64_t total_ = 0;
};

TEST(BalancedTree, ShapeIsConsistent) {
  const auto tree = balanced_tree(7, 2);
  EXPECT_EQ(tree[0].holder, NodeId{0});
  EXPECT_EQ(tree[1].holder, NodeId{0});
  EXPECT_EQ(tree[2].holder, NodeId{0});
  EXPECT_EQ(tree[3].holder, NodeId{1});
  EXPECT_EQ(tree[6].holder, NodeId{2});
  // Node 1's neighbors: parent 0 and children 3, 4.
  EXPECT_EQ(tree[1].neighbors.size(), 3u);
  // Leaves have only their parent.
  EXPECT_EQ(tree[6].neighbors.size(), 1u);
  EXPECT_THROW(balanced_tree(0), UsageError);
  EXPECT_THROW(balanced_tree(3, 0), UsageError);
}

TEST(Raymond, RootEntersImmediately) {
  RaymondNet net{3};
  net.request(0);
  EXPECT_EQ(net.cs_entries(0), 1);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(Raymond, PrivilegeWalksTheTreePath) {
  // Node 6 (depth 2 in a 7-node binary tree) requests: REQUEST travels
  // 6->2->0, the privilege travels 0->2->6 — exactly 4 messages.
  RaymondNet net{7};
  net.request(6);
  net.settle();
  EXPECT_EQ(net.cs_entries(6), 1);
  EXPECT_TRUE(net.node(6).has_token());
  EXPECT_EQ(net.total_messages(), 4u);
  // Holder pointers flipped along the path.
  EXPECT_EQ(net.node(0).holder(), NodeId{2});
  EXPECT_EQ(net.node(2).holder(), NodeId{6});
}

TEST(Raymond, TokenReturnsAlongFlippedPointers) {
  RaymondNet net{7};
  net.request(6);
  net.settle();
  net.release(6);
  net.settle();
  // Nothing moves until someone asks; then the path reverses.
  net.request(0);
  net.settle();
  EXPECT_EQ(net.cs_entries(0), 1);
  EXPECT_TRUE(net.node(0).has_token());
}

TEST(Raymond, ContendersServeInArrivalOrderPerQueue) {
  RaymondNet net{7};
  net.request(0);  // root in CS
  net.request(3);
  net.settle();
  net.request(4);
  net.settle();
  // 3 and 4 both funnel through node 1; node 1 asked once.
  net.release(0);
  net.settle();
  EXPECT_EQ(net.cs_entries(3), 1);
  EXPECT_EQ(net.cs_entries(4), 0);
  net.release(3);
  net.settle();
  EXPECT_EQ(net.cs_entries(4), 1);
}

TEST(Raymond, ApiContracts) {
  RaymondNet net{3};
  net.request(0);
  EXPECT_THROW(net.node(0).request(), UsageError);
  EXPECT_THROW(net.node(1).release(), UsageError);
  const Message bad{NodeId{1}, NodeId{0}, kLock,
                    proto::HierGrant{proto::LockMode::kR,
                                     proto::LockMode::kR, 1}};
  EXPECT_THROW(net.node(0).on_message(bad), InvariantError);
}

class RaymondRandomized
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(RaymondRandomized, SafetyAndLiveness) {
  const auto [n, seed] = GetParam();
  RaymondNet net{n};
  Rng rng{seed};
  std::vector<bool> busy(n, false);
  for (int step = 0; step < 3000; ++step) {
    const std::size_t i = static_cast<std::size_t>(rng.below(n));
    if (net.node(i).in_cs()) {
      if (rng.chance(0.7)) {
        net.release(i);
        busy[i] = false;
      }
    } else if (!busy[i] && rng.chance(0.5)) {
      net.request(i);
      busy[i] = true;
    }
    if (rng.chance(0.8)) net.deliver_one();

    std::size_t in_cs = 0;
    for (std::size_t k = 0; k < n; ++k) in_cs += net.node(k).in_cs();
    ASSERT_LE(in_cs, 1u) << "mutual exclusion violated at step " << step;
  }
  for (int round = 0; round < 10000; ++round) {
    net.settle();
    bool any = false;
    for (std::size_t k = 0; k < n; ++k) {
      if (net.node(k).in_cs()) {
        net.release(k);
        busy[k] = false;
        any = true;
      }
    }
    if (!any) break;
  }
  net.settle();
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_FALSE(net.node(k).requesting()) << "node " << k << " starved";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RaymondRandomized,
                         ::testing::Combine(::testing::Values(2, 3, 7, 15),
                                            ::testing::Values(1u, 9u, 77u)));

TEST(RaymondCluster, WorkloadRunsToCompletion) {
  runtime::SimClusterOptions cluster_options;
  cluster_options.node_count = 16;
  cluster_options.protocol = runtime::Protocol::kRaymond;
  cluster_options.message_latency =
      DurationDist::uniform(SimTime::ms(1), 0.5);
  cluster_options.seed = 3;
  runtime::SimCluster cluster{cluster_options};

  workload::WorkloadSpec spec;
  spec.variant = workload::AppVariant::kNaimiPure;
  spec.node_count = 16;
  spec.ops_per_node = 30;
  spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(4), 0.5);
  spec.seed = 3;

  workload::SimWorkloadDriver driver{cluster, spec};
  driver.run();
  EXPECT_EQ(driver.stats().ops, 16u * 30u);
  const auto report = runtime::check_quiescent_structure(
      cluster, workload::all_locks(spec.table_entries));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(RaymondCluster, SameWorkVariantAlsoRuns) {
  runtime::SimClusterOptions cluster_options;
  cluster_options.node_count = 12;
  cluster_options.protocol = runtime::Protocol::kRaymond;
  cluster_options.message_latency =
      DurationDist::uniform(SimTime::ms(1), 0.5);
  cluster_options.seed = 5;
  runtime::SimCluster cluster{cluster_options};

  workload::WorkloadSpec spec;
  spec.variant = workload::AppVariant::kNaimiSameWork;
  spec.node_count = 12;
  spec.ops_per_node = 25;
  spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(4), 0.5);
  spec.seed = 5;

  workload::SimWorkloadDriver driver{cluster, spec};
  driver.run();
  EXPECT_EQ(driver.stats().ops, 12u * 25u);
}

TEST(RaymondCluster, UpgradeRejected) {
  runtime::SimClusterOptions cluster_options;
  cluster_options.node_count = 2;
  cluster_options.protocol = runtime::Protocol::kRaymond;
  runtime::SimCluster cluster{cluster_options};
  cluster.set_grant_handler([](NodeId, LockId, bool) {});
  EXPECT_THROW(cluster.upgrade(NodeId{0}, kLock), UsageError);
}

}  // namespace
}  // namespace hlock::raymond
