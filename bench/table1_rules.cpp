// Regenerates the paper's Table 1 (rules of hierarchical locking) from the
// implementation, for visual diffing against the publication. The unit test
// tests/core/mode_tables_test.cpp asserts every cell; this binary renders
// the same data the way the paper prints it.
#include <cstdio>

#include "core/mode_tables.hpp"

int main() {
  std::puts("hlock — Table 1: Rules of Hierarchical Locking for Mode M1 "
            "relative to Mode M2");
  std::puts("(X = incompatible / may-not-grant; Q = queue; F = forward)\n");
  for (char which : {'a', 'b', 'c', 'd'}) {
    std::fputs(hlock::core::render_table(which).c_str(), stdout);
    std::puts("");
  }
  return 0;
}
