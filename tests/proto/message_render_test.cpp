// Rendering tests: every payload kind's to_string output (logs and trace
// timelines depend on these being informative) plus the umbrella header's
// standalone compilability.
#include "hlock.hpp"  // the umbrella header must be self-sufficient

#include <gtest/gtest.h>

namespace hlock::proto {
namespace {

Message wrap(Payload payload) {
  return Message{NodeId{1}, NodeId{2}, LockId{3}, std::move(payload)};
}

TEST(MessageRender, Request) {
  const std::string s =
      to_string(wrap(HierRequest{NodeId{7}, LockMode::kU, 42}));
  EXPECT_EQ(s, "node1->node2 lock3 REQUEST(node7, U, seq=42)");
}

TEST(MessageRender, RequestWithPriority) {
  const std::string s =
      to_string(wrap(HierRequest{NodeId{7}, LockMode::kW, 1, 9}));
  EXPECT_NE(s.find("prio=9"), std::string::npos);
}

TEST(MessageRender, Grant) {
  const std::string s =
      to_string(wrap(HierGrant{LockMode::kR, LockMode::kU, 12}));
  EXPECT_NE(s.find("GRANT(R"), std::string::npos);
  EXPECT_NE(s.find("entry=U"), std::string::npos);
  EXPECT_NE(s.find("epoch=12"), std::string::npos);
}

TEST(MessageRender, Token) {
  const std::string s = to_string(wrap(HierToken{
      LockMode::kW, LockMode::kIR,
      {QueuedRequest{NodeId{4}, LockMode::kR, 5}}}));
  EXPECT_NE(s.find("TOKEN(W"), std::string::npos);
  EXPECT_NE(s.find("sender_owned=IR"), std::string::npos);
  EXPECT_NE(s.find("queued=1"), std::string::npos);
}

TEST(MessageRender, Release) {
  const std::string s = to_string(wrap(HierRelease{LockMode::kNL, 3}));
  EXPECT_NE(s.find("RELEASE(NL"), std::string::npos);
  EXPECT_NE(s.find("epoch=3"), std::string::npos);
}

TEST(MessageRender, Freeze) {
  const std::string s = to_string(
      wrap(HierFreeze{ModeSet::of({LockMode::kIR, LockMode::kR})}));
  EXPECT_NE(s.find("FREEZE({IR,R})"), std::string::npos);
}

TEST(MessageRender, NaimiPayloads) {
  EXPECT_NE(to_string(wrap(NaimiRequest{NodeId{9}, 77})).find(
                "NREQUEST(node9, seq=77)"),
            std::string::npos);
  EXPECT_NE(to_string(wrap(NaimiToken{})).find("NTOKEN"),
            std::string::npos);
}

TEST(MessageKindNames, AllDistinct) {
  std::set<std::string> names;
  for (std::size_t k = 0; k < kMessageKindCount; ++k) {
    names.insert(to_string(static_cast<MessageKind>(k)));
  }
  EXPECT_EQ(names.size(), kMessageKindCount);
  EXPECT_EQ(names.count("?"), 0u);
}

TEST(UmbrellaHeader, ExposesTheWholePublicSurface) {
  // Spot checks across namespaces: everything below must resolve with
  // only hlock.hpp included.
  EXPECT_TRUE(core::compatible(LockMode::kIR, LockMode::kR));
  EXPECT_EQ(workload::table_lock(), LockId{0});
  EXPECT_GT(analysis::conflict_probability(workload::ModeMix::paper(), 6),
            0.0);
  sim::Simulator simulator;
  EXPECT_EQ(simulator.now(), SimTime{});
  trace::TraceRecorder recorder;
  EXPECT_EQ(recorder.total_recorded(), 0u);
  stats::TextTable table;
  table.set_header({"x"});
  EXPECT_EQ(table.rows(), 0u);
}

}  // namespace
}  // namespace hlock::proto
