// Unit tests of the Naimi-Tréhel baseline: token passing, distributed FIFO
// via next pointers, path reversal, and safety under randomized schedules.
#include "naimi/naimi_automaton.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tests/core/test_net.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace hlock::test {
namespace {

using hlock::UsageError;
using naimi::NaimiAutomaton;
using proto::Message;
using proto::NaimiRequest;
constexpr std::size_t A = 0, B = 1, C = 2, D = 3;

TEST(NaimiConstruction, Contracts) {
  EXPECT_NO_THROW(NaimiAutomaton(NodeId{0}, LockId{0}, true, NodeId::none()));
  EXPECT_THROW(NaimiAutomaton(NodeId{0}, LockId{0}, true, NodeId{1}),
               UsageError);
  EXPECT_THROW(NaimiAutomaton(NodeId{1}, LockId{0}, false, NodeId::none()),
               UsageError);
  EXPECT_THROW(NaimiAutomaton(NodeId{1}, LockId{0}, false, NodeId{1}),
               UsageError);
}

TEST(Naimi, TokenHolderEntersImmediately) {
  NaimiNet net{3};
  net.request(A);
  EXPECT_EQ(net.cs_entries(A), 1);
  EXPECT_TRUE(net.node(A).in_cs());
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(Naimi, SecondRequesterGetsTokenOnFirstRequest) {
  NaimiNet net{3};
  net.request(B);
  net.settle();
  EXPECT_EQ(net.cs_entries(B), 1);
  EXPECT_TRUE(net.node(B).has_token());
  EXPECT_FALSE(net.node(A).has_token());
  // One request, one token message.
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(Naimi, ReleaseWithoutWaiterKeepsToken) {
  NaimiNet net{2};
  net.request(A);
  net.release(A);
  EXPECT_TRUE(net.node(A).has_token());
  EXPECT_EQ(net.total_messages(), 0u);
  // Re-entry is free.
  net.request(A);
  EXPECT_EQ(net.cs_entries(A), 2);
}

TEST(Naimi, WaiterChainsThroughNextPointer) {
  NaimiNet net{3};
  net.request(A);      // holds token, in CS
  net.request(B);
  net.settle();
  EXPECT_EQ(net.node(A).next(), NodeId{1});
  EXPECT_EQ(net.cs_entries(B), 0);
  net.release(A);
  net.settle();
  EXPECT_EQ(net.cs_entries(B), 1);
  EXPECT_TRUE(net.node(B).has_token());
}

TEST(Naimi, FifoOrderAcrossThreeWaiters) {
  NaimiNet net{4};
  net.request(A);
  net.request(B);
  net.settle();
  net.request(C);
  net.settle();
  net.request(D);
  net.settle();
  // The distributed list is A -> B -> C -> D.
  std::vector<std::size_t> order;
  for (std::size_t holder : {A, B, C}) {
    net.release(holder);
    net.settle();
    for (std::size_t i : {B, C, D}) {
      if (net.node(i).in_cs()) order.push_back(i);
    }
  }
  EXPECT_EQ(order, (std::vector<std::size_t>{B, C, D}));
}

TEST(Naimi, PathReversalCompressesRoutes) {
  NaimiNet net{4};
  net.request(B);
  net.settle();
  // Everyone who saw B's request now points at B.
  EXPECT_EQ(net.node(A).probable_owner(), NodeId{1});
  // C's request routes via A (its stale owner) but A forwards to B and
  // re-points to C.
  net.request(C);
  net.settle();
  EXPECT_EQ(net.node(A).probable_owner(), NodeId{2});
  EXPECT_EQ(net.node(B).probable_owner(), NodeId{2});
}

TEST(Naimi, ApiContracts) {
  NaimiNet net{2};
  net.request(A);
  EXPECT_THROW(net.node(A).request(), UsageError);
  EXPECT_THROW(net.node(B).release(), UsageError);
  net.request(B);  // B now waiting
  EXPECT_THROW(net.node(B).request(), UsageError);
}

TEST(Naimi, WrongProtocolPayloadRejected) {
  NaimiNet net{2};
  const Message foreign{NodeId{1}, NodeId{0}, LockId{0},
                        proto::HierGrant{LockMode::kR}};
  EXPECT_THROW(net.node(A).on_message(foreign), hlock::InvariantError);
}

// Safety + liveness under randomized request/release schedules: never two
// nodes in the CS, exactly one token, every request eventually served.
class NaimiRandomized : public ::testing::TestWithParam<
                            std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(NaimiRandomized, SafetyAndLiveness) {
  const auto [n, seed] = GetParam();
  NaimiNet net{n};
  Rng rng{seed};
  std::vector<int> served(n, 0);
  std::vector<bool> busy(n, false);  // requesting or in CS
  int requests_issued = 0;

  for (int step = 0; step < 3000; ++step) {
    const std::size_t i = static_cast<std::size_t>(rng.below(n));
    if (net.node(i).in_cs()) {
      if (rng.chance(0.7)) {
        net.release(i);
        busy[i] = false;
      }
    } else if (!busy[i] && rng.chance(0.5)) {
      net.request(i);
      busy[i] = true;
      ++requests_issued;
    }
    if (rng.chance(0.8)) net.deliver_one();

    // Safety at every step.
    std::size_t in_cs = 0;
    std::size_t tokens = 0;
    for (std::size_t k = 0; k < n; ++k) {
      if (net.node(k).in_cs()) ++in_cs;
      if (net.node(k).has_token()) ++tokens;
    }
    ASSERT_LE(in_cs, 1u) << "mutual exclusion violated at step " << step;
    ASSERT_LE(tokens, 1u) << "token duplicated at step " << step;
  }

  // Drain: release everyone who is in a CS until all requests served.
  for (int round = 0; round < 10000; ++round) {
    net.settle();
    bool any = false;
    for (std::size_t k = 0; k < n; ++k) {
      if (net.node(k).in_cs()) {
        net.release(k);
        busy[k] = false;
        any = true;
      }
    }
    if (!any) break;
  }
  net.settle();
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_FALSE(net.node(k).requesting())
        << "node " << k << " starved with " << requests_issued
        << " requests issued";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NaimiRandomized,
    ::testing::Combine(::testing::Values(2, 3, 5, 9, 17),
                       ::testing::Values(1u, 2u, 3u, 42u)));

}  // namespace
}  // namespace hlock::test
