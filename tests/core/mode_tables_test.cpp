// Verifies the rule tables against the paper's Table 1, cell by cell, and
// property-checks the closed-form derivations the implementation notes in
// DESIGN.md. These tests pin the protocol's specification: any change that
// flips a cell is a deviation from the published protocol.
#include "core/mode_tables.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "util/check.hpp"

namespace hlock::core {
namespace {

using proto::kAllModes;
using proto::kRealModes;
constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kU = LockMode::kU;
constexpr LockMode kIW = LockMode::kIW;
constexpr LockMode kW = LockMode::kW;

// ---- Table 1(a): Incompatible --------------------------------------------

TEST(Table1a, NoLockIsCompatibleWithEverything) {
  for (LockMode m : kAllModes) {
    EXPECT_TRUE(compatible(kNL, m)) << to_string(m);
    EXPECT_TRUE(compatible(m, kNL)) << to_string(m);
  }
}

TEST(Table1a, EveryCellMatchesThePaper) {
  // Conflicting pairs, exactly as printed (rows M1, columns M2).
  const bool expected[5][5] = {
      // M2:   IR     R      U      IW     W
      /*IR*/ {false, false, false, false, true},
      /*R */ {false, false, false, true, true},
      /*U */ {false, false, true, true, true},
      /*IW*/ {false, true, true, false, true},
      /*W */ {true, true, true, true, true},
  };
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(incompatible(kRealModes[i], kRealModes[j]), expected[i][j])
          << to_string(kRealModes[i]) << " vs " << to_string(kRealModes[j]);
    }
  }
}

TEST(Table1a, CompatibilityIsSymmetric) {
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      EXPECT_EQ(incompatible(a, b), incompatible(b, a))
          << to_string(a) << " vs " << to_string(b);
    }
  }
}

TEST(Table1a, CompatibleSetContents) {
  EXPECT_EQ(compatible_set(kIR), ModeSet::of({kIR, kR, kU, kIW}));
  EXPECT_EQ(compatible_set(kR), ModeSet::of({kIR, kR, kU}));
  EXPECT_EQ(compatible_set(kU), ModeSet::of({kIR, kR}));
  EXPECT_EQ(compatible_set(kIW), ModeSet::of({kIR, kIW}));
  EXPECT_EQ(compatible_set(kW), ModeSet{});
  EXPECT_EQ(compatible_set(kNL), ModeSet::all_real());
}

// ---- Definition 1: strength ----------------------------------------------

TEST(Strength, PaperInequations) {
  // NL < IR < R < U < W and IR < IW < W.
  EXPECT_TRUE(stronger(kIR, kNL));
  EXPECT_TRUE(stronger(kR, kIR));
  EXPECT_TRUE(stronger(kU, kR));
  EXPECT_TRUE(stronger(kW, kU));
  EXPECT_TRUE(stronger(kIW, kIR));
  EXPECT_TRUE(stronger(kW, kIW));
}

TEST(Strength, RankEqualsCompatibilityDeficit) {
  // Definition 1: stronger = compatible with fewer modes. Check the rank
  // order matches the compatibility counts.
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      const int ca = compatible_set(a).size();
      const int cb = compatible_set(b).size();
      if (ca < cb) {
        EXPECT_TRUE(stronger(a, b))
            << to_string(a) << " should be stronger than " << to_string(b);
      }
    }
  }
}

TEST(Strength, UAndIwTieIsNeverConsulted) {
  // U and IW share a strength rank; the tie is harmless because every
  // protocol rule comparing strengths first requires compatibility, and
  // U/IW are incompatible.
  EXPECT_EQ(strength_rank(kU), strength_rank(kIW));
  EXPECT_TRUE(incompatible(kU, kIW));
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      if (strength_rank(a) == strength_rank(b) && a != b) {
        EXPECT_TRUE(incompatible(a, b))
            << "incomparable pair must be incompatible: " << to_string(a)
            << ", " << to_string(b);
      }
    }
  }
}

TEST(Strength, StrongerOfPicksByRank) {
  EXPECT_EQ(stronger_of(kIR, kW), kW);
  EXPECT_EQ(stronger_of(kW, kIR), kW);
  EXPECT_EQ(stronger_of(kNL, kNL), kNL);
  EXPECT_EQ(stronger_of(kR, kR), kR);
}

// ---- Table 1(b): No Child Grant ------------------------------------------

TEST(Table1b, EveryCellMatchesThePaper) {
  // True = the non-token node MAY grant (the paper marks the complement X).
  const bool may_grant[6][5] = {
      // M2:   IR     R      U      IW     W
      /*NL*/ {false, false, false, false, false},
      /*IR*/ {true, false, false, false, false},
      /*R */ {true, true, false, false, false},
      /*U */ {true, true, false, false, false},
      /*IW*/ {true, false, false, true, false},
      /*W */ {false, false, false, false, false},
  };
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(non_token_can_grant(kAllModes[i], kRealModes[j]),
                may_grant[i][j])
          << to_string(kAllModes[i]) << " granting "
          << to_string(kRealModes[j]);
    }
  }
}

TEST(Table1b, DerivationCompatibleAndAtLeastAsStrong) {
  // Rule 3.1: grant iff compatible(owned, req) && owned >= req, owned real.
  for (LockMode owned : kAllModes) {
    for (LockMode req : kRealModes) {
      const bool expected = owned != kNL && compatible(owned, req) &&
                            at_least_as_strong(owned, req);
      EXPECT_EQ(non_token_can_grant(owned, req), expected)
          << to_string(owned) << " granting " << to_string(req);
    }
  }
}

TEST(Table1b, WAndUGrantsAreTokenOnly) {
  // No non-token node can ever grant U or W: combined with the transfer
  // rule this makes U/W holders always the token node (needed by Rule 7).
  for (LockMode owned : kAllModes) {
    EXPECT_FALSE(non_token_can_grant(owned, kU));
    EXPECT_FALSE(non_token_can_grant(owned, kW));
  }
}

// ---- Rule 3.2: token grants ----------------------------------------------

TEST(TokenGrant, CompatibilityIsSufficient) {
  for (LockMode owned : kAllModes) {
    for (LockMode req : kRealModes) {
      EXPECT_EQ(token_can_grant(owned, req), compatible(owned, req));
    }
  }
}

TEST(TokenGrant, TransfersExactlyWhenRequestedExceedsOwned) {
  // Fig. 2(b): token owning IR transfers for R.
  EXPECT_TRUE(token_grant_transfers(kIR, kR));
  // Token owning R copy-grants IR and R.
  EXPECT_FALSE(token_grant_transfers(kR, kIR));
  EXPECT_FALSE(token_grant_transfers(kR, kR));
  // Fresh token (owns nothing) always transfers.
  for (LockMode req : kRealModes) {
    EXPECT_TRUE(token_grant_transfers(kNL, req));
  }
  // U and W requests always transfer when grantable (owned must be weaker
  // or the pair would be incompatible).
  EXPECT_TRUE(token_grant_transfers(kR, kU));
  EXPECT_TRUE(token_grant_transfers(kIR, kW)) << "only reachable if "
                                                 "compatible, but transfer "
                                                 "semantics must hold";
}

// ---- Table 1(c): Queue/Forward -------------------------------------------

TEST(Table1c, EveryCellMatchesThePaper) {
  constexpr auto Q = QueueOrForward::kQueue;
  constexpr auto F = QueueOrForward::kForward;
  const QueueOrForward expected[6][5] = {
      // M2:  IR R  U  IW W      (rows: pending mode M1)
      /*NL*/ {F, F, F, F, F},
      /*IR*/ {Q, F, F, F, F},
      /*R */ {F, Q, F, F, F},
      /*U */ {F, F, Q, Q, Q},
      /*IW*/ {F, F, F, Q, F},
      /*W */ {Q, Q, Q, Q, Q},
  };
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(queue_or_forward(kAllModes[i], kRealModes[j]),
                expected[i][j])
          << "pending " << to_string(kAllModes[i]) << ", request "
          << to_string(kRealModes[j]);
    }
  }
}

TEST(Table1c, NoPendingAlwaysForwards) {
  // The paper's Fig. 3(b): B has no pending request, so it must forward.
  for (LockMode req : kRealModes) {
    EXPECT_EQ(queue_or_forward(kNL, req), QueueOrForward::kForward);
  }
}

TEST(Table1c, PendingWQueuesEverything) {
  for (LockMode req : kRealModes) {
    EXPECT_EQ(queue_or_forward(kW, req), QueueOrForward::kQueue);
  }
}

// ---- Table 1(d): Freezing ------------------------------------------------

TEST(Table1d, EveryCellMatchesThePaper) {
  struct Cell {
    LockMode owned;
    LockMode requested;
    ModeSet frozen;
  };
  const Cell cells[] = {
      // Row IR: only W conflicts; freeze everything IR could see granted.
      {kIR, kW, ModeSet::of({kIR, kR, kU, kIW})},
      // Row R: IW and W conflict.
      {kR, kIW, ModeSet::of({kR, kU})},
      {kR, kW, ModeSet::of({kIR, kR, kU})},
      // Row U: U, IW and W conflict.
      {kU, kU, ModeSet{}},
      {kU, kIW, ModeSet::of({kR})},
      {kU, kW, ModeSet::of({kIR, kR})},
      // Row IW: R, U and W conflict.
      {kIW, kR, ModeSet::of({kIW})},
      {kIW, kU, ModeSet::of({kIW})},
      {kIW, kW, ModeSet::of({kIR, kIW})},
  };
  for (const Cell& cell : cells) {
    EXPECT_EQ(freeze_set(cell.owned, cell.requested), cell.frozen)
        << "owner " << to_string(cell.owned) << ", request "
        << to_string(cell.requested);
  }
  // Row W conflicts with everything but can grant nothing, so nothing can
  // be frozen; compatible cells freeze nothing by definition.
  for (LockMode req : kRealModes) {
    EXPECT_EQ(freeze_set(kW, req), ModeSet{});
  }
}

TEST(Table1d, DerivationCompatIntersectIncompat) {
  for (LockMode owned : kAllModes) {
    for (LockMode req : kRealModes) {
      ModeSet expected;
      if (incompatible(owned, req)) {
        for (LockMode m : kRealModes) {
          if (compatible(owned, m) && incompatible(m, req)) {
            expected.insert(m);
          }
        }
      }
      EXPECT_EQ(freeze_set(owned, req), expected)
          << to_string(owned) << " vs " << to_string(req);
    }
  }
}

TEST(Table1d, Fig5Example) {
  // Fig. 5: token owns R, a W request arrives -> IR, R, U are frozen.
  EXPECT_EQ(freeze_set(kR, kW), ModeSet::of({kIR, kR, kU}));
}

TEST(Table1d, Fig6UpgradeExample) {
  // Fig. 6 / Rule 7: token owns U, upgrading to W -> freeze IR and R.
  EXPECT_EQ(freeze_set(kU, kW), ModeSet::of({kIR, kR}));
}

TEST(Table1d, FrozenModesAreGrantableByOwner) {
  // Sanity of the concept: a frozen mode is one the owner's subtree could
  // otherwise still grant, i.e. compatible with the owned mode.
  for (LockMode owned : kAllModes) {
    for (LockMode req : kRealModes) {
      const ModeSet frozen = freeze_set(owned, req);
      for (LockMode m : kRealModes) {
        if (frozen.contains(m)) {
          EXPECT_TRUE(compatible(owned, m));
          EXPECT_TRUE(incompatible(m, req));
        }
      }
    }
  }
}

// ---- Rendering ------------------------------------------------------------

TEST(RenderTable, ProducesAllFourTables) {
  for (char which : {'a', 'b', 'c', 'd'}) {
    const std::string out = render_table(which);
    EXPECT_NE(out.find("Table 1"), std::string::npos);
    EXPECT_NE(out.find("IR"), std::string::npos);
  }
  EXPECT_NE(render_table('d').find("IR,R,U"), std::string::npos)
      << "row R / column W of the freeze table must print IR,R,U";
}

TEST(RenderTable, RejectsUnknownTable) {
  EXPECT_THROW(render_table('e'), hlock::UsageError);
  EXPECT_THROW(render_table('A'), hlock::UsageError);
}

}  // namespace
}  // namespace hlock::core
