// Chrome trace_event JSON export of request spans.
//
// Emits the Trace Event Format consumed by chrome://tracing and Perfetto:
// one track (pid) per node, one async span ("b"/"e" events keyed by the
// request id) per application-level lock request on its origin node's
// track, an instant event on the acting node's track for every phase
// transition, and an "X" duration slice for each critical section.
// Timestamps are microseconds (the format's unit) converted from the
// runtime's nanosecond SimTime stamps; Lamport timestamps ride in each
// event's args so causal order stays inspectable in the UI.
//
// The exporter writes JSON by hand — the repo takes no dependencies — so
// validate_json() provides an exact structural check used by the tests and
// the flight recorder (CI additionally round-trips the artifact through
// `python3 -m json.tool`).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "obs/span.hpp"

namespace hlock::obs {

struct ChromeTraceOptions {
  /// Number of node tracks to declare metadata for. 0 infers the set of
  /// nodes from the spans themselves.
  std::size_t node_count = 0;
};

/// Renders `spans` as a complete Chrome trace_event JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}).
std::string chrome_trace_json(const std::vector<RequestSpan>& spans,
                              const ChromeTraceOptions& options = {});

/// Strict structural JSON validator (RFC 8259 grammar, no extensions; UTF-8
/// passthrough). True iff `text` is exactly one valid JSON value.
bool validate_json(std::string_view text);

}  // namespace hlock::obs
