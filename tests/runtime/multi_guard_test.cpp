// Tests of deadlock-free multi-lock acquisition: canonical ordering under
// adversarial request orders, cross-thread interleaving, and validation.
#include "runtime/multi_guard.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "util/check.hpp"

namespace hlock::runtime {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

ThreadClusterOptions cluster_of(std::size_t n) {
  ThreadClusterOptions options;
  options.node_count = n;
  return options;
}

TEST(MultiGuard, AcquiresAllAndReleasesAll) {
  ThreadCluster cluster{cluster_of(2)};
  {
    MultiGuard guard{cluster,
                     NodeId{0},
                     {{LockId{2}, LockMode::kW},
                      {LockId{0}, LockMode::kIW},
                      {LockId{1}, LockMode::kR}}};
    for (std::uint32_t lock : {0u, 1u, 2u}) {
      EXPECT_TRUE(cluster.holds(NodeId{0}, LockId{lock}));
    }
    // Requests were sorted into canonical (ascending) order.
    EXPECT_EQ(guard.requests()[0].lock, LockId{0});
    EXPECT_EQ(guard.requests()[2].lock, LockId{2});
  }
  for (std::uint32_t lock : {0u, 1u, 2u}) {
    EXPECT_FALSE(cluster.holds(NodeId{0}, LockId{lock}));
  }
}

TEST(MultiGuard, OppositeDeclarationOrdersDoNotDeadlock) {
  // The classic deadlock shape: node1 asks {a, b}, node2 asks {b, a},
  // repeatedly. Canonical ordering must make this always safe.
  ThreadCluster cluster{cluster_of(3)};
  const LockId a{1};
  const LockId b{2};
  constexpr int kRounds = 60;

  std::thread t1([&] {
    for (int i = 0; i < kRounds; ++i) {
      MultiGuard guard{cluster,
                       NodeId{1},
                       {{a, LockMode::kW}, {b, LockMode::kW}}};
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < kRounds; ++i) {
      MultiGuard guard{cluster,
                       NodeId{2},
                       {{b, LockMode::kW}, {a, LockMode::kW}}};
    }
  });
  t1.join();
  t2.join();
  SUCCEED() << "no deadlock across " << kRounds << " adversarial rounds";
}

TEST(MultiGuard, ThreeWayRotatingOrders) {
  ThreadCluster cluster{cluster_of(4)};
  const std::vector<LockId> locks{LockId{1}, LockId{2}, LockId{3}};
  std::vector<std::thread> workers;
  long counter = 0;  // protected by holding ALL three locks in W
  for (std::uint32_t t = 1; t <= 3; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < 30; ++i) {
        // Each thread declares the locks in a different rotation.
        std::vector<LockRequest> requests;
        for (std::size_t k = 0; k < 3; ++k) {
          requests.push_back(
              {locks[(k + t) % 3], LockMode::kW});
        }
        MultiGuard guard{cluster, NodeId{t}, std::move(requests)};
        const long snapshot = counter;
        std::this_thread::yield();
        counter = snapshot + 1;
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(counter, 90);
}

TEST(MultiGuard, SharedModesOverlapAcrossHolders) {
  ThreadCluster cluster{cluster_of(3)};
  // Two nodes take the same pair in R concurrently; neither blocks the
  // other (liveness is the assertion — the test would hang otherwise).
  std::thread t1([&] {
    MultiGuard guard{cluster,
                     NodeId{1},
                     {{LockId{0}, LockMode::kR}, {LockId{1}, LockMode::kR}}};
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  std::thread t2([&] {
    MultiGuard guard{cluster,
                     NodeId{2},
                     {{LockId{0}, LockMode::kR}, {LockId{1}, LockMode::kR}}};
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  });
  t1.join();
  t2.join();
}

TEST(MultiGuard, EarlyReleaseIsIdempotent) {
  ThreadCluster cluster{cluster_of(2)};
  MultiGuard guard{cluster, NodeId{0}, {{LockId{0}, LockMode::kW}}};
  guard.release();
  EXPECT_FALSE(cluster.holds(NodeId{0}, LockId{0}));
  guard.release();
}

TEST(MultiGuard, MoveTransfersOwnership) {
  ThreadCluster cluster{cluster_of(2)};
  MultiGuard outer = [&] {
    return MultiGuard{cluster, NodeId{1}, {{LockId{5}, LockMode::kU}}};
  }();
  EXPECT_TRUE(cluster.holds(NodeId{1}, LockId{5}));
}

TEST(MultiGuard, Validation) {
  ThreadCluster cluster{cluster_of(2)};
  EXPECT_THROW(MultiGuard(cluster, NodeId{0}, {}), UsageError);
  EXPECT_THROW(MultiGuard(cluster, NodeId{0},
                          {{LockId{1}, LockMode::kW},
                           {LockId{1}, LockMode::kR}}),
               UsageError);
  EXPECT_THROW(MultiGuard(cluster, NodeId{0}, {{LockId{1}, LockMode::kNL}}),
               UsageError);
}

}  // namespace
}  // namespace hlock::runtime
