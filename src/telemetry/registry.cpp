#include "telemetry/registry.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace hlock::telemetry {

// --- metric.hpp implementations -------------------------------------------

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q=1 lands on the last sample.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) {
      continue;
    }
    if (seen + in_bucket >= target) {
      if (i >= bounds.size()) {
        // Overflow bucket: no upper bound to interpolate toward; report the
        // largest finite bound as a floor for the true quantile.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double hi = bounds[i];
      const double lo = i == 0 ? std::min(0.0, hi) : bounds[i - 1];
      const double frac = static_cast<double>(target - seen) /
                          static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    seen += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size() + 1);
  for (std::size_t i = 0; i < snap.counts.size(); ++i) {
    snap.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count();
  snap.sum = sum();
  return snap;
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  HLOCK_REQUIRE(start > 0.0 && factor > 1.0,
                "exponential_bounds needs start > 0 and factor > 1");
  std::vector<double> bounds;
  bounds.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(v);
    v *= factor;
  }
  return bounds;
}

std::vector<double> linear_bounds(double start, double step,
                                  std::size_t count) {
  HLOCK_REQUIRE(step > 0.0, "linear_bounds needs step > 0");
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + step * static_cast<double>(i));
  }
  return bounds;
}

std::vector<double> default_latency_bounds_ms() {
  // 0.05 ms .. ~105 s in x2 steps: covers sub-millisecond in-proc grants
  // through multi-second chaos stalls in 22 buckets.
  return exponential_bounds(0.05, 2.0, 22);
}

// --- registry -------------------------------------------------------------

std::string to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

const Sample* Snapshot::find(std::string_view name) const {
  for (const Sample& sample : samples) {
    if (sample.name == name) {
      return &sample;
    }
  }
  return nullptr;
}

double Snapshot::family_sum(std::string_view family) const {
  double total = 0.0;
  for (const Sample& sample : samples) {
    if (family_of(sample.name) == family) {
      total += sample.value;
    }
  }
  return total;
}

void Registry::require_unclaimed(const std::string& name,
                                 MetricType type) const {
  const bool taken =
      (type != MetricType::kCounter &&
       (counters_.count(name) != 0 || counter_fns_.count(name) != 0)) ||
      (type != MetricType::kGauge &&
       (gauges_.count(name) != 0 || gauge_fns_.count(name) != 0)) ||
      (type != MetricType::kHistogram && histograms_.count(name) != 0);
  HLOCK_REQUIRE(!taken, "metric '" + name +
                            "' already registered with a different type");
}

Counter& Registry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    require_unclaimed(name, MetricType::kCounter);
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    require_unclaimed(name, MetricType::kGauge);
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    require_unclaimed(name, MetricType::kHistogram);
    if (bounds.empty()) {
      bounds = default_latency_bounds_ms();
    }
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void Registry::register_counter_fn(const std::string& name,
                                   std::function<std::uint64_t()> fn) {
  MutexLock lock(mutex_);
  require_unclaimed(name, MetricType::kCounter);
  counter_fns_[name] = std::move(fn);
}

void Registry::register_gauge_fn(const std::string& name,
                                 std::function<double()> fn) {
  MutexLock lock(mutex_);
  require_unclaimed(name, MetricType::kGauge);
  gauge_fns_[name] = std::move(fn);
}

void Registry::unregister_callbacks(const std::string& prefix) {
  MutexLock lock(mutex_);
  const auto drop_prefixed = [&prefix](auto& table) {
    for (auto it = table.begin(); it != table.end();) {
      if (it->first.rfind(prefix, 0) == 0) {
        it = table.erase(it);
      } else {
        ++it;
      }
    }
  };
  drop_prefixed(counter_fns_);
  drop_prefixed(gauge_fns_);
}

Snapshot Registry::snapshot() const {
  MutexLock lock(mutex_);
  Snapshot snap;
  snap.samples.reserve(counters_.size() + gauges_.size() +
                       histograms_.size() + counter_fns_.size() +
                       gauge_fns_.size());
  // Each table is name-sorted; a merged emit keeps the whole snapshot
  // sorted so exposition output is deterministic and families contiguous.
  for (const auto& [name, counter] : counters_) {
    snap.samples.push_back({name, MetricType::kCounter,
                            static_cast<double>(counter->value()),
                            {}});
  }
  for (const auto& [name, fn] : counter_fns_) {
    snap.samples.push_back(
        {name, MetricType::kCounter, static_cast<double>(fn()), {}});
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.samples.push_back({name, MetricType::kGauge, gauge->value(), {}});
  }
  for (const auto& [name, fn] : gauge_fns_) {
    snap.samples.push_back({name, MetricType::kGauge, fn(), {}});
  }
  for (const auto& [name, histogram] : histograms_) {
    Sample sample;
    sample.name = name;
    sample.type = MetricType::kHistogram;
    sample.histogram = histogram->snapshot();
    sample.value = sample.histogram.sum;
    snap.samples.push_back(std::move(sample));
  }
  std::sort(snap.samples.begin(), snap.samples.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
  return snap;
}

std::size_t Registry::series_count() const {
  MutexLock lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         counter_fns_.size() + gauge_fns_.size();
}

std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string>> labels) {
  if (labels.size() == 0) {
    return std::string(base);
  }
  std::string out(base);
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += key;
    out += "=\"";
    for (const char c : value) {
      switch (c) {
        case '\\':
          out += "\\\\";
          break;
        case '"':
          out += "\\\"";
          break;
        case '\n':
          out += "\\n";
          break;
        default:
          out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

std::string_view family_of(std::string_view name) {
  const auto brace = name.find('{');
  return brace == std::string_view::npos ? name : name.substr(0, brace);
}

}  // namespace hlock::telemetry
