// ASCII histogram rendering for latency distributions.
//
// Benchmark binaries print distributions, not just means: the paper's
// latency story (queueing-dominated superlinear region) is visible in the
// tail shape long before it moves the mean.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hlock::stats {

/// Options for render_histogram.
struct HistogramOptions {
  /// Number of buckets (>= 1).
  std::size_t buckets = 10;
  /// Width of the bar column in characters.
  std::size_t bar_width = 40;
  /// Unit label appended to bucket bounds (e.g. "ms").
  std::string unit = "ms";
  /// Use logarithmically spaced buckets (for heavy-tailed latencies).
  bool log_scale = false;
};

/// Renders a histogram of `samples`, one bucket per line:
///   "[  0.00,   2.50) ms  ######################....  123 (41.0%)".
/// Returns "(no samples)\n" for empty input. Sample order is irrelevant.
std::string render_histogram(const std::vector<double>& samples,
                             const HistogramOptions& options = {});

/// Renders an already-bucketed histogram (telemetry snapshots: `bounds`
/// are ascending bucket upper bounds, `counts` has one extra overflow
/// bucket) in the same bar style. Buckets with zero counts whose
/// neighbors are also empty are elided with a "..." line to keep
/// dashboards short. `options.buckets` and `log_scale` are ignored — the
/// bucket layout is fixed by the input. Returns "(no samples)\n" when
/// every count is zero.
std::string render_bucketed_histogram(const std::vector<double>& bounds,
                                      const std::vector<std::uint64_t>& counts,
                                      const HistogramOptions& options = {});

}  // namespace hlock::stats
