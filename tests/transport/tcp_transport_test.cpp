// Tests of the TCP loopback transport: framing, routing, FIFO, volume,
// shutdown semantics, and the full protocol stack running over real
// sockets.
#include "transport/tcp_transport.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/thread_cluster.hpp"
#include "util/check.hpp"

namespace hlock::transport {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NodeId;

Message make_message(std::uint32_t from, std::uint32_t to,
                     std::uint64_t seq = 0) {
  return Message{NodeId{from}, NodeId{to}, LockId{0},
                 proto::NaimiRequest{NodeId{from}, seq}};
}

TEST(TcpTransport, BindsDistinctLoopbackPorts) {
  TcpTransport transport{3};
  EXPECT_NE(transport.port_of(NodeId{0}), 0);
  EXPECT_NE(transport.port_of(NodeId{0}), transport.port_of(NodeId{1}));
  EXPECT_NE(transport.port_of(NodeId{1}), transport.port_of(NodeId{2}));
}

TEST(TcpTransport, DeliversAcrossRealSockets) {
  TcpTransport transport{2};
  transport.send(make_message(0, 1, 42));
  const auto received =
      transport.recv_for(NodeId{1}, std::chrono::milliseconds(2000));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, make_message(0, 1, 42));
  EXPECT_EQ(transport.messages_sent(), 1u);
}

TEST(TcpTransport, RoundTripsEveryPayloadKind) {
  TcpTransport transport{2};
  const std::vector<Message> messages{
      {NodeId{0}, NodeId{1}, LockId{3},
       proto::HierRequest{NodeId{0}, LockMode::kU, 7}},
      {NodeId{0}, NodeId{1}, LockId{3},
       proto::HierGrant{LockMode::kR, LockMode::kR, 12}},
      {NodeId{0}, NodeId{1}, LockId{3},
       proto::HierToken{LockMode::kW, LockMode::kIR,
                        {proto::QueuedRequest{NodeId{0}, LockMode::kR, 1}}}},
      {NodeId{0}, NodeId{1}, LockId{3}, proto::HierRelease{LockMode::kNL, 4}},
      {NodeId{0}, NodeId{1}, LockId{3},
       proto::HierFreeze{proto::ModeSet::of({LockMode::kIR})}},
      {NodeId{0}, NodeId{1}, LockId{3}, proto::NaimiToken{}},
  };
  for (const Message& message : messages) transport.send(message);
  for (const Message& message : messages) {
    const auto received =
        transport.recv_for(NodeId{1}, std::chrono::milliseconds(2000));
    ASSERT_TRUE(received.has_value());
    EXPECT_EQ(*received, message);
  }
}

TEST(TcpTransport, ChannelIsFifoUnderVolume) {
  TcpTransport transport{2};
  constexpr std::uint64_t kCount = 2000;
  std::thread sender([&transport] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      transport.send(make_message(0, 1, i));
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    const auto received =
        transport.recv_for(NodeId{1}, std::chrono::milliseconds(5000));
    ASSERT_TRUE(received.has_value());
    const auto* request = std::get_if<proto::NaimiRequest>(&received->payload);
    ASSERT_NE(request, nullptr);
    ASSERT_EQ(request->seq, i) << "TCP channel reordered frames";
  }
  sender.join();
}

TEST(TcpTransport, ConcurrentSendersToOneReceiver) {
  TcpTransport transport{4};
  constexpr int kPerSender = 300;
  std::vector<std::thread> senders;
  for (std::uint32_t s = 1; s < 4; ++s) {
    senders.emplace_back([&transport, s] {
      for (int i = 0; i < kPerSender; ++i) {
        transport.send(make_message(s, 0, static_cast<std::uint64_t>(i)));
      }
    });
  }
  int received = 0;
  while (received < 3 * kPerSender) {
    const auto message =
        transport.recv_for(NodeId{0}, std::chrono::milliseconds(5000));
    ASSERT_TRUE(message.has_value()) << "after " << received << " messages";
    ++received;
  }
  for (std::thread& t : senders) t.join();
}

TEST(TcpTransport, ShutdownUnblocksReceivers) {
  TcpTransport transport{2};
  std::thread receiver([&transport] {
    EXPECT_FALSE(transport.recv(NodeId{1}).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  transport.shutdown();
  receiver.join();
}

TEST(TcpTransport, RejectsUnknownDestination) {
  TcpTransport transport{2};
  EXPECT_THROW(transport.send(make_message(0, 7)), UsageError);
}

TEST(TcpCluster, HierarchicalProtocolOverRealSockets) {
  runtime::ThreadClusterOptions options;
  options.node_count = 4;
  options.transport = runtime::TransportKind::kTcp;
  runtime::ThreadCluster cluster{options};

  long counter = 0;
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < 4; ++i) {
    workers.emplace_back([&cluster, &counter, i] {
      for (int k = 0; k < 20; ++k) {
        cluster.lock(NodeId{i}, LockId{0}, LockMode::kW);
        const long snapshot = counter;
        std::this_thread::yield();
        counter = snapshot + 1;
        cluster.unlock(NodeId{i}, LockId{0});
      }
    });
  }
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(counter, 80);
  EXPECT_GT(cluster.messages_sent(), 0u);
}

TEST(TcpCluster, SharedModesAndUpgradeOverRealSockets) {
  runtime::ThreadClusterOptions options;
  options.node_count = 3;
  options.transport = runtime::TransportKind::kTcp;
  runtime::ThreadCluster cluster{options};

  // Concurrent readers over sockets.
  std::thread r1([&] {
    cluster.lock(NodeId{1}, LockId{0}, LockMode::kIR);
    cluster.unlock(NodeId{1}, LockId{0});
  });
  std::thread r2([&] {
    cluster.lock(NodeId{2}, LockId{0}, LockMode::kIR);
    cluster.unlock(NodeId{2}, LockId{0});
  });
  r1.join();
  r2.join();

  // Rule 7 upgrade across the wire.
  cluster.lock(NodeId{1}, LockId{0}, LockMode::kU);
  cluster.upgrade(NodeId{1}, LockId{0});
  cluster.unlock(NodeId{1}, LockId{0});
}

}  // namespace
}  // namespace hlock::transport
