// A thread-safe mailbox with earliest-deadline delivery.
//
// Building block of the in-process transport: producers deposit messages
// with an absolute delivery time (wall clock); the consumer blocks until
// the earliest message becomes deliverable. Injected delivery times model
// network latency while per-channel FIFO is enforced by the transport.
//
// Hot-path notes: the heap is an explicit std::vector managed with the
// <algorithm> heap primitives rather than a std::priority_queue — the
// adapter only exposes a const top(), which forced every delivered message
// into a deep copy (payload queue buffers included); the vector form lets
// pop extract by move. pop_all_ready() drains every matured message in one
// lock acquisition, which is what lets the threaded runtime deliver a burst
// as a batch instead of paying one mutex round-trip per message.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "proto/message.hpp"
#include "util/sync.hpp"

namespace hlock::transport {

/// Multi-producer single-consumer mailbox ordered by delivery time.
class Mailbox {
 public:
  using Clock = std::chrono::steady_clock;

  /// Deposits a message that becomes deliverable at `deliver_at`.
  /// No-op after close().
  void push(proto::Message message, Clock::time_point deliver_at)
      HLOCK_EXCLUDES(mutex_);

  /// Deposits a burst of messages sharing one delivery time under a single
  /// lock acquisition, preserving their order. No-op after close().
  void push_all(std::vector<proto::Message> messages,
                Clock::time_point deliver_at) HLOCK_EXCLUDES(mutex_);

  /// Blocks until a message is deliverable or the mailbox is closed and
  /// empty. Returns std::nullopt only in the latter case.
  std::optional<proto::Message> pop() HLOCK_EXCLUDES(mutex_);

  /// Like pop() but gives up at `deadline`; std::nullopt on timeout or
  /// closed-and-empty.
  std::optional<proto::Message> pop_until(Clock::time_point deadline)
      HLOCK_EXCLUDES(mutex_);

  /// Blocks like pop(), then drains and returns every message already
  /// matured at that point, in delivery order. Returns an empty vector only
  /// once the mailbox is closed and empty.
  std::vector<proto::Message> pop_all_ready() HLOCK_EXCLUDES(mutex_);

  /// Closes the mailbox: pending messages remain poppable, new pushes are
  /// dropped, and blocked consumers wake up.
  void close() HLOCK_EXCLUDES(mutex_);

  /// Messages deposited over the mailbox's lifetime.
  std::uint64_t pushed() const HLOCK_EXCLUDES(mutex_);

  /// Messages currently waiting (matured or not). Telemetry read.
  std::size_t size() const HLOCK_EXCLUDES(mutex_);

 private:
  struct Entry {
    Clock::time_point deliver_at;
    std::uint64_t seq;
    proto::Message message;
    /// Min-ordering by (deliver_at, seq) via inverted comparison.
    bool operator<(const Entry& other) const {
      if (deliver_at != other.deliver_at) {
        return deliver_at > other.deliver_at;
      }
      return seq > other.seq;
    }
  };

  void push_locked(proto::Message&& message, Clock::time_point deliver_at)
      HLOCK_REQUIRES(mutex_);
  /// Removes and returns the earliest entry's message by move (no payload
  /// buffer is copied). Precondition: the heap is non-empty.
  proto::Message pop_top_locked() HLOCK_REQUIRES(mutex_);

  mutable Mutex mutex_;
  CondVar cv_;
  /// Binary min-heap on Entry::operator< (std::push_heap/std::pop_heap);
  /// heap_.front() is the earliest entry.
  std::vector<Entry> heap_ HLOCK_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ HLOCK_GUARDED_BY(mutex_) = 0;
  std::uint64_t pushed_ HLOCK_GUARDED_BY(mutex_) = 0;
  bool closed_ HLOCK_GUARDED_BY(mutex_) = false;
};

}  // namespace hlock::transport
