#include "trace/recorder.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::trace {

TraceRecorder::TraceRecorder(std::size_t capacity) : capacity_(capacity) {
  HLOCK_REQUIRE(capacity > 0, "trace capacity must be positive");
}

void TraceRecorder::push(TraceEvent event) {
  ++total_;
  events_.push_back(std::move(event));
  if (events_.size() > capacity_) {
    events_.pop_front();
    ++dropped_;
    if (!warned_dropped_) {
      warned_dropped_ = true;
      HLOCK_LOG(kWarn, "trace ring exceeded its capacity of "
                           << capacity_
                           << " events; older history is being dropped "
                              "(TraceRecorder::dropped() counts losses)");
    }
  }
}

void TraceRecorder::record(TraceEvent event) {
  MutexLock guard(mutex_);
  push(std::move(event));
}

void TraceRecorder::record(SimTime at, TraceEvent event) {
  event.at = at;
  MutexLock guard(mutex_);
  push(std::move(event));
}

void TraceRecorder::record_message(SimTime at, const proto::Message& message) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kMessage;
  event.node = message.from;
  event.peer = message.to;
  event.lock = message.lock;
  event.detail = to_string(message);
  MutexLock guard(mutex_);
  push(std::move(event));
}

void TraceRecorder::record_enter_cs(SimTime at, proto::NodeId node,
                                    const std::string& detail) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kEnterCs;
  event.node = node;
  event.detail = detail;
  MutexLock guard(mutex_);
  push(std::move(event));
}

void TraceRecorder::record_exit_cs(SimTime at, proto::NodeId node) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kExitCs;
  event.node = node;
  MutexLock guard(mutex_);
  push(std::move(event));
}

void TraceRecorder::record_upgrade(SimTime at, proto::NodeId node) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kUpgraded;
  event.node = node;
  MutexLock guard(mutex_);
  push(std::move(event));
}

void TraceRecorder::note(SimTime at, proto::NodeId node,
                         const std::string& text) {
  TraceEvent event;
  event.at = at;
  event.kind = EventKind::kNote;
  event.node = node;
  event.detail = text;
  MutexLock guard(mutex_);
  push(std::move(event));
}

std::deque<TraceEvent> TraceRecorder::events() const {
  MutexLock guard(mutex_);
  return events_;
}

std::uint64_t TraceRecorder::total_recorded() const {
  MutexLock guard(mutex_);
  return total_;
}

std::uint64_t TraceRecorder::dropped() const {
  MutexLock guard(mutex_);
  return dropped_;
}

bool TraceRecorder::truncated() const {
  MutexLock guard(mutex_);
  return dropped_ > 0;
}

void TraceRecorder::clear() {
  MutexLock guard(mutex_);
  events_.clear();
  total_ = 0;
  dropped_ = 0;
  warned_dropped_ = false;
}

std::string TraceRecorder::render(proto::NodeId node_filter) const {
  MutexLock guard(mutex_);
  std::ostringstream os;
  if (total_ > events_.size()) {
    os << "... (" << total_ - events_.size() << " earlier events dropped)\n";
  }
  for (const TraceEvent& event : events_) {
    if (!node_filter.is_none() && event.node != node_filter &&
        event.peer != node_filter) {
      continue;
    }
    char head[64];
    std::snprintf(head, sizeof head, "%12s  %-7s ",
                  to_string(event.at).c_str(),
                  to_string(event.node).c_str());
    os << head << to_string(event) << '\n';
  }
  return os.str();
}

std::vector<std::size_t> TraceRecorder::histogram() const {
  MutexLock guard(mutex_);
  std::vector<std::size_t> counts(kEventKindCount, 0);
  for (const TraceEvent& event : events_) {
    ++counts[static_cast<std::size_t>(event.kind)];
  }
  return counts;
}

}  // namespace hlock::trace
