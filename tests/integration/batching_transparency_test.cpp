// Batching transparency: coalescing same-destination messages into batch
// wire frames is a transport concern and must be invisible to everything
// above it. These tests run the SAME workload with batching on and off and
// assert that the observability stack cannot tell the difference — the
// spec linter accepts both event streams and the span collector sees the
// identical set of request lifecycles.
//
// Real-thread runs are not event-order deterministic, so equivalence is
// structural: the same spans exist, they all complete, and the rule tables
// hold throughout. (Exact stream equality is checked where it is
// well-defined: in the deterministic wire tests of transport_test.cpp and
// the codec round-trip property tests.)
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <tuple>
#include <vector>

#include "lint/checker.hpp"
#include "obs/span.hpp"
#include "runtime/thread_cluster.hpp"

namespace hlock::runtime {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

constexpr std::size_t kNodes = 4;
constexpr int kOpsPerNode = 12;
constexpr std::uint32_t kLocks = 3;

/// What a span looks like to an application: which request, for which lock,
/// in which mode, and whether it ran to completion. Everything
/// batching could plausibly perturb — timing, interleaving — is excluded
/// on purpose; everything it must NOT perturb is included.
using SpanShape =
    std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, int, bool>;

std::vector<SpanShape> span_shapes(const obs::SpanCollector& collector) {
  std::vector<SpanShape> shapes;
  for (const obs::RequestSpan& span : collector.spans()) {
    shapes.emplace_back(span.lock.value(), span.id.origin.value(),
                        span.id.seq, static_cast<int>(span.mode),
                        span.complete());
  }
  std::sort(shapes.begin(), shapes.end());
  return shapes;
}

struct RunResult {
  lint::LintReport lint;
  std::vector<SpanShape> spans;
  std::size_t completed = 0;
  std::uint64_t messages_sent = 0;
};

/// Runs a fixed multi-lock workload and returns everything the
/// observability stack saw. The workload itself is deterministic in WHICH
/// requests each node issues (locks, modes, order per thread), so the span
/// sets of two runs are comparable even though their interleavings differ.
RunResult run_workload(bool batching) {
  ThreadClusterOptions options;
  options.node_count = kNodes;
  options.protocol = Protocol::kHierarchical;
  options.hier_config.trace_events = true;
  options.seed = 99;
  options.batching = batching;

  lint::LintOptions lint_options;
  lint_options.initial_token = options.initial_root;
  lint::Checker checker{lint_options};
  obs::SpanCollector collector;

  RunResult result;
  {
    ThreadCluster cluster{options};
    cluster.set_event_sink([&](const trace::TraceEvent& event) {
      checker.add(event);
      collector.observe(event);
    });
    std::vector<std::thread> workers;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      workers.emplace_back([&cluster, i] {
        for (int k = 0; k < kOpsPerNode; ++k) {
          // Walk the locks in a per-node stagger so requests contend
          // across nodes; alternate W/R so grants and tokens both flow.
          const LockId lock{(i + static_cast<std::uint32_t>(k)) % kLocks};
          const LockMode mode = k % 2 == 0 ? LockMode::kW : LockMode::kR;
          cluster.lock(NodeId{i}, lock, mode);
          std::this_thread::yield();
          cluster.unlock(NodeId{i}, lock);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    result.messages_sent = cluster.messages_sent();
    EXPECT_EQ(cluster.receiver_errors(), 0u);
    // Teardown joins the receivers; no event is in flight past this scope.
  }
  result.lint = checker.finish();
  result.spans = span_shapes(collector);
  result.completed = collector.completed_count();
  return result;
}

TEST(BatchingTransparency, LintAndSpansIdenticalWithBatchingOnAndOff) {
  const RunResult batched = run_workload(true);
  const RunResult unbatched = run_workload(false);

  // Both event streams conform to the paper's rule tables...
  EXPECT_TRUE(batched.lint.ok()) << batched.lint.render();
  EXPECT_TRUE(unbatched.lint.ok()) << unbatched.lint.render();
  EXPECT_GT(batched.lint.events_checked, 0u);
  EXPECT_GT(unbatched.lint.events_checked, 0u);

  // ...and the applications' request lifecycles are the same set: same
  // requests, same locks, same modes, all complete.
  EXPECT_EQ(batched.spans, unbatched.spans)
      << "batching changed what the span collector observed";
  EXPECT_EQ(batched.spans.size(), kNodes * kOpsPerNode);
  EXPECT_EQ(batched.completed, kNodes * kOpsPerNode);
  EXPECT_EQ(unbatched.completed, kNodes * kOpsPerNode);
}

TEST(BatchingTransparency, HoldsUnderInjectedFaults) {
  // The acceptance bar: batching stays invisible even while the fault
  // layer drops, delays and duplicates wire frames underneath it.
  ThreadClusterOptions options;
  options.node_count = kNodes;
  options.protocol = Protocol::kHierarchical;
  options.hier_config.trace_events = true;
  options.seed = 7;
  options.batching = true;
  options.faults.seed = 7;
  options.faults.drop_probability = 0.08;
  options.faults.retransmit_delay = SimTime::ms(1);
  options.faults.duplicate_probability = 0.1;

  lint::LintOptions lint_options;
  lint_options.initial_token = options.initial_root;
  lint::Checker checker{lint_options};
  obs::SpanCollector collector;
  {
    ThreadCluster cluster{options};
    cluster.set_event_sink([&](const trace::TraceEvent& event) {
      checker.add(event);
      collector.observe(event);
    });
    std::vector<std::thread> workers;
    for (std::uint32_t i = 0; i < kNodes; ++i) {
      workers.emplace_back([&cluster, i] {
        for (int k = 0; k < kOpsPerNode; ++k) {
          cluster.lock(NodeId{i}, LockId{static_cast<std::uint32_t>(k) % 2},
                       i % 2 == 0 ? LockMode::kW : LockMode::kR);
          cluster.unlock(NodeId{i}, LockId{static_cast<std::uint32_t>(k) % 2});
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    EXPECT_EQ(cluster.receiver_errors(), 0u);
  }
  const lint::LintReport report = checker.finish();
  EXPECT_TRUE(report.ok()) << report.render();
  EXPECT_EQ(collector.completed_count(), kNodes * kOpsPerNode);
}

}  // namespace
}  // namespace hlock::runtime
