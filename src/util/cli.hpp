// Minimal command-line option parser for the tools and benchmarks.
//
// Supports `--name value`, `--name=value` and boolean `--flag` syntax,
// typed access with range validation, automatic --help text, and strict
// rejection of unknown options (a typo in an experiment sweep must fail
// loudly, not silently fall back to defaults).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hlock {

/// See file comment. Declare options, then parse(), then read values.
class CliParser {
 public:
  /// `program` and `description` head the --help output.
  CliParser(std::string program, std::string description);

  /// Declares a string option with a default value.
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Declares a boolean flag (false unless given; accepts --name,
  /// --name=true/false).
  void add_flag(const std::string& name, const std::string& help);

  /// Allows bare (non `--`) arguments; `placeholder` names them in the
  /// help text (e.g. "TRACE-FILE"). Without this call they are rejected.
  void allow_positionals(const std::string& placeholder);

  /// Parses argv. Returns false if --help was requested (help_text() is
  /// ready to print) — callers should then exit 0. Throws UsageError on
  /// unknown options, missing values or malformed input.
  bool parse(int argc, const char* const* argv);

  /// Typed access; all throw UsageError on conversion/range failure.
  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name, std::int64_t min,
                       std::int64_t max) const;
  double get_double(const std::string& name, double min, double max) const;
  bool get_flag(const std::string& name) const;

  /// True if the option was given explicitly (not defaulted).
  bool was_set(const std::string& name) const;

  /// Bare arguments in command-line order (allow_positionals required).
  const std::vector<std::string>& positional() const { return positionals_; }

  /// The rendered --help text.
  std::string help_text() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
    std::optional<std::string> value;
  };
  const Option& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> declaration_order_;
  /// Empty = positionals rejected; otherwise their help placeholder.
  std::string positional_placeholder_;
  std::vector<std::string> positionals_;
};

}  // namespace hlock
