// Bounded exhaustive model checking of the hierarchical protocol.
//
// The randomized tests sample schedules; the explorer enumerates EVERY
// reachable interleaving of a small configuration: each node executes a
// fixed script of lock operations, and the explorer branches over all
// enabled actions (issue next script step, deliver the head of any FIFO
// channel), deduplicating states via complete fingerprints.
//
// Checked in every reachable state:
//   * pairwise compatibility of held modes (Rule 1 safety),
//   * token conservation (exactly one, at rest or in flight).
// Checked in every terminal state (no enabled actions):
//   * all scripts ran to completion — i.e. no deadlock, no lost request,
//   * the structures converged (quiescent copyset/parent consistency).
// Optionally checked over the whole explored graph (ExploreOptions):
//   * liveness — no reachable cycle on which some node's outstanding
//     request never progresses (starvation/livelock), reported as a lasso.
//
// Raw state counts grow quickly; two reductions keep larger configurations
// exhaustive (docs/modelcheck.md has the soundness sketches):
//   * partial-order reduction (stubborn/persistent sets over the per-pair
//     FIFO channel structure) explores commuting interleavings once,
//   * symmetry canonicalization collapses states equivalent under node-id
//     permutations when nodes run identical scripts.
// Counterexamples can be minimized (BFS parent links) and are always
// replayed into a structured event trace for lint/obs post-processing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/hier_config.hpp"
#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"
#include "recovery/manager.hpp"
#include "trace/event.hpp"

namespace hlock::modelcheck {

/// One step of a node's script.
struct ScriptOp {
  enum class Kind { kAcquire, kRelease, kUpgrade } kind = Kind::kAcquire;
  proto::LockMode mode = proto::LockMode::kNL;  // for kAcquire
  std::uint8_t priority = 0;                    // for kAcquire

  static ScriptOp acquire(proto::LockMode mode, std::uint8_t priority = 0) {
    return {Kind::kAcquire, mode, priority};
  }
  static ScriptOp release() {
    return {Kind::kRelease, proto::LockMode::kNL, 0};
  }
  static ScriptOp upgrade() {
    return {Kind::kUpgrade, proto::LockMode::kNL, 0};
  }

  /// Byte-identical scripts make nodes interchangeable for symmetry.
  friend bool operator==(const ScriptOp&, const ScriptOp&) = default;
};

/// A node's whole script, executed in order.
using Script = std::vector<ScriptOp>;

/// Deliberate spec corruptions for seeding known-bad behavior into an
/// otherwise-correct protocol — the test harness for the checker itself
/// (does --liveness catch starvation? does --minimize find the shortest
/// schedule?). Inactive by default.
struct DoctoredSpec {
  /// Extra mode pairs treated as incompatible by the safety checker, as if
  /// Table 1(a) had these entries flipped. Listing a pair that genuinely
  /// co-occurs (e.g. {kR, kIR}) turns a reachable good state into a
  /// seeded safety violation.
  std::vector<std::pair<proto::LockMode, proto::LockMode>> conflicts;
  /// When set, REQUEST messages from this node are bounced at the network
  /// layer instead of delivered (a corrupted Table 1(c) that never queues
  /// or serves the victim): the receiver returns the request to its
  /// sender, and the victim re-forwards it to the token holder. The
  /// victim's request then orbits forever — a seeded starvation cycle for
  /// --liveness to find. Automatons are never touched.
  proto::NodeId bounce = proto::NodeId::none();

  bool active() const { return !conflicts.empty() || !bounce.is_none(); }
};

/// Crash-stop exploration (docs/recovery.md): every listed victim may
/// crash at ANY reachable state, and every live node may suspect a crashed
/// victim at any point after the crash — the explorer branches over crash
/// timing, suspicion order and the full interleaving of the recovery
/// campaign (gossip, reports, fences) with in-flight protocol traffic.
/// Each node runs a recovery::Manager exactly as the runtimes do: halting
/// buffers protocol messages, newer-epoch messages park until the local
/// fence lands, unhalting replays the backlog. Checked properties change
/// accordingly: token conservation becomes per-epoch (at most one token
/// per recovery epoch, at rest on a live node or in flight), pairwise
/// hold compatibility and all terminal checks consider live nodes only,
/// and a victim's unfinished script is forgiven — but every SURVIVOR's
/// script must still complete (no lost waiter). Suspicions are only
/// explored for genuinely crashed nodes (the false-suspicion regime is
/// covered by the randomized harnesses, not the explorer). Incompatible
/// with liveness, symmetry and the bounce doctor; POR stays sound by
/// reducing only pure-protocol phases (all victims crashed and adopted,
/// nobody halted, no recovery traffic or buffered backlog in flight).
struct CrashSpec {
  /// Nodes that may crash-stop during exploration (each at most once).
  std::vector<proto::NodeId> victims;
  /// Manager tuning forwarded to every node; `enabled` is implied. The
  /// interesting knob is doctor_double_fence: the seeded
  /// double-regeneration bug the per-epoch token check must catch
  /// (hlock_check --crash-doctored, an expect-violation run).
  recovery::Options recovery;

  bool active() const { return !victims.empty(); }
};

/// Exploration limits, protocol configuration and analysis toggles.
struct ExploreOptions {
  core::HierConfig config = {};
  /// Abort (as a failure) beyond this many distinct states.
  std::uint64_t max_states = 5'000'000;
  /// Run the conformance linter (src/lint) over the replayed event trace
  /// of every first-visit terminal path — the fairness / Table 1(a)-(d)
  /// pass on top of the explorer's built-in safety checks. A lint
  /// violation fails the exploration like any other. Coverage note: state
  /// deduplication (and, more aggressively, --por) means each terminal is
  /// linted along one representative path, not every path.
  bool lint = false;
  /// Partial-order reduction: at each state, when a provably sufficient
  /// subset of enabled actions exists (persistent-set closure over the
  /// channel structure, property-invisible successors only), explore only
  /// that subset. A post-search pass re-expands one state per fully
  /// reduced cycle (condition S), so no action is ignored forever.
  /// Preserves all safety verdicts, deadlocks and terminal states.
  bool por = false;
  /// Symmetry canonicalization: fingerprint states modulo node-id
  /// permutations that map nodes to nodes with identical scripts (the
  /// initial token holder's distinction is itself relabeled state, so
  /// node 0 participates). Ignored under liveness (quotient cycles need
  /// not be concrete cycles, so merging orbits could fabricate lassos).
  bool symmetry = false;
  /// After exploration, search the explored graph for a reachable cycle
  /// on which some node's request stays unresolved throughout; report it
  /// as a lasso counterexample (stem + cycle).
  bool liveness = false;
  /// Search breadth-first instead of depth-first so parent links yield a
  /// depth-minimal counterexample schedule.
  bool minimize = false;
  /// Seeded spec corruption (tests of the checker itself).
  DoctoredSpec doctor;
  /// Crash-stop failure exploration (hierarchical explore() only).
  CrashSpec crash;
};

/// How an exploration concluded; refines ExploreResult::ok.
enum class Verdict {
  kOk,          ///< every interleaving safe, every script completed
  kSafety,      ///< a state violated Rule 1 / token conservation /
                ///< quiescent-structure checks
  kDeadlock,    ///< terminal state with an unfinished script
  kLint,        ///< conformance lint violation on a terminal path
  kStarvation,  ///< liveness: a lasso where a request never progresses
  kStateLimit,  ///< aborted at ExploreOptions::max_states
};

std::string to_string(Verdict verdict);

/// Exploration counters; `states` etc. mirror the top-level ExploreResult
/// fields, the rest describe the reductions (see docs/modelcheck.md).
struct ExploreStats {
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminal_states = 0;
  /// Successor states that were already visited (dedup hits).
  std::uint64_t revisits = 0;
  /// States where POR pruned the enabled set, and the actions it skipped.
  std::uint64_t por_reduced_states = 0;
  std::uint64_t por_pruned_actions = 0;
  /// Why candidate reductions were rejected (one count per candidate
  /// owner set): the dependency closure engulfed every enabled action's
  /// owner, or a successor changed property-visible state.
  std::uint64_t por_reject_saturated = 0;
  std::uint64_t por_reject_visible = 0;
  /// States force-re-expanded by the post-search ignoring repair
  /// (condition S: every cycle keeps one fully-expanded state).
  std::uint64_t por_ignoring_repairs = 0;
  /// Size of the node-permutation group used for canonicalization (1 when
  /// symmetry is off, trivial or truncated).
  std::uint64_t symmetry_permutations = 1;
  std::uint64_t peak_frontier = 0;
  std::uint64_t max_depth = 0;
};

/// Outcome of one exploration.
struct ExploreResult {
  bool ok = false;
  Verdict verdict = Verdict::kOk;
  std::uint64_t states_explored = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminal_states = 0;
  /// Empty when ok; otherwise the first violation found and the action
  /// trace (one line per action) that reaches it.
  std::string violation;
  std::vector<std::string> trace;
  /// Structured events replayed along the counterexample path (empty when
  /// ok). Feed to lint::check or trace::format_event for post-hoc
  /// analysis (tools/hlock_check).
  std::vector<trace::TraceEvent> events;
  /// Canonical, exploration-order-independent descriptor of WHAT was
  /// violated (e.g. "incompatible:R+W", "tokens:2", "starvation:node2") —
  /// the cross-validation signal: a reduced and an unreduced run of the
  /// same configuration must agree on it even though their counterexample
  /// paths may differ. Empty when ok.
  std::string violation_fingerprint;
  /// Liveness lassos: the trailing `lasso_cycle_length` entries of `trace`
  /// form the repeating cycle; the prefix is the stem. 0 otherwise.
  std::uint64_t lasso_cycle_length = 0;
  ExploreStats stats;
};

/// Exhaustively explores `scripts` (scripts[i] runs on node i; node 0 is
/// the initial token holder) under every possible interleaving. At most
/// 32 nodes (reduction bitmasks).
ExploreResult explore(const std::vector<Script>& scripts,
                      const ExploreOptions& options = {});

/// Same exploration for the Naimi baseline. Scripts are mode-less:
/// acquire/release only (modes and priorities in ScriptOps are ignored;
/// upgrades are rejected). Checks: at most one node in its critical
/// section, token conservation, liveness and quiescent structure (one
/// root, nobody requesting).
ExploreResult explore_naimi(const std::vector<Script>& scripts,
                            std::uint64_t max_states = 5'000'000);

/// Same exploration for Raymond's algorithm on a balanced binary tree
/// rooted at node 0. Scripts as in explore_naimi().
ExploreResult explore_raymond(const std::vector<Script>& scripts,
                              std::uint64_t max_states = 5'000'000);

}  // namespace hlock::modelcheck
