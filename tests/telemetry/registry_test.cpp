// Unit tests of the telemetry registry: instrument get-or-create, naming,
// callback series, snapshots, and the histogram/bounds primitives.
#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "telemetry/metric.hpp"
#include "util/check.hpp"

namespace hlock::telemetry {
namespace {

TEST(Registry, GetOrCreateReturnsTheSameInstrument) {
  Registry registry;
  Counter& a = registry.counter("hlock_test_total");
  Counter& b = registry.counter("hlock_test_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);

  Gauge& g1 = registry.gauge("hlock_test_depth");
  Gauge& g2 = registry.gauge("hlock_test_depth");
  EXPECT_EQ(&g1, &g2);

  Histogram& h1 = registry.histogram("hlock_test_ms");
  Histogram& h2 = registry.histogram("hlock_test_ms");
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(registry.series_count(), 3u);
}

TEST(Registry, NameWithADifferentTypeThrows) {
  Registry registry;
  registry.counter("hlock_test_total");
  EXPECT_THROW(registry.gauge("hlock_test_total"), UsageError);
  EXPECT_THROW(registry.histogram("hlock_test_total"), UsageError);
  registry.gauge("hlock_test_depth");
  EXPECT_THROW(registry.counter("hlock_test_depth"), UsageError);
  // Callback names claim the type too.
  registry.register_counter_fn("hlock_test_cb_total", [] { return 1u; });
  EXPECT_THROW(registry.gauge("hlock_test_cb_total"), UsageError);
}

TEST(Registry, HistogramBoundsApplyOnFirstCreationOnly) {
  Registry registry;
  Histogram& h =
      registry.histogram("hlock_test_ms", linear_bounds(1.0, 1.0, 3));
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
  // A later call with different bounds returns the existing instrument.
  Histogram& again =
      registry.histogram("hlock_test_ms", linear_bounds(10.0, 10.0, 5));
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 3u);
  // Empty bounds pick the stock latency layout.
  Histogram& stock = registry.histogram("hlock_test_wait_ms");
  EXPECT_EQ(stock.bounds(), default_latency_bounds_ms());
}

TEST(Registry, SnapshotIsSortedAndSearchable) {
  Registry registry;
  registry.counter("hlock_z_total").inc(7);
  registry.gauge("hlock_a_depth").set(4.0);
  registry.counter(labeled("hlock_m_total", {{"node", "1"}})).inc(1);
  registry.counter(labeled("hlock_m_total", {{"node", "0"}})).inc(2);

  const Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].name, snap.samples[i].name);
  }
  const Sample* z = snap.find("hlock_z_total");
  ASSERT_NE(z, nullptr);
  EXPECT_EQ(z->type, MetricType::kCounter);
  EXPECT_EQ(z->value, 7.0);
  EXPECT_EQ(snap.find("hlock_missing"), nullptr);
  EXPECT_EQ(snap.family_sum("hlock_m_total"), 3.0);
  EXPECT_EQ(snap.family_sum("hlock_absent"), 0.0);
}

TEST(Registry, CallbackSeriesArePolledAtSnapshotTime) {
  Registry registry;
  std::uint64_t sent = 10;
  double depth = 2.5;
  registry.register_counter_fn("hlock_sent_total", [&sent] { return sent; });
  registry.register_gauge_fn("hlock_depth", [&depth] { return depth; });

  EXPECT_EQ(registry.snapshot().find("hlock_sent_total")->value, 10.0);
  sent = 25;
  depth = 0.0;
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("hlock_sent_total")->value, 25.0);
  EXPECT_EQ(snap.find("hlock_depth")->value, 0.0);

  // Re-registering a name replaces the callback.
  registry.register_counter_fn("hlock_sent_total", [] { return 99u; });
  EXPECT_EQ(registry.snapshot().find("hlock_sent_total")->value, 99.0);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(Registry, UnregisterCallbacksDropsOnlyThePrefix) {
  Registry registry;
  registry.register_counter_fn("hlock_tcp_sent_total", [] { return 1u; });
  registry.register_gauge_fn("hlock_tcp_depth", [] { return 1.0; });
  registry.register_gauge_fn("hlock_mailbox_depth", [] { return 1.0; });
  registry.counter("hlock_tcp_owned_total").inc();

  registry.unregister_callbacks("hlock_tcp_");
  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("hlock_tcp_sent_total"), nullptr);
  EXPECT_EQ(snap.find("hlock_tcp_depth"), nullptr);
  EXPECT_NE(snap.find("hlock_mailbox_depth"), nullptr);
  // Owned instruments survive — their storage lives in the registry.
  EXPECT_NE(snap.find("hlock_tcp_owned_total"), nullptr);
}

TEST(Labeled, BuildsAndEscapesSeriesNames) {
  EXPECT_EQ(labeled("hlock_total", {}), "hlock_total");
  EXPECT_EQ(labeled("hlock_total", {{"node", "3"}, {"mode", "W"}}),
            "hlock_total{node=\"3\",mode=\"W\"}");
  EXPECT_EQ(labeled("x", {{"k", "a\"b\\c\nd"}}),
            "x{k=\"a\\\"b\\\\c\\nd\"}");
}

TEST(Labeled, FamilyOfStripsTheLabelBlock) {
  EXPECT_EQ(family_of("hlock_total{node=\"3\"}"), "hlock_total");
  EXPECT_EQ(family_of("hlock_total"), "hlock_total");
}

TEST(Bounds, HelpersProduceTheDocumentedLayouts) {
  EXPECT_EQ(exponential_bounds(1.0, 2.0, 4),
            (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_EQ(linear_bounds(1.0, 1.0, 3), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_THROW(exponential_bounds(0.0, 2.0, 4), UsageError);
  EXPECT_THROW(exponential_bounds(1.0, 1.0, 4), UsageError);
  EXPECT_THROW(linear_bounds(0.0, 0.0, 4), UsageError);

  const std::vector<double> stock = default_latency_bounds_ms();
  ASSERT_FALSE(stock.empty());
  EXPECT_DOUBLE_EQ(stock.front(), 0.05);
  for (std::size_t i = 1; i < stock.size(); ++i) {
    EXPECT_GT(stock[i], stock[i - 1]);
  }
  EXPECT_GT(stock.back(), 100'000.0);  // covers multi-second chaos stalls
}

TEST(HistogramMetric, RecordsIntoTheRightBuckets) {
  Histogram h{linear_bounds(1.0, 1.0, 3)};  // bounds 1, 2, 3 + overflow
  h.record(0.5);   // <= 1
  h.record(1.0);   // <= 1 (bounds are inclusive upper)
  h.record(1.5);   // <= 2
  h.record(100.0); // overflow
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.counts, (std::vector<std::uint64_t>{2, 1, 0, 1}));
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 103.0);
}

TEST(HistogramMetric, QuantileInterpolatesAndClampsAtOverflow) {
  Histogram h{linear_bounds(10.0, 10.0, 4)};  // 10, 20, 30, 40
  EXPECT_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) {
    h.record(15.0);  // all in (10, 20]
  }
  const double p50 = h.quantile(0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 20.0);
  // Overflow samples clamp the quantile to the largest finite bound.
  Histogram tail{linear_bounds(10.0, 10.0, 2)};  // 10, 20
  tail.record(1000.0);
  EXPECT_EQ(tail.quantile(0.99), 20.0);
}

}  // namespace
}  // namespace hlock::telemetry
