#include "transport/mailbox.hpp"

namespace hlock::transport {

void Mailbox::push(proto::Message message, Clock::time_point deliver_at) {
  {
    MutexLock guard(mutex_);
    if (closed_) return;
    heap_.push(Entry{deliver_at, next_seq_++, std::move(message)});
    ++pushed_;
  }
  cv_.notify_one();
}

std::optional<proto::Message> Mailbox::pop() {
  return pop_until(Clock::time_point::max());
}

std::optional<proto::Message> Mailbox::pop_until(Clock::time_point deadline) {
  MutexLock lock(mutex_);
  for (;;) {
    if (!heap_.empty()) {
      const Clock::time_point due = heap_.top().deliver_at;
      if (due <= Clock::now()) {
        proto::Message message = heap_.top().message;
        heap_.pop();
        return message;
      }
      // Wait until the head matures, the deadline passes, or a new
      // (possibly earlier) message arrives.
      const Clock::time_point until = std::min(due, deadline);
      if (cv_.wait_until(mutex_, until) == std::cv_status::timeout &&
          until == deadline && Clock::now() >= deadline) {
        // Deadline reached before the head matured.
        if (!heap_.empty() && heap_.top().deliver_at <= Clock::now()) {
          proto::Message message = heap_.top().message;
          heap_.pop();
          return message;
        }
        return std::nullopt;
      }
      continue;
    }
    if (closed_) return std::nullopt;
    if (deadline == Clock::time_point::max()) {
      cv_.wait(mutex_);
    } else if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
      if (!heap_.empty() && heap_.top().deliver_at <= Clock::now()) {
        continue;
      }
      return std::nullopt;
    }
  }
}

void Mailbox::close() {
  {
    MutexLock guard(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::uint64_t Mailbox::pushed() const {
  MutexLock guard(mutex_);
  return pushed_;
}

}  // namespace hlock::transport
