#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace hlock::stats {

namespace {
/// "41.0%".
std::string percent(std::size_t count, std::size_t total) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%.1f%%",
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(count) /
                                 static_cast<double>(total));
  return buf;
}
}  // namespace

std::string render_histogram(const std::vector<double>& samples,
                             const HistogramOptions& options) {
  HLOCK_REQUIRE(options.buckets >= 1, "histogram needs at least one bucket");
  HLOCK_REQUIRE(options.bar_width >= 1, "bar width must be positive");
  if (samples.empty()) return "(no samples)\n";

  const auto [min_it, max_it] =
      std::minmax_element(samples.begin(), samples.end());
  double lo = *min_it;
  double hi = *max_it;
  if (hi == lo) hi = lo + 1.0;  // degenerate: single-value population

  // Log scale needs a positive origin. Zeros (e.g. message-free local
  // grants) are legal inputs: clamp the floor to a fixed dynamic range
  // below the maximum so they collapse into the first bucket instead of
  // degenerating the bucket bounds.
  const double log_floor = std::max({lo, hi / 1e5, 1e-9});
  const double log_lo = std::log(log_floor);
  const double log_hi = std::log(std::max(hi, log_floor * (1 + 1e-9)));

  std::vector<std::size_t> counts(options.buckets, 0);
  auto bucket_of = [&](double v) {
    double fraction = 0;
    if (options.log_scale) {
      const double lv = std::log(std::max(v, log_floor));
      fraction = (lv - log_lo) / (log_hi - log_lo);
    } else {
      fraction = (v - lo) / (hi - lo);
    }
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(options.buckets));
    return std::min(index, options.buckets - 1);
  };
  for (double v : samples) ++counts[bucket_of(v)];

  auto bound_of = [&](std::size_t i) {
    const double fraction =
        static_cast<double>(i) / static_cast<double>(options.buckets);
    if (options.log_scale) {
      return std::exp(log_lo + fraction * (log_hi - log_lo));
    }
    return lo + fraction * (hi - lo);
  };

  const std::size_t peak = *std::max_element(counts.begin(), counts.end());
  std::ostringstream os;
  for (std::size_t i = 0; i < options.buckets; ++i) {
    const double from = bound_of(i);
    const double to = bound_of(i + 1);
    const std::size_t bar =
        peak == 0 ? 0 : counts[i] * options.bar_width / peak;
    char head[80];
    std::snprintf(head, sizeof head, "[%10.3f, %10.3f) %-3s ", from, to,
                  options.unit.c_str());
    os << head << std::string(bar, '#')
       << std::string(options.bar_width - bar, '.') << ' ' << counts[i]
       << " (" << percent(counts[i], samples.size()) << ")\n";
  }
  return os.str();
}

std::string render_bucketed_histogram(const std::vector<double>& bounds,
                                      const std::vector<std::uint64_t>& counts,
                                      const HistogramOptions& options) {
  HLOCK_REQUIRE(options.bar_width >= 1, "bar width must be positive");
  HLOCK_REQUIRE(counts.size() == bounds.size() + 1,
                "counts must have one overflow bucket beyond bounds");
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (const std::uint64_t c : counts) {
    total += c;
    peak = std::max(peak, c);
  }
  if (total == 0) return "(no samples)\n";

  std::ostringstream os;
  bool elided = false;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    // Elide interior runs of empty buckets (exponential layouts are
    // mostly empty); a neighbor of a populated bucket stays for context.
    const bool prev_empty = i == 0 || counts[i - 1] == 0;
    const bool next_empty = i + 1 >= counts.size() || counts[i + 1] == 0;
    if (counts[i] == 0 && prev_empty && next_empty) {
      if (!elided) {
        os << "  ...\n";
        elided = true;
      }
      continue;
    }
    elided = false;
    char head[80];
    if (i < bounds.size()) {
      const double from = i == 0 ? 0.0 : bounds[i - 1];
      std::snprintf(head, sizeof head, "[%10.3f, %10.3f) %-3s ", from,
                    bounds[i], options.unit.c_str());
    } else {
      std::snprintf(head, sizeof head, "[%10.3f,       +Inf) %-3s ",
                    bounds.empty() ? 0.0 : bounds.back(),
                    options.unit.c_str());
    }
    const std::size_t bar = static_cast<std::size_t>(
        counts[i] * options.bar_width / std::max<std::uint64_t>(peak, 1));
    os << head << std::string(bar, '#')
       << std::string(options.bar_width - bar, '.') << ' ' << counts[i]
       << " (" << percent(counts[i], total) << ")\n";
  }
  return os.str();
}

}  // namespace hlock::stats
