// Binary wire codec for protocol messages.
//
// The in-process transports could pass Message structs by value, but a real
// deployment ships bytes; encoding through this codec keeps the protocol
// honest about what information actually crosses the network (the threaded
// transport round-trips every message through it by default). The format is
// a fixed little-endian layout with a length-prefixed queue section — no
// pointers, no padding, portable across platforms. A leading version byte
// rejects frames from incompatible peers; version 2 added the per-request
// causal id and the Lamport timestamp to the envelope (src/obs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/message.hpp"

namespace hlock::proto {

/// Wire format version, the first byte of every encoded message. Bumped to
/// 2 when the envelope grew the RequestId and Lamport fields; decode()
/// rejects every other version.
inline constexpr std::uint8_t kWireFormatVersion = 2;

/// Appends little-endian primitives to a byte buffer.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void node(NodeId id);
  void lock(LockId id);
  void mode(LockMode m);

 private:
  std::vector<std::byte>& out_;
};

/// Consumes little-endian primitives from a byte span. All read methods
/// return std::nullopt once the input is exhausted or malformed; decoding
/// never throws on bad input (a hostile or truncated packet must not crash
/// a lock server).
class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> in) : in_(in) {}

  std::optional<std::uint8_t> u8();
  std::optional<std::uint32_t> u32();
  std::optional<std::uint64_t> u64();
  std::optional<NodeId> node();
  std::optional<LockId> lock();
  std::optional<LockMode> mode();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return in_.size() - pos_; }

 private:
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

/// Serializes a message; the result is self-contained (no framing needed
/// beyond the byte count).
std::vector<std::byte> encode(const Message& m);

/// Parses a message previously produced by encode(). Returns std::nullopt
/// for truncated or corrupt input, including trailing garbage.
std::optional<Message> decode(std::span<const std::byte> bytes);

}  // namespace hlock::proto
