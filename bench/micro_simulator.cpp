// Micro-benchmarks of the discrete-event simulator substrate: event-queue
// throughput and the full cluster event loop. These establish the
// simulation's own capacity, i.e. how large an experiment the harness can
// run per wall-clock second.
#include <benchmark/benchmark.h>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace hlock;

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  sim::EventQueue queue;
  Rng rng{1};
  // Keep a steady backlog of `depth` events; measure push+pop pairs.
  for (std::size_t i = 0; i < depth; ++i) {
    queue.push(SimTime::ns(rng.range(0, 1'000'000)), [] {});
  }
  std::int64_t t = 1'000'000;
  for (auto _ : state) {
    queue.push(SimTime::ns(t + rng.range(0, 1000)), [] {});
    benchmark::DoNotOptimize(queue.pop());
    ++t;
  }
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(4096)->Arg(65536);

void BM_SimulatorEventChain(benchmark::State& state) {
  // Self-scheduling event chains: the pattern every workload driver uses.
  for (auto _ : state) {
    sim::Simulator sim;
    int remaining = 1000;
    std::function<void()> step = [&] {
      if (--remaining > 0) sim.schedule_in(SimTime::us(1), step);
    };
    sim.schedule_in(SimTime::us(1), step);
    benchmark::DoNotOptimize(sim.run_to_completion());
  }
}
BENCHMARK(BM_SimulatorEventChain);

void BM_RngDraws(benchmark::State& state) {
  Rng rng{123};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_RngDraws);

void BM_RngBounded(benchmark::State& state) {
  Rng rng{123};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.below(1000));
  }
}
BENCHMARK(BM_RngBounded);

}  // namespace

BENCHMARK_MAIN();
