#include "core/mode_tables.hpp"

#include <sstream>

#include "util/check.hpp"

namespace hlock::core {

namespace {

using proto::kModeCount;
using proto::kRealModes;
using proto::mode_index;

// Table 1(a) — Incompatible. Rows: M1 (held/owned) over all six modes;
// columns: M2 (requested) over the five real modes (requesting kNL is
// meaningless). 1 = X in the paper = conflict.
//
//             M2:  IR  R  U  IW  W
constexpr int kIncompatible[kModeCount][kModeCount] = {
    /* NL */ {0, 0, 0, 0, 0, 0},
    /* IR */ {0, 0, 0, 0, 0, 1},
    /* R  */ {0, 0, 0, 0, 1, 1},
    /* U  */ {0, 0, 0, 1, 1, 1},
    /* IW */ {0, 0, 1, 1, 0, 1},
    /* W  */ {0, 1, 1, 1, 1, 1},
};

// Definition 1 — strength rank = |modes| - |compatible modes|. The paper's
// inequations NL < IR < R < U < W and IR < IW < W leave U vs IW unordered;
// they are mutually incompatible, so the tie never influences any rule.
constexpr int kStrength[kModeCount] = {
    /* NL */ 0, /* IR */ 1, /* R */ 2, /* U */ 3, /* IW */ 3, /* W */ 4,
};

// Table 1(c) — Queue/Forward. Rows: M1 = this node's pending mode (kNL row
// is the paper's "No lock" row: with no pending request a non-token node
// must always forward). Columns: M2 = requested mode. 1 = Q, 0 = F.
//
//             M2:  -  IR  R  U  IW  W
constexpr int kQueueTable[kModeCount][kModeCount] = {
    /* NL */ {0, 0, 0, 0, 0, 0},
    /* IR */ {0, 1, 0, 0, 0, 0},
    /* R  */ {0, 0, 1, 0, 0, 0},
    /* U  */ {0, 0, 0, 1, 1, 1},
    /* IW */ {0, 0, 0, 0, 1, 0},
    /* W  */ {0, 1, 1, 1, 1, 1},
};

}  // namespace

bool incompatible(LockMode held, LockMode requested) {
  return kIncompatible[mode_index(held)][mode_index(requested)] != 0;
}

ModeSet compatible_set(LockMode m) {
  ModeSet out;
  for (LockMode other : kRealModes) {
    if (compatible(m, other)) out.insert(other);
  }
  return out;
}

int strength_rank(LockMode m) { return kStrength[mode_index(m)]; }

bool non_token_can_grant(LockMode owned, LockMode requested) {
  // Table 1(b): a non-token node may grant iff its owned mode is a real
  // mode, compatible with the request, and at least as strong (Rule 3.1).
  if (owned == LockMode::kNL || requested == LockMode::kNL) return false;
  return compatible(owned, requested) && at_least_as_strong(owned, requested);
}

QueueOrForward queue_or_forward(LockMode pending, LockMode requested) {
  return kQueueTable[mode_index(pending)][mode_index(requested)] != 0
             ? QueueOrForward::kQueue
             : QueueOrForward::kForward;
}

ModeSet freeze_set(LockMode owned, LockMode requested) {
  // Table 1(d): freeze every mode the owner could still grant that would
  // bypass the queued request: compat(owned) ∩ incompat(requested).
  if (compatible(owned, requested)) return {};
  ModeSet frozen;
  for (LockMode m : kRealModes) {
    if (compatible(owned, m) && incompatible(m, requested)) frozen.insert(m);
  }
  return frozen;
}

std::string render_table(char which) {
  HLOCK_REQUIRE(which >= 'a' && which <= 'd', "table id must be 'a'..'d'");
  using proto::kAllModes;
  static constexpr const char* kTitles[] = {
      "(a) Incompatible", "(b) No Child Grant", "(c) Queue/Forward",
      "(d) Freezing Modes at Token"};

  std::ostringstream os;
  os << "Table 1" << kTitles[which - 'a'] << " — rows M1, columns M2\n";
  os << "M1\\M2   ";
  for (LockMode m2 : kRealModes) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%-10s", to_string(m2).c_str());
    os << buf;
  }
  os << '\n';
  for (LockMode m1 : kAllModes) {
    char head[16];
    std::snprintf(head, sizeof head, "%-8s",
                  m1 == LockMode::kNL ? "-" : to_string(m1).c_str());
    os << head;
    for (LockMode m2 : kRealModes) {
      std::string cell;
      switch (which) {
        case 'a':
          cell = incompatible(m1, m2) ? "X" : ".";
          break;
        case 'b':
          cell = non_token_can_grant(m1, m2) ? "." : "X";
          break;
        case 'c':
          cell = queue_or_forward(m1, m2) == QueueOrForward::kQueue ? "Q"
                                                                    : "F";
          break;
        case 'd': {
          const ModeSet frozen = freeze_set(m1, m2);
          cell = frozen.empty() ? "." : to_string(frozen);
          // Strip braces for compactness: {IR,R} -> IR,R
          cell = cell.substr(1, cell.size() - 2);
          if (cell.empty()) cell = ".";
          break;
        }
        default:
          break;
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%-10s", cell.c_str());
      os << buf;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace hlock::core
