#include "raymond/raymond_automaton.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace hlock::raymond {

using proto::Message;
using proto::NaimiRequest;
using proto::NaimiToken;
using proto::Payload;

// Raymond's REQUEST and PRIVILEGE messages are structurally identical to
// the Naimi baseline's (a hop-by-hop request and a bare token), so the
// same wire payloads are reused; the envelope sender is the requesting
// neighbor.

RaymondAutomaton::RaymondAutomaton(NodeId self, LockId lock, NodeId holder,
                                   std::vector<NodeId> neighbors)
    : self_(self), lock_(lock), neighbors_(std::move(neighbors)),
      holder_(holder) {
  HLOCK_REQUIRE(!holder.is_none(), "holder must point somewhere");
  HLOCK_REQUIRE(holder == self || is_neighbor(holder),
                "holder must be self or a tree neighbor");
}

bool RaymondAutomaton::is_neighbor(NodeId node) const {
  return std::find(neighbors_.begin(), neighbors_.end(), node) !=
         neighbors_.end();
}

Effects RaymondAutomaton::request() {
  HLOCK_REQUIRE(!in_cs_, "node is already inside the critical section");
  HLOCK_REQUIRE(!requesting_, "a request is already outstanding");
  Effects fx;
  requesting_ = true;
  queue_.push_back(self_);
  pump(fx);
  return fx;
}

Effects RaymondAutomaton::release() {
  HLOCK_REQUIRE(in_cs_, "release without holding the lock");
  Effects fx;
  in_cs_ = false;
  pump(fx);
  return fx;
}

Effects RaymondAutomaton::on_message(const Message& message) {
  HLOCK_REQUIRE(message.to == self_, "message delivered to the wrong node");
  HLOCK_REQUIRE(message.lock == lock_,
                "message delivered to the wrong lock instance");
  Effects fx;
  if (std::get_if<NaimiRequest>(&message.payload) != nullptr) {
    HLOCK_INVARIANT(is_neighbor(message.from),
                    "request from a non-neighbor in the static tree");
    queue_.push_back(message.from);
    pump(fx);
  } else if (std::get_if<NaimiToken>(&message.payload) != nullptr) {
    HLOCK_INVARIANT(message.from == holder_,
                    "privilege arrived from an unexpected direction");
    holder_ = self_;
    asked_ = false;
    pump(fx);
  } else {
    HLOCK_INVARIANT(false,
                    "unexpected payload delivered to a RaymondAutomaton");
  }
  return fx;
}

void RaymondAutomaton::pump(Effects& fx) {
  // ASSIGN_PRIVILEGE: a free local token goes to the queue head.
  if (holder_ == self_ && !in_cs_ && !queue_.empty()) {
    const NodeId head = queue_.front();
    queue_.pop_front();
    if (head == self_) {
      in_cs_ = true;
      requesting_ = false;
      fx.entered_cs = true;
    } else {
      holder_ = head;
      asked_ = false;
      send(head, NaimiToken{}, fx);
    }
  }
  // MAKE_REQUEST: if the token is elsewhere and someone (possibly we)
  // waits here, ask the holder-direction neighbor once.
  if (holder_ != self_ && !queue_.empty() && !asked_) {
    send(holder_, NaimiRequest{self_, next_seq_++}, fx);
    asked_ = true;
  }
}

void RaymondAutomaton::send(NodeId to, Payload payload, Effects& fx) const {
  fx.messages.push_back(Message{self_, to, lock_, std::move(payload)});
}

std::string RaymondAutomaton::fingerprint() const {
  std::ostringstream os;
  os << holder_.value() << '/' << (asked_ ? 'A' : 'a')
     << (in_cs_ ? 'C' : 'c') << (requesting_ ? 'R' : 'r') << next_seq_
     << "|q";
  for (NodeId waiter : queue_) os << waiter.value() << ',';
  return os.str();
}

std::string RaymondAutomaton::describe() const {
  std::ostringstream os;
  os << to_string(self_) << " holder=" << to_string(holder_)
     << " q=" << queue_.size() << " asked=" << (asked_ ? 1 : 0)
     << " cs=" << (in_cs_ ? 1 : 0) << " req=" << (requesting_ ? 1 : 0);
  return os.str();
}

std::vector<TreeNode> balanced_tree(std::size_t node_count,
                                    std::size_t arity) {
  HLOCK_REQUIRE(node_count >= 1, "a tree needs at least one node");
  HLOCK_REQUIRE(arity >= 1, "tree arity must be positive");
  std::vector<TreeNode> tree(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    if (i == 0) {
      tree[i].holder = NodeId{0};  // the root starts with the token
    } else {
      const std::size_t parent = (i - 1) / arity;
      tree[i].holder = NodeId{static_cast<std::uint32_t>(parent)};
      tree[i].neighbors.push_back(
          NodeId{static_cast<std::uint32_t>(parent)});
      tree[parent].neighbors.push_back(
          NodeId{static_cast<std::uint32_t>(i)});
    }
  }
  return tree;
}

}  // namespace hlock::raymond
