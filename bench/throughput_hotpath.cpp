// Hot-path throughput bench: requests/sec, messages/sec and bytes/request
// for the hierarchical protocol vs the Naimi baseline, on the simulated
// cluster (protocol cost only) and on a live ThreadCluster (real threads,
// real codec, real mailboxes). The threaded rows run twice: once in the
// legacy configuration (batching off, one engine shard per node — the
// delivery path before the hot-path overhaul) and once with the defaults
// (same-destination batching + sharded engines), so the speedup column is
// an honest A/B of the overhaul on identical hardware and workload. See
// docs/performance.md.
//
//   throughput_hotpath                  # full run, prints tables
//   throughput_hotpath --quick          # CI-sized run
//   throughput_hotpath --out BENCH_throughput.json
//   throughput_hotpath --quick --baseline BENCH_throughput.json
//
// Two wire rows (wire-legacy / wire-batched) drive the delivery path
// directly — send_batch into a node's mailbox, recv_ready draining it, the
// full codec round-trip in between — with an exact message count, so their
// accounting metrics are deterministic and their messages/sec ratio is the
// honest measure of what batching buys the threaded hot path.
//
// --baseline compares the run against a previously written JSON and exits
// nonzero if a *stable* metric (msgs/request, bytes/request on the
// deterministic rows: sim-* and wire-*) regressed by more than 15%.
// Wall-clock metrics (requests/sec, messages/sec) are reported but never
// gated, and the threaded protocol rows are report-only: token retention
// makes their message counts schedule-dependent (a faster run does more
// local re-acquisitions per token transfer), so gating them would be
// noise, not signal.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/experiment.hpp"
#include "runtime/thread_cluster.hpp"
#include "stats/table.hpp"
#include "transport/inproc_transport.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace hlock;
using bench::AppVariant;
using bench::ExperimentConfig;
using bench::ExperimentResult;

namespace {

/// One measured configuration.
struct Row {
  std::string name;
  double requests_per_sec = 0;   // wall-clock; never gated
  double messages_per_sec = 0;   // wall-clock; never gated
  double msgs_per_request = 0;
  double bytes_per_request = 0;
  /// Whether the accounting metrics are deterministic enough to gate a CI
  /// run on (sim rows: seeded simulation; wire rows: exact counts).
  bool gated = false;
};

struct BenchParams {
  std::size_t thread_nodes = 8;
  /// Concurrent client threads per node, each working its own lock
  /// partition — multiple locks in flight per node is precisely the load
  /// the legacy single-mutex node serialized.
  std::size_t thread_clients = 4;
  int thread_ops = 600;  // lock/unlock pairs per client thread
  std::size_t thread_locks = 32;
  std::size_t sim_nodes = 32;
  int sim_ops = 60;
  std::size_t wire_messages = 1000000;
  std::size_t wire_burst = 16;  // messages per send_batch call
};

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
      .count();
}

/// Simulated-cluster row: the airline workload, protocol cost per request.
/// requests/sec here is wall-clock simulator throughput (how fast the
/// discrete-event core chews through the protocol), still useful as a
/// regression canary for the automaton hot path.
Row run_sim(const std::string& name, AppVariant variant,
            const BenchParams& params) {
  ExperimentConfig config;
  config.variant = variant;
  config.nodes = params.sim_nodes;
  config.ops_per_node = params.sim_ops;
  config.seed = 17;
  const auto start = std::chrono::steady_clock::now();
  const ExperimentResult result = bench::run_experiment(config);
  const double seconds = wall_seconds_since(start);
  HLOCK_INVARIANT(!result.aborted,
                  "sim bench row aborted: " + result.abort_reason);
  Row row;
  row.name = name;
  row.requests_per_sec =
      static_cast<double>(result.acquisitions) / seconds;
  row.messages_per_sec = static_cast<double>(result.messages) / seconds;
  row.msgs_per_request = result.msgs_per_acq;
  // The simulator moves Message values without encoding; bytes are a wire
  // phenomenon, reported by the threaded rows.
  row.bytes_per_request = 0;
  row.gated = true;  // seeded simulation: exactly reproducible
  return row;
}

/// Wire row: the delivery path in isolation. One sender thread ships
/// `wire_messages` in `wire_burst`-sized send_batch calls from node 0 to
/// node 1; a consumer drains node 1 via recv_ready. Everything the threaded
/// hot path does per message — encode, codec round-trip, mailbox handoff,
/// decode — happens here, with an exact message count, so msgs/request and
/// bytes/request are deterministic and the legacy/batched messages-per-sec
/// ratio isolates what coalescing buys.
Row run_wire(const std::string& name, bool batching,
             const BenchParams& params) {
  transport::InProcOptions options;
  options.node_count = 2;
  options.batching = batching;
  transport::InProcTransport transport{options};

  // A fixed mix of the protocol's message kinds (the token carries a small
  // queue, like a real handover under contention) so the codec cost is
  // representative and the byte accounting is exactly reproducible.
  std::vector<proto::Message> burst;
  for (std::size_t b = 0; b < params.wire_burst; ++b) {
    proto::Message m;
    m.from = proto::NodeId{0};
    m.to = proto::NodeId{1};
    m.lock = proto::LockId{static_cast<std::uint32_t>(b % 8)};
    m.request = proto::RequestId{proto::NodeId{0}, b};
    m.lamport = b + 1;
    switch (b % 4) {
      case 0:
        m.payload = proto::HierRequest{proto::NodeId{0}, proto::LockMode::kW,
                                       b, 0};
        break;
      case 1:
        m.payload = proto::HierGrant{proto::LockMode::kR,
                                     proto::LockMode::kR, 1};
        break;
      case 2:
        m.payload = proto::HierToken{
            proto::LockMode::kW, proto::LockMode::kNL,
            {proto::QueuedRequest{proto::NodeId{1}, proto::LockMode::kR, b,
                                  0}}};
        break;
      default:
        m.payload = proto::HierRelease{proto::LockMode::kNL, 1};
        break;
    }
    burst.push_back(std::move(m));
  }

  const std::size_t bursts = params.wire_messages / params.wire_burst;
  const std::size_t total = bursts * params.wire_burst;
  const auto start = std::chrono::steady_clock::now();
  std::thread consumer{[&transport, total] {
    std::size_t received = 0;
    while (received < total) {
      received += transport.recv_ready(proto::NodeId{1}).size();
    }
  }};
  for (std::size_t b = 0; b < bursts; ++b) {
    transport.send_batch(burst);  // copies; the burst template is reused
  }
  consumer.join();
  const double seconds = wall_seconds_since(start);
  transport.shutdown();

  Row row;
  row.name = name;
  const double count = static_cast<double>(total);
  row.requests_per_sec = count / seconds;  // 1 message == 1 "request" here
  row.messages_per_sec = count / seconds;
  row.msgs_per_request = 1.0;
  row.bytes_per_request =
      static_cast<double>(transport.bytes_sent()) / count;
  row.gated = true;  // exact counts, fixed message mix
  return row;
}

/// Threaded-cluster row: every node thread round-robins lock/unlock over
/// `thread_locks` locks — multi-lock on purpose, so engine sharding has
/// parallelism to expose and batching has same-destination runs to
/// coalesce.
Row run_thread(const std::string& name, runtime::Protocol protocol,
               bool batching, std::size_t engine_shards,
               const BenchParams& params) {
  runtime::ThreadClusterOptions options;
  options.node_count = params.thread_nodes;
  options.protocol = protocol;
  options.batching = batching;
  options.engine_shards = engine_shards;
  options.seed = 29;
  runtime::ThreadCluster cluster{options};

  // Client c on every node round-robins the same lock partition (so the
  // locks see real cross-node contention while no node ever has two
  // requests outstanding on one lock — the automaton precondition), with a
  // per-node stagger so consecutive acquisitions hit different locks: the
  // token for the next lock is almost always remote, which keeps the
  // delivery path — the thing this bench measures — busy instead of
  // letting token retention satisfy everything locally.
  const std::size_t locks_per_client =
      params.thread_locks / params.thread_clients;
  HLOCK_REQUIRE(locks_per_client >= 1,
                "need at least one lock per client thread");
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < params.thread_nodes; ++i) {
    for (std::size_t c = 0; c < params.thread_clients; ++c) {
      workers.emplace_back([&cluster, &params, locks_per_client, i, c] {
        for (int k = 0; k < params.thread_ops; ++k) {
          const proto::LockId lock{static_cast<std::uint32_t>(
              c * locks_per_client +
              (static_cast<std::size_t>(k) + i) % locks_per_client)};
          cluster.lock(proto::NodeId{i}, lock, proto::LockMode::kW);
          cluster.unlock(proto::NodeId{i}, lock);
        }
      });
    }
  }
  for (std::thread& worker : workers) worker.join();
  const double seconds = wall_seconds_since(start);

  const double requests = static_cast<double>(params.thread_nodes) *
                          static_cast<double>(params.thread_clients) *
                          static_cast<double>(params.thread_ops);
  const double messages = static_cast<double>(cluster.messages_sent());
  const double bytes = static_cast<double>(cluster.bytes_sent());
  Row row;
  row.name = name;
  row.requests_per_sec = requests / seconds;
  row.messages_per_sec = messages / seconds;
  row.msgs_per_request = messages / requests;
  row.bytes_per_request = bytes / requests;
  return row;
}

std::string json_of(const std::vector<Row>& rows, bool quick,
                    double wire_speedup, double hier_speedup,
                    double naimi_speedup) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n";
  os << "  \"bench\": \"throughput_hotpath\",\n";
  os << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  os << "  \"speedup_msgs_per_sec\": {\"wire\": " << wire_speedup
     << ", \"thread-hier\": " << hier_speedup
     << ", \"thread-naimi\": " << naimi_speedup << "},\n";
  os << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    os << "    {\"name\": \"" << row.name << "\", "
       << "\"gated\": " << (row.gated ? "true" : "false") << ", "
       << "\"requests_per_sec\": " << row.requests_per_sec << ", "
       << "\"messages_per_sec\": " << row.messages_per_sec << ", "
       << "\"msgs_per_request\": " << row.msgs_per_request << ", "
       << "\"bytes_per_request\": " << row.bytes_per_request << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

/// Extracts `"key": <number>` from the one baseline row whose name matches.
/// The baseline is this bench's own output, so a purpose-built scan beats
/// dragging in a JSON library: each row is one line, names are unique.
double baseline_metric(const std::string& json, const std::string& row_name,
                       const std::string& key) {
  const std::string needle = "\"name\": \"" + row_name + "\"";
  const std::size_t row_at = json.find(needle);
  HLOCK_REQUIRE(row_at != std::string::npos,
                "baseline JSON has no row named " + row_name);
  const std::size_t line_end = json.find('\n', row_at);
  const std::string line = json.substr(row_at, line_end - row_at);
  const std::string key_needle = "\"" + key + "\": ";
  const std::size_t key_at = line.find(key_needle);
  HLOCK_REQUIRE(key_at != std::string::npos,
                "baseline row " + row_name + " lacks metric " + key);
  return std::stod(line.substr(key_at + key_needle.size()));
}

/// Compares stable metrics against the baseline. Returns the number of
/// regressions beyond `tolerance` (0.15 = 15%).
int compare_with_baseline(const std::vector<Row>& rows,
                          const std::string& baseline_path,
                          double tolerance, bool quick) {
  std::ifstream in{baseline_path, std::ios::binary};
  if (!in) throw UsageError("cannot read baseline: " + baseline_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string baseline = buffer.str();
  // Quick and full runs use different workload sizes, so their accounting
  // metrics are not comparable — refuse the apples-to-oranges diff.
  const std::string quick_marker =
      std::string{"\"quick\": "} + (quick ? "true" : "false");
  HLOCK_REQUIRE(baseline.find(quick_marker) != std::string::npos,
                "baseline was recorded in a different --quick mode than "
                "this run");

  int regressions = 0;
  std::printf("\nbaseline comparison (%s, tolerance %.0f%%, deterministic "
              "rows only):\n",
              baseline_path.c_str(), tolerance * 100);
  for (const Row& row : rows) {
    if (!row.gated) continue;
    for (const char* key : {"msgs_per_request", "bytes_per_request"}) {
      const double base = baseline_metric(baseline, row.name, key);
      const double now = std::string{key} == "msgs_per_request"
                             ? row.msgs_per_request
                             : row.bytes_per_request;
      if (base == 0.0) continue;  // sim rows carry no byte accounting
      const double ratio = now / base;
      const bool regressed = ratio > 1.0 + tolerance;
      if (regressed) ++regressions;
      std::printf("  %-20s %-18s %10.3f -> %10.3f  (%+.1f%%)%s\n",
                  row.name.c_str(), key, base, now, (ratio - 1.0) * 100,
                  regressed ? "  REGRESSION" : "");
    }
  }
  if (regressions == 0) std::printf("  ok — no stable metric regressed\n");
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"throughput_hotpath",
                "hot-path throughput: batching + sharding A/B, sim and "
                "threaded clusters"};
  cli.add_flag("quick", "CI-sized run (fewer nodes/ops)");
  cli.add_option("out", "", "write results as JSON to this path");
  cli.add_option("baseline", "",
                 "compare stable metrics against this JSON; exit nonzero "
                 "on >15% regression");

  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return 0;
    }
    const bool quick = cli.get_flag("quick");
    BenchParams params;
    if (quick) {
      params.thread_nodes = 4;
      params.thread_clients = 4;
      params.thread_ops = 500;
      params.thread_locks = 16;
      params.sim_nodes = 16;
      params.sim_ops = 30;
      params.wire_messages = 400000;
    }

    std::printf("Hot-path throughput — %zu sim nodes; %zu thread nodes x "
                "%zu clients x %d ops over %zu locks; %zu wire messages "
                "in bursts of %zu%s\n\n",
                params.sim_nodes, params.thread_nodes,
                params.thread_clients, params.thread_ops,
                params.thread_locks, params.wire_messages,
                params.wire_burst, quick ? " (quick)" : "");

    std::vector<Row> rows;
    rows.push_back(run_sim("sim-hier", AppVariant::kHierarchical, params));
    rows.push_back(run_sim("sim-naimi", AppVariant::kNaimiPure, params));
    rows.push_back(run_wire("wire-legacy", /*batching=*/false, params));
    rows.push_back(run_wire("wire-batched", /*batching=*/true, params));
    rows.push_back(run_thread("thread-hier-legacy",
                              runtime::Protocol::kHierarchical,
                              /*batching=*/false, /*engine_shards=*/1,
                              params));
    rows.push_back(run_thread("thread-hier",
                              runtime::Protocol::kHierarchical,
                              /*batching=*/true, /*engine_shards=*/0,
                              params));
    rows.push_back(run_thread("thread-naimi-legacy",
                              runtime::Protocol::kNaimi,
                              /*batching=*/false, /*engine_shards=*/1,
                              params));
    rows.push_back(run_thread("thread-naimi", runtime::Protocol::kNaimi,
                              /*batching=*/true, /*engine_shards=*/0,
                              params));

    stats::TextTable table;
    table.set_header({"config", "requests/s", "messages/s", "msgs/request",
                      "bytes/request"});
    for (const Row& row : rows) {
      table.add_row({row.name, stats::TextTable::num(row.requests_per_sec, 0),
                     stats::TextTable::num(row.messages_per_sec, 0),
                     stats::TextTable::num(row.msgs_per_request, 2),
                     stats::TextTable::num(row.bytes_per_request, 1)});
    }
    std::fputs(table.render().c_str(), stdout);

    const double wire_speedup =
        rows[3].messages_per_sec / rows[2].messages_per_sec;
    const double hier_speedup =
        rows[5].messages_per_sec / rows[4].messages_per_sec;
    const double naimi_speedup =
        rows[7].messages_per_sec / rows[6].messages_per_sec;
    std::printf("\ndelivery-path speedup (messages/s, batched vs legacy): "
                "wire %.2fx\n",
                wire_speedup);
    std::printf("protocol-row speedups (schedule-dependent, informational):"
                " hier %.2fx, naimi %.2fx\n",
                hier_speedup, naimi_speedup);
    std::printf("\nCSV:\n%s", table.render_csv().c_str());

    const std::string json =
        json_of(rows, quick, wire_speedup, hier_speedup, naimi_speedup);
    const std::string out = cli.get_string("out");
    if (!out.empty()) {
      const std::filesystem::path parent =
          std::filesystem::path{out}.parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent);
      std::ofstream file{out, std::ios::binary | std::ios::trunc};
      if (!file) throw UsageError("cannot write: " + out);
      file << json;
      std::printf("\nwrote %s\n", out.c_str());
    }

    const std::string baseline = cli.get_string("baseline");
    if (!baseline.empty()) {
      const int regressions =
          compare_with_baseline(rows, baseline, 0.15, quick);
      if (regressions > 0) {
        std::fprintf(stderr, "error: %d stable metric(s) regressed\n",
                     regressions);
        return 1;
      }
    }
    return 0;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }
}
