#include "telemetry/exposition.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace hlock::telemetry {
namespace {

// Shortest round-trip decimal for a metric value; integers print bare
// (counters are conceptually integral and the checker compares them).
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Splits `name` into base and the "{...}" label block ("" when bare).
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos) {
    return {name, {}};
  }
  return {name.substr(0, brace), name.substr(brace)};
}

// `base_bucket{existing...,le="0.05"} 12`
void append_histogram(std::string& out, const Sample& sample) {
  const auto [base, labels] = split_labels(sample.name);
  const auto append_series = [&](std::string_view suffix,
                                 std::string_view le, double value) {
    out += base;
    out += suffix;
    if (!le.empty()) {
      out += '{';
      if (!labels.empty()) {
        // strip "{...}" and re-open with the le label appended
        out += labels.substr(1, labels.size() - 2);
        out += ',';
      }
      out += "le=\"";
      out += le;
      out += "\"}";
    } else {
      out += labels;
    }
    out += ' ';
    out += format_value(value);
    out += '\n';
  };

  const HistogramSnapshot& h = sample.histogram;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += i < h.counts.size() ? h.counts[i] : 0;
    char bound[64];
    std::snprintf(bound, sizeof(bound), "%g", h.bounds[i]);
    append_series("_bucket", bound, static_cast<double>(cumulative));
  }
  append_series("_bucket", "+Inf", static_cast<double>(h.count));
  append_series("_sum", {}, h.sum);
  append_series("_count", {}, static_cast<double>(h.count));
}

}  // namespace

std::string render_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.samples.size() * 48);
  std::string_view current_family;
  for (const Sample& sample : snapshot.samples) {
    const std::string_view family = family_of(sample.name);
    if (family != current_family) {
      out += "# TYPE ";
      out += family;
      out += ' ';
      out += to_string(sample.type);
      out += '\n';
      current_family = family;
    }
    if (sample.type == MetricType::kHistogram) {
      append_histogram(out, sample);
    } else {
      out += sample.name;
      out += ' ';
      out += format_value(sample.value);
      out += '\n';
    }
  }
  return out;
}

}  // namespace hlock::telemetry
