#include "runtime/engine.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hlock::runtime {

std::vector<LockId> LockEngine::recovery_locks() {
  throw UsageError("this protocol has no crash-recovery support");
}

recovery::LockReport LockEngine::report(LockId /*lock*/) {
  throw UsageError("this protocol has no crash-recovery support");
}

Effects LockEngine::install_fence(LockId /*lock*/,
                                  const proto::EpochFence& /*fence*/) {
  throw UsageError("this protocol has no crash-recovery support");
}

std::uint32_t LockEngine::recovery_epoch(LockId /*lock*/) {
  throw UsageError("this protocol has no crash-recovery support");
}

void LockEngine::set_default_origin(NodeId /*root*/, std::uint32_t /*epoch*/) {
  throw UsageError("this protocol has no crash-recovery support");
}

std::string to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kHierarchical:
      return "hierarchical";
    case Protocol::kNaimi:
      return "naimi";
    case Protocol::kRaymond:
      return "raymond";
  }
  return "?";
}

HierEngine::HierEngine(NodeId self, NodeId initial_root,
                       core::HierConfig config)
    : self_(self), initial_root_(initial_root), config_(config) {
  HLOCK_REQUIRE(!initial_root.is_none(), "a cluster needs an initial root");
}

core::HierAutomaton& HierEngine::automaton(LockId lock) {
  // Single hash lookup on the hot path: try_emplace forwards the
  // constructor arguments and only builds the automaton when the lock is
  // new.
  const bool is_root = self_ == initial_root_;
  return automatons_
      .try_emplace(lock, self_, lock, is_root,
                   is_root ? NodeId::none() : initial_root_, config_,
                   initial_epoch_)
      .first->second;
}

Effects HierEngine::request(LockId lock, LockMode mode,
                            std::uint8_t priority) {
  return automaton(lock).request(mode, priority);
}

Effects HierEngine::release(LockId lock) { return automaton(lock).release(); }

Effects HierEngine::upgrade(LockId lock) { return automaton(lock).upgrade(); }

Effects HierEngine::deliver(const proto::Message& message) {
  return automaton(message.lock).on_message(message);
}

bool HierEngine::holds(LockId lock) const {
  auto it = automatons_.find(lock);
  return it != automatons_.end() &&
         it->second.held() != proto::LockMode::kNL;
}

std::size_t HierEngine::queued_requests() const {
  std::size_t total = 0;
  for (const auto& [lock, automaton] : automatons_) {
    total += automaton.queue().size();
  }
  return total;
}

std::size_t HierEngine::tokens_held() const {
  std::size_t total = 0;
  for (const auto& [lock, automaton] : automatons_) {
    total += automaton.is_token() ? 1u : 0u;
  }
  return total;
}

std::vector<LockId> HierEngine::recovery_locks() {
  std::vector<LockId> locks;
  locks.reserve(automatons_.size());
  for (const auto& [lock, automaton] : automatons_) locks.push_back(lock);
  std::sort(locks.begin(), locks.end());
  return locks;
}

recovery::LockReport HierEngine::report(LockId lock) {
  const core::HierAutomaton& a = automaton(lock);
  recovery::LockReport r;
  r.epoch = a.recovery_epoch();
  r.has_token = a.is_token();
  r.held = a.held();
  r.upgrading = a.upgrading();
  // An upgrader does not report as waiting: its pending W is preserved as
  // an in-flight Rule 7 upgrade at the root, not re-queued.
  r.waiting = !a.upgrading() && a.pending() != proto::LockMode::kNL;
  if (r.waiting) {
    r.wait_mode = a.pending();
    r.wait_seq = a.pending_seq();
    r.wait_priority = a.pending_priority();
  }
  return r;
}

Effects HierEngine::install_fence(LockId lock,
                                  const proto::EpochFence& fence) {
  return automaton(lock).install_fence(fence);
}

std::uint32_t HierEngine::recovery_epoch(LockId lock) {
  // A lock this node has not touched would be lazily created at
  // initial_epoch_, so that is its effective epoch: reporting 0 here would
  // make the cluster's newer-epoch gate park the first post-recovery
  // message for the lock forever (the node is not halted, so parked
  // messages are never replayed).
  auto it = automatons_.find(lock);
  return it == automatons_.end() ? initial_epoch_
                                 : it->second.recovery_epoch();
}

void HierEngine::set_default_origin(NodeId root, std::uint32_t epoch) {
  initial_root_ = root;
  initial_epoch_ = epoch;
}

NaimiEngine::NaimiEngine(NodeId self, NodeId initial_root)
    : self_(self), initial_root_(initial_root) {
  HLOCK_REQUIRE(!initial_root.is_none(), "a cluster needs an initial root");
}

naimi::NaimiAutomaton& NaimiEngine::automaton(LockId lock) {
  // Single hash lookup on the hot path (see HierEngine::automaton).
  const bool is_root = self_ == initial_root_;
  return automatons_
      .try_emplace(lock, self_, lock, is_root,
                   is_root ? NodeId::none() : initial_root_, initial_epoch_)
      .first->second;
}

Effects NaimiEngine::request(LockId lock, LockMode /*mode*/,
                             std::uint8_t /*priority*/) {
  return automaton(lock).request();
}

Effects NaimiEngine::release(LockId lock) { return automaton(lock).release(); }

Effects NaimiEngine::upgrade(LockId /*lock*/) {
  throw UsageError("the Naimi baseline has no upgrade operation");
}

Effects NaimiEngine::deliver(const proto::Message& message) {
  return automaton(message.lock).on_message(message);
}

bool NaimiEngine::holds(LockId lock) const {
  auto it = automatons_.find(lock);
  return it != automatons_.end() && it->second.in_cs();
}

std::size_t NaimiEngine::queued_requests() const {
  // Naimi's waiting list is distributed: each node knows only its own
  // successor, so "queued here" = a non-none next pointer.
  std::size_t total = 0;
  for (const auto& [lock, automaton] : automatons_) {
    total += automaton.next().is_none() ? 0u : 1u;
  }
  return total;
}

std::size_t NaimiEngine::tokens_held() const {
  std::size_t total = 0;
  for (const auto& [lock, automaton] : automatons_) {
    total += automaton.has_token() ? 1u : 0u;
  }
  return total;
}

std::vector<LockId> NaimiEngine::recovery_locks() {
  std::vector<LockId> locks;
  locks.reserve(automatons_.size());
  for (const auto& [lock, automaton] : automatons_) locks.push_back(lock);
  std::sort(locks.begin(), locks.end());
  return locks;
}

recovery::LockReport NaimiEngine::report(LockId lock) {
  const naimi::NaimiAutomaton& a = automaton(lock);
  recovery::LockReport r;
  r.epoch = a.recovery_epoch();
  r.has_token = a.has_token();
  // Naimi's single exclusive mode maps onto kW for the fence's holder
  // bookkeeping (only "inside the CS" counts as holding).
  r.held = a.in_cs() ? proto::LockMode::kW : proto::LockMode::kNL;
  r.waiting = a.requesting();
  if (r.waiting) {
    r.wait_mode = proto::LockMode::kW;
    r.wait_seq = a.pending_seq();
  }
  return r;
}

Effects NaimiEngine::install_fence(LockId lock,
                                   const proto::EpochFence& fence) {
  return automaton(lock).install_fence(fence);
}

std::uint32_t NaimiEngine::recovery_epoch(LockId lock) {
  // See HierEngine::recovery_epoch: an untouched lock's effective epoch is
  // the one it would be lazily created in.
  auto it = automatons_.find(lock);
  return it == automatons_.end() ? initial_epoch_
                                 : it->second.recovery_epoch();
}

void NaimiEngine::set_default_origin(NodeId root, std::uint32_t epoch) {
  initial_root_ = root;
  initial_epoch_ = epoch;
}

RaymondEngine::RaymondEngine(NodeId self, std::size_t node_count)
    : self_(self) {
  HLOCK_REQUIRE(self.value() < node_count, "self must be within the tree");
  position_ = raymond::balanced_tree(node_count)[self.value()];
  // Non-root holders point toward node 0; the root holds the token.
  if (self.value() == 0) position_.holder = self;
}

raymond::RaymondAutomaton& RaymondEngine::automaton(LockId lock) {
  // Single hash lookup on the hot path (see HierEngine::automaton).
  return automatons_
      .try_emplace(lock, self_, lock, position_.holder, position_.neighbors)
      .first->second;
}

Effects RaymondEngine::request(LockId lock, LockMode /*mode*/,
                               std::uint8_t /*priority*/) {
  return automaton(lock).request();
}

Effects RaymondEngine::release(LockId lock) {
  return automaton(lock).release();
}

Effects RaymondEngine::upgrade(LockId /*lock*/) {
  throw UsageError("Raymond's baseline has no upgrade operation");
}

Effects RaymondEngine::deliver(const proto::Message& message) {
  return automaton(message.lock).on_message(message);
}

bool RaymondEngine::holds(LockId lock) const {
  auto it = automatons_.find(lock);
  return it != automatons_.end() && it->second.in_cs();
}

std::size_t RaymondEngine::queued_requests() const {
  std::size_t total = 0;
  for (const auto& [lock, automaton] : automatons_) {
    total += automaton.request_queue().size();
  }
  return total;
}

std::size_t RaymondEngine::tokens_held() const {
  std::size_t total = 0;
  for (const auto& [lock, automaton] : automatons_) {
    total += automaton.has_token() ? 1u : 0u;
  }
  return total;
}

}  // namespace hlock::runtime
