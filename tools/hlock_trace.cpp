// hlock_trace — watch the protocol work, message by message.
//
// Runs a small scripted scenario on the simulated cluster with the trace
// recorder attached and prints the complete timeline: every message, every
// structured protocol event (grants, queueing, freezes, token transfers),
// every critical-section entry, every upgrade. An educational companion to
// docs/protocol.md:
//
//   hlock_trace                         # the default freeze/upgrade story
//   hlock_trace --nodes 6 --scenario readers-writer
//   hlock_trace --scenario upgrade --node-filter 2
//   hlock_trace --scenario priority --dump > t.trace && hlock_lint t.trace
//   hlock_trace --export-chrome t.json  # load in chrome://tracing/Perfetto
#include <cstdio>

#include <fstream>

#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"
#include "runtime/sim_cluster.hpp"
#include "trace/recorder.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace hlock;
using proto::LockId;
using proto::LockMode;
using proto::NodeId;

namespace {

const LockId kLock{0};

void run_readers_writer(runtime::SimCluster& cluster, std::size_t nodes,
                        trace::TraceRecorder& recorder) {
  sim::Simulator& sim = cluster.simulator();
  recorder.note(sim.now(), NodeId{0}, "scenario: readers then a writer");
  for (std::uint32_t i = 1; i < nodes; ++i) {
    cluster.request(NodeId{i}, kLock, LockMode::kIR);
  }
  sim.run_to_completion();
  recorder.note(sim.now(), NodeId{0}, "all readers inside; writer arrives");
  cluster.request(NodeId{0}, kLock, LockMode::kW);
  sim.run_to_completion();
  for (std::uint32_t i = 1; i < nodes; ++i) {
    cluster.release(NodeId{i}, kLock);
  }
  sim.run_to_completion();
  cluster.release(NodeId{0}, kLock);
  sim.run_to_completion();
}

void run_upgrade(runtime::SimCluster& cluster, std::size_t nodes,
                 trace::TraceRecorder& recorder) {
  sim::Simulator& sim = cluster.simulator();
  recorder.note(sim.now(), NodeId{0}, "scenario: U acquisition + upgrade");
  cluster.request(NodeId{1}, kLock, LockMode::kIR);
  sim.run_to_completion();
  cluster.request(NodeId{2}, kLock, LockMode::kU);
  sim.run_to_completion();
  cluster.upgrade(NodeId{2}, kLock);
  sim.run_to_completion();
  recorder.note(sim.now(), NodeId{2}, "upgrade blocked on the IR holder");
  cluster.release(NodeId{1}, kLock);
  sim.run_to_completion();
  cluster.release(NodeId{2}, kLock);
  sim.run_to_completion();
  (void)nodes;
}

void run_priority(runtime::SimCluster& cluster, std::size_t nodes,
                  trace::TraceRecorder& recorder) {
  sim::Simulator& sim = cluster.simulator();
  recorder.note(sim.now(), NodeId{0},
                "scenario: urgent writer overtakes queued writers");
  cluster.request(NodeId{1}, kLock, LockMode::kW);
  sim.run_to_completion();
  for (std::uint32_t i = 2; i < nodes; ++i) {
    cluster.request(NodeId{i}, kLock, LockMode::kW);
    sim.run_to_completion();
  }
  cluster.request(NodeId{0}, kLock, LockMode::kW, /*priority=*/9);
  sim.run_to_completion();
  // Drain: release whoever holds until the queue empties.
  bool any = true;
  while (any) {
    any = false;
    sim.run_to_completion();
    for (std::uint32_t i = 0; i < nodes; ++i) {
      if (cluster.engine(NodeId{i}).holds(kLock)) {
        cluster.release(NodeId{i}, kLock);
        any = true;
      }
    }
  }
  sim.run_to_completion();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"hlock_trace", "print a protocol timeline for a scenario"};
  cli.add_option("scenario", "readers-writer",
                 "readers-writer | upgrade | priority");
  cli.add_option("nodes", "5", "cluster size (3-32)");
  cli.add_option("node-filter", "-1",
                 "restrict the timeline to one node's perspective");
  cli.add_flag("dump",
               "print machine-parseable event lines (trace::format_event) "
               "instead of the rendered timeline, for hlock_lint");
  cli.add_option("export-chrome", "",
                 "additionally write the scenario's request spans as Chrome "
                 "trace_event JSON to this file (chrome://tracing, "
                 "Perfetto)");
  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return 0;
    }
    const auto nodes = static_cast<std::size_t>(cli.get_int("nodes", 3, 32));
    const std::string scenario = cli.get_string("scenario");

    const bool dump = cli.get_flag("dump");

    runtime::SimClusterOptions options;
    options.node_count = nodes;
    options.message_latency = DurationDist::constant(SimTime::ms(1));
    options.hier_config.trace_events = true;
    runtime::SimCluster cluster{options};

    const std::string chrome_path = cli.get_string("export-chrome");
    trace::TraceRecorder recorder;
    obs::SpanCollector collector;
    cluster.set_event_observer(
        [&recorder, &collector, &chrome_path](trace::TraceEvent event) {
          if (!chrome_path.empty()) collector.observe(event);
          recorder.record(std::move(event));
        });
    if (!dump) {
      // Human timeline extras: raw messages and a one-line note per grant.
      // The dump stays pure automaton events so hlock_lint can replay it.
      cluster.set_message_observer(
          [&recorder](SimTime at, const proto::Message& message) {
            recorder.record_message(at, message);
          });
    }
    cluster.set_grant_handler([](NodeId, LockId, bool) {
      // Grants and upgrades already appear as structured enter-cs/upgraded
      // events; the handler only needs to exist so requests may be issued.
    });

    if (scenario == "readers-writer") {
      run_readers_writer(cluster, nodes, recorder);
    } else if (scenario == "upgrade") {
      run_upgrade(cluster, nodes, recorder);
    } else if (scenario == "priority") {
      run_priority(cluster, nodes, recorder);
    } else {
      throw UsageError("unknown scenario: " + scenario);
    }

    if (!chrome_path.empty()) {
      obs::ChromeTraceOptions chrome_options;
      chrome_options.node_count = nodes;
      std::ofstream out{chrome_path, std::ios::binary | std::ios::trunc};
      if (!out) {
        throw UsageError("cannot write chrome trace: " + chrome_path);
      }
      out << obs::chrome_trace_json(collector.spans(), chrome_options);
      std::fprintf(stderr, "chrome trace: %zu spans -> %s\n",
                   collector.span_count(), chrome_path.c_str());
    }
    if (dump) {
      if (recorder.dropped() > 0) {
        // A silently truncated dump would lint as a bogus violation; make
        // the gap impossible to miss.
        std::fprintf(stderr,
                     "warning: ring capacity exceeded — %llu oldest events "
                     "dropped from this dump\n",
                     static_cast<unsigned long long>(recorder.dropped()));
      }
      for (const trace::TraceEvent& event : recorder.events()) {
        std::printf("%s\n", trace::format_event(event).c_str());
      }
      return 0;
    }
    const std::int64_t filter = cli.get_int("node-filter", -1, 1 << 20);
    const NodeId node_filter =
        filter < 0 ? NodeId::none()
                   : NodeId{static_cast<std::uint32_t>(filter)};
    std::fputs(recorder.render(node_filter).c_str(), stdout);
    std::printf("\n%llu events", static_cast<unsigned long long>(
                                     recorder.total_recorded()));
    if (recorder.dropped() > 0) {
      std::printf(" (%llu dropped — only the newest %zu retained)",
                  static_cast<unsigned long long>(recorder.dropped()),
                  recorder.events().size());
    }
    std::printf(", %llu protocol messages\n",
                static_cast<unsigned long long>(
                    cluster.metrics().messages().total()));
    return 0;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }
}
