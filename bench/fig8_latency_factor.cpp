// Figure 8 — Request Latency Factor (paper §4.1).
//
// Average request latency (issue -> critical-section entry), normalized by
// the mean one-way network latency (150 ms), as the node count grows.
// Same testbed and workload as Fig. 7.
//
// Paper shape to reproduce: the hierarchical protocol and Naimi pure grow
// roughly linearly and stay low; Naimi same-work grows superlinearly (its
// whole-table operations serialize a chain of exclusive per-entry
// acquisitions, each with its own queueing delay).
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"

using namespace hlock;
using bench::AppVariant;
using bench::ExperimentConfig;
using bench::ExperimentResult;

int main() {
  const auto preset = sim::linux_cluster_preset();
  const double net_ms = preset.message_latency.mean().to_ms();
  const AppVariant variants[] = {AppVariant::kNaimiSameWork,
                                 AppVariant::kNaimiPure,
                                 AppVariant::kHierarchical};

  stats::TextTable table;
  table.set_header({"nodes", "naimi-same-work", "naimi-pure",
                    "hierarchical"});

  std::printf("Fig. 8 — request latency factor (mean latency / %.0f ms "
              "network latency) vs. number of nodes\n",
              net_ms);
  std::printf("testbed: %s, CS 15 ms, idle 150 ms, mix 80/10/4/5/1\n\n",
              preset.name.c_str());

  for (std::size_t nodes : {2u, 4u, 6u, 8u, 10u, 15u, 20u, 25u, 30u}) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (AppVariant variant : variants) {
      ExperimentConfig config;
      config.variant = variant;
      config.nodes = nodes;
      config.net_latency = preset.message_latency;
      config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
      config.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
      config.ops_per_node = 60;
      config.seed = 19 + nodes;
      const ExperimentResult result = bench::run_averaged(config, 3);
      row.push_back(stats::TextTable::num(
          bench::paper_latency_metric_ms(variant, result) / net_ms, 1));
    }
    table.add_row(std::move(row));
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
