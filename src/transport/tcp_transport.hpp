// TCP loopback transport — the protocol over real sockets.
//
// Each node binds a listening socket on 127.0.0.1 (ephemeral port);
// senders open one persistent connection per ordered (from, to) channel on
// first use, matching the paper's Linux-testbed deployment ("connected by
// a full-duplex FastEther switch utilized through TCP/IP"). Messages are
// wire frames: a 4-byte little-endian length prefix followed by either one
// binary codec encoding or a batch envelope coalescing the same-channel
// messages of one burst (proto::kBatchMarker) — one frame, one syscall,
// instead of one per message. Per-connection reader threads decode frames
// into the destination's mailbox; TCP's in-order delivery provides the
// per-channel FIFO the protocol relies on, and batches unpack in emission
// order so coalescing is invisible above the transport.
//
// All nodes live in one process here (the testing substrate for a real
// distributed deployment); nothing in the wire format or the socket
// handling assumes shared memory.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "stats/metrics.hpp"
#include "transport/mailbox.hpp"
#include "transport/transport.hpp"
#include "util/sync.hpp"

namespace hlock::transport {

/// Send-path retry policy of the TCP transport. A failed write closes the
/// channel and retries with exponential backoff — reconnecting on the way —
/// instead of terminating the process on the first transient failure.
struct TcpOptions {
  /// Total write attempts per message (first try included).
  int max_send_attempts = 5;
  /// Backoff before the first retry; doubles per retry up to `max_backoff`.
  std::chrono::milliseconds initial_backoff{1};
  std::chrono::milliseconds max_backoff{50};
  /// Coalesce same-channel messages of one send_batch() call into a single
  /// batch frame (protocol-invisible; off = one frame per message).
  bool batching = true;
};

/// See file comment.
class TcpTransport final : public Transport {
 public:
  /// Binds `node_count` listeners on loopback and starts their acceptor
  /// threads. Throws UsageError if sockets cannot be created.
  explicit TcpTransport(std::size_t node_count, TcpOptions options = {});

  /// Joins all socket threads.
  ~TcpTransport() override;

  void send(const proto::Message& message) override
      HLOCK_EXCLUDES(channels_mutex_);
  /// Ships a burst; same-channel runs travel as single batch frames when
  /// options.batching is set.
  void send_batch(std::vector<proto::Message> messages) override
      HLOCK_EXCLUDES(channels_mutex_);
  std::optional<proto::Message> recv(proto::NodeId node) override;
  /// Drains every already-delivered message for `node` in one mailbox lock
  /// acquisition (empty once shut down and drained).
  std::vector<proto::Message> recv_ready(proto::NodeId node) override;
  std::optional<proto::Message> recv_for(
      proto::NodeId node, std::chrono::milliseconds timeout) override;
  void shutdown() override HLOCK_EXCLUDES(channels_mutex_);
  std::uint64_t messages_sent() const override { return sent_.load(); }
  /// Frame bytes written (length prefixes included).
  std::uint64_t bytes_sent() const override { return bytes_.load(); }

  /// The loopback port node `node` listens on (diagnostics).
  std::uint16_t port_of(proto::NodeId node) const;

  std::size_t node_count() const { return nodes_.size(); }

  /// Retry, reconnect, and bad-frame counters, live.
  const stats::TransportCounters& counters() const { return counters_; }

  /// Messages decoded into `node`'s inbox but not yet received.
  std::size_t inbox_depth(proto::NodeId node) const override {
    return node.value() < nodes_.size() ? nodes_[node.value()]->inbox.size()
                                        : 0;
  }

  /// Chaos hook: severs the established (from, to) connection at the
  /// socket level without telling the sender, so the next send on the
  /// channel fails and exercises the retry/reconnect path. Returns false
  /// if the channel has no live connection yet.
  bool sever_channel(proto::NodeId from, proto::NodeId to)
      HLOCK_EXCLUDES(channels_mutex_);

 private:
  struct NodeEndpoint {
    int listen_fd = -1;
    std::uint16_t port = 0;
    Mailbox inbox;
    /// sched::Thread so the schedule explorer sees the thread's lifecycle;
    /// the socket operations themselves run in BlockingRegions.
    sched::Thread acceptor;
  };

  struct Channel {
    /// Serializes writes on the (from, to) connection and guards its fd.
    Mutex send_mutex;
    int fd HLOCK_GUARDED_BY(send_mutex) = -1;
  };

  void acceptor_loop(std::size_t node);
  void reader_loop(std::size_t node, int fd);
  /// Returns (creating on demand) the connection fd for a channel;
  /// guarded by the channel's send mutex.
  int channel_fd(std::uint32_t from, std::uint32_t to);
  /// The channel record for (from, to), created on first use.
  Channel& channel_of(proto::NodeId from, proto::NodeId to)
      HLOCK_EXCLUDES(channels_mutex_);
  /// Writes one pre-encoded frame body on the channel with the retry /
  /// backoff / reconnect policy; counts `message_count` logical messages on
  /// success. False once every attempt failed (frame dropped + counted).
  bool send_frame(proto::NodeId from, proto::NodeId to,
                  const std::vector<std::byte>& body,
                  std::uint64_t message_count);

  /// Options and endpoints are immutable after construction (the endpoint
  /// mailboxes are themselves thread-safe).
  TcpOptions options_;
  std::vector<std::unique_ptr<NodeEndpoint>> nodes_;
  Mutex channels_mutex_;
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::unique_ptr<Channel>>
      channels_ HLOCK_GUARDED_BY(channels_mutex_);
  std::vector<sched::Thread> readers_ HLOCK_GUARDED_BY(readers_mutex_);
  Mutex readers_mutex_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<bool> stopping_{false};
  stats::TransportCounters counters_;
};

}  // namespace hlock::transport
