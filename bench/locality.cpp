// Access locality vs. structure dynamism (paper §5, second half of the
// Raymond comparison: the dynamic tree "results in dynamic path
// compression" — i.e. it adapts to who actually uses a lock).
//
// Workload: exclusive per-entry operations where each node targets its
// HOME entry with probability `locality` (nodes = 2 x entries, so exactly
// two tree-distant nodes share each home). As locality rises, the dynamic
// structures re-link the two partners adjacently and the per-request cost
// collapses, while Raymond's static tree keeps paying the fixed tree path
// between them.
#include <cstdio>

#include "runtime/sim_cluster.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"
#include "workload/sim_driver.hpp"

using namespace hlock;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;
using workload::SimWorkloadDriver;
using workload::WorkloadSpec;

namespace {

double run(Protocol protocol, workload::AppVariant variant, double locality) {
  constexpr std::size_t kNodes = 32;
  SimClusterOptions cluster_options;
  cluster_options.node_count = kNodes;
  cluster_options.protocol = protocol;
  cluster_options.message_latency = sim::ibm_sp_preset().message_latency;
  cluster_options.seed = 91;
  SimCluster cluster{cluster_options};

  WorkloadSpec spec;
  spec.variant = variant;
  spec.node_count = kNodes;
  spec.table_entries = kNodes / 2;  // two partners per home entry
  spec.ops_per_node = 60;
  spec.cs_length = DurationDist::uniform(SimTime::ms(5), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(25), 0.5);
  // Entry ops only: IR draws map to entry reads; force all draws there.
  spec.mix = workload::ModeMix{0.0, 0.0, 0.0, 1.0, 0.0};  // entry writes
  spec.entry_locality = locality;
  spec.seed = 17;

  SimWorkloadDriver driver{cluster, spec};
  driver.run();
  return static_cast<double>(cluster.metrics().messages().total()) /
         static_cast<double>(driver.stats().acquisitions);
}

}  // namespace

int main() {
  std::printf("Locality vs. structure dynamism — 32 nodes, exclusive "
              "entry writes, partners share home entries\n\n");

  stats::TextTable table;
  table.set_header(
      {"locality", "raymond msgs/req", "naimi msgs/req", "hier msgs/req"});

  for (double locality : {0.0, 0.5, 0.9, 1.0}) {
    table.add_row(
        {stats::TextTable::num(locality, 1),
         stats::TextTable::num(run(Protocol::kRaymond,
                                   workload::AppVariant::kNaimiPure,
                                   locality)),
         stats::TextTable::num(run(Protocol::kNaimi,
                                   workload::AppVariant::kNaimiPure,
                                   locality)),
         stats::TextTable::num(run(Protocol::kHierarchical,
                                   workload::AppVariant::kHierarchical,
                                   locality))});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
