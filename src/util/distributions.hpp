// Random duration distributions for workload and network modelling.
//
// The paper randomizes critical-section lengths, inter-request idle times
// and network latencies "around their average values". It does not name the
// distribution, so hlock supports the usual candidates; experiments default
// to the uniform model (mean ± 50 %), which matches the paper's phrasing of
// randomizing around a mean, and the choice is a reported parameter so the
// sensitivity can be explored.
#pragma once

#include <string>

#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace hlock {

/// Families of duration distributions supported by the harness.
enum class DistKind {
  kConstant,     ///< Always exactly the mean.
  kUniform,      ///< Uniform on [mean*(1-spread), mean*(1+spread)].
  kExponential,  ///< Exponential with the given mean (spread ignored).
  kLogNormal,    ///< Log-normal with the given mean; spread = sigma of log.
};

/// Returns the lowercase name of a distribution kind ("uniform", ...).
std::string to_string(DistKind kind);

/// A duration distribution: samples non-negative SimTime values with a
/// configured mean. Copyable value type; sampling takes the caller's Rng so
/// the same spec can serve many deterministic per-node streams.
class DurationDist {
 public:
  /// A degenerate distribution that always returns zero.
  DurationDist() = default;

  /// Builds a distribution of the given family around `mean`.
  /// `spread` is the relative half-width for kUniform (default 0.5) and the
  /// sigma of the underlying normal for kLogNormal; it is ignored otherwise.
  DurationDist(DistKind kind, SimTime mean, double spread = 0.5);

  /// Convenience factories.
  static DurationDist constant(SimTime mean);
  static DurationDist uniform(SimTime mean, double spread = 0.5);
  static DurationDist exponential(SimTime mean);
  static DurationDist lognormal(SimTime mean, double sigma = 0.5);

  /// Draws one sample; never negative.
  SimTime sample(Rng& rng) const;

  /// Configured mean of the distribution.
  SimTime mean() const { return mean_; }
  DistKind kind() const { return kind_; }

  /// Human-readable summary, e.g. "uniform(mean=15.000 ms, spread=0.5)".
  std::string describe() const;

 private:
  DistKind kind_ = DistKind::kConstant;
  SimTime mean_{};
  double spread_ = 0.5;
};

}  // namespace hlock
