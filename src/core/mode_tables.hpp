// The rule tables of the hierarchical locking protocol (paper Table 1).
//
// The paper specifies the entire protocol as Rules 1-7 evaluated over four
// lookup tables:
//
//   (a) Incompatible        — which mode pairs conflict (Rule 1),
//   (b) No Child Grant      — which owned modes let a NON-token node grant a
//                             requested mode (Rule 3.1),
//   (c) Queue/Forward       — whether a non-token node with pending mode M1
//                             queues (Q) or forwards (F) an ungrantable
//                             request for M2 (Rule 4.1),
//   (d) Freezing Modes      — which modes the token node freezes when an
//                             incompatible request for M2 arrives while it
//                             owns M1 (Rule 6),
//
// plus the mode strength order NL < IR < R < U < W, IR < IW < W (Def. 1).
// All tables are encoded verbatim below as constexpr data; unit tests assert
// every cell against the paper and property-check the closed-form
// derivations ((b) = incompatible OR not owned>=requested; (d) =
// compat(M1) ∩ incompat(M2)).
#pragma once

#include "proto/lock_mode.hpp"

namespace hlock::core {

using proto::LockMode;
using proto::ModeSet;

/// Rule 1 / Table 1(a): true if `held` and `requested` conflict and must be
/// serialized. Symmetric. kNL is compatible with everything.
bool incompatible(LockMode held, LockMode requested);

/// Convenience negation of incompatible().
inline bool compatible(LockMode held, LockMode requested) {
  return !incompatible(held, requested);
}

/// The set of real modes compatible with `m` (excludes kNL).
ModeSet compatible_set(LockMode m);

/// Definition 1: numeric strength rank. A mode is stronger when it is
/// compatible with fewer other modes: NL=0, IR=1, R=2, U=3, IW=3, W=4.
/// U and IW share a rank; they are mutually incompatible, so no protocol
/// rule ever needs to order them (asserted by tests).
int strength_rank(LockMode m);

/// True if a is strictly stronger than b (Definition 1).
inline bool stronger(LockMode a, LockMode b) {
  return strength_rank(a) > strength_rank(b);
}

/// True if a is at least as strong as b.
inline bool at_least_as_strong(LockMode a, LockMode b) {
  return strength_rank(a) >= strength_rank(b);
}

/// The stronger of two modes (used to aggregate owned modes; when ranks tie
/// the first argument wins, which only happens for identical or U/IW pairs
/// that never co-occur in one subtree aggregate).
inline LockMode stronger_of(LockMode a, LockMode b) {
  return strength_rank(b) > strength_rank(a) ? b : a;
}

/// Rule 3.1 / Table 1(b): true if a NON-token node whose owned mode is
/// `owned` may grant a request for `requested`. Equivalent to
/// compatible(owned, requested) && owned >= requested && owned != kNL.
bool non_token_can_grant(LockMode owned, LockMode requested);

/// Rule 3.2: true if the TOKEN node owning `owned` may grant `requested`
/// (compatibility is necessary and sufficient at the token).
inline bool token_can_grant(LockMode owned, LockMode requested) {
  return compatible(owned, requested);
}

/// Rule 3.2 grant flavour at the token node: if owned < requested the token
/// itself is transferred; otherwise the requester receives a copy grant and
/// becomes a child. Only meaningful when token_can_grant() holds.
inline bool token_grant_transfers(LockMode owned, LockMode requested) {
  return !at_least_as_strong(owned, requested);
}

/// Rule 4.1 / Table 1(c) outcome for a non-token node that cannot grant.
enum class QueueOrForward {
  kForward,  ///< F: relay the request to the parent.
  kQueue,    ///< Q: log it in the local queue.
};

/// Rule 4.1 / Table 1(c): given this node's own pending request mode
/// (kNL if none), decide whether an ungrantable request for `requested`
/// is queued locally or forwarded to the parent.
QueueOrForward queue_or_forward(LockMode pending, LockMode requested);

/// Rule 6 / Table 1(d): modes frozen at a node owning `owned` when an
/// incompatible request for `requested` is queued. Empty when the pair is
/// compatible (nothing needs freezing). Closed form:
/// compatible_set(owned) ∩ incompatible_set(requested).
ModeSet freeze_set(LockMode owned, LockMode requested);

/// Renders one of the four tables as fixed-width text in the paper's row/
/// column order ('a'..'d'); used by bench/table1_rules to regenerate
/// Table 1 for visual diffing against the publication.
// NOLINTNEXTLINE(readability-identifier-length)
std::string render_table(char which);

}  // namespace hlock::core
