// hlock_sim — parameterized experiment runner.
//
// Runs one airline-workload experiment on the simulated cluster with every
// knob on the command line, printing a one-line summary or CSV. This is the
// tool for exploring the parameter space beyond the fixed figure sweeps:
//
//   hlock_sim --protocol hier --nodes 64 --ratio 10 --net-latency-us 150
//   hlock_sim --protocol naimi-same-work --nodes 24 --entries 8 --csv
//   hlock_sim --protocol hier --nodes 32 --no-freezing --seeds 5
//
// With --chaos it instead runs a live ThreadCluster (real threads, real
// transports) under the fault-injecting transport and verifies mutual
// exclusion end-to-end while the wire drops, delays, duplicates, reorders
// and partitions (see docs/faults.md):
//
//   hlock_sim --chaos --nodes 8 --ops 30 --fault-drop 0.1 --fault-reorder 0.1
//   hlock_sim --chaos --chaos-transport tcp --partition-ms 100
//
// --lint streams every structured protocol event through the conformance
// linter (src/lint) and fails the run on any divergence from the paper's
// Rules 1-7 / Tables 1(a)-(d). Works on both the simulator and --chaos
// paths (hierarchical protocol only).
//
// --sched-seeds N runs the chaos scenario under the deterministic schedule
// explorer (src/sched): each seed is one forked child whose thread
// interleaving is fully controlled by a seeded random-priority scheduler;
// a proven deadlock prints the blocked threads, their held locks and the
// replay seed. --sched-seed S replays exactly one schedule in-process (for
// debuggers). See docs/sched.md.
//
// --spans assembles per-request causal spans from the event stream and
// prints the phase-latency breakdown table; --obs-out=<dir> additionally
// exports a Chrome trace_event JSON (load in chrome://tracing or Perfetto)
// and arms the flight recorder: if the run aborts, violates the lint, or
// loses mutual exclusion, the trace ring + spans + metrics are dumped to a
// timestamped report under <dir>. Both work on the simulator and --chaos
// paths (hierarchical protocol only). See docs/observability.md.
#include <cstdio>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/common/experiment.hpp"
#include "lint/checker.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/span.hpp"
#include "runtime/thread_cluster.hpp"
#include "sched/explorer.hpp"
#include "sched/harness.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "telemetry/exposition.hpp"
#include "telemetry/http_exporter.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/watchdog.hpp"
#include "trace/recorder.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace hlock;
using bench::AppVariant;
using bench::ExperimentConfig;
using bench::ExperimentResult;

namespace {

/// Parses a `--kill` schedule: "node@ms[,node@ms...]" (simulated
/// milliseconds). Example: --kill 1@3000,4@4500.
std::vector<workload::WorkloadSpec::Kill> parse_kills(
    const std::string& spec, std::size_t node_count) {
  std::vector<workload::WorkloadSpec::Kill> kills;
  std::size_t begin = 0;
  while (begin < spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    const std::size_t at = entry.find('@');
    if (at == std::string::npos || at == 0 || at + 1 >= entry.size()) {
      throw UsageError("--kill entries must look like node@ms: " + entry);
    }
    std::size_t parsed = 0;
    unsigned long node = 0;
    unsigned long long ms = 0;
    try {
      node = std::stoul(entry.substr(0, at), &parsed);
      if (parsed != at) throw std::invalid_argument(entry);
      ms = std::stoull(entry.substr(at + 1), &parsed);
      if (parsed != entry.size() - at - 1) throw std::invalid_argument(entry);
    } catch (const std::exception&) {
      throw UsageError("--kill entries must look like node@ms: " + entry);
    }
    if (node >= node_count) {
      throw UsageError("--kill names node " + std::to_string(node) +
                       " but the cluster has " + std::to_string(node_count) +
                       " nodes");
    }
    kills.push_back({proto::NodeId{static_cast<std::uint32_t>(node)},
                     SimTime::ms(static_cast<std::int64_t>(ms))});
    begin = end + 1;
  }
  return kills;
}

AppVariant parse_variant(const std::string& name) {
  if (name == "hier" || name == "hierarchical") {
    return AppVariant::kHierarchical;
  }
  if (name == "naimi-pure") return AppVariant::kNaimiPure;
  if (name == "naimi-same-work") return AppVariant::kNaimiSameWork;
  throw UsageError("--protocol must be hier, naimi-pure or naimi-same-work");
}

/// Renders the collected spans as Chrome trace_event JSON and writes it to
/// `<dir>/<name>` (creating `dir` if needed). Returns the written path.
std::string write_chrome_trace(const std::string& dir,
                               const std::string& name,
                               const obs::SpanCollector& collector,
                               std::size_t node_count) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  obs::ChromeTraceOptions options;
  options.node_count = node_count;
  const std::string json =
      obs::chrome_trace_json(collector.spans(), options);
  HLOCK_INVARIANT(obs::validate_json(json),
                  "chrome trace exporter produced invalid JSON");
  const std::string path = dir + "/" + name;
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) throw UsageError("cannot write chrome trace: " + path);
  out << json;
  return path;
}

/// Prints the --spans report: span counts and the phase-latency table.
void print_span_report(const obs::SpanCollector& collector) {
  std::printf("\nphase-latency breakdown (%zu spans, %zu complete):\n%s",
              collector.span_count(), collector.completed_count(),
              obs::render_phase_table(collector.phase_breakdown()).c_str());
}

/// Runs the --chaos scenario: an exclusive-counter workload on a live
/// ThreadCluster with the requested fault plan. Returns the process exit
/// code (0 = mutual exclusion and full progress).
int run_chaos(const CliParser& cli) {
  runtime::ThreadClusterOptions options;
  options.node_count = static_cast<std::size_t>(cli.get_int("nodes", 1, 256));
  const std::string transport = cli.get_string("chaos-transport");
  if (transport == "tcp") {
    options.transport = runtime::TransportKind::kTcp;
  } else if (transport == "inproc") {
    options.transport = runtime::TransportKind::kInProc;
  } else {
    throw UsageError("--chaos-transport must be inproc or tcp");
  }
  options.seed = static_cast<std::uint64_t>(
      cli.get_int("seed", 0, std::numeric_limits<std::int64_t>::max()));
  options.batching = !cli.get_flag("no-batching");
  options.engine_shards = static_cast<std::size_t>(
      cli.get_int("engine-shards", 0, 4096));

  // Crash-stop injection (docs/recovery.md): --kill-rate random crash-stops
  // per second. The exact-counter mutual-exclusion check does not survive
  // kills (a zombie holder's last increment is legitimately lost), so this
  // mode verifies with an epoch-keyed overlap detector instead: overlapping
  // with an older-epoch occupant means the crash was fenced (OK); a same-
  // or newer-epoch occupant is a real violation.
  const double kill_rate = cli.get_double("kill-rate", 0.0, 100.0);
  const bool kills_on = kill_rate > 0.0;
  if (kills_on) {
    if (options.node_count < 3) {
      throw UsageError("--kill-rate needs at least 3 nodes");
    }
    options.recovery.enabled = true;
    options.recovery.heartbeat_interval =
        SimTime::ms(cli.get_int("heartbeat-ms", 1, 60000));
    options.recovery.suspect_after =
        SimTime::ms(cli.get_int("suspect-ms", 1, 600000));
  }
  std::size_t max_kills =
      static_cast<std::size_t>(cli.get_int("max-kills", 0, 4096));
  if (max_kills == 0) max_kills = options.node_count / 2;
  max_kills = std::min(max_kills, options.node_count - 2);

  transport::FaultPlan plan;
  plan.seed = options.seed;
  plan.drop_probability = cli.get_double("fault-drop", 0.0, 1.0);
  plan.delay_probability = cli.get_double("fault-delay", 0.0, 1.0);
  plan.delay = DurationDist::uniform(
      SimTime::us(cli.get_int("fault-delay-us", 0, 10000000)), 0.5);
  plan.duplicate_probability = cli.get_double("fault-dup", 0.0, 1.0);
  plan.reorder_probability = cli.get_double("fault-reorder", 0.0, 1.0);
  const std::int64_t partition_ms = cli.get_int("partition-ms", 0, 600000);
  if (partition_ms > 0 && kills_on) {
    // Suspicions are never retracted: a partition would permanently fence
    // out half the cluster, and the fenced-out (but live) half could never
    // drain its operations.
    throw UsageError("--kill-rate cannot be combined with --partition-ms");
  }
  if (partition_ms > 0) {
    // Cut the cluster in half; the halves reunite after the heal time.
    transport::FaultPlan::Partition partition;
    for (std::size_t i = 0; i < options.node_count / 2; ++i) {
      partition.side_a.push_back(
          proto::NodeId{static_cast<std::uint32_t>(i)});
    }
    partition.heal_after = SimTime::ms(partition_ms);
    plan.partitions.push_back(std::move(partition));
  }
  options.faults = plan;
  if (!plan.any()) {
    std::fprintf(stderr,
                 "note: --chaos with no --fault-* knobs runs fault-free\n");
  }

  const bool lint = cli.get_flag("lint");
  const bool spans = cli.get_flag("spans");
  const std::string obs_out = cli.get_string("obs-out");
  const bool observe = lint || spans || !obs_out.empty();
  if (observe) options.hier_config.trace_events = true;
  // LintOptions defaults mirror the default HierConfig the chaos cluster
  // runs with; the initial token holder is the default root, node 0.
  lint::LintOptions lint_options;
  lint_options.initial_token = options.initial_root;
  lint::Checker checker{lint_options};
  obs::SpanCollector collector;
  trace::TraceRecorder ring;

  // Live telemetry (docs/telemetry.md): any of --metrics-out,
  // --metrics-port, --watchdog or --doctor-stall-ms turns the registry on.
  // All of these outlive the cluster scope below, so the watchdog's stall
  // hook and the sampler's final tick stay valid through teardown.
  const std::string metrics_out = cli.get_string("metrics-out");
  const bool serve_metrics = cli.was_set("metrics-port");
  const std::int64_t doctor_stall_ms =
      cli.get_int("doctor-stall-ms", 0, 600000);
  const bool watchdog_on = cli.get_flag("watchdog") || doctor_stall_ms > 0;
  const bool telemetry_on =
      !metrics_out.empty() || serve_metrics || watchdog_on;
  telemetry::Registry registry;
  std::unique_ptr<telemetry::StallWatchdog> watchdog;
  std::unique_ptr<telemetry::Sampler> sampler;
  std::unique_ptr<telemetry::HttpExporter> exporter;
  if (telemetry_on) {
    options.metrics = &registry;
    if (watchdog_on) {
      telemetry::WatchdogOptions watchdog_options;
      watchdog_options.multiplier =
          cli.get_double("watchdog-multiplier", 1.0, 1e9);
      watchdog_options.floor = std::chrono::milliseconds(
          cli.get_int("watchdog-floor-ms", 1, 600000));
      watchdog =
          std::make_unique<telemetry::StallWatchdog>(registry,
                                                     watchdog_options);
      watchdog->set_on_stall([&registry, &ring, &collector, &obs_out,
                              &options](const telemetry::StallReport& r) {
        std::fprintf(stderr,
                     "WATCHDOG: %s waited %.1f ms "
                     "(threshold %.1f ms, p99 %.1f ms, %llu pending)\n",
                     r.label.c_str(), r.waited_ms, r.threshold_ms, r.p99_ms,
                     static_cast<unsigned long long>(r.pending));
        if (!obs_out.empty()) {
          // Post-mortem bundle: flight record + the metrics state at the
          // moment the stall was flagged.
          obs::FlightRecordSources sources;
          sources.recorder = &ring;
          sources.spans = &collector;
          sources.node_count = options.node_count;
          obs::dump_flight_record(obs_out, "stall watchdog: " + r.label,
                                  sources);
          telemetry::write_file_atomic(
              obs_out + "/stall-metrics.prom",
              telemetry::render_prometheus(registry.snapshot()));
        }
      });
      watchdog->start();
      options.watchdog = watchdog.get();
    }
    telemetry::SamplerOptions sampler_options;
    sampler_options.interval = std::chrono::milliseconds(
        cli.get_int("metrics-interval-ms", 10, 600000));
    sampler_options.out_path = metrics_out;
    sampler = std::make_unique<telemetry::Sampler>(registry, sampler_options);
    sampler->start();
    if (serve_metrics) {
      exporter = std::make_unique<telemetry::HttpExporter>(
          registry,
          static_cast<std::uint16_t>(cli.get_int("metrics-port", 0, 65535)));
      std::printf("metrics: serving http://127.0.0.1:%u/metrics\n",
                  exporter->port());
      std::fflush(stdout);
    }
  }

  const int ops = static_cast<int>(cli.get_int("ops", 1, 100000));
  long counter = 0;  // unprotected on purpose: the lock is the protection
  std::uint64_t messages_sent = 0;
  std::uint64_t receiver_errors = 0;
  std::string fault_counters;
  // --kill-rate verification state: the epoch-keyed critical-section
  // occupancy probe, per-worker completion counts and the cluster's end
  // state (captured before teardown).
  struct CsProbe {
    std::mutex mutex;
    bool occupied = false;
    std::uint32_t node = 0;
    std::uint32_t epoch = 0;
    std::uint64_t fenced_overlaps = 0;
    std::uint64_t violations = 0;
  } probe;
  std::vector<long> completed(options.node_count, 0);
  std::vector<char> live_at_end(options.node_count, 1);
  std::size_t kills_done = 0;
  std::uint32_t max_epoch = 0;
  std::uint64_t recoveries = 0;
  {
    runtime::ThreadCluster cluster{options};
    if (observe) {
      cluster.set_event_sink([&checker, &collector, &ring, lint,
                              spans, &obs_out](trace::TraceEvent event) {
        if (lint) checker.add(event);
        if (spans || !obs_out.empty()) collector.observe(event);
        if (!obs_out.empty()) ring.record(std::move(event));
      });
    }
    std::vector<std::thread> workers;
    // Kill mode holds the lock for --cs-ms per op (the exact-counter mode
    // keeps its instant yield-only section): crash-stops need a window in
    // which the victim actually owns something worth recovering.
    const std::int64_t cs_ms = cli.get_int("cs-ms", 0, 1000000);
    for (std::uint32_t i = 0; i < options.node_count; ++i) {
      if (kills_on) {
        workers.emplace_back([&cluster, &probe, &completed, ops, cs_ms, i] {
          const proto::NodeId node{i};
          for (int k = 0; k < ops; ++k) {
            try {
              cluster.lock(node, proto::LockId{0}, proto::LockMode::kW);
              if (!cluster.alive(node)) break;  // crash-stop wake-up
              const std::uint32_t epoch = cluster.recovery_epoch_of(node);
              {
                std::lock_guard<std::mutex> guard{probe.mutex};
                if (probe.occupied) {
                  if (probe.epoch < epoch) {
                    ++probe.fenced_overlaps;  // stale holder, fenced out
                  } else {
                    ++probe.violations;
                  }
                }
                probe.occupied = true;
                probe.node = i;
                probe.epoch = epoch;
              }
              if (cs_ms > 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(cs_ms));
              } else {
                std::this_thread::yield();
              }
              {
                std::lock_guard<std::mutex> guard{probe.mutex};
                if (probe.occupied && probe.node == i &&
                    probe.epoch == epoch) {
                  probe.occupied = false;
                }
                // A newer-epoch entrant may have overwritten the record
                // after our node was fenced out; leave theirs in place.
              }
              cluster.unlock(node, proto::LockId{0});
              ++completed[i];
            } catch (const UsageError&) {
              break;  // this node crash-stopped mid-operation
            }
          }
        });
      } else {
        workers.emplace_back([&cluster, &counter, ops, i, doctor_stall_ms] {
          for (int k = 0; k < ops; ++k) {
            cluster.lock(proto::NodeId{i}, proto::LockId{0},
                         proto::LockMode::kW);
            if (doctor_stall_ms > 0 && i == 0 && k == 0) {
              // Doctored starvation: hold the exclusive lock long enough
              // that every other node's wait blows past the watchdog
              // threshold (CI proves the watchdog actually fires).
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(doctor_stall_ms));
            }
            const long snapshot = counter;
            std::this_thread::yield();
            counter = snapshot + 1;
            cluster.unlock(proto::NodeId{i}, proto::LockId{0});
          }
        });
      }
    }
    std::atomic<bool> workers_done{false};
    std::thread killer;
    if (kills_on) {
      // Dice roll every 20 ms: P(kill) = rate x 0.02 per step, victims
      // drawn uniformly from the live set, never below two survivors.
      killer = std::thread([&cluster, &workers_done, &kills_done, kill_rate,
                            max_kills, seed = options.seed] {
        Rng rng{seed * 0x9e3779b97f4a7c15ULL + 1};
        while (!workers_done.load(std::memory_order_acquire) &&
               kills_done < max_kills) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          if (!rng.chance(std::min(1.0, kill_rate * 0.02))) continue;
          std::vector<std::uint32_t> live;
          for (std::uint32_t n = 0;
               n < static_cast<std::uint32_t>(cluster.node_count()); ++n) {
            if (cluster.alive(proto::NodeId{n})) live.push_back(n);
          }
          if (live.size() <= 2) break;
          cluster.crash_stop(proto::NodeId{live[rng.below(live.size())]});
          ++kills_done;
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
    workers_done.store(true, std::memory_order_release);
    if (killer.joinable()) killer.join();
    if (kills_on) {
      for (std::uint32_t i = 0; i < options.node_count; ++i) {
        const proto::NodeId node{i};
        live_at_end[i] = cluster.alive(node) ? 1 : 0;
        if (live_at_end[i] == 0) continue;
        max_epoch = std::max(max_epoch, cluster.recovery_epoch_of(node));
        recoveries =
            std::max(recoveries, cluster.recovery_counters(node).recoveries);
      }
    }
    messages_sent = cluster.messages_sent();
    receiver_errors = cluster.receiver_errors();
    if (const stats::TransportCounters* counters = cluster.fault_counters()) {
      fault_counters = stats::to_string(counters->snapshot());
    }
    // Cluster teardown joins the receivers, so once the scope closes no
    // event can still be in flight toward the checker.
  }

  const long expected = static_cast<long>(options.node_count) * ops;
  bool ok;
  if (kills_on) {
    long done = 0;
    bool survivors_drained = true;
    for (std::uint32_t i = 0; i < options.node_count; ++i) {
      done += completed[i];
      if (live_at_end[i] != 0 && completed[i] != ops) {
        survivors_drained = false;
      }
    }
    ok = probe.violations == 0 && survivors_drained && receiver_errors == 0;
    std::printf("chaos: %zu nodes (%s), %zu killed, %ld/%ld ops, "
                "mutual exclusion %s\n",
                options.node_count, transport.c_str(), kills_done, done,
                expected, ok ? "OK" : "VIOLATED");
    std::printf("  recovery      : epoch %u, %llu recoveries, survivors "
                "%sdrained\n",
                max_epoch, static_cast<unsigned long long>(recoveries),
                survivors_drained ? "" : "NOT ");
    std::printf("  overlaps      : %llu fenced (stale holders), %llu "
                "same-epoch (real violations)\n",
                static_cast<unsigned long long>(probe.fenced_overlaps),
                static_cast<unsigned long long>(probe.violations));
  } else {
    ok = counter == expected && receiver_errors == 0;
    std::printf("chaos: %zu nodes (%s), %ld/%ld ops, mutual exclusion %s\n",
                options.node_count, transport.c_str(), counter, expected,
                ok ? "OK" : "VIOLATED");
  }
  std::printf("  messages sent : %llu\n",
              static_cast<unsigned long long>(messages_sent));
  if (!fault_counters.empty()) {
    std::printf("  %s\n", fault_counters.c_str());
  }
  if (telemetry_on) {
    // Final tick: the exposition file ends at the run's true end state
    // (the cluster is down, so its callback series are already gone).
    sampler->stop();
    std::printf("  metrics       : %zu series", registry.series_count());
    if (!metrics_out.empty()) std::printf(" -> %s", metrics_out.c_str());
    if (exporter != nullptr) {
      std::printf(", %llu scrapes served",
                  static_cast<unsigned long long>(
                      exporter->scrapes_served()));
    }
    std::printf("\n");
    if (watchdog != nullptr) {
      watchdog->stop();
      std::printf("  stalls flagged: %llu (threshold %.1f ms)\n",
                  static_cast<unsigned long long>(watchdog->stalled_total()),
                  watchdog->threshold_ms());
    }
  }
  if (lint) {
    const lint::LintReport report = checker.finish();
    std::printf("  %s", report.render().c_str());
    ok = ok && report.ok();
  }
  if (spans) print_span_report(collector);
  if (!obs_out.empty()) {
    const std::string path = write_chrome_trace(
        obs_out, "chaos-trace.json", collector, options.node_count);
    std::printf("  chrome trace  : %s (%zu spans)\n", path.c_str(),
                collector.span_count());
    if (!ok) {
      obs::FlightRecordSources sources;
      sources.recorder = &ring;
      sources.spans = &collector;
      sources.node_count = options.node_count;
      const std::string report = obs::dump_flight_record(
          obs_out,
          counter == expected
              ? "chaos run failed (lint violation or receiver errors)"
              : "chaos run lost mutual exclusion",
          sources);
      if (!report.empty()) {
        std::printf("  flight record : %s\n", report.c_str());
      }
    }
  }
  return ok ? 0 : 1;
}

/// Runs the --sched-seeds / --sched-seed scenario: the chaos exclusive-
/// counter workload on a live in-process ThreadCluster, with every thread
/// interleaving driven by the deterministic schedule explorer
/// (docs/sched.md). TCP stays available but makes replay best-effort
/// (real sockets add nondeterminism the scheduler cannot seed).
int run_sched(const CliParser& cli) {
  runtime::ThreadClusterOptions options;
  options.node_count = static_cast<std::size_t>(cli.get_int("nodes", 1, 64));
  options.transport = cli.get_string("chaos-transport") == "tcp"
                          ? runtime::TransportKind::kTcp
                          : runtime::TransportKind::kInProc;
  options.batching = !cli.get_flag("no-batching");
  options.engine_shards =
      static_cast<std::size_t>(cli.get_int("engine-shards", 0, 4096));
  const int ops = static_cast<int>(cli.get_int("ops", 1, 100000));
  const long expected = static_cast<long>(options.node_count) * ops;

  // One explored schedule: cluster up, N worker threads hammer one W lock,
  // cluster down. `ok` is written before the body returns so the forked
  // child's `failed` predicate can read it.
  bool ok = false;
  const auto body = [&ok, options, ops, expected] {
    long counter = 0;  // unprotected on purpose: the lock is the protection
    {
      runtime::ThreadCluster cluster{options};
      std::vector<sched::Thread> workers;
      workers.reserve(options.node_count);
      for (std::uint32_t i = 0;
           i < static_cast<std::uint32_t>(options.node_count); ++i) {
        const std::string name = "worker-" + std::to_string(i);
        workers.emplace_back(
            sched::Thread(name.c_str(), [&cluster, &counter, ops, i] {
              for (int k = 0; k < ops; ++k) {
                cluster.lock(proto::NodeId{i}, proto::LockId{0},
                             proto::LockMode::kW);
                const long snapshot = counter;
                sched::yield_point("hlock_sim.cs");
                counter = snapshot + 1;
                cluster.unlock(proto::NodeId{i}, proto::LockId{0});
              }
            }));
      }
      for (sched::Thread& worker : workers) worker.join();
    }
    ok = counter == expected;
  };

  sched::ExplorerOptions explorer_options;
  explorer_options.change_interval = static_cast<std::uint32_t>(
      cli.get_int("sched-change-interval", 0, 1 << 20));

  if (cli.was_set("sched-seed")) {
    // Replay one schedule in-process (debugger-friendly; a deadlock ends
    // the process with the report and exit code kSchedDeadlockExit).
    explorer_options.seed = static_cast<std::uint64_t>(cli.get_int(
        "sched-seed", 1, std::numeric_limits<std::int64_t>::max()));
    sched::Explorer explorer{explorer_options};
    explorer.run(body);
    std::printf(
        "sched: seed %llu complete after %llu decisions, "
        "fingerprint %llu, workload %s\n",
        static_cast<unsigned long long>(explorer_options.seed),
        static_cast<unsigned long long>(explorer.steps()),
        static_cast<unsigned long long>(explorer.schedule_fingerprint()),
        ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
  }

  const std::int64_t seeds = cli.get_int("sched-seeds", 1, 100000);
  const std::uint64_t base = static_cast<std::uint64_t>(cli.get_int(
      "seed", 0, std::numeric_limits<std::int64_t>::max()));
  int bad = 0;
  for (std::int64_t s = 0; s < seeds; ++s) {
    explorer_options.seed = base + static_cast<std::uint64_t>(s);
    const bool* ok_view = &ok;
    const sched::SeedResult result = sched::run_seed(
        explorer_options, body, [ok_view] { return !*ok_view; });
    std::printf("sched: seed %llu %s\n",
                static_cast<unsigned long long>(explorer_options.seed),
                sched::seed_verdict_name(result.verdict));
    if (result.verdict != sched::SeedVerdict::kOk) {
      ++bad;
      // The child's captured output carries the deadlock report / failure
      // detail and the replay instructions.
      std::fputs(result.output.c_str(), stderr);
      std::fprintf(stderr, "sched: replay with --sched-seed %llu\n",
                   static_cast<unsigned long long>(explorer_options.seed));
    }
  }
  std::printf("sched: %lld/%lld seeds clean\n",
              static_cast<long long>(seeds - bad),
              static_cast<long long>(seeds));
  return bad == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"hlock_sim",
                "run one hlock experiment on the simulated cluster"};
  cli.add_option("protocol", "hier",
                 "hier | naimi-pure | naimi-same-work");
  cli.add_option("nodes", "16", "number of cluster nodes (1-4096)");
  cli.add_option("ops", "60", "operations per node");
  cli.add_option("entries", "6", "ticket-table entries");
  cli.add_option("cs-ms", "15", "mean critical-section length, ms");
  cli.add_option("ratio", "10",
                 "non-critical : critical ratio (idle = ratio x cs)");
  cli.add_option("net-latency-us", "150",
                 "mean one-way network latency, microseconds");
  cli.add_option("seed", "1", "base random seed");
  cli.add_option("seeds", "1", "number of seeds to average over");
  cli.add_flag("no-local-queueing", "disable Rule 4.1 local queueing");
  cli.add_flag("no-child-grants", "disable Rule 3.1 copyset grants");
  cli.add_flag("no-compression", "disable dynamic path compression");
  cli.add_flag("no-freezing", "disable Rule 6 mode freezing");
  cli.add_flag("csv", "print a CSV row (with header) instead of text");
  cli.add_flag("lint",
               "conformance-lint every protocol event against the paper's "
               "spec tables (hier only; also honored by --chaos)");
  cli.add_option("trace-dump", "",
                 "write every structured protocol event to this file as "
                 "format_event lines, for hlock_lint (hier only)");
  cli.add_flag("spans",
               "assemble per-request causal spans and print the "
               "phase-latency breakdown table (hier only; also honored by "
               "--chaos)");
  cli.add_option("obs-out", "",
                 "write observability artifacts (Chrome trace JSON; flight "
                 "record on failure) to this directory (hier only; also "
                 "honored by --chaos)");
  cli.add_option("histogram", "0",
                 "print a latency histogram with this many buckets");
  cli.add_flag("chaos",
               "run a fault-injected ThreadCluster scenario (real threads) "
               "instead of the simulator");
  cli.add_option("chaos-transport", "inproc",
                 "chaos transport: inproc | tcp");
  cli.add_flag("no-batching",
               "chaos: disable same-destination message batching "
               "(protocol-invisible; for A/B runs — docs/performance.md)");
  cli.add_option("engine-shards", "0",
                 "chaos: engine shards per node (0 = default, 1 = legacy "
                 "single-mutex)");
  cli.add_option("fault-drop", "0", "chaos: wire loss probability [0,1]");
  cli.add_option("fault-delay", "0", "chaos: extra-delay probability [0,1]");
  cli.add_option("fault-delay-us", "1000",
                 "chaos: mean injected delay, microseconds");
  cli.add_option("fault-dup", "0", "chaos: duplication probability [0,1]");
  cli.add_option("fault-reorder", "0",
                 "chaos: reorder probability [0,1]");
  cli.add_option("partition-ms", "0",
                 "chaos: partition half the cluster, heal after this many "
                 "milliseconds (0 = no partition)");
  cli.add_option("kill", "",
                 "simulator crash-stop schedule: node@ms[,node@ms...] — "
                 "kills each node at the given simulated time and lets the "
                 "survivors recover (docs/recovery.md; implies --recovery)");
  cli.add_flag("recovery",
               "enable the heartbeat failure detector and epoch-fenced "
               "recovery layer without scheduling any kill (overhead runs)");
  cli.add_option("kill-rate", "0",
                 "chaos: expected crash-stops per second; survivors must "
                 "recover, mutual exclusion is checked with an epoch-keyed "
                 "overlap detector (docs/recovery.md)");
  cli.add_option("max-kills", "0",
                 "chaos: cap on --kill-rate crash-stops (0 = half the "
                 "cluster; at least two nodes always stay alive)");
  cli.add_option("heartbeat-ms", "100",
                 "recovery: failure-detector heartbeat interval, ms");
  cli.add_option("suspect-ms", "1000",
                 "recovery: declare a silent node dead after this long, ms");
  cli.add_option("recovery-horizon-ms", "120000",
                 "simulator: stop scheduling heartbeat ticks past this "
                 "simulated time (keeps runs finite)");
  cli.add_option("sched-seeds", "0",
                 "explore this many deterministic schedules of the chaos "
                 "scenario (each seed forks a child; see docs/sched.md)");
  cli.add_option("sched-seed", "0",
                 "replay exactly one explored schedule in-process "
                 "(the seed a failing exploration printed)");
  cli.add_option("sched-change-interval", "12",
                 "sched: mean scheduling decisions between priority-change "
                 "points (0 = none)");
  cli.add_option("metrics-out", "",
                 "write Prometheus text exposition to this file (chaos: "
                 "rewritten atomically every --metrics-interval-ms; "
                 "simulator: final state)");
  cli.add_option("metrics-interval-ms", "500",
                 "chaos: sampler tick interval, milliseconds");
  cli.add_option("metrics-port", "0",
                 "chaos: serve GET /metrics on this loopback port "
                 "(0 = ephemeral; the bound port is printed)");
  cli.add_flag("watchdog",
               "chaos: flag requests waiting beyond "
               "max(multiplier x p99 wait, floor) — docs/telemetry.md");
  cli.add_option("watchdog-multiplier", "8",
                 "chaos: stall threshold multiplier over the observed p99");
  cli.add_option("watchdog-floor-ms", "100",
                 "chaos: minimum stall threshold, milliseconds");
  cli.add_option("doctor-stall-ms", "0",
                 "chaos: worker 0 holds the lock this long on its first "
                 "acquisition (implies --watchdog; proves the watchdog "
                 "fires)");

  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return 0;
    }

    if (cli.was_set("sched-seeds") || cli.was_set("sched-seed")) {
      return run_sched(cli);
    }
    if (cli.get_flag("chaos")) return run_chaos(cli);

    ExperimentConfig config;
    config.variant = parse_variant(cli.get_string("protocol"));
    config.nodes = static_cast<std::size_t>(cli.get_int("nodes", 1, 4096));
    config.ops_per_node = static_cast<int>(cli.get_int("ops", 0, 1000000));
    config.table_entries =
        static_cast<std::size_t>(cli.get_int("entries", 1, 1024));
    const std::int64_t cs_ms = cli.get_int("cs-ms", 0, 1000000);
    const double ratio = cli.get_double("ratio", 0.0, 1e6);
    config.cs_length = DurationDist::uniform(SimTime::ms(cs_ms), 0.5);
    config.idle_time = DurationDist::uniform(
        SimTime::ms_f(static_cast<double>(cs_ms) * ratio), 0.5);
    config.net_latency = DurationDist::uniform(
        SimTime::us(cli.get_int("net-latency-us", 0, 100000000)), 0.5);
    config.seed = static_cast<std::uint64_t>(
        cli.get_int("seed", 0, std::numeric_limits<std::int64_t>::max()));
    config.hier_config.local_queueing = !cli.get_flag("no-local-queueing");
    config.hier_config.child_grants = !cli.get_flag("no-child-grants");
    config.hier_config.path_compression = !cli.get_flag("no-compression");
    config.hier_config.freezing = !cli.get_flag("no-freezing");
    const std::string kill_spec = cli.get_string("kill");
    if (!kill_spec.empty() || cli.get_flag("recovery")) {
      config.recovery.enabled = true;
      config.recovery.heartbeat_interval =
          SimTime::ms(cli.get_int("heartbeat-ms", 1, 60000));
      config.recovery.suspect_after =
          SimTime::ms(cli.get_int("suspect-ms", 1, 600000));
      config.recovery_horizon =
          SimTime::ms(cli.get_int("recovery-horizon-ms", 1000, 3600000));
      config.kills = parse_kills(kill_spec, config.nodes);
    }
    config.lint = cli.get_flag("lint");
    const std::string dump_path = cli.get_string("trace-dump");
    std::vector<trace::TraceEvent> captured;
    if (!dump_path.empty()) config.capture_events = &captured;
    const bool spans = cli.get_flag("spans");
    const std::string obs_out = cli.get_string("obs-out");
    if ((config.lint || !dump_path.empty() || spans || !obs_out.empty()) &&
        config.variant != AppVariant::kHierarchical) {
      throw UsageError(
          "--lint/--trace-dump/--spans/--obs-out apply to --protocol hier "
          "only");
    }

    const int seeds = static_cast<int>(cli.get_int("seeds", 1, 1000));
    obs::SpanCollector collector;
    trace::TraceRecorder ring;
    if (spans || !obs_out.empty()) {
      // Spans join events by (requester, seq), which restarts per seed; a
      // multi-seed average would splice unrelated requests together.
      if (seeds != 1) {
        throw UsageError("--spans/--obs-out require --seeds 1");
      }
      config.collect_spans = &collector;
      config.record_events = &ring;
    }
    const ExperimentResult result = bench::run_averaged(config, seeds);

    if (result.aborted) {
      // An early abort still reports the partial metrics instead of dying
      // with nothing but an exception message (kept off stdout in CSV mode
      // so the row stays machine-parseable).
      std::fprintf(cli.get_flag("csv") ? stderr : stdout,
                   "RUN ABORTED: %s\n"
                   "(metrics below cover the partial run up to the abort)\n",
                   result.abort_reason.c_str());
    }
    if (cli.get_flag("csv")) {
      std::printf("protocol,nodes,ops,msgs_per_request,msgs_per_op,"
                  "mean_request_latency_ms,mean_op_latency_ms,"
                  "p90_op_latency_ms,max_op_latency_ms\n");
      std::printf("%s,%zu,%llu,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                  bench::series_name(config.variant).c_str(), config.nodes,
                  static_cast<unsigned long long>(result.ops),
                  result.msgs_per_acq, result.msgs_per_op,
                  result.mean_request_latency_ms, result.mean_latency_ms,
                  result.p90_latency_ms, result.max_latency_ms);
    } else {
      std::printf("%s, %zu nodes, %llu ops (%llu lock requests, %llu "
                  "messages)\n",
                  bench::series_name(config.variant).c_str(), config.nodes,
                  static_cast<unsigned long long>(result.ops),
                  static_cast<unsigned long long>(result.acquisitions),
                  static_cast<unsigned long long>(result.messages));
      std::printf("  messages/request : %.2f   (messages/op: %.2f)\n",
                  result.msgs_per_acq, result.msgs_per_op);
      std::printf("  request latency  : mean %.3f ms\n",
                  result.mean_request_latency_ms);
      std::printf("  op latency       : mean %.3f ms, p90 %.3f ms, max "
                  "%.3f ms\n",
                  result.mean_latency_ms, result.p90_latency_ms,
                  result.max_latency_ms);
      if (config.recovery.enabled) {
        std::printf("  recovery         : epoch %u, %llu recoveries "
                    "(mean %.3f ms), %llu stale drops, %zu nodes killed\n",
                    result.recovery_epoch,
                    static_cast<unsigned long long>(result.recoveries),
                    result.mean_recovery_ms,
                    static_cast<unsigned long long>(result.stale_drops),
                    result.nodes_killed);
      }
    }
    const auto buckets =
        static_cast<std::size_t>(cli.get_int("histogram", 0, 64));
    if (buckets > 0) {
      stats::HistogramOptions histogram;
      histogram.buckets = buckets;
      histogram.log_scale = true;
      std::printf("\nrequest latency distribution:\n%s",
                  stats::render_histogram(result.request_latency_samples_ms,
                                          histogram)
                      .c_str());
    }
    if (!dump_path.empty()) {
      std::FILE* out = std::fopen(dump_path.c_str(), "w");
      if (out == nullptr) {
        throw UsageError("cannot open trace dump file: " + dump_path);
      }
      for (const trace::TraceEvent& event : captured) {
        std::fprintf(out, "%s\n", trace::format_event(event).c_str());
      }
      std::fclose(out);
      std::printf("  trace dump       : %zu events -> %s\n", captured.size(),
                  dump_path.c_str());
    }
    bool failed = result.aborted;
    if (config.lint) {
      if (result.lint_violation_count == 0) {
        std::printf("  lint             : ok — %zu events conform to the "
                    "spec\n",
                    result.lint_events_checked);
      } else {
        std::printf("  lint             : %zu violation(s) in %zu events\n%s",
                    result.lint_violation_count, result.lint_events_checked,
                    result.lint_report.c_str());
        failed = true;
      }
    }
    const std::string metrics_out = cli.get_string("metrics-out");
    if (!metrics_out.empty()) {
      // The simulator runs under modelled time, so a live sampler has
      // nothing meaningful to tick against — export the final state once.
      telemetry::Registry registry;
      registry.gauge("hlock_sim_ops")
          .set(static_cast<double>(result.ops));
      registry.gauge("hlock_sim_lock_requests")
          .set(static_cast<double>(result.acquisitions));
      registry.gauge("hlock_sim_messages")
          .set(static_cast<double>(result.messages));
      registry.gauge("hlock_sim_msgs_per_request").set(result.msgs_per_acq);
      const stats::Summary latency =
          stats::summarize(result.request_latency_samples_ms);
      registry.gauge("hlock_sim_request_latency_ms{q=\"mean\"}")
          .set(latency.mean);
      registry.gauge("hlock_sim_request_latency_ms{q=\"p50\"}")
          .set(latency.p50);
      registry.gauge("hlock_sim_request_latency_ms{q=\"p99\"}")
          .set(latency.p99);
      registry.gauge("hlock_sim_request_latency_ms{q=\"p999\"}")
          .set(latency.p999);
      registry.gauge("hlock_sim_request_latency_ms{q=\"max\"}")
          .set(latency.max);
      if (!telemetry::write_file_atomic(
              metrics_out,
              telemetry::render_prometheus(registry.snapshot()))) {
        throw UsageError("cannot write metrics file: " + metrics_out);
      }
      std::printf("  metrics          : %s\n", metrics_out.c_str());
    }
    if (spans) print_span_report(collector);
    if (!obs_out.empty()) {
      const std::string path = write_chrome_trace(obs_out, "sim-trace.json",
                                                  collector, config.nodes);
      std::printf("  chrome trace     : %s (%zu spans)\n", path.c_str(),
                  collector.span_count());
      if (failed) {
        obs::FlightRecordSources sources;
        sources.recorder = &ring;
        sources.spans = &collector;
        sources.node_count = config.nodes;
        const std::string report = obs::dump_flight_record(
            obs_out,
            result.aborted ? "experiment aborted: " + result.abort_reason
                           : "conformance lint violation",
            sources);
        if (!report.empty()) {
          std::printf("  flight record    : %s\n", report.c_str());
        }
      }
    }
    return failed ? 1 : 0;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }
}
