// Protocol event tracing.
//
// Records a bounded history of structured protocol events (see
// trace/event.hpp) with simulated timestamps and renders them as a
// per-node timeline — the tool of choice when a distributed locking bug
// needs to be read as a story rather than a state dump. The same structured
// events feed the conformance linter (src/lint). Recording is in-memory and
// allocation-light; a ring buffer caps memory for long runs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "proto/ids.hpp"
#include "proto/message.hpp"
#include "trace/event.hpp"
#include "util/sim_time.hpp"
#include "util/sync.hpp"

namespace hlock::trace {

/// Bounded in-memory event recorder. Internally synchronized: recorders
/// are routinely wired as a ThreadCluster event sink or shared between a
/// driver and observer threads, so every record/query takes the recorder's
/// mutex (uncontended in the single-threaded simulator, a handful of ns).
class TraceRecorder {
 public:
  /// Keeps at most `capacity` events; older ones are dropped FIFO.
  explicit TraceRecorder(std::size_t capacity = 65536);

  /// Records a structured event as-is (`event.at` must be stamped).
  void record(TraceEvent event);
  /// Records a structured event, stamping its timestamp.
  void record(SimTime at, TraceEvent event);

  // Convenience wrappers building the common runtime-observed events.
  void record_message(SimTime at, const proto::Message& message);
  void record_enter_cs(SimTime at, proto::NodeId node,
                       const std::string& detail = "");
  void record_exit_cs(SimTime at, proto::NodeId node);
  void record_upgrade(SimTime at, proto::NodeId node);
  void note(SimTime at, proto::NodeId node, const std::string& text);

  /// Snapshot of all retained events, oldest first (copied under the
  /// recorder's mutex so it is safe against concurrent recording).
  std::deque<TraceEvent> events() const;

  /// Events recorded over the recorder's lifetime (>= events().size()).
  std::uint64_t total_recorded() const;

  /// Events evicted by the capacity cap over the recorder's lifetime. The
  /// ring silently overwriting history is exactly what a debugging session
  /// must not discover after the fact, so the first eviction also logs a
  /// one-time warning (HLOCK_LOG kWarn) naming the capacity.
  std::uint64_t dropped() const;

  /// True if older events were evicted by the capacity cap.
  bool truncated() const;

  void clear();

  /// Renders the retained history, one line per event:
  ///   "    1.500 ms  node2   message   node2->node0 lock0 REQUEST(...)".
  /// `node_filter` (if not none) restricts to one node's perspective (its
  /// own events plus events it is the counterparty of).
  std::string render(proto::NodeId node_filter = proto::NodeId::none()) const;

  /// Per-kind counts over retained events, indexed by EventKind.
  std::vector<std::size_t> histogram() const;

 private:
  void push(TraceEvent event) HLOCK_REQUIRES(mutex_);

  /// Immutable after construction.
  std::size_t capacity_;
  mutable Mutex mutex_;
  std::deque<TraceEvent> events_ HLOCK_GUARDED_BY(mutex_);
  std::uint64_t total_ HLOCK_GUARDED_BY(mutex_) = 0;
  std::uint64_t dropped_ HLOCK_GUARDED_BY(mutex_) = 0;
  bool warned_dropped_ HLOCK_GUARDED_BY(mutex_) = false;
};

}  // namespace hlock::trace
