#include "modelcheck/explorer.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>

#include "core/hier_automaton.hpp"
#include "core/mode_tables.hpp"
#include "lint/checker.hpp"
#include "modelcheck/symmetry.hpp"
#include "naimi/naimi_automaton.hpp"
#include "raymond/raymond_automaton.hpp"
#include "recovery/host.hpp"
#include "util/check.hpp"

namespace hlock::modelcheck {

namespace {

using core::Effects;
using core::HierAutomaton;
using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NodeId;

constexpr LockId kLock{0};

/// What a node is doing with respect to its script.
enum class Status : std::uint8_t {
  kIdle,        ///< ready to issue its next script op
  kWaiting,     ///< acquire issued, grant not yet received
  kUpgrading,   ///< upgrade issued, completion not yet received
  kDone,        ///< script exhausted
};

/// One complete system state. Copyable (not assignable — the managers
/// carry const identity members); branching copy-constructs it.
struct State {
  std::vector<HierAutomaton> nodes;
  /// FIFO channels keyed by (from, to); only nonempty ones are stored.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<Message>>
      channels;
  std::vector<std::size_t> pc;       // next script index per node
  std::vector<Status> status;
  // Crash exploration only (CrashSpec::active()); empty otherwise. The
  // managers' Host pointers route through the explorer's per-node
  // adapters, which dereference whatever state the explorer is currently
  // operating on — copies of a State therefore stay self-contained.
  std::vector<recovery::Manager> managers;
  std::uint32_t alive = ~0u;  ///< bit i: node i has not crashed
  std::vector<std::deque<Message>> halted;  ///< buffered while halted
  std::vector<std::deque<Message>> parked;  ///< newer-epoch, await fence
};

/// One transition of the scripted system: deliver the head of channel
/// (from, node), node issues its next script op, a crash victim stops, or
/// a live node suspects a crashed one. Together with the source state this
/// determines the successor (automatons and managers are deterministic,
/// channels FIFO) — which is what makes parent-link replay of
/// counterexample paths exact.
struct Action {
  enum class Type : std::uint8_t { kDeliver, kStep, kCrash, kSuspect };
  Type type = Type::kStep;
  std::uint32_t from = 0;  ///< kDeliver: channel source; kSuspect: victim
  std::uint32_t node = 0;  ///< acting node: receiver / issuer / suspector;
                           ///< kCrash: the victim itself
};

/// Per-visited-state bookkeeping: the exploration-forest parent link (for
/// path reconstruction and BFS-shortest counterexamples), and the set of
/// nodes with an unresolved request (for liveness cycle search).
struct Record {
  std::int64_t parent = -1;
  Action via = {};
  std::uint32_t depth = 0;
  std::uint32_t waiting = 0;  ///< bit i: node i is kWaiting/kUpgrading
  /// Every enabled action was explored here (POR pruned nothing). The
  /// post-exploration ignoring repair (condition S) re-expands states
  /// until every cycle of the reduced graph contains a full state.
  bool full = true;
};

/// One explored edge; recorded under liveness (cycles live on non-tree
/// edges, which parent links alone cannot represent) and under POR (the
/// ignoring repair needs the whole reduced graph).
struct Edge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  Action via = {};
};

/// A failed state-property check: the human message and the
/// exploration-order-independent descriptor (ExploreResult::
/// violation_fingerprint). Empty message means the check passed.
struct SafetyIssue {
  std::string message;
  std::string descriptor;
};

/// Host adapter handed to every recovery::Manager under crash exploration.
/// Managers are copied with their States, but all copies of node i share
/// this one adapter, which routes to the state the explorer is currently
/// applying an action to (`*active`) — mirroring HierEngine's Host
/// implementation on that state's automaton.
class CrashHost : public recovery::Host {
 public:
  CrashHost(State* const* active, std::uint32_t node)
      : active_(active), node_(node) {}

  std::vector<LockId> recovery_locks() override { return {kLock}; }

  recovery::LockReport report(LockId /*lock*/) override {
    const HierAutomaton& a = automaton();
    recovery::LockReport r;
    r.epoch = a.recovery_epoch();
    r.has_token = a.is_token();
    r.held = a.held();
    r.upgrading = a.upgrading();
    // As in HierEngine::report: an upgrader's pending W is preserved as an
    // in-flight Rule 7 upgrade at the new root, not re-queued.
    r.waiting = !a.upgrading() && a.pending() != LockMode::kNL;
    if (r.waiting) {
      r.wait_mode = a.pending();
      r.wait_seq = a.pending_seq();
      r.wait_priority = a.pending_priority();
    }
    return r;
  }

  Effects install_fence(LockId /*lock*/,
                        const proto::EpochFence& fence) override {
    return automaton().install_fence(fence);
  }

  std::uint32_t recovery_epoch(LockId /*lock*/) override {
    return automaton().recovery_epoch();
  }

  void set_default_origin(NodeId /*root*/, std::uint32_t /*epoch*/) override {
    // The explorer pre-builds every node's single-lock automaton, so no
    // lazily created automaton can ever use the default origin.
  }

 private:
  HierAutomaton& automaton() {
    HLOCK_INVARIANT(*active_ != nullptr,
                    "recovery host used outside an explorer transition");
    return (*active_)->nodes[node_];
  }

  State* const* active_;
  const std::uint32_t node_;
};

class Explorer {
 public:
  Explorer(const std::vector<Script>& scripts, const ExploreOptions& options)
      : scripts_(scripts), options_(options), n_(scripts.size()),
        search_config_(options.config), replay_config_(options.config),
        crash_on_(options.crash.active()) {
    if (crash_on_) {
      HLOCK_REQUIRE(!options_.liveness,
                    "crash exploration does not support liveness lassos");
      HLOCK_REQUIRE(options_.doctor.bounce.is_none(),
                    "crash exploration does not support the bounce doctor");
      rec_options_ = options_.crash.recovery;
      rec_options_.enabled = true;
      for (const NodeId victim : options_.crash.victims) {
        HLOCK_REQUIRE(victim.value() < n_,
                      "crash victim outside the configuration");
        victims_mask_ |= 1u << victim.value();
      }
      hosts_.reserve(n_);
      for (std::uint32_t i = 0; i < n_; ++i) {
        hosts_.push_back(std::make_unique<CrashHost>(&active_, i));
      }
    }
    // The search never records events (they would have to ride every
    // frontier state); counterexample events come from deterministic
    // replay instead, which forces tracing on. Event emission is the ONLY
    // thing the flag changes, so search and replay behave identically.
    search_config_.trace_events = false;
    replay_config_.trace_events = true;
    // Symmetry quotienting is sound only for state properties: a cycle in
    // the quotient graph need not lift to a concrete cycle (the witness
    // could spiral through the orbit), so liveness forces it off. A
    // doctored bounce target also breaks node interchangeability.
    // Crash mode also forces symmetry off: the victim set and the
    // managers' id-keyed campaign state break node interchangeability.
    if (options_.symmetry && !options_.liveness && !crash_on_ &&
        options_.doctor.bounce.is_none()) {
      std::vector<std::size_t> classes(n_, 0);
      for (std::size_t i = 0; i < n_; ++i) {
        classes[i] = i;
        for (std::size_t j = 0; j < i; ++j) {
          if (scripts_[j] == scripts_[i]) {
            classes[i] = j;
            break;
          }
        }
      }
      group_ = SymmetryGroup::from_classes(classes);
    }
    result_.stats.symmetry_permutations =
        group_.perms().empty() ? 1 : group_.perms().size();
  }

  ExploreResult run() {
    State initial = make_initial(search_config_);
    records_.push_back(Record{});
    records_[0].waiting = waiting_mask(initial);
    visited_.emplace(canonical_fingerprint(initial), 0);
    result_.states_explored = 1;
    if (result_.states_explored > options_.max_states) {
      fail(state_limit_message(), "statelimit", Verdict::kStateLimit, {});
    } else {
      std::deque<std::pair<State, std::uint32_t>> frontier;
      frontier.emplace_back(std::move(initial), 0);
      drain(frontier);
      if (result_.violation.empty() && options_.por) repair_ignoring();
    }
    if (result_.violation.empty() && options_.liveness) liveness_check();
    if (result_.violation.empty()) {
      result_.ok = true;
      result_.verdict = Verdict::kOk;
    }
    result_.stats.states = result_.states_explored;
    result_.stats.transitions = result_.transitions;
    result_.stats.terminal_states = result_.terminal_states;
    return result_;
  }

 private:
  void drain(std::deque<std::pair<State, std::uint32_t>>& frontier) {
    while (!frontier.empty() && result_.violation.empty()) {
      result_.stats.peak_frontier = std::max<std::uint64_t>(
          result_.stats.peak_frontier, frontier.size());
      // BFS (minimize) pops the oldest state so parent links yield
      // depth-minimal counterexamples; DFS pops the newest.
      std::pair<State, std::uint32_t> entry =
          options_.minimize ? std::move(frontier.front())
                            : std::move(frontier.back());
      if (options_.minimize) {
        frontier.pop_front();
      } else {
        frontier.pop_back();
      }
      expand(entry.first, entry.second, frontier);
    }
  }

  State make_initial(const core::HierConfig& config) const {
    State state;
    for (std::size_t i = 0; i < n_; ++i) {
      const NodeId self{static_cast<std::uint32_t>(i)};
      state.nodes.emplace_back(self, kLock, i == 0,
                               i == 0 ? NodeId::none() : NodeId{0}, config);
    }
    state.pc.assign(n_, 0);
    state.status.assign(n_, Status::kIdle);
    for (std::size_t i = 0; i < n_; ++i) {
      if (scripts_[i].empty()) state.status[i] = Status::kDone;
    }
    if (crash_on_) {
      state.managers.reserve(n_);
      for (std::size_t i = 0; i < n_; ++i) {
        state.managers.emplace_back(NodeId{static_cast<std::uint32_t>(i)},
                                    n_, rec_options_, hosts_[i].get());
      }
      state.halted.resize(n_);
      state.parked.resize(n_);
    }
    return state;
  }

  bool alive(const State& state, std::uint32_t node) const {
    return ((state.alive >> node) & 1) != 0;
  }

  std::string state_limit_message() const {
    return "state limit exceeded (" + std::to_string(options_.max_states) +
           ")";
  }

  // ---- Transition semantics ----

  std::vector<Action> enumerate_enabled(const State& state) const {
    std::vector<Action> actions;
    for (const auto& [key, queue] : state.channels) {
      actions.push_back(
          Action{Action::Type::kDeliver, key.first, key.second});
    }
    for (std::size_t i = 0; i < n_; ++i) {
      if (state.status[i] != Status::kIdle) continue;
      if (state.pc[i] >= scripts_[i].size()) continue;
      // A halted node buffers application operations; the replay on unhalt
      // reissues them, so not enabling the step here loses no behavior.
      if (crash_on_ && state.managers[i].halted()) continue;
      actions.push_back(
          Action{Action::Type::kStep, 0, static_cast<std::uint32_t>(i)});
    }
    if (crash_on_) {
      for (std::uint32_t v = 0; v < n_; ++v) {
        if (((victims_mask_ >> v) & 1) == 0 || !alive(state, v)) continue;
        actions.push_back(Action{Action::Type::kCrash, 0, v});
      }
      // Suspicion is explored only for genuinely crashed nodes, from every
      // live node that does not yet believe the victim dead (gossip and
      // report/fence dead-sets converge the rest).
      for (std::uint32_t s = 0; s < n_; ++s) {
        if (!alive(state, s)) continue;
        for (std::uint32_t v = 0; v < n_; ++v) {
          if (alive(state, v) || state.managers[s].is_dead(NodeId{v})) {
            continue;
          }
          actions.push_back(Action{Action::Type::kSuspect, v, s});
        }
      }
    }
    return actions;
  }

  /// DoctoredSpec::bounce: intercepts REQUEST messages of the victim at
  /// the network layer — see the header. Returns true when the message
  /// was consumed by the bounce (the automaton never sees it).
  bool bounced(State& state, const Message& message) const {
    if (options_.doctor.bounce.is_none()) return false;
    const auto* request = std::get_if<proto::HierRequest>(&message.payload);
    if (!request || request->requester != options_.doctor.bounce) {
      return false;
    }
    Message bounce = message;
    bounce.from = message.to;
    if (message.to != request->requester) {
      bounce.to = request->requester;
    } else {
      // The victim re-forwards its own bounced request toward the token.
      bounce.to = NodeId{0};
      for (std::size_t i = 0; i < n_; ++i) {
        if (state.nodes[i].is_token()) {
          bounce.to = NodeId{static_cast<std::uint32_t>(i)};
          break;
        }
      }
    }
    state.channels[{bounce.from.value(), bounce.to.value()}].push_back(
        std::move(bounce));
    return true;
  }

  /// Stamps freshly produced events with a logical clock (there is no
  /// simulated one) so counterexample dumps order and replay
  /// deterministically; no-op when not tracing.
  void sink_events(std::vector<trace::TraceEvent>&& fresh,
                   std::vector<trace::TraceEvent>* events) const {
    if (!events) return;
    for (trace::TraceEvent& event : fresh) {
      event.at = SimTime::ns(static_cast<std::int64_t>(events->size()) + 1);
      events->push_back(std::move(event));
    }
  }

  /// Applies one automaton step's effects exactly as the runtimes do:
  /// sink events, fan out messages (sends to a crashed node are lost, as
  /// over a real network) and fold grants into the actor's script status.
  void apply_effects(State& state, std::size_t actor, Effects&& fx,
                     std::vector<trace::TraceEvent>* events) const {
    sink_events(std::move(fx.events), events);
    for (Message& message : fx.messages) {
      if (crash_on_ && !alive(state, message.to.value())) continue;
      state.channels[{message.from.value(), message.to.value()}].push_back(
          std::move(message));
    }
    if (fx.entered_cs) {
      HLOCK_INVARIANT(state.status[actor] == Status::kWaiting ||
                          state.status[actor] == Status::kIdle,
                      "grant delivered to a node that was not waiting");
      state.status[actor] = Status::kIdle;
    }
    if (fx.upgraded) state.status[actor] = Status::kIdle;
    if (state.status[actor] == Status::kIdle &&
        state.pc[actor] >= scripts_[actor].size()) {
      state.status[actor] = Status::kDone;
    }
  }

  /// Applies one Manager step's outcome, mirroring the runtimes'
  /// apply_outcome + replay_buffers: messages fan out (sends to crashed
  /// nodes are lost), fence effects apply like protocol steps, and an
  /// unhalt replays the node's parked-then-halted backlog synchronously.
  void apply_outcome(State& state, std::size_t actor,
                     recovery::Outcome&& out,
                     std::vector<trace::TraceEvent>* events) const {
    sink_events(std::move(out.events), events);
    for (Message& message : out.messages) {
      if (!alive(state, message.to.value())) continue;
      state.channels[{message.from.value(), message.to.value()}].push_back(
          std::move(message));
    }
    for (auto& [lock, fx] : out.fence_effects) {
      (void)lock;  // single-lock configuration
      apply_effects(state, actor, std::move(fx), events);
    }
    if (out.unhalted) {
      std::deque<Message> parked = std::move(state.parked[actor]);
      state.parked[actor].clear();
      std::deque<Message> backlog = std::move(state.halted[actor]);
      state.halted[actor].clear();
      for (const Message& message : parked) {
        route_message(state, actor, message, events);
      }
      for (const Message& message : backlog) {
        route_message(state, actor, message, events);
      }
    }
  }

  /// Routes one delivered (or replayed) message at node `to`, mirroring
  /// SimCluster::deliver: recovery kinds go to the manager, protocol
  /// messages buffer while halted, park while from a newer epoch, and
  /// otherwise hit the automaton (which stale-drops older epochs itself).
  void route_message(State& state, std::size_t to, const Message& message,
                     std::vector<trace::TraceEvent>* events) const {
    if (crash_on_) {
      recovery::Manager& manager = state.managers[to];
      if (proto::is_recovery_kind(proto::kind_of(message.payload))) {
        apply_outcome(state, to, manager.on_message(message, SimTime{}),
                      events);
        return;
      }
      if (manager.halted()) {
        state.halted[to].push_back(message);
        return;
      }
      if (message.epoch > state.nodes[to].recovery_epoch()) {
        state.parked[to].push_back(message);
        return;
      }
    }
    if (bounced(state, message)) return;
    apply_effects(state, to, state.nodes[to].on_message(message), events);
  }

  /// Crash-stop: the victim loses its volatile state, messages in flight
  /// TOWARD it are lost with it (in-flight messages FROM it still
  /// deliver, exactly as over a real network), and its unfinished script
  /// is forgiven — the terminal no-lost-waiter check covers survivors.
  void do_crash(State& state, std::size_t victim) const {
    state.alive &= ~(1u << victim);
    for (auto it = state.channels.begin(); it != state.channels.end();) {
      it = it->first.second == victim ? state.channels.erase(it)
                                      : std::next(it);
    }
    state.halted[victim].clear();
    state.parked[victim].clear();
    state.status[victim] = Status::kDone;
  }

  /// Applies `action` in place, optionally recording the trace line and
  /// the stamped structured events; returns the post-state safety check.
  SafetyIssue apply(State& state, const Action& action,
                    std::vector<std::string>* trace,
                    std::vector<trace::TraceEvent>* events) const {
    // The managers' Host adapters resolve against the state being acted
    // on; scoped so stray use outside a transition trips the invariant.
    if (crash_on_) active_ = &state;
    const std::size_t actor = action.node;
    if (action.type == Action::Type::kDeliver) {
      auto it = state.channels.find({action.from, action.node});
      HLOCK_INVARIANT(it != state.channels.end() && !it->second.empty(),
                      "delivery from an empty channel");
      const Message message = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) state.channels.erase(it);
      if (trace) trace->push_back("deliver " + to_string(message));
      route_message(state, actor, message, events);
    } else if (action.type == Action::Type::kCrash) {
      if (trace) {
        trace->push_back("node" + std::to_string(actor) + " crashes");
      }
      do_crash(state, actor);
    } else if (action.type == Action::Type::kSuspect) {
      if (trace) {
        trace->push_back("node" + std::to_string(actor) + " suspects node" +
                         std::to_string(action.from));
      }
      apply_outcome(state, actor,
                    state.managers[actor].suspect(NodeId{action.from},
                                                  SimTime{}),
                    events);
    } else {
      const ScriptOp op = scripts_[actor][state.pc[actor]];
      ++state.pc[actor];
      Effects fx;
      switch (op.kind) {
        case ScriptOp::Kind::kAcquire:
          if (trace) {
            trace->push_back("node" + std::to_string(actor) + " acquire " +
                             to_string(op.mode) + "/p" +
                             std::to_string(op.priority));
          }
          state.status[actor] = Status::kWaiting;
          fx = state.nodes[actor].request(op.mode, op.priority);
          break;
        case ScriptOp::Kind::kRelease:
          if (trace) {
            trace->push_back("node" + std::to_string(actor) + " release");
          }
          fx = state.nodes[actor].release();
          break;
        case ScriptOp::Kind::kUpgrade:
          if (trace) {
            trace->push_back("node" + std::to_string(actor) + " upgrade");
          }
          state.status[actor] = Status::kUpgrading;
          fx = state.nodes[actor].upgrade();
          break;
      }
      apply_effects(state, actor, std::move(fx), events);
    }
    const SafetyIssue issue = check_safety(state);
    if (crash_on_) active_ = nullptr;
    return issue;
  }

  bool modes_conflict(LockMode a, LockMode b) const {
    if (core::incompatible(a, b)) return true;
    for (const auto& [x, y] : options_.doctor.conflicts) {
      if ((x == a && y == b) || (x == b && y == a)) return true;
    }
    return false;
  }

  std::size_t tokens_in_flight(const State& state) const {
    std::size_t tokens = 0;
    for (const auto& [key, queue] : state.channels) {
      for (const Message& message : queue) {
        if (std::holds_alternative<proto::HierToken>(message.payload)) {
          ++tokens;
        }
      }
    }
    return tokens;
  }

  SafetyIssue check_safety(const State& state) const {
    if (!crash_on_) {
      const std::size_t tokens = token_count(state);
      if (tokens != 1) {
        return {"token conservation violated: " + std::to_string(tokens) +
                    " tokens",
                "tokens:" + std::to_string(tokens)};
      }
    } else {
      // Per-epoch token conservation — the crash-recovery safety claim:
      // at most one token per recovery epoch, counting live at-rest
      // tokens under the holder's epoch and every in-flight or buffered
      // TOKEN message under its envelope epoch. A crash may destroy the
      // current epoch's token (count 0) until a fence mints the next
      // epoch's; a double regeneration (doctor_double_fence) puts two in
      // one epoch and fails here.
      std::map<std::uint32_t, std::size_t> tokens;
      for (std::size_t i = 0; i < state.nodes.size(); ++i) {
        if (!alive(state, static_cast<std::uint32_t>(i))) continue;
        if (state.nodes[i].is_token()) {
          ++tokens[state.nodes[i].recovery_epoch()];
        }
      }
      const auto count = [&tokens](const Message& message) {
        if (std::holds_alternative<proto::HierToken>(message.payload)) {
          ++tokens[message.epoch];
        }
      };
      for (const auto& [key, queue] : state.channels) {
        for (const Message& message : queue) count(message);
      }
      for (std::size_t i = 0; i < n_; ++i) {
        for (const Message& message : state.halted[i]) count(message);
        for (const Message& message : state.parked[i]) count(message);
      }
      for (const auto& [epoch, cnt] : tokens) {
        if (cnt > 1) {
          return {"token conservation violated in epoch " +
                      std::to_string(epoch) + ": " + std::to_string(cnt) +
                      " tokens",
                  "tokens:" + std::to_string(cnt) + "@e" +
                      std::to_string(epoch)};
        }
      }
    }
    for (std::size_t a = 0; a < state.nodes.size(); ++a) {
      if (crash_on_ && !alive(state, static_cast<std::uint32_t>(a))) {
        continue;  // a crashed holder's stale state is unreachable
      }
      for (std::size_t b = a + 1; b < state.nodes.size(); ++b) {
        if (crash_on_ && !alive(state, static_cast<std::uint32_t>(b))) {
          continue;
        }
        const LockMode ma = state.nodes[a].held();
        const LockMode mb = state.nodes[b].held();
        if (ma != LockMode::kNL && mb != LockMode::kNL &&
            modes_conflict(ma, mb)) {
          std::string lo = to_string(ma);
          std::string hi = to_string(mb);
          if (hi < lo) std::swap(lo, hi);
          return {"incompatible holds: node" + std::to_string(a) + "=" +
                      to_string(ma) + " with node" + std::to_string(b) +
                      "=" + to_string(mb),
                  "incompatible:" + lo + "+" + hi};
        }
      }
    }
    return {};
  }

  std::uint32_t waiting_mask(const State& state) const {
    std::uint32_t mask = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (state.status[i] == Status::kWaiting ||
          state.status[i] == Status::kUpgrading) {
        mask |= 1u << i;
      }
    }
    return mask;
  }

  // ---- Fingerprints ----

  std::string plain_fingerprint(const State& state) const {
    std::ostringstream os;
    for (std::size_t i = 0; i < n_; ++i) {
      if (crash_on_ && !alive(state, static_cast<std::uint32_t>(i))) {
        // A dead node's frozen automaton and manager are unreachable;
        // canonicalizing them merges states that differ only in what the
        // victim happened to be doing when it crashed.
        os << 'N' << i << "[dead]";
        continue;
      }
      os << 'N' << i << '[' << state.nodes[i].fingerprint() << ']'
         << state.pc[i] << static_cast<int>(state.status[i]);
      if (crash_on_) {
        os << 'M' << '{' << state.managers[i].fingerprint() << '}' << 'H'
           << '{';
        for (const Message& m : state.halted[i]) os << to_string(m) << ';';
        os << '}' << 'P' << '{';
        for (const Message& m : state.parked[i]) os << to_string(m) << ';';
        os << '}';
      }
    }
    for (const auto& [key, queue] : state.channels) {
      os << 'C' << key.first << '>' << key.second << '{';
      for (const Message& message : queue) os << to_string(message) << ';';
      os << '}';
    }
    return os.str();
  }

  /// The state's rendering after relabeling every node id through `perm`
  /// (the automaton of node i appears at position perm[i], channels and
  /// embedded ids remapped, channel set re-sorted). Two states are
  /// permutation-equivalent iff some relabeling renders them identically.
  std::string relabeled_fingerprint(
      const State& state, const std::vector<std::uint32_t>& perm) const {
    std::vector<std::uint32_t> inverse(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      inverse[perm[i]] = static_cast<std::uint32_t>(i);
    }
    std::ostringstream os;
    for (std::size_t j = 0; j < n_; ++j) {
      const std::size_t i = inverse[j];
      os << 'N' << j << '[' << state.nodes[i].fingerprint(perm) << ']'
         << state.pc[i] << static_cast<int>(state.status[i]);
    }
    std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                          std::string>>
        channels;
    channels.reserve(state.channels.size());
    for (const auto& [key, queue] : state.channels) {
      std::ostringstream body;
      for (const Message& message : queue) {
        body << to_string(remap_message(message, perm)) << ';';
      }
      channels.emplace_back(
          std::make_pair(perm[key.first], perm[key.second]), body.str());
    }
    std::sort(channels.begin(), channels.end());
    for (const auto& [key, body] : channels) {
      os << 'C' << key.first << '>' << key.second << '{' << body << '}';
    }
    return os.str();
  }

  /// Lexicographic minimum over the symmetry group — the orbit's unique
  /// representative (soundness argument: symmetry.hpp).
  std::string canonical_fingerprint(const State& state) const {
    if (group_.trivial()) return plain_fingerprint(state);
    std::string best;
    for (const auto& perm : group_.perms()) {
      std::string candidate = relabeled_fingerprint(state, perm);
      if (best.empty() || candidate < best) best = std::move(candidate);
    }
    return best;
  }

  // ---- Partial-order reduction ----

  std::uint64_t ref_bit(NodeId id) const {
    if (id.is_none() || id.value() >= n_) return 0;
    return std::uint64_t{1} << id.value();
  }

  /// Modes that could ever appear in a Rule 6 freeze set from here on:
  /// everything incompatible with a mode that is pending now or still to
  /// be requested by some script suffix (queued and in-flight requests
  /// are some node's pending mode, upgrades pend as kW).
  proto::ModeSet freezable_modes(const State& state) const {
    proto::ModeSet requestable;
    for (std::size_t i = 0; i < n_; ++i) {
      if (state.nodes[i].pending() != LockMode::kNL) {
        requestable.insert(state.nodes[i].pending());
      }
      for (std::size_t k = state.pc[i]; k < scripts_[i].size(); ++k) {
        if (scripts_[i][k].kind == ScriptOp::Kind::kAcquire) {
          requestable.insert(scripts_[i][k].mode);
        } else if (scripts_[i][k].kind == ScriptOp::Kind::kUpgrade) {
          requestable.insert(LockMode::kW);
        }
      }
    }
    proto::ModeSet freezable;
    for (const LockMode requested : proto::kRealModes) {
      if (!requestable.contains(requested)) continue;
      for (const LockMode m : proto::kRealModes) {
        if (core::incompatible(m, requested)) freezable.insert(m);
      }
    }
    return freezable;
  }

  /// The only messages a node addresses to a copyset child are FREEZE
  /// notifications (grants go to queue entries, releases to the parent),
  /// and only for frozen modes the child could grant — so a child whose
  /// entry mode can grant no freezable mode is not an addressable
  /// reference at all.
  std::uint64_t automaton_refs(const HierAutomaton& node,
                               proto::ModeSet freezable) const {
    std::uint64_t mask = ref_bit(node.self()) | ref_bit(node.parent()) |
                         ref_bit(node.route_hint());
    for (const core::CopysetEntry& entry : node.copyset()) {
      for (const LockMode m : proto::kRealModes) {
        if (freezable.contains(m) && core::non_token_can_grant(entry.mode, m)) {
          mask |= ref_bit(entry.node);
          break;
        }
      }
    }
    for (const proto::QueuedRequest& entry : node.queue()) {
      mask |= ref_bit(entry.requester);
    }
    return mask;
  }

  /// Node ids embedded in `message` as outstanding requesters — the only
  /// ids the protocol ever TRANSFERS between nodes (grants, releases and
  /// freezes carry no node ids at all), hence the only ids that can
  /// propagate through chains of forwarding.
  std::uint64_t requester_refs(const Message& message) const {
    std::uint64_t mask = ref_bit(message.request.origin);
    if (const auto* request =
            std::get_if<proto::HierRequest>(&message.payload)) {
      mask |= ref_bit(request->requester);
    } else if (const auto* token =
                   std::get_if<proto::HierToken>(&message.payload)) {
      for (const proto::QueuedRequest& entry : token->queue) {
        mask |= ref_bit(entry.requester);
      }
    }
    return mask;
  }

  std::uint64_t message_refs(const Message& message) const {
    return ref_bit(message.from) | ref_bit(message.to) |
           requester_refs(message);
  }

  /// A held-mode change `from -> to` is POR-invisible when every mode the
  /// old value conflicted with (under the doctored table) the new value
  /// conflicts with too: a pairwise-compatibility violation in a skipped
  /// state (some node holds x with modes_conflict(x, from)) persists in
  /// its explored twin where the change already happened, so reordering
  /// the change earlier can hide no violation. kNL -> m grants (nothing
  /// conflicts with kNL unless doctored) and kU -> kW upgrades (kW
  /// conflicts with every real mode) both fall out as special cases.
  bool held_change_invisible(LockMode from, LockMode to) const {
    if (from == to) return true;
    if (modes_conflict(from, to)) return false;  // degenerate doctor tables
    for (const LockMode x : proto::kRealModes) {
      if (modes_conflict(x, from) && !modes_conflict(x, to)) return false;
    }
    return !modes_conflict(LockMode::kNL, from) ||
           modes_conflict(LockMode::kNL, to);
  }

  /// "Visible" state ingredients — anything the checked properties read.
  /// POR may only prune at a state whose explored successors leave the
  /// property ingredients unchanged:
  ///   * held modes, up to the monotone held_change_invisible relaxation;
  ///   * the TOTAL token count (conservation reads nothing else: a
  ///     handoff moving the token between rest and flight keeps count 1,
  ///     and a count violation in a skipped state persists under every
  ///     commuting action — only a merge absorbs a surplus token, and a
  ///     merge changes the count, keeping it visible);
  ///   * request progress (status) under liveness.
  /// Terminal-state (deadlock/quiescence) reachability is preserved by
  /// the persistent-set structure alone, which needs no invisibility.
  bool invisible_step(const State& a, const State& b) const {
    for (std::size_t i = 0; i < n_; ++i) {
      if (!held_change_invisible(a.nodes[i].held(), b.nodes[i].held())) {
        return false;
      }
    }
    if (options_.liveness && a.status != b.status) return false;
    return token_count(a) == token_count(b);
  }

  std::size_t token_count(const State& state) const {
    std::size_t tokens = tokens_in_flight(state);
    for (std::size_t i = 0; i < state.nodes.size(); ++i) {
      if (crash_on_ && !alive(state, static_cast<std::uint32_t>(i))) {
        continue;  // a crashed node's token died with it
      }
      if (state.nodes[i].is_token()) ++tokens;
    }
    return tokens;
  }

  /// Crash mode: the only states POR may reduce are those with recovery
  /// completely quiescent — every victim crashed and adopted by every
  /// survivor (no kCrash/kSuspect enabled), nobody halted, no backlog, no
  /// recovery message in flight, no zombie traffic from a dead sender
  /// still draining, and every live node plus every in-flight message on
  /// one common epoch. Such a state behaves exactly like the crash-free
  /// protocol restricted to the survivors, so the persistent-set argument
  /// applies unchanged; every state with any recovery activity is fully
  /// expanded.
  bool pure_protocol_phase(const State& state) const {
    if ((state.alive & victims_mask_) != 0) return false;
    std::uint32_t epoch = UINT32_MAX;
    for (std::uint32_t i = 0; i < n_; ++i) {
      if (!alive(state, i)) continue;
      const recovery::Manager& manager = state.managers[i];
      if (manager.halted()) return false;
      for (std::uint32_t v = 0; v < n_; ++v) {
        if (!alive(state, v) && !manager.is_dead(NodeId{v})) return false;
      }
      if (!state.halted[i].empty() || !state.parked[i].empty()) {
        return false;
      }
      if (epoch == UINT32_MAX) {
        epoch = state.nodes[i].recovery_epoch();
      } else if (epoch != state.nodes[i].recovery_epoch()) {
        return false;
      }
    }
    for (const auto& [key, queue] : state.channels) {
      if (!alive(state, key.first)) return false;
      for (const Message& message : queue) {
        if (proto::is_recovery_kind(proto::kind_of(message.payload))) {
          return false;
        }
        if (message.epoch != epoch) return false;
      }
    }
    return true;
  }

  /// Persistent-set reduction (docs/modelcheck.md sketches the proof).
  /// For a candidate node t, close the owner set O under "u could send a
  /// fresh message into an EMPTY channel toward an O-node" during some
  /// execution of non-O actions only. "u could send to o" is
  /// over-approximated by reach[u]: the ids embedded in u's automaton
  /// state plus the ids in messages already addressed to u, propagated by
  /// the only mechanism the protocol has for moving node ids between
  /// nodes — REQUEST forwarding and token queues carry outstanding
  /// REQUESTER ids, while grants, releases and freezes carry no ids at
  /// all. Sender identities learned during an exterior execution are
  /// themselves exterior (O-nodes send nothing in it), so only requester
  /// ids flow in the fixpoint — and only through nodes that can ACT in
  /// such an execution: a node with no enabled action (e.g. blocked
  /// waiting for a grant) and no inbound message stays frozen until an
  /// active exterior node sends to it, so both the id propagation and
  /// the closure itself are restricted to the active-exterior fixpoint.
  /// Actions of nodes outside O then commute
  /// with (and can never enable or disable) every enabled action of O:
  /// exterior sends toward O land behind an undelivered head (appends
  /// commute with head-pops), and exterior actions never touch an
  /// O-automaton. The enabled actions of O form the reduced set; it is
  /// accepted only if it is a strict subset and every successor is
  /// invisible. The ignoring problem (an action deferred forever around
  /// a cycle) is handled globally instead of per-state: after the search
  /// drains, repair_ignoring() re-expands states until every cycle of
  /// the reduced graph contains a fully-expanded state (condition S),
  /// which also keeps liveness detection exact. Returns indices into
  /// `enabled`; empty = no valid reduction.
  std::vector<std::size_t> try_reduce(const State& state,
                                      const std::vector<Action>& enabled) {
    std::vector<std::uint64_t> reach0(n_, 0);  // ids u may address now
    std::vector<std::uint64_t> req0(n_, 0);    // requester ids u may forward
    std::uint64_t base_active = 0;  // nodes with an action enabled right now
    const proto::ModeSet freezable = freezable_modes(state);
    for (std::size_t u = 0; u < n_; ++u) {
      if (crash_on_ && !alive(state, static_cast<std::uint32_t>(u))) {
        continue;  // dead: inert — no refs, no actions, forwards nothing
      }
      reach0[u] = automaton_refs(state.nodes[u], freezable);
      if (state.status[u] == Status::kWaiting ||
          state.status[u] == Status::kUpgrading) {
        req0[u] |= std::uint64_t{1} << u;  // may reissue its own request
      }
      if (state.status[u] == Status::kIdle &&
          state.pc[u] < scripts_[u].size()) {
        base_active |= std::uint64_t{1} << u;  // script step enabled
      }
      for (const proto::QueuedRequest& entry : state.nodes[u].queue()) {
        req0[u] |= ref_bit(entry.requester);
      }
    }
    for (const auto& [key, queue] : state.channels) {
      for (const Message& message : queue) {
        reach0[key.second] |= message_refs(message);
        req0[key.second] |= requester_refs(message);
      }
      base_active |= std::uint64_t{1} << key.second;  // delivery enabled
    }

    std::uint64_t owners = 0;
    for (const Action& action : enabled) {
      owners |= std::uint64_t{1} << action.node;
    }

    std::vector<std::uint64_t> reach(n_, 0);
    std::vector<std::uint64_t> req(n_, 0);
    std::vector<std::size_t> best;
    for (std::size_t t = 0; t < n_; ++t) {
      if (((owners >> t) & 1) == 0) continue;
      std::uint64_t closure = std::uint64_t{1} << t;
      for (bool grew = true; grew;) {
        grew = false;
        // Which EXTERIOR nodes can act at all during an O-free execution?
        // Only nodes with an action enabled now, plus nodes an active
        // exterior node can send to (waking them). O-nodes never act, so
        // ids cannot flow through them either: the requester-propagation
        // fixpoint is restricted to active exterior senders. Recomputed
        // whenever the closure grows (the exterior shrinks).
        std::uint64_t active = base_active & ~closure;
        reach = reach0;
        req = req0;
        for (bool changed = true; changed;) {
          changed = false;
          for (std::size_t v = 0; v < n_; ++v) {
            if (((active >> v) & 1) == 0 || ((closure >> v) & 1) != 0) {
              continue;
            }
            for (std::size_t x = 0; x < n_; ++x) {
              if (x == v || ((reach[v] >> x) & 1) == 0) continue;
              if (((active >> x) & 1) == 0) {
                active |= std::uint64_t{1} << x;
                changed = true;
              }
              if ((req[v] & ~req[x]) != 0 || (req[v] & ~reach[x]) != 0) {
                req[x] |= req[v];
                reach[x] |= req[v];
                changed = true;
              }
            }
          }
        }
        for (std::size_t u = 0; u < n_ && !grew; ++u) {
          if (((closure >> u) & 1) != 0 || ((active >> u) & 1) == 0) continue;
          for (std::size_t o = 0; o < n_; ++o) {
            if (((closure >> o) & 1) == 0 || ((reach[u] >> o) & 1) == 0) {
              continue;
            }
            if (!state.channels.contains({static_cast<std::uint32_t>(u),
                                          static_cast<std::uint32_t>(o)})) {
              closure |= std::uint64_t{1} << u;
              grew = true;
              break;
            }
          }
        }
      }
      std::vector<std::size_t> subset;
      for (std::size_t k = 0; k < enabled.size(); ++k) {
        if ((closure >> enabled[k].node) & 1) subset.push_back(k);
      }
      if (subset.size() >= enabled.size()) {
        ++result_.stats.por_reject_saturated;
        continue;
      }
      if (!best.empty() && subset.size() >= best.size()) continue;
      bool valid = true;
      for (const std::size_t k : subset) {
        State next = state;
        const SafetyIssue issue = apply(next, enabled[k], nullptr, nullptr);
        if (!issue.message.empty() || !invisible_step(state, next)) {
          ++result_.stats.por_reject_visible;
          valid = false;
          break;
        }
      }
      if (valid) best = std::move(subset);
    }
    return best;
  }

  // ---- Search ----

  void expand(const State& state, std::uint32_t idx,
              std::deque<std::pair<State, std::uint32_t>>& frontier,
              bool force_full = false) {
    const std::vector<Action> enabled = enumerate_enabled(state);
    if (enabled.empty()) {
      check_terminal(state, idx);
      return;
    }
    std::vector<std::size_t> chosen(enabled.size());
    std::iota(chosen.begin(), chosen.end(), std::size_t{0});
    if (!force_full && options_.por && enabled.size() > 1 &&
        (!crash_on_ || pure_protocol_phase(state))) {
      std::vector<std::size_t> reduced = try_reduce(state, enabled);
      if (!reduced.empty()) {
        ++result_.stats.por_reduced_states;
        result_.stats.por_pruned_actions += enabled.size() - reduced.size();
        chosen = std::move(reduced);
      }
    }
    records_[idx].full = chosen.size() == enabled.size();
    // LIFO frontier: push in reverse so the first enabled action is
    // expanded next, matching the old recursive DFS exploration order.
    if (!options_.minimize) std::reverse(chosen.begin(), chosen.end());

    const bool record_edges = options_.liveness || options_.por;
    const std::uint32_t depth = records_[idx].depth + 1;
    for (const std::size_t pick : chosen) {
      const Action& action = enabled[pick];
      State next = state;
      const SafetyIssue issue = apply(next, action, nullptr, nullptr);
      ++result_.transitions;
      if (!issue.message.empty()) {
        fail(issue.message, issue.descriptor, Verdict::kSafety,
             path_actions(idx, &action));
        return;
      }
      std::string fp = canonical_fingerprint(next);
      const auto it = visited_.find(fp);
      if (it != visited_.end()) {
        ++result_.stats.revisits;
        if (record_edges) edges_.push_back({idx, it->second, action});
        continue;
      }
      const auto new_idx = static_cast<std::uint32_t>(records_.size());
      visited_.emplace(std::move(fp), new_idx);
      records_.push_back(Record{idx, action, depth, waiting_mask(next)});
      result_.stats.max_depth =
          std::max<std::uint64_t>(result_.stats.max_depth, depth);
      ++result_.states_explored;
      if (record_edges) edges_.push_back({idx, new_idx, action});
      if (result_.states_explored > options_.max_states) {
        fail(state_limit_message(), "statelimit", Verdict::kStateLimit,
             path_actions(new_idx, nullptr));
        return;
      }
      frontier.emplace_back(std::move(next), new_idx);
    }
  }

  /// Condition S (ignoring-problem repair): a cycle of the reduced graph
  /// on which every state was reduced could defer an exterior action
  /// forever, hiding reachable violations (and, under liveness, masking
  /// or fabricating nothing — cycles must keep one full state for the
  /// lasso argument). Tarjan SCC over the recorded edges finds such
  /// cycles; the smallest-index reduced state of each offending SCC is
  /// re-expanded with POR off, and any newly reachable region is searched
  /// normally. Iterates until no fully-reduced cycle remains — each round
  /// permanently converts at least one state to full, so it terminates.
  void repair_ignoring() {
    while (result_.violation.empty()) {
      const std::vector<std::uint32_t> repairs = fully_reduced_cycles();
      if (repairs.empty()) return;
      for (const std::uint32_t idx : repairs) {
        if (!result_.violation.empty()) return;
        ++result_.stats.por_ignoring_repairs;
        State state = replay(path_actions(idx, nullptr), nullptr, nullptr);
        std::deque<std::pair<State, std::uint32_t>> frontier;
        expand(state, idx, frontier, /*force_full=*/true);
        drain(frontier);
      }
    }
  }

  /// Smallest-index member of every cyclic SCC (size > 1 or self-loop)
  /// whose states were all reduced; iterative Tarjan.
  std::vector<std::uint32_t> fully_reduced_cycles() const {
    const auto n = static_cast<std::uint32_t>(records_.size());
    std::vector<std::vector<std::uint32_t>> adj(n);
    std::vector<bool> self_loop(n, false);
    for (const Edge& edge : edges_) {
      if (edge.from == edge.to) {
        self_loop[edge.from] = true;
      } else {
        adj[edge.from].push_back(edge.to);
      }
    }
    constexpr std::uint32_t kUnset = 0xffffffffu;
    std::vector<std::uint32_t> index(n, kUnset);
    std::vector<std::uint32_t> low(n, 0);
    std::vector<bool> on_stack(n, false);
    std::vector<std::uint32_t> stack;
    std::vector<std::uint32_t> repairs;
    std::uint32_t next_index = 0;
    struct Frame {
      std::uint32_t v = 0;
      std::size_t child = 0;
    };
    std::vector<Frame> call;
    for (std::uint32_t root = 0; root < n; ++root) {
      if (index[root] != kUnset) continue;
      call.push_back({root, 0});
      while (!call.empty()) {
        Frame& frame = call.back();
        const std::uint32_t v = frame.v;
        if (frame.child == 0) {
          index[v] = low[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
        }
        if (frame.child < adj[v].size()) {
          const std::uint32_t w = adj[v][frame.child++];
          if (index[w] == kUnset) {
            call.push_back({w, 0});
          } else if (on_stack[w]) {
            low[v] = std::min(low[v], index[w]);
          }
          continue;
        }
        if (low[v] == index[v]) {
          // v roots an SCC; pop it and check for a fully-reduced cycle.
          std::vector<std::uint32_t> component;
          for (;;) {
            const std::uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          const bool cyclic = component.size() > 1 ||
                              self_loop[component.front()];
          if (cyclic) {
            std::uint32_t smallest = kUnset;
            bool any_full = false;
            for (const std::uint32_t w : component) {
              if (records_[w].full) any_full = true;
              smallest = std::min(smallest, w);
            }
            if (!any_full) repairs.push_back(smallest);
          }
        }
        call.pop_back();
        if (!call.empty()) {
          low[call.back().v] = std::min(low[call.back().v], low[v]);
        }
      }
    }
    std::sort(repairs.begin(), repairs.end());
    return repairs;
  }

  /// The action sequence from the initial state to visited state `idx`
  /// along exploration-forest parent links, plus an optional final action.
  std::vector<Action> path_actions(std::uint32_t idx,
                                   const Action* extra) const {
    std::vector<Action> actions;
    for (std::int64_t walk = idx; walk > 0;
         walk = records_[static_cast<std::size_t>(walk)].parent) {
      actions.push_back(records_[static_cast<std::size_t>(walk)].via);
    }
    std::reverse(actions.begin(), actions.end());
    if (extra != nullptr) actions.push_back(*extra);
    return actions;
  }

  /// Re-executes `actions` from the initial state with event tracing on,
  /// producing the human-readable trace and the structured counterexample
  /// events. Exact: actions name their channel, channels are FIFO and the
  /// automatons are deterministic.
  State replay(const std::vector<Action>& actions,
               std::vector<std::string>* trace,
               std::vector<trace::TraceEvent>* events) const {
    State state = make_initial(replay_config_);
    for (const Action& action : actions) {
      // The final action of a counterexample path violates a property;
      // replay only reconstructs, so the verdict is ignored here.
      (void)apply(state, action, trace, events);
    }
    return state;
  }

  void fail(std::string message, std::string descriptor, Verdict verdict,
            const std::vector<Action>& actions) {
    if (!result_.violation.empty()) return;
    result_.violation = std::move(message);
    result_.violation_fingerprint = std::move(descriptor);
    result_.verdict = verdict;
    replay(actions, &result_.trace, &result_.events);
  }

  // ---- Terminal checks ----

  /// Conformance lint (Tables 1(a)-(d), FIFO fairness) of the replayed
  /// event trace of the path discovering this terminal; only meaningful
  /// at terminal states, where every queued request has resolved.
  bool lint_terminal(std::uint32_t idx) {
    const std::vector<Action> actions = path_actions(idx, nullptr);
    std::vector<trace::TraceEvent> events;
    replay(actions, nullptr, &events);
    lint::LintOptions lint_options;
    lint_options.initial_token = NodeId{0};
    lint_options.local_queueing = search_config_.local_queueing;
    lint_options.child_grants = search_config_.child_grants;
    lint_options.path_compression = search_config_.path_compression;
    lint_options.freezing = search_config_.freezing;
    const lint::LintReport report = lint::check(events, lint_options);
    if (report.ok()) return true;
    const lint::Violation& first = report.violations.front();
    fail("conformance lint: " + to_string(first.kind) + " — " +
             first.message,
         "lint:" + to_string(first.kind), Verdict::kLint, actions);
    return false;
  }

  void check_terminal(const State& state, std::uint32_t idx) {
    ++result_.terminal_states;
    for (std::size_t i = 0; i < n_; ++i) {
      if (state.status[i] != Status::kDone) {
        // Crash forgives the victim's script by marking it kDone, so an
        // unfinished script here always belongs to a SURVIVOR — the
        // no-lost-waiter property under crashes.
        fail("terminal state with unfinished script at node" +
                 std::to_string(i) + " (deadlock or lost request): " +
                 state.nodes[i].describe(),
             "deadlock", Verdict::kDeadlock, path_actions(idx, nullptr));
        return;
      }
    }
    if (crash_on_) {
      // Recovery convergence: every survivor unhalted with an empty
      // backlog, all on one epoch, holding exactly one token among them.
      std::size_t tokens = 0;
      std::uint32_t epoch = UINT32_MAX;
      for (std::uint32_t i = 0; i < n_; ++i) {
        if (!alive(state, i)) continue;
        if (state.managers[i].halted()) {
          fail("terminal state with node" + std::to_string(i) +
                   " still halted (recovery campaign never completed)",
               "quiescence:halted", Verdict::kSafety,
               path_actions(idx, nullptr));
          return;
        }
        if (!state.halted[i].empty() || !state.parked[i].empty()) {
          fail("terminal state with undelivered backlog at node" +
                   std::to_string(i),
               "quiescence:backlog", Verdict::kSafety,
               path_actions(idx, nullptr));
          return;
        }
        if (state.nodes[i].is_token()) ++tokens;
        if (epoch == UINT32_MAX) {
          epoch = state.nodes[i].recovery_epoch();
        } else if (epoch != state.nodes[i].recovery_epoch()) {
          fail("terminal state with survivors in different epochs",
               "quiescence:epoch-skew", Verdict::kSafety,
               path_actions(idx, nullptr));
          return;
        }
      }
      if (tokens != 1) {
        fail("terminal state with " + std::to_string(tokens) +
                 " live tokens",
             "quiescence:tokens:" + std::to_string(tokens),
             Verdict::kSafety, path_actions(idx, nullptr));
        return;
      }
    }
    if (options_.lint && !lint_terminal(idx)) return;
    // Quiescent structure: copysets mutual and accurate (live nodes only
    // under crashes, where they must also not reference the dead).
    for (std::size_t i = 0; i < n_; ++i) {
      if (crash_on_ && !alive(state, static_cast<std::uint32_t>(i))) {
        continue;
      }
      for (const core::CopysetEntry& entry : state.nodes[i].copyset()) {
        if (crash_on_ && !alive(state, entry.node.value())) {
          fail("terminal state with a copyset entry for crashed node" +
                   std::to_string(entry.node.value()) + " at node" +
                   std::to_string(i),
               "quiescence:dead-ref", Verdict::kSafety,
               path_actions(idx, nullptr));
          return;
        }
        const HierAutomaton& child = state.nodes[entry.node.value()];
        if (child.parent().value() != i) {
          fail("terminal state with non-mutual copyset at node" +
                   std::to_string(i),
               "quiescence:non-mutual", Verdict::kSafety,
               path_actions(idx, nullptr));
          return;
        }
        if (child.owned() != entry.mode) {
          fail("terminal state with stale copyset mode at node" +
                   std::to_string(i),
               "quiescence:stale-mode", Verdict::kSafety,
               path_actions(idx, nullptr));
          return;
        }
      }
    }
  }

  // ---- Liveness ----

  /// Searches the explored graph for a reachable cycle on which some
  /// node's request stays unresolved in every state — a scheduler can
  /// loop there forever, starving that node. Reported as a lasso: the
  /// parent-link stem to the cycle entry plus the cycle's actions.
  /// Victims are tried in ascending id, so the reported victim (and the
  /// violation fingerprint) is exploration-order-independent.
  void liveness_check() {
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj(
        records_.size());
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      adj[edges_[e].from].emplace_back(edges_[e].to,
                                       static_cast<std::uint32_t>(e));
    }
    struct Frame {
      std::uint32_t state = 0;
      std::size_t next = 0;
    };
    for (std::size_t victim = 0; victim < n_; ++victim) {
      const std::uint32_t bit = 1u << victim;
      std::vector<std::uint8_t> color(records_.size(), 0);
      for (std::uint32_t start = 0; start < records_.size(); ++start) {
        if ((records_[start].waiting & bit) == 0 || color[start] != 0) {
          continue;
        }
        std::vector<Frame> stack{{start, 0}};
        std::vector<std::uint32_t> entry_edge{0};  // edge into stack[k]
        color[start] = 1;
        while (!stack.empty()) {
          Frame& top = stack.back();
          if (top.next >= adj[top.state].size()) {
            color[top.state] = 2;
            stack.pop_back();
            entry_edge.pop_back();
            continue;
          }
          const auto [succ, edge] = adj[top.state][top.next++];
          if ((records_[succ].waiting & bit) == 0) continue;
          if (color[succ] == 1) {
            // Cycle: the stack segment from succ, closed by `edge`.
            std::size_t pos = 0;
            while (stack[pos].state != succ) ++pos;
            std::vector<Action> cycle;
            for (std::size_t k = pos + 1; k < stack.size(); ++k) {
              cycle.push_back(edges_[entry_edge[k]].via);
            }
            cycle.push_back(edges_[edge].via);
            std::vector<Action> actions = path_actions(succ, nullptr);
            const std::size_t stem = actions.size();
            actions.insert(actions.end(), cycle.begin(), cycle.end());
            result_.lasso_cycle_length = cycle.size();
            fail("starvation: node" + std::to_string(victim) +
                     "'s request never progresses — lasso with a " +
                     std::to_string(cycle.size()) +
                     "-action cycle after " + std::to_string(stem) +
                     " stem action(s)",
                 "starvation:node" + std::to_string(victim),
                 Verdict::kStarvation, actions);
            return;
          }
          if (color[succ] == 0) {
            color[succ] = 1;
            stack.push_back({succ, 0});
            entry_edge.push_back(edge);
          }
        }
      }
    }
  }

  const std::vector<Script>& scripts_;
  const ExploreOptions& options_;
  const std::size_t n_;
  /// options_.config with trace_events forced off (search) / on (replay).
  core::HierConfig search_config_;
  core::HierConfig replay_config_;
  // Crash exploration (ExploreOptions::crash). The hosts are the stable
  // per-node adapters every Manager copy points at; active_ is the state
  // currently inside apply(), which the adapters dereference.
  const bool crash_on_;
  recovery::Options rec_options_;
  std::uint32_t victims_mask_ = 0;
  std::vector<std::unique_ptr<CrashHost>> hosts_;
  mutable State* active_ = nullptr;
  SymmetryGroup group_;
  ExploreResult result_;
  std::unordered_map<std::string, std::uint32_t> visited_;
  std::vector<Record> records_;
  std::vector<Edge> edges_;
};

// ---------------------------------------------------------------------------
// Mode-less protocols (Naimi, Raymond): a smaller exhaustive explorer over
// acquire/release scripts, parameterized by the automaton type and its
// structural terminal check.
// ---------------------------------------------------------------------------

/// Verdict classification for the mode-less explorers, which build their
/// violation strings directly.
Verdict classify_violation(const std::string& violation) {
  if (violation.find("state limit") != std::string::npos) {
    return Verdict::kStateLimit;
  }
  if (violation.find("unfinished script") != std::string::npos) {
    return Verdict::kDeadlock;
  }
  return Verdict::kSafety;
}

template <typename Automaton>
class ModelessExplorer {
 public:
  using TerminalCheck = std::string (*)(const std::vector<Automaton>&);

  ModelessExplorer(const std::vector<Script>& scripts,
                   std::vector<Automaton> initial_nodes,
                   TerminalCheck terminal_check, std::uint64_t max_states)
      : scripts_(scripts), initial_nodes_(std::move(initial_nodes)),
        terminal_check_(terminal_check), max_states_(max_states) {}

  ExploreResult run() {
    // Aggregate construction: the automatons have const members, so the
    // vector must be moved in (element copy-assignment is deleted).
    State initial{std::move(initial_nodes_),
                  {},
                  std::vector<std::size_t>(scripts_.size(), 0)};
    dfs(initial);
    if (result_.violation.empty()) {
      result_.ok = true;
    } else {
      result_.verdict = classify_violation(result_.violation);
    }
    result_.stats.states = result_.states_explored;
    result_.stats.transitions = result_.transitions;
    result_.stats.terminal_states = result_.terminal_states;
    return result_;
  }

 private:
  struct State {
    std::vector<Automaton> nodes;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<Message>>
        channels;
    std::vector<std::size_t> pc;

    std::string fingerprint() const {
      std::ostringstream os;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        os << 'N' << i << '[' << nodes[i].fingerprint() << ']' << pc[i];
      }
      for (const auto& [key, queue] : channels) {
        os << 'C' << key.first << '>' << key.second << '{';
        for (const Message& message : queue) os << to_string(message) << ';';
        os << '}';
      }
      return os.str();
    }
  };

  bool fail(const std::string& message) {
    if (result_.violation.empty()) {
      result_.violation = message;
      result_.trace = trace_;
    }
    return false;
  }

  bool absorb(State& state, Effects&& fx) {
    for (Message& message : fx.messages) {
      state.channels[{message.from.value(), message.to.value()}].push_back(
          std::move(message));
    }
    // Safety: at most one node inside its critical section; exactly one
    // token at rest or in flight.
    std::size_t in_cs = 0;
    std::size_t tokens = 0;
    for (const Automaton& node : state.nodes) {
      in_cs += node.in_cs() ? 1u : 0u;
      tokens += node.has_token() ? 1u : 0u;
    }
    for (const auto& [key, queue] : state.channels) {
      for (const Message& message : queue) {
        if (std::holds_alternative<proto::NaimiToken>(message.payload)) {
          ++tokens;
        }
      }
    }
    if (in_cs > 1) return fail("mutual exclusion violated");
    if (tokens != 1) {
      return fail("token conservation violated: " + std::to_string(tokens));
    }
    return true;
  }

  void check_terminal(const State& state) {
    ++result_.terminal_states;
    for (std::size_t i = 0; i < state.nodes.size(); ++i) {
      if (state.pc[i] < scripts_[i].size() || state.nodes[i].requesting() ||
          state.nodes[i].in_cs()) {
        fail("terminal state with unfinished script at node" +
             std::to_string(i) + ": " + state.nodes[i].describe());
        return;
      }
    }
    const std::string structural = terminal_check_(state.nodes);
    if (!structural.empty()) fail(structural);
  }

  void dfs(const State& state) {
    if (!result_.violation.empty()) return;
    if (!visited_.insert(state.fingerprint()).second) return;
    ++result_.states_explored;
    if (result_.states_explored > max_states_) {
      fail("state limit exceeded");
      return;
    }

    bool any_action = false;
    for (const auto& [key, queue] : state.channels) {
      any_action = true;
      State next = state;
      auto it = next.channels.find(key);
      const Message message = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) next.channels.erase(it);
      ++result_.transitions;
      trace_.push_back("deliver " + to_string(message));
      if (absorb(next, next.nodes[message.to.value()].on_message(message))) {
        dfs(next);
      }
      trace_.pop_back();
      if (!result_.violation.empty()) return;
    }

    for (std::size_t i = 0; i < state.nodes.size(); ++i) {
      if (state.pc[i] >= scripts_[i].size()) continue;
      const ScriptOp op = scripts_[i][state.pc[i]];
      // An acquire may only be issued when idle; a release when inside.
      if (op.kind == ScriptOp::Kind::kAcquire &&
          (state.nodes[i].in_cs() || state.nodes[i].requesting())) {
        continue;
      }
      if (op.kind == ScriptOp::Kind::kRelease && !state.nodes[i].in_cs()) {
        continue;
      }
      any_action = true;
      State next = state;
      ++next.pc[i];
      ++result_.transitions;
      trace_.push_back("node" + std::to_string(i) +
                       (op.kind == ScriptOp::Kind::kAcquire ? " acquire"
                                                            : " release"));
      Effects fx = op.kind == ScriptOp::Kind::kAcquire
                       ? next.nodes[i].request()
                       : next.nodes[i].release();
      if (absorb(next, std::move(fx))) dfs(next);
      trace_.pop_back();
      if (!result_.violation.empty()) return;
    }

    if (!any_action) check_terminal(state);
  }

  const std::vector<Script>& scripts_;
  std::vector<Automaton> initial_nodes_;
  TerminalCheck terminal_check_;
  std::uint64_t max_states_;
  ExploreResult result_;
  std::unordered_set<std::string> visited_;
  std::vector<std::string> trace_;
};

void validate_modeless_scripts(const std::vector<Script>& scripts) {
  HLOCK_REQUIRE(!scripts.empty(), "explore needs at least one node script");
  for (const Script& script : scripts) {
    bool holding = false;
    for (const ScriptOp& op : script) {
      switch (op.kind) {
        case ScriptOp::Kind::kAcquire:
          HLOCK_REQUIRE(!holding, "script acquires while holding");
          holding = true;
          break;
        case ScriptOp::Kind::kRelease:
          HLOCK_REQUIRE(holding, "script releases without holding");
          holding = false;
          break;
        case ScriptOp::Kind::kUpgrade:
          throw UsageError("mode-less protocols have no upgrade");
      }
    }
  }
}

std::string naimi_terminal_check(
    const std::vector<naimi::NaimiAutomaton>& nodes) {
  std::size_t roots = 0;
  std::size_t tokens = 0;
  for (const auto& node : nodes) {
    roots += node.probable_owner().is_none() ? 1u : 0u;
    tokens += node.has_token() ? 1u : 0u;
  }
  if (roots != 1) return "terminal state with " + std::to_string(roots) +
                         " roots";
  if (tokens != 1) return "terminal state with " + std::to_string(tokens) +
                          " tokens";
  return "";
}

std::string raymond_terminal_check(
    const std::vector<raymond::RaymondAutomaton>& nodes) {
  std::size_t holders = 0;
  for (const auto& node : nodes) holders += node.has_token() ? 1u : 0u;
  if (holders != 1) {
    return "terminal state with " + std::to_string(holders) +
           " privilege holders";
  }
  // Every holder chain must reach the token holder within n hops.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::size_t walker = i;
    std::size_t hops = 0;
    while (!nodes[walker].has_token()) {
      walker = nodes[walker].holder().value();
      if (++hops > nodes.size()) {
        return "terminal holder cycle from node" + std::to_string(i);
      }
    }
  }
  return "";
}

}  // namespace

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kSafety:
      return "safety";
    case Verdict::kDeadlock:
      return "deadlock";
    case Verdict::kLint:
      return "lint";
    case Verdict::kStarvation:
      return "starvation";
    case Verdict::kStateLimit:
      return "state-limit";
  }
  return "unknown";
}

ExploreResult explore_naimi(const std::vector<Script>& scripts,
                            std::uint64_t max_states) {
  validate_modeless_scripts(scripts);
  std::vector<naimi::NaimiAutomaton> nodes;
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    nodes.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, kLock, i == 0,
                       i == 0 ? NodeId::none() : NodeId{0});
  }
  ModelessExplorer<naimi::NaimiAutomaton> explorer{
      scripts, std::move(nodes), naimi_terminal_check, max_states};
  return explorer.run();
}

ExploreResult explore_raymond(const std::vector<Script>& scripts,
                              std::uint64_t max_states) {
  validate_modeless_scripts(scripts);
  const auto tree = raymond::balanced_tree(scripts.size());
  std::vector<raymond::RaymondAutomaton> nodes;
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    nodes.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, kLock,
                       i == 0 ? NodeId{0} : tree[i].holder,
                       tree[i].neighbors);
  }
  ModelessExplorer<raymond::RaymondAutomaton> explorer{
      scripts, std::move(nodes), raymond_terminal_check, max_states};
  return explorer.run();
}

ExploreResult explore(const std::vector<Script>& scripts,
                      const ExploreOptions& options) {
  HLOCK_REQUIRE(!scripts.empty(), "explore needs at least one node script");
  HLOCK_REQUIRE(scripts.size() <= 32,
                "explore supports at most 32 nodes (reduction bitmasks)");
  // Scripts must be locally well-formed (acquire/release alternation) or
  // the automaton preconditions fire mid-exploration.
  for (const Script& script : scripts) {
    bool holding = false;
    for (const ScriptOp& op : script) {
      switch (op.kind) {
        case ScriptOp::Kind::kAcquire:
          HLOCK_REQUIRE(!holding, "script acquires while holding");
          HLOCK_REQUIRE(op.mode != proto::LockMode::kNL,
                        "script acquires NL");
          holding = true;
          break;
        case ScriptOp::Kind::kRelease:
          HLOCK_REQUIRE(holding, "script releases without holding");
          holding = false;
          break;
        case ScriptOp::Kind::kUpgrade:
          HLOCK_REQUIRE(holding, "script upgrades without holding");
          break;
      }
    }
  }
  Explorer explorer{scripts, options};
  return explorer.run();
}

}  // namespace hlock::modelcheck
