// Deep-tree behaviors: owned-mode aggregation over multi-level copysets,
// freeze propagation through long chains, release cascades, and the
// reported-owned mirror.
#include <gtest/gtest.h>

#include "core/mode_tables.hpp"
#include "tests/core/test_net.hpp"

namespace hlock::test {
namespace {

constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kW = LockMode::kW;

/// Builds a chain A(token) <- B <- C <- D <- ... where each node holds
/// `mode` granted by its predecessor, then releases its own hold so only
/// the leaf holds. Returns nothing; asserts the chain shape.
void build_chain(HierNet& net, std::size_t depth, LockMode mode) {
  net.request(0, mode);
  for (std::size_t i = 1; i < depth; ++i) {
    net.request(i, mode);
    net.settle();
    ASSERT_EQ(net.node(i).held(), mode) << "chain node " << i;
  }
  // Release all but the leaf, inner nodes keep owning through children.
  for (std::size_t i = 0; i + 1 < depth; ++i) {
    net.release(i);
    net.settle();
  }
}

TEST(DeepTree, OwnedModeAggregatesThroughFourLevels) {
  // Chain topology: each node's initial parent is its predecessor, so
  // grants naturally build a 4-level copyset chain.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{2}};
  HierNet net{parents};
  build_chain(net, 4, kR);

  // Only node 3 holds, but everyone on the chain still owns R.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(net.node(i).owned(), kR) << "node " << i;
  }
  EXPECT_EQ(net.node(3).held(), kR);
  EXPECT_EQ(net.node(0).held(), kNL);

  // The leaf's release cascades NL up the whole chain, one message per
  // level (Rule 5.2).
  const std::uint64_t before = net.total_messages();
  net.release(3);
  net.settle();
  EXPECT_EQ(net.total_messages() - before, 3u)
      << "exactly one RELEASE per level";
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(net.node(i).owned(), kNL) << "node " << i;
  }
}

TEST(DeepTree, FreezePropagatesThroughFourLevels) {
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{2}, NodeId{0}};
  HierNet net{parents};
  build_chain(net, 4, kR);
  // Token is at the last grantee... build_chain grants R along the chain:
  // the first R transfer makes node1 the token, then node2, node3 receive
  // copies or transfers depending on ownership. Locate the token.
  std::size_t token = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    if (net.node(i).is_token()) token = i;
  }

  // A W request freezes reader modes; every chain node that can grant R
  // or IR must learn about it.
  net.request(4, kW);
  net.settle();
  EXPECT_EQ(net.cs_entries(4), 0);
  int frozen_nodes = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (!net.node(i).frozen().empty()) ++frozen_nodes;
  }
  EXPECT_GE(frozen_nodes, 2) << "freeze did not propagate down the chain";

  // Drain: the leaf release cascades and the writer gets the token.
  net.release(3);
  net.settle();
  EXPECT_EQ(net.node(4).held(), kW) << "token was at node " << token;
}

TEST(DeepTree, MultiChildAggregationPicksStrongest) {
  // One parent with three children holding IR, R, IR: owned must be R and
  // must fall back to IR when the R child leaves.
  HierNet net{5};
  net.request(0, kR);
  net.request(1, kIR);
  net.request(2, kR);
  net.request(3, kIR);
  net.settle();
  // All were granted by the token (star topology).
  std::size_t granter = 0;
  for (std::size_t i = 0; i < 5; ++i) {
    if (net.node(i).is_token()) granter = i;
  }
  EXPECT_EQ(net.node(granter).owned(), kR);

  net.release(2);  // the non-token R holder leaves
  net.settle();
  if (granter != 0) {
    // Token may itself hold R (node 0's request transferred it); the
    // aggregate is R while the token holds, IR-dominated otherwise.
    SUCCEED();
  }
  // After all R holders leave, only IR remains in the aggregate.
  net.release(0);
  net.settle();
  EXPECT_EQ(net.node(granter).owned(), kIR);
}

TEST(DeepTree, ReportedOwnedMirrorsParentEntry) {
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(0, kR);
  net.request(1, kR);
  net.settle();
  net.request(2, kIR);  // granted by node 1 itself
  net.settle();

  // Node 1 reported R when granted; its parent's entry says the same.
  EXPECT_EQ(net.node(1).reported_owned(), kR);
  bool found = false;
  for (const core::CopysetEntry& entry : net.node(0).copyset()) {
    if (entry.node == NodeId{1}) {
      EXPECT_EQ(entry.mode, net.node(1).reported_owned());
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Weakening: node 1 releases, still owns IR through node 2 — the mirror
  // and the parent entry both move to IR.
  net.release(1);
  net.settle();
  EXPECT_EQ(net.node(1).reported_owned(), kIR);
  for (const core::CopysetEntry& entry : net.node(0).copyset()) {
    if (entry.node == NodeId{1}) {
      EXPECT_EQ(entry.mode, kIR);
    }
  }
  // Token node never reports anywhere.
  for (std::size_t i = 0; i < 3; ++i) {
    if (net.node(i).is_token()) {
      EXPECT_EQ(net.node(i).reported_owned(), kNL);
    }
  }
}

TEST(DeepTree, WideFanOutGrantsAndDrains) {
  // 16 children of one token, all IR; one release wave must fully drain.
  constexpr std::size_t kNodes = 17;
  HierNet net{kNodes};
  net.request(0, kIR);
  for (std::size_t i = 1; i < kNodes; ++i) net.request(i, kIR);
  net.settle();
  for (std::size_t i = 0; i < kNodes; ++i) {
    ASSERT_EQ(net.node(i).held(), kIR) << "node " << i;
  }
  for (std::size_t i = 0; i < kNodes; ++i) net.release(i);
  net.settle();
  for (std::size_t i = 0; i < kNodes; ++i) {
    EXPECT_EQ(net.node(i).owned(), kNL) << "node " << i;
    EXPECT_TRUE(net.node(i).copyset().empty()) << "node " << i;
  }
}

TEST(DeepTree, TokenEndsWhereTheLastExclusiveUserWas) {
  // After a W excursion the token stays at the writer; the next reader
  // pulls it (or a copy) from there — the locality the paper's dynamic
  // tree provides.
  HierNet net{4};
  net.request(2, kW);
  net.settle();
  EXPECT_TRUE(net.node(2).is_token());
  net.release(2);
  net.settle();
  EXPECT_TRUE(net.node(2).is_token()) << "token rests with the last user";

  net.request(3, kR);
  net.settle();
  EXPECT_TRUE(net.node(3).is_token())
      << "R exceeds the resting token's owned NL: token moves";
}

}  // namespace
}  // namespace hlock::test
