#include "sim/network_model.hpp"

#include <gtest/gtest.h>

namespace hlock::sim {
namespace {

using proto::NodeId;

TEST(NetworkModel, DeliveryAfterSend) {
  NetworkModel net{DurationDist::uniform(SimTime::ms(150), 0.5), Rng{1}};
  const SimTime now = SimTime::ms(10);
  for (int i = 0; i < 100; ++i) {
    const SimTime at = net.delivery_time(now, NodeId{0}, NodeId{1});
    EXPECT_GT(at, now);
  }
}

TEST(NetworkModel, UniformLatencyWithinBounds) {
  NetworkModel net{DurationDist::uniform(SimTime::ms(100), 0.5), Rng{2}};
  // Use distinct channels so FIFO pushing does not distort the sample.
  for (std::uint32_t i = 0; i < 500; ++i) {
    const SimTime at = net.delivery_time(SimTime{}, NodeId{i}, NodeId{i + 1});
    EXPECT_GE(at, SimTime::ms(50));
    EXPECT_LE(at, SimTime::ms(150));
  }
}

TEST(NetworkModel, ChannelIsFifo) {
  // With heavily randomized latency, back-to-back sends on one channel
  // would frequently reorder; the model must forbid that.
  NetworkModel net{DurationDist::uniform(SimTime::ms(100), 0.9), Rng{3}};
  SimTime previous{};
  for (int i = 0; i < 1000; ++i) {
    const SimTime at = net.delivery_time(SimTime::ms(i), NodeId{0}, NodeId{1});
    EXPECT_GT(at, previous);
    previous = at;
  }
}

TEST(NetworkModel, OppositeDirectionsAreIndependentChannels) {
  NetworkModel net{DurationDist::constant(SimTime::ms(10)), Rng{4}};
  const SimTime forward = net.delivery_time(SimTime{}, NodeId{0}, NodeId{1});
  const SimTime backward = net.delivery_time(SimTime{}, NodeId{1}, NodeId{0});
  // Constant latency: both get exactly 10 ms — no FIFO interaction between
  // the two directions.
  EXPECT_EQ(forward, SimTime::ms(10));
  EXPECT_EQ(backward, SimTime::ms(10));
}

TEST(NetworkModel, DeterministicForSameSeed) {
  NetworkModel a{DurationDist::exponential(SimTime::ms(5)), Rng{77}};
  NetworkModel b{DurationDist::exponential(SimTime::ms(5)), Rng{77}};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.delivery_time(SimTime::ms(i), NodeId{0}, NodeId{1}),
              b.delivery_time(SimTime::ms(i), NodeId{0}, NodeId{1}));
  }
}

TEST(Presets, LinuxClusterMatchesPaperParameters) {
  const TestbedPreset preset = linux_cluster_preset();
  EXPECT_EQ(preset.name, "linux-cluster");
  EXPECT_EQ(preset.message_latency.mean(), SimTime::ms(150));
  EXPECT_EQ(preset.message_latency.kind(), DistKind::kUniform);
}

TEST(Presets, IbmSpIsLowLatency) {
  const TestbedPreset preset = ibm_sp_preset();
  EXPECT_EQ(preset.name, "ibm-sp");
  EXPECT_LT(preset.message_latency.mean(), SimTime::ms(1));
}

}  // namespace
}  // namespace hlock::sim
