#include "runtime/invariants.hpp"

#include <sstream>

#include "core/mode_tables.hpp"

namespace hlock::runtime {

using core::HierAutomaton;
using proto::LockId;
using proto::LockMode;
using proto::NodeId;

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << '\n';
    os << violations[i];
  }
  return os.str();
}

namespace {

void check_hier_safety(SimCluster& cluster, LockId lock,
                       InvariantReport& report) {
  std::size_t tokens = 0;
  std::vector<std::pair<NodeId, LockMode>> held;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    HierAutomaton& automaton = cluster.hier_automaton(node, lock);
    if (automaton.is_token()) ++tokens;
    if (automaton.held() != LockMode::kNL) {
      held.emplace_back(node, automaton.held());
    }
  }
  // While a TOKEN message is in flight no node is the token node, so
  // mid-run only the upper bound is checkable; check_hier_structure
  // asserts exactly one at quiescence.
  if (tokens > 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(tokens) + " token nodes");
  }
  for (std::size_t a = 0; a < held.size(); ++a) {
    for (std::size_t b = a + 1; b < held.size(); ++b) {
      if (core::incompatible(held[a].second, held[b].second)) {
        report.violations.push_back(
            to_string(lock) + ": " + to_string(held[a].first) + " holds " +
            to_string(held[a].second) + " while " +
            to_string(held[b].first) + " holds " +
            to_string(held[b].second) + " (incompatible)");
      }
    }
  }
}

void check_raymond_safety(SimCluster& cluster, LockId lock,
                          InvariantReport& report) {
  std::size_t holders = 0;
  std::size_t in_cs = 0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    auto& automaton = cluster.raymond_automaton(node, lock);
    if (automaton.has_token()) ++holders;
    if (automaton.in_cs()) ++in_cs;
  }
  if (holders > 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(holders) +
                                " privilege holders");
  }
  if (in_cs > 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(in_cs) +
                                " nodes in the critical section");
  }
}

void check_raymond_structure(SimCluster& cluster, LockId lock,
                             InvariantReport& report) {
  // At quiescence: exactly one privilege holder, nobody requesting, every
  // holder chain reaches it without cycling (holder pointers follow the
  // static tree, so n hops suffice).
  const std::size_t n = cluster.node_count();
  std::size_t holders = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    auto& automaton = cluster.raymond_automaton(node, lock);
    if (automaton.has_token()) ++holders;
    if (automaton.requesting()) {
      report.violations.push_back(to_string(lock) + ": " + to_string(node) +
                                  " still requesting at rest");
    }
    NodeId walker = node;
    std::size_t hops = 0;
    while (!cluster.raymond_automaton(walker, lock).has_token()) {
      walker = cluster.raymond_automaton(walker, lock).holder();
      if (++hops > n) {
        report.violations.push_back(to_string(lock) +
                                    ": holder cycle from node" +
                                    std::to_string(i));
        break;
      }
    }
  }
  if (holders != 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(holders) +
                                " privilege holders (expected exactly 1)");
  }
}

void check_naimi_safety(SimCluster& cluster, LockId lock,
                        InvariantReport& report) {
  std::size_t tokens = 0;
  std::size_t in_cs = 0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    auto& automaton = cluster.naimi_automaton(node, lock);
    if (automaton.has_token()) ++tokens;
    if (automaton.in_cs()) ++in_cs;
  }
  if (tokens > 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(tokens) + " token holders");
  }
  if (in_cs > 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(in_cs) +
                                " nodes in the critical section");
  }
}

void check_hier_structure(SimCluster& cluster, LockId lock,
                          InvariantReport& report) {
  const std::size_t n = cluster.node_count();

  // At quiescence the token must be at rest at exactly one node.
  std::size_t tokens = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cluster.hier_automaton(NodeId{static_cast<std::uint32_t>(i)}, lock)
            .is_token()) {
      ++tokens;
    }
  }
  if (tokens != 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(tokens) +
                                " token nodes at rest (expected exactly 1)");
  }

  // Parent links must be acyclic and terminate at the (unique) token node.
  for (std::size_t i = 0; i < n; ++i) {
    NodeId walker{static_cast<std::uint32_t>(i)};
    std::size_t hops = 0;
    while (!cluster.hier_automaton(walker, lock).is_token()) {
      walker = cluster.hier_automaton(walker, lock).parent();
      if (walker.is_none() || ++hops > n) {
        report.violations.push_back(
            to_string(lock) + ": parent chain from node" +
            std::to_string(i) +
            (walker.is_none() ? " hits a null parent before the token"
                              : " has a cycle"));
        break;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    HierAutomaton& automaton = cluster.hier_automaton(node, lock);
    if (automaton.pending() != LockMode::kNL) {
      report.violations.push_back(to_string(lock) + ": " + to_string(node) +
                                  " still has a pending request at rest");
    }
    if (!automaton.queue().empty()) {
      report.violations.push_back(to_string(lock) + ": " + to_string(node) +
                                  " still has queued requests at rest");
    }
    // Copyset entries must be mutual and carry the child's true owned mode.
    for (const core::CopysetEntry& entry : automaton.copyset()) {
      HierAutomaton& child = cluster.hier_automaton(entry.node, lock);
      if (child.parent() != node) {
        report.violations.push_back(
            to_string(lock) + ": " + to_string(entry.node) +
            " is in the copyset of " + to_string(node) +
            " but its parent is " + to_string(child.parent()));
      }
      if (child.owned() != entry.mode) {
        report.violations.push_back(
            to_string(lock) + ": copyset of " + to_string(node) +
            " records " + to_string(entry.node) + " at " +
            to_string(entry.mode) + " but its owned mode is " +
            to_string(child.owned()));
      }
    }
  }
}

void check_naimi_structure(SimCluster& cluster, LockId lock,
                           InvariantReport& report) {
  const std::size_t n = cluster.node_count();
  std::size_t tokens = 0;
  std::size_t roots = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node{static_cast<std::uint32_t>(i)};
    auto& automaton = cluster.naimi_automaton(node, lock);
    if (automaton.has_token()) ++tokens;
    if (automaton.probable_owner().is_none()) ++roots;
    if (automaton.requesting()) {
      report.violations.push_back(to_string(lock) + ": " + to_string(node) +
                                  " still requesting at rest");
    }
    // Probable-owner chains must reach the root without cycling.
    NodeId walker = node;
    std::size_t hops = 0;
    while (!cluster.naimi_automaton(walker, lock).probable_owner().is_none()) {
      walker = cluster.naimi_automaton(walker, lock).probable_owner();
      if (++hops > n) {
        report.violations.push_back(to_string(lock) +
                                    ": probable-owner cycle from node" +
                                    std::to_string(i));
        break;
      }
    }
  }
  if (tokens != 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(tokens) +
                                " token holders (expected exactly 1)");
  }
  if (roots != 1) {
    report.violations.push_back(to_string(lock) + ": " +
                                std::to_string(roots) +
                                " tree roots (expected exactly 1)");
  }
}

}  // namespace

InvariantReport check_safety(SimCluster& cluster,
                             const std::vector<LockId>& locks) {
  InvariantReport report;
  for (LockId lock : locks) {
    switch (cluster.options().protocol) {
      case Protocol::kHierarchical:
        check_hier_safety(cluster, lock, report);
        break;
      case Protocol::kNaimi:
        check_naimi_safety(cluster, lock, report);
        break;
      case Protocol::kRaymond:
        check_raymond_safety(cluster, lock, report);
        break;
    }
  }
  return report;
}

InvariantReport check_quiescent_structure(SimCluster& cluster,
                                          const std::vector<LockId>& locks) {
  InvariantReport report = check_safety(cluster, locks);
  for (LockId lock : locks) {
    switch (cluster.options().protocol) {
      case Protocol::kHierarchical:
        check_hier_structure(cluster, lock, report);
        break;
      case Protocol::kNaimi:
        check_naimi_structure(cluster, lock, report);
        break;
      case Protocol::kRaymond:
        check_raymond_structure(cluster, lock, report);
        break;
    }
  }
  return report;
}

}  // namespace hlock::runtime
