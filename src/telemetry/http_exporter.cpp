#include "telemetry/http_exporter.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "telemetry/exposition.hpp"
#include "transport/tcp_socket.hpp"
#include "util/log.hpp"
#include "util/sync_observer.hpp"

namespace hlock::telemetry {
namespace {

constexpr std::size_t kMaxRequestBytes = 8 * 1024;

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string make_response(int status, const char* reason,
                          const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(status) + ' ' + reason +
                    "\r\n"
                    "Content-Type: text/plain; version=0.0.4; "
                    "charset=utf-8\r\n"
                    "Content-Length: " +
                    std::to_string(body.size()) +
                    "\r\n"
                    "Connection: close\r\n"
                    "\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(Registry& registry, std::uint16_t port)
    : registry_(registry) {
  listen_fd_ = transport::listen_loopback(port);
  port_ = transport::local_port(listen_fd_);
  thread_ = sched::Thread("telemetry-http", [this] { serve_loop(); });
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  // shutdown() wakes the blocked accept(); close() alone is not reliably
  // enough on Linux.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) {
    thread_.join();
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExporter::serve_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = -1;
    {
      sched::BlockingRegion region;
      fd = ::accept(listen_fd_, nullptr, nullptr);
    }
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      HLOCK_LOG(kWarn, "telemetry: /metrics accept failed: "
                           << std::strerror(errno));
      return;
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpExporter::handle_connection(int fd) {
  // Read until the end of the request head ("\r\n\r\n"); scrapers send no
  // body with GET. Serial handling keeps this loop trivially safe.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    ssize_t n = 0;
    {
      sched::BlockingRegion region;
      n = ::recv(fd, buf, sizeof(buf), 0);
    }
    if (n <= 0) {
      return;  // peer closed or errored before a full request
    }
    request.append(buf, static_cast<std::size_t>(n));
  }

  const auto line_end = request.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const auto first_space = request_line.find(' ');
  const auto second_space = first_space == std::string::npos
                                ? std::string::npos
                                : request_line.find(' ', first_space + 1);
  if (first_space == std::string::npos ||
      second_space == std::string::npos) {
    send_all(fd, make_response(400, "Bad Request", "malformed request\n"));
    return;
  }
  const std::string method = request_line.substr(0, first_space);
  const std::string target =
      request_line.substr(first_space + 1, second_space - first_space - 1);

  if (method != "GET") {
    send_all(fd,
             make_response(405, "Method Not Allowed", "GET only here\n"));
    return;
  }
  if (target != "/metrics" && target != "/") {
    send_all(fd, make_response(404, "Not Found", "try /metrics\n"));
    return;
  }
  const std::string body = render_prometheus(registry_.snapshot());
  if (send_all(fd, make_response(200, "OK", body))) {
    scrapes_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace hlock::telemetry
