#include "workload/op_plan.hpp"

#include "util/check.hpp"

namespace hlock::workload {

std::string to_string(OpKind kind) {
  switch (kind) {
    case OpKind::kEntryRead:
      return "entry-read";
    case OpKind::kTableRead:
      return "table-read";
    case OpKind::kEntryUpgrade:
      return "entry-upgrade";
    case OpKind::kEntryWrite:
      return "entry-write";
    case OpKind::kTableWrite:
      return "table-write";
  }
  return "?";
}

OpKind op_for_mode(LockMode mode) {
  switch (mode) {
    case LockMode::kIR:
      return OpKind::kEntryRead;
    case LockMode::kR:
      return OpKind::kTableRead;
    case LockMode::kU:
      return OpKind::kEntryUpgrade;
    case LockMode::kIW:
      return OpKind::kEntryWrite;
    case LockMode::kW:
      return OpKind::kTableWrite;
    case LockMode::kNL:
      break;
  }
  throw UsageError("no operation corresponds to the empty mode");
}

std::string to_string(AppVariant variant) {
  switch (variant) {
    case AppVariant::kHierarchical:
      return "hierarchical";
    case AppVariant::kNaimiPure:
      return "naimi-pure";
    case AppVariant::kNaimiSameWork:
      return "naimi-same-work";
  }
  return "?";
}

LockId table_lock() { return LockId{0}; }

LockId entry_lock(std::size_t index) {
  return LockId{static_cast<std::uint32_t>(index + 1)};
}

std::vector<LockId> all_locks(std::size_t entries) {
  std::vector<LockId> locks;
  locks.reserve(entries + 1);
  locks.push_back(table_lock());
  for (std::size_t i = 0; i < entries; ++i) locks.push_back(entry_lock(i));
  return locks;
}

std::vector<LockStep> plan_op(AppVariant variant, OpKind kind,
                              std::size_t entry, std::size_t entries) {
  HLOCK_REQUIRE(entries >= 1, "the table needs at least one entry");
  HLOCK_REQUIRE(entry < entries, "entry index out of range");

  const bool table_op =
      kind == OpKind::kTableRead || kind == OpKind::kTableWrite;

  if (variant == AppVariant::kHierarchical) {
    switch (kind) {
      case OpKind::kEntryRead:
        return {{table_lock(), LockMode::kIR},
                {entry_lock(entry), LockMode::kR}};
      case OpKind::kTableRead:
        return {{table_lock(), LockMode::kR}};
      case OpKind::kEntryUpgrade:
        return {{table_lock(), LockMode::kIW},
                {entry_lock(entry), LockMode::kU, /*upgrade_midway=*/true}};
      case OpKind::kEntryWrite:
        return {{table_lock(), LockMode::kIW},
                {entry_lock(entry), LockMode::kW}};
      case OpKind::kTableWrite:
        return {{table_lock(), LockMode::kW}};
    }
  }

  if (variant == AppVariant::kNaimiPure || !table_op) {
    // Entry operations need only the entry lock in every variant; the pure
    // variant additionally replaces whole-table operations by a single
    // acquisition of the table lock (functionally weaker, same op count).
    // Naimi ignores modes: every acquisition is exclusive.
    const LockId lock = table_op ? table_lock() : entry_lock(entry);
    return {{lock, LockMode::kW}};
  }

  // Same-work variant, whole-table operation: acquire every entry lock in
  // ascending order ("to avoid deadlocks, Naimi's protocol has to acquire
  // locks in a predefined order").
  std::vector<LockStep> steps;
  steps.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    steps.push_back({entry_lock(i), LockMode::kW});
  }
  return steps;
}

}  // namespace hlock::workload
