// Fixed-point simulated time.
//
// The discrete-event simulator and all protocol statistics use an integral
// nanosecond clock: floating-point time accumulates rounding error across
// millions of events and makes runs irreproducible across optimization
// levels. SimTime is a strong type so durations cannot be confused with
// node ids or event sequence numbers.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace hlock {

/// A point in (or duration of) simulated time, in integer nanoseconds.
///
/// SimTime is used both as an absolute timestamp (offset from simulation
/// start) and as a duration; the arithmetic operators cover both uses.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Constructs from a raw nanosecond count.
  static constexpr SimTime ns(std::int64_t v) { return SimTime{v}; }
  /// Constructs from microseconds.
  static constexpr SimTime us(std::int64_t v) { return SimTime{v * 1'000}; }
  /// Constructs from milliseconds.
  static constexpr SimTime ms(std::int64_t v) { return SimTime{v * 1'000'000}; }
  /// Constructs from seconds.
  static constexpr SimTime sec(std::int64_t v) {
    return SimTime{v * 1'000'000'000};
  }
  /// Constructs from a fractional millisecond count (rounded to ns).
  static constexpr SimTime ms_f(double v) {
    return SimTime{static_cast<std::int64_t>(v * 1e6 + (v >= 0 ? 0.5 : -0.5))};
  }

  /// The largest representable time; used as an "infinite" deadline.
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  /// Raw nanosecond count.
  constexpr std::int64_t count_ns() const { return ns_; }
  /// Value in fractional milliseconds (for reporting only).
  constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  /// Value in fractional seconds (for reporting only).
  constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimTime o) const { return SimTime{ns_ + o.ns_}; }
  constexpr SimTime operator-(SimTime o) const { return SimTime{ns_ - o.ns_}; }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime{ns_ * k}; }

 private:
  constexpr explicit SimTime(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// Formats a time as a human-readable string with an adaptive unit,
/// e.g. "1.500 ms" or "2.000 s".
std::string to_string(SimTime t);

}  // namespace hlock
