#include "sched/explorer.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <sstream>

namespace hlock::sched {

namespace {

/// "file.cpp:123" (basename) or the explicit name — mirrors lockdep's
/// display convention.
std::string display(const SyncId& id) {
  if (id.name != nullptr) return id.name;
  std::string file = id.file;
  const std::size_t slash = file.find_last_of('/');
  if (slash != std::string::npos) file.erase(0, slash + 1);
  return file + ":" + std::to_string(id.line);
}

/// Keep at most this many trace lines in memory; the fingerprint covers
/// the full schedule regardless.
constexpr std::size_t kTraceKeep = 4096;

}  // namespace

struct Explorer::ThreadRec {
  enum class State {
    kReady,      ///< runnable, waiting for the processor
    kRunning,    ///< the single granted thread
    kMutexWait,  ///< try_lock failed; parked until the owner releases
    kCvWait,     ///< parked in a condvar wait (timed when `timed`)
    kJoinWait,   ///< parked in sched::Thread::join until the target finishes
    kExternal,   ///< inside a BlockingRegion; runs outside the schedule
    kFinished,
  };

  Explorer* owner = nullptr;
  int id = 0;
  std::string name;
  State state = State::kReady;
  std::uint64_t priority = 0;
  const void* wait_obj = nullptr;
  bool timed = false;
  std::chrono::steady_clock::time_point deadline{};
  bool woke_by_timeout = false;
  int external_depth = 0;
  std::string op_label = "start";
  std::vector<SyncId> held;
};

namespace {

/// The calling thread's registration. Owner-checked in self(): a pointer
/// left over from a completed exploration never aliases into a new one.
thread_local Explorer::ThreadRec* t_rec = nullptr;

const char* state_name(Explorer::ThreadRec::State state) {
  using State = Explorer::ThreadRec::State;
  switch (state) {
    case State::kReady: return "ready";
    case State::kRunning: return "running";
    case State::kMutexWait: return "blocked-on-mutex";
    case State::kCvWait: return "waiting-on-condvar";
    case State::kJoinWait: return "waiting-on-join";
    case State::kExternal: return "external";
    case State::kFinished: return "finished";
  }
  return "?";
}

void erase_held(std::vector<SyncId>& held, const void* object) {
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->object == object) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace

Explorer::Explorer(const ExplorerOptions& options)
    : options_(options), rng_(options.seed) {
  next_change_ = options_.change_interval == 0
                     ? ~std::uint64_t{0}
                     : 1 + rng_.below(2ull * options_.change_interval);
  if (options_.lockdep) {
    lockdep_ = std::make_unique<Lockdep>([this](const LockdepReport& report) {
      std::fprintf(stderr, "[sched seed %llu] %s",
                   static_cast<unsigned long long>(options_.seed),
                   report.render().c_str());
    });
  }
}

Explorer::~Explorer() = default;

Explorer::ThreadRec* Explorer::self() const {
  ThreadRec* rec = t_rec;
  return rec != nullptr && rec->owner == this ? rec : nullptr;
}

void Explorer::record(const ThreadRec& rec) {
  std::ostringstream line;
  line << "#" << steps_ << " " << rec.name << " " << rec.op_label;
  std::string text = line.str();
  for (const char c : text) {
    fingerprint_ ^= static_cast<unsigned char>(c);
    fingerprint_ *= 0x100000001b3ull;
  }
  fingerprint_ ^= '\n';
  fingerprint_ *= 0x100000001b3ull;
  if (trace_.size() >= 2 * kTraceKeep) {
    trace_.erase(trace_.begin(),
                 trace_.begin() + static_cast<std::ptrdiff_t>(kTraceKeep));
    trace_dropped_ += kTraceKeep;
  }
  trace_.push_back(std::move(text));
}

void Explorer::declare_deadlock(std::unique_lock<std::mutex>& lk) {
  (void)lk;  // held by contract; the process ends here
  deadlock_ = true;
  std::ostringstream out;
  out << "sched: DEADLOCK under seed " << options_.seed << " after "
      << steps_ << " scheduling decisions\n";
  for (const auto& t : threads_) {
    if (t->state == ThreadRec::State::kFinished) continue;
    out << "  thread " << t->name << ": " << state_name(t->state) << " ("
        << t->op_label << ")";
    if (!t->held.empty()) {
      out << ", holding";
      for (const SyncId& id : t->held) out << " " << display(id);
    }
    out << "\n";
  }
  const std::size_t tail = trace_.size() > 16 ? trace_.size() - 16 : 0;
  out << "  last scheduling decisions:\n";
  for (std::size_t i = tail; i < trace_.size(); ++i) {
    out << "    " << trace_[i] << "\n";
  }
  out << "  schedule fingerprint: " << fingerprint_ << "\n"
      << "  replay: --sched-seed " << options_.seed
      << " (HLOCK_SCHED_SEED=" << options_.seed << ")\n";
  report_ = out.str();
  std::fputs(report_.c_str(), stderr);
  std::fflush(stderr);
  std::fflush(stdout);
  // The schedule is wedged by construction — every participant is blocked
  // and no wake-up source exists. A process in that state cannot be
  // unwound (threads are parked inside locked destructors and waits); the
  // harness runs each seed in a subprocess and classifies this exit code.
  // See docs/sched.md.
  std::_Exit(kSchedDeadlockExit);
}

void Explorer::grant_next(std::unique_lock<std::mutex>& lk) {
  auto pick = [this]() -> ThreadRec* {
    ThreadRec* best = nullptr;
    for (const auto& t : threads_) {
      if (t->state == ThreadRec::State::kReady &&
          (best == nullptr || t->priority > best->priority)) {
        best = t.get();
      }
    }
    return best;
  };
  ThreadRec* chosen = pick();
  if (chosen != nullptr) {
    ++steps_;
    if (steps_ >= options_.max_steps) {
      std::fprintf(stderr,
                   "sched: schedule exceeded %llu decisions under seed %llu "
                   "(livelock?); aborting\n",
                   static_cast<unsigned long long>(options_.max_steps),
                   static_cast<unsigned long long>(options_.seed));
      std::fflush(stderr);
      std::_Exit(kSchedBudgetExit);
    }
    if (steps_ >= next_change_) {
      // PCT priority-change point: demote the would-be winner below every
      // priority handed out so far, then re-pick.
      next_change_ = steps_ + 1 + rng_.below(2ull * options_.change_interval);
      chosen->priority = demote_floor_--;
      if (ThreadRec* other = pick(); other != nullptr) chosen = other;
    }
    current_ = chosen;
    chosen->state = ThreadRec::State::kRunning;
    record(*chosen);
    cv_.notify_all();
    return;
  }
  bool timed = false;
  bool external = false;
  bool blocked = false;
  for (const auto& t : threads_) {
    switch (t->state) {
      case ThreadRec::State::kExternal:
        external = true;
        break;
      case ThreadRec::State::kCvWait:
        (t->timed ? timed : blocked) = true;
        break;
      case ThreadRec::State::kMutexWait:
      case ThreadRec::State::kJoinWait:
        blocked = true;
        break;
      default:
        break;
    }
  }
  current_ = nullptr;
  if (blocked && !timed && !external) {
    declare_deadlock(lk);  // does not return
  }
  // A timed wait fires on its real deadline, an external region returns on
  // its own; either triggers the next decision.
  cv_.notify_all();
}

void Explorer::park(std::unique_lock<std::mutex>& lk, ThreadRec* rec) {
  while (current_ != rec) {
    if (rec->state == ThreadRec::State::kCvWait && rec->timed) {
      if (cv_.wait_until(lk, rec->deadline) == std::cv_status::timeout &&
          rec->state == ThreadRec::State::kCvWait) {
        rec->woke_by_timeout = true;
        rec->state = ThreadRec::State::kReady;
        rec->op_label += " [deadline]";
        if (current_ == nullptr) grant_next(lk);
      }
    } else {
      cv_.wait(lk);
    }
  }
}

void Explorer::reschedule(std::unique_lock<std::mutex>& lk, ThreadRec* rec,
                          const char* op, const SyncId* obj) {
  rec->op_label =
      obj == nullptr ? std::string(op) : std::string(op) + " " + display(*obj);
  rec->state = ThreadRec::State::kReady;
  grant_next(lk);
  park(lk, rec);
}

void Explorer::run(const std::function<void()>& body) {
  ThreadRec* main_rec = nullptr;
  {
    std::unique_lock<std::mutex> lk(mu_);
    auto rec = std::make_unique<ThreadRec>();
    rec->owner = this;
    rec->id = static_cast<int>(threads_.size());
    rec->name = "main";
    rec->priority = rng_();
    rec->state = ThreadRec::State::kRunning;
    main_rec = rec.get();
    threads_.push_back(std::move(rec));
    current_ = main_rec;
  }
  t_rec = main_rec;
  SyncObserver* previous = exchange_sync_observer(this);
  try {
    body();
  } catch (...) {
    exchange_sync_observer(previous);
    t_rec = nullptr;
    throw;
  }
  exchange_sync_observer(previous);
  t_rec = nullptr;
  std::unique_lock<std::mutex> lk(mu_);
  main_rec->state = ThreadRec::State::kFinished;
  if (current_ == main_rec) {
    current_ = nullptr;
    grant_next(lk);
  }
}

bool Explorer::deadlock_found() const {
  std::lock_guard<std::mutex> lk(mu_);
  return deadlock_;
}

std::string Explorer::report() const {
  std::lock_guard<std::mutex> lk(mu_);
  return report_;
}

std::vector<std::string> Explorer::schedule() const {
  std::lock_guard<std::mutex> lk(mu_);
  return trace_;
}

std::uint64_t Explorer::schedule_fingerprint() const {
  std::lock_guard<std::mutex> lk(mu_);
  return fingerprint_;
}

std::uint64_t Explorer::steps() const {
  std::lock_guard<std::mutex> lk(mu_);
  return steps_;
}

// ---------------------------------------------------------------------------
// SyncObserver hooks
// ---------------------------------------------------------------------------

void Explorer::acquiring(const SyncId& id) {
  if (lockdep_) lockdep_->acquiring(id);
}

bool Explorer::acquire(const SyncId& id, std::mutex& mu) {
  ThreadRec* rec = self();
  if (rec == nullptr || rec->state != ThreadRec::State::kRunning) {
    return false;  // uncontrolled or external: real blocking lock
  }
  std::unique_lock<std::mutex> lk(mu_);
  reschedule(lk, rec, "acquire", &id);
  while (!mu.try_lock()) {
    // The holder is visible to the scheduler (its release hook wakes us),
    // so this thread parks instead of blocking opaquely — which is what
    // makes deadlocks detectable and schedules preemptible.
    rec->state = ThreadRec::State::kMutexWait;
    rec->wait_obj = id.object;
    rec->op_label = "blocked-on " + display(id);
    grant_next(lk);
    park(lk, rec);
  }
  rec->wait_obj = nullptr;
  return true;
}

bool Explorer::try_acquire(const SyncId& id, std::mutex& mu) {
  ThreadRec* rec = self();
  if (rec == nullptr || rec->state != ThreadRec::State::kRunning) {
    return mu.try_lock();
  }
  std::unique_lock<std::mutex> lk(mu_);
  reschedule(lk, rec, "try-acquire", &id);
  return mu.try_lock();
}

void Explorer::acquired(const SyncId& id) {
  if (lockdep_) lockdep_->acquired(id);
  ThreadRec* rec = self();
  std::lock_guard<std::mutex> lk(mu_);
  mutex_owner_[id.object] = rec;
  if (rec != nullptr) rec->held.push_back(id);
}

void Explorer::released(const SyncId& id) {
  if (lockdep_) lockdep_->released(id);
  ThreadRec* rec = self();
  std::unique_lock<std::mutex> lk(mu_);
  mutex_owner_.erase(id.object);
  if (rec != nullptr) erase_held(rec->held, id.object);
  bool woke = false;
  for (const auto& t : threads_) {
    if (t->state == ThreadRec::State::kMutexWait && t->wait_obj == id.object) {
      t->state = ThreadRec::State::kReady;
      t->op_label = "acquire-retry";
      woke = true;
    }
  }
  if (rec != nullptr && rec->state == ThreadRec::State::kRunning) {
    reschedule(lk, rec, "release", &id);  // a release is a schedule point
  } else if (woke && current_ == nullptr) {
    grant_next(lk);
  }
}

bool Explorer::wait(const SyncId& cv, const SyncId& mu_id, std::mutex& mu) {
  std::cv_status ignored = std::cv_status::no_timeout;
  return wait_common(cv, mu_id, mu, /*timed=*/false, {}, &ignored);
}

bool Explorer::wait_until(const SyncId& cv, const SyncId& mu_id,
                          std::mutex& mu,
                          std::chrono::steady_clock::time_point deadline,
                          std::cv_status* status) {
  // A deadline "never" is an untimed wait (and keeps the scheduler's real
  // wait_until clear of time_point overflow).
  const bool timed = deadline < std::chrono::steady_clock::time_point::max();
  return wait_common(cv, mu_id, mu, timed, deadline, status);
}

bool Explorer::wait_common(const SyncId& cv, const SyncId& mu_id,
                           std::mutex& mu, bool timed,
                           std::chrono::steady_clock::time_point deadline,
                           std::cv_status* status) {
  ThreadRec* rec = self();
  if (rec == nullptr || rec->state != ThreadRec::State::kRunning) {
    return false;  // uncontrolled: real condvar wait
  }
  if (lockdep_) lockdep_->released(mu_id);
  std::unique_lock<std::mutex> lk(mu_);
  // Drop the caller's mutex while holding the scheduler lock: a notify
  // from any other thread must serialize after this thread is parked, so
  // no wake-up can fall between unlock and park (the classic lost-wakeup
  // window).
  mutex_owner_.erase(mu_id.object);
  erase_held(rec->held, mu_id.object);
  mu.unlock();
  for (const auto& t : threads_) {
    if (t->state == ThreadRec::State::kMutexWait &&
        t->wait_obj == mu_id.object) {
      t->state = ThreadRec::State::kReady;
      t->op_label = "acquire-retry";
    }
  }
  rec->state = ThreadRec::State::kCvWait;
  rec->wait_obj = cv.object;
  rec->timed = timed;
  rec->deadline = deadline;
  rec->woke_by_timeout = false;
  rec->op_label = (timed ? "timed-wait " : "wait ") + display(cv);
  grant_next(lk);
  park(lk, rec);
  *status = rec->woke_by_timeout ? std::cv_status::timeout
                                 : std::cv_status::no_timeout;
  rec->timed = false;
  rec->wait_obj = nullptr;
  // Reacquire the caller's mutex under the scheduler, exactly like lock().
  if (lockdep_) lockdep_->acquiring(mu_id);
  while (!mu.try_lock()) {
    rec->state = ThreadRec::State::kMutexWait;
    rec->wait_obj = mu_id.object;
    rec->op_label = "relock-after-wait " + display(mu_id);
    grant_next(lk);
    park(lk, rec);
    rec->wait_obj = nullptr;
  }
  mutex_owner_[mu_id.object] = rec;
  rec->held.push_back(mu_id);
  if (lockdep_) lockdep_->acquired(mu_id);
  return true;
}

void Explorer::notify(const SyncId& cv, bool all) {
  ThreadRec* rec = self();
  std::unique_lock<std::mutex> lk(mu_);
  std::vector<ThreadRec*> waiters;
  for (const auto& t : threads_) {
    if (t->state == ThreadRec::State::kCvWait && t->wait_obj == cv.object) {
      waiters.push_back(t.get());
    }
  }
  bool woke = false;
  if (!waiters.empty()) {
    if (!all) {
      // Seeded choice of which waiter the notify_one wakes — part of the
      // explored schedule space.
      waiters = {waiters[rng_.below(waiters.size())]};
    }
    for (ThreadRec* w : waiters) {
      w->state = ThreadRec::State::kReady;
      w->woke_by_timeout = false;
      w->op_label = "notified " + display(cv);
    }
    woke = true;
  }
  if (rec != nullptr && rec->state == ThreadRec::State::kRunning) {
    reschedule(lk, rec, all ? "notify-all" : "notify-one", &cv);
  } else if (woke && current_ == nullptr) {
    grant_next(lk);
  }
}

void Explorer::yield(const char* site) {
  ThreadRec* rec = self();
  if (rec == nullptr || rec->state != ThreadRec::State::kRunning) return;
  std::unique_lock<std::mutex> lk(mu_);
  rec->op_label = std::string("yield ") + site;
  rec->state = ThreadRec::State::kReady;
  grant_next(lk);
  park(lk, rec);
}

void* Explorer::thread_spawning(const char* name) {
  std::unique_lock<std::mutex> lk(mu_);
  auto rec = std::make_unique<ThreadRec>();
  rec->owner = this;
  rec->id = static_cast<int>(threads_.size());
  rec->name = name != nullptr && name[0] != '\0'
                  ? name
                  : "thread-" + std::to_string(rec->id);
  rec->priority = rng_();
  rec->state = ThreadRec::State::kReady;
  ThreadRec* handle = rec.get();
  threads_.push_back(std::move(rec));
  if (current_ == nullptr) grant_next(lk);
  return handle;
}

void Explorer::thread_started(void* handle) {
  auto* rec = static_cast<ThreadRec*>(handle);
  t_rec = rec;
  std::unique_lock<std::mutex> lk(mu_);
  park(lk, rec);
}

void Explorer::thread_finished(void* handle) {
  auto* rec = static_cast<ThreadRec*>(handle);
  t_rec = nullptr;
  std::unique_lock<std::mutex> lk(mu_);
  rec->state = ThreadRec::State::kFinished;
  rec->op_label = "finished";
  bool woke = false;
  for (const auto& t : threads_) {
    if (t->state == ThreadRec::State::kJoinWait && t->wait_obj == rec) {
      t->state = ThreadRec::State::kReady;
      t->op_label = "join-complete";
      woke = true;
    }
  }
  if (current_ == rec) {
    current_ = nullptr;
    grant_next(lk);
  } else if (woke && current_ == nullptr) {
    grant_next(lk);
  }
  cv_.notify_all();
}

void Explorer::thread_joining(void* handle) {
  ThreadRec* rec = self();
  auto* target = static_cast<ThreadRec*>(handle);
  if (rec == nullptr || target == nullptr || target->owner != this ||
      rec->state != ThreadRec::State::kRunning) {
    return;  // uncontrolled joiner: the real join blocks on its own
  }
  std::unique_lock<std::mutex> lk(mu_);
  while (target->state != ThreadRec::State::kFinished) {
    rec->state = ThreadRec::State::kJoinWait;
    rec->wait_obj = target;
    rec->op_label = "join " + target->name;
    grant_next(lk);
    park(lk, rec);
    rec->wait_obj = nullptr;
  }
}

void* Explorer::blocking_region_enter() {
  ThreadRec* rec = self();
  if (rec == nullptr) return nullptr;
  if (rec->external_depth++ > 0) return rec;
  std::unique_lock<std::mutex> lk(mu_);
  rec->state = ThreadRec::State::kExternal;
  rec->op_label = "external";
  if (current_ == rec) {
    current_ = nullptr;
    grant_next(lk);
  }
  return rec;
}

void Explorer::blocking_region_exit(void* token) {
  auto* rec = static_cast<ThreadRec*>(token);
  if (--rec->external_depth > 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  rec->state = ThreadRec::State::kReady;
  rec->op_label = "external-return";
  if (current_ == nullptr) grant_next(lk);
  park(lk, rec);
}

}  // namespace hlock::sched
