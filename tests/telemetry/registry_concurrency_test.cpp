// Race coverage for the registry: many real threads hammer the lock-free
// record path (and the mutex-guarded registration path) while a reader
// snapshots continuously. Run under TSan in CI; the assertions here are
// conservation checks — every recorded event must be visible in the end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/exposition.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/text_parse.hpp"

namespace hlock::telemetry {
namespace {

TEST(RegistryConcurrency, RecordersAndSnapshottersDoNotRace) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  Registry registry;
  std::atomic<bool> done{false};

  std::thread reader([&registry, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      const Snapshot snap = registry.snapshot();
      // Values move while we read; per-value sanity only.
      for (const Sample& sample : snap.samples) {
        if (sample.type == MetricType::kCounter) {
          ASSERT_GE(sample.value, 0.0);
        }
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // Get-or-create races intentionally: every thread asks for the
      // shared series plus one of its own.
      Counter& shared = registry.counter("hlock_shared_total");
      Counter& own = registry.counter(
          labeled("hlock_per_thread_total", {{"t", std::to_string(t)}}));
      Gauge& gauge = registry.gauge("hlock_shared_depth");
      Histogram& histogram =
          registry.histogram("hlock_shared_ms", linear_bounds(1.0, 1.0, 8));
      for (int i = 0; i < kOpsPerThread; ++i) {
        shared.inc();
        own.inc();
        gauge.set(static_cast<double>(i));
        histogram.record(static_cast<double>(i % 10));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done = true;
  reader.join();

  const Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("hlock_shared_total")->value,
            static_cast<double>(kThreads * kOpsPerThread));
  EXPECT_EQ(snap.family_sum("hlock_per_thread_total"),
            static_cast<double>(kThreads * kOpsPerThread));
  const Sample* histogram = snap.find("hlock_shared_ms");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->histogram.count,
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
}

TEST(RegistryConcurrency, CallbackChurnDuringSnapshots) {
  // Components register and unregister callback series while another
  // thread snapshots and renders: the transport-metrics lifecycle
  // (ThreadCluster destructor) compressed into a loop.
  Registry registry;
  registry.counter("hlock_anchor_total").inc();
  std::atomic<bool> done{false};

  std::thread churner([&registry, &done] {
    std::uint64_t round = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const std::uint64_t value = ++round;
      registry.register_counter_fn("hlock_churn_sent_total",
                                   [value] { return value; });
      registry.register_gauge_fn("hlock_churn_depth",
                                 [value] { return static_cast<double>(value); });
      registry.unregister_callbacks("hlock_churn_");
    }
  });

  for (int i = 0; i < 500; ++i) {
    const Snapshot snap = registry.snapshot();
    ASSERT_NE(snap.find("hlock_anchor_total"), nullptr);
    const std::string text = render_prometheus(snap);
    ASSERT_TRUE(check_exposition(parse_exposition(text)).empty());
  }
  done = true;
  churner.join();
}

}  // namespace
}  // namespace hlock::telemetry
