#include "proto/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

namespace hlock::proto {
namespace {

TEST(NodeId, DefaultIsNone) {
  NodeId id;
  EXPECT_TRUE(id.is_none());
  EXPECT_EQ(id, NodeId::none());
}

TEST(NodeId, ValueRoundTrip) {
  NodeId id{42};
  EXPECT_FALSE(id.is_none());
  EXPECT_EQ(id.value(), 42u);
}

TEST(NodeId, Ordering) {
  EXPECT_LT(NodeId{1}, NodeId{2});
  EXPECT_EQ(NodeId{3}, NodeId{3});
  EXPECT_NE(NodeId{3}, NodeId{4});
}

TEST(NodeId, ToString) {
  EXPECT_EQ(to_string(NodeId{7}), "node7");
  EXPECT_EQ(to_string(NodeId::none()), "none");
}

TEST(NodeId, UsableAsHashKey) {
  std::unordered_map<NodeId, int> map;
  map[NodeId{1}] = 10;
  map[NodeId{2}] = 20;
  EXPECT_EQ(map.at(NodeId{1}), 10);
  EXPECT_EQ(map.at(NodeId{2}), 20);
}

TEST(LockId, Basics) {
  LockId id{5};
  EXPECT_EQ(id.value(), 5u);
  EXPECT_EQ(to_string(id), "lock5");
  EXPECT_LT(LockId{1}, LockId{9});
  std::unordered_map<LockId, int> map;
  map[LockId{3}] = 30;
  EXPECT_EQ(map.at(LockId{3}), 30);
}

}  // namespace
}  // namespace hlock::proto
