// Upgrade-path model checking: ScriptOp::Kind::kUpgrade interleaved with
// conflicting acquires from other nodes, exhaustively explored with the
// conformance linter enabled. The linter checks every first-visit terminal
// path against the paper's Tables 1(c)/(d) (grant/queue decisions and
// freeze propagation), so these tests pin down that EVERY reachable
// upgrade interleaving — not just the schedules the randomized tests
// happen to sample — takes the table-prescribed transitions.
#include "modelcheck/explorer.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hlock::modelcheck {
namespace {

using proto::LockMode;

Script upgrader() {
  return {ScriptOp::acquire(LockMode::kU), ScriptOp::upgrade(),
          ScriptOp::release()};
}

Script simple(LockMode mode) {
  return {ScriptOp::acquire(mode), ScriptOp::release()};
}

ExploreResult run_linted(const std::vector<Script>& scripts,
                         DoctoredSpec doctor = {}) {
  ExploreOptions options;
  options.lint = true;
  options.doctor = doctor;
  return explore(scripts, options);
}

TEST(Upgrade, UpgraderAgainstReadersConforms) {
  // U is read-compatible until the upgrade; the upgrade to W must wait
  // for both readers to drain (Table 1(c): W grants only on an empty
  // incompatible set) — every interleaving, linted.
  const ExploreResult result =
      run_linted({upgrader(), simple(LockMode::kR), simple(LockMode::kR)});
  EXPECT_TRUE(result.ok) << result.violation;
  EXPECT_EQ(result.verdict, Verdict::kOk);
  EXPECT_GT(result.terminal_states, 0u);
}

TEST(Upgrade, UpgraderAgainstWriterConforms) {
  // W conflicts with U outright (Table 1(a)), so the writer either runs
  // before the upgrader acquires or queues behind the upgrade.
  const ExploreResult result = run_linted({upgrader(),
                                           simple(LockMode::kW)});
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(Upgrade, TwoUpgradersSerialize) {
  // U is self-incompatible at upgrade time: two upgraders must serialize
  // without deadlocking on each other's pending upgrade.
  const ExploreResult result = run_linted({upgrader(), upgrader()});
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(Upgrade, UpgraderAgainstIntentLocksConforms) {
  // IR/IW holders exercise the freeze path (Table 1(d)): the upgrade's
  // W-incompatible set must be frozen before the grant.
  const ExploreResult result =
      run_linted({upgrader(), simple(LockMode::kIR), simple(LockMode::kIW)});
  EXPECT_TRUE(result.ok) << result.violation;
}

TEST(Upgrade, ThreeUpgradersUnderReductionsCrossValidate) {
  const std::vector<Script> scripts{upgrader(), upgrader(), upgrader()};
  ExploreOptions plain;
  const ExploreResult base = explore(scripts, plain);
  ExploreOptions reduced_options;
  reduced_options.por = true;
  reduced_options.symmetry = true;
  const ExploreResult reduced = explore(scripts, reduced_options);
  EXPECT_TRUE(base.ok);
  EXPECT_TRUE(reduced.ok);
  EXPECT_EQ(base.verdict, reduced.verdict);
  EXPECT_LT(reduced.states_explored, base.states_explored);
}

TEST(Upgrade, DoctoredUpgradeConflictIsCaught) {
  // Self-test of the checker: doctor Table 1(a) so U conflicts with R.
  // U+R genuinely co-occur on the real tables, so some interleaving must
  // now trip the seeded violation — and the counterexample must name it.
  DoctoredSpec doctor;
  doctor.conflicts.push_back({LockMode::kU, LockMode::kR});
  const ExploreResult result =
      run_linted({upgrader(), simple(LockMode::kR)}, doctor);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, Verdict::kSafety);
  EXPECT_EQ(result.violation_fingerprint, "incompatible:R+U");
  EXPECT_FALSE(result.trace.empty());
}

TEST(Upgrade, DoctoredConflictMinimizesToShortestSchedule) {
  DoctoredSpec doctor;
  doctor.conflicts.push_back({LockMode::kU, LockMode::kR});
  ExploreOptions options;
  options.doctor = doctor;
  const ExploreResult dfs = explore({upgrader(), simple(LockMode::kR)},
                                    options);
  options.minimize = true;
  const ExploreResult bfs = explore({upgrader(), simple(LockMode::kR)},
                                    options);
  ASSERT_EQ(dfs.verdict, Verdict::kSafety);
  ASSERT_EQ(bfs.verdict, Verdict::kSafety);
  EXPECT_LE(bfs.trace.size(), dfs.trace.size());
  EXPECT_EQ(bfs.violation_fingerprint, dfs.violation_fingerprint);
}

}  // namespace
}  // namespace hlock::modelcheck
