// Tests of the workload layer: mode mix sampling, operation planning for
// the three protocol variants, and the closed-loop simulation driver
// (determinism, stats accounting, safety under the paper's parameters).
#include <gtest/gtest.h>

#include <map>

#include "runtime/invariants.hpp"
#include "util/check.hpp"
#include "workload/mode_mix.hpp"
#include "workload/op_plan.hpp"
#include "workload/sim_driver.hpp"

namespace hlock::workload {
namespace {

using proto::LockId;
using proto::LockMode;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

// ---- ModeMix ---------------------------------------------------------------

TEST(ModeMix, PaperMixIsValid) {
  EXPECT_TRUE(ModeMix::paper().valid());
  EXPECT_TRUE(ModeMix::read_only().valid());
  EXPECT_TRUE(ModeMix::write_heavy().valid());
}

TEST(ModeMix, InvalidMixesRejected) {
  ModeMix bad;
  bad.w = 0.5;  // sums to 1.49
  EXPECT_FALSE(bad.valid());
  Rng rng{1};
  EXPECT_THROW(bad.sample(rng), UsageError);
  ModeMix negative{1.2, -0.2, 0.0, 0.0, 0.0};
  EXPECT_FALSE(negative.valid());
}

TEST(ModeMix, SampleFrequenciesMatchPaper) {
  const ModeMix mix = ModeMix::paper();
  Rng rng{7};
  std::map<LockMode, int> histogram;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++histogram[mix.sample(rng)];
  EXPECT_NEAR(histogram[LockMode::kIR] / double(kDraws), 0.80, 0.01);
  EXPECT_NEAR(histogram[LockMode::kR] / double(kDraws), 0.10, 0.005);
  EXPECT_NEAR(histogram[LockMode::kU] / double(kDraws), 0.04, 0.005);
  EXPECT_NEAR(histogram[LockMode::kIW] / double(kDraws), 0.05, 0.005);
  EXPECT_NEAR(histogram[LockMode::kW] / double(kDraws), 0.01, 0.003);
}

TEST(ModeMix, ReadOnlyNeverDrawsWriteModes) {
  const ModeMix mix = ModeMix::read_only();
  Rng rng{9};
  for (int i = 0; i < 5000; ++i) {
    const LockMode mode = mix.sample(rng);
    EXPECT_TRUE(mode == LockMode::kIR || mode == LockMode::kR);
  }
}

// ---- Operation planning ----------------------------------------------------

TEST(OpPlan, ModeToOpMapping) {
  EXPECT_EQ(op_for_mode(LockMode::kIR), OpKind::kEntryRead);
  EXPECT_EQ(op_for_mode(LockMode::kR), OpKind::kTableRead);
  EXPECT_EQ(op_for_mode(LockMode::kU), OpKind::kEntryUpgrade);
  EXPECT_EQ(op_for_mode(LockMode::kIW), OpKind::kEntryWrite);
  EXPECT_EQ(op_for_mode(LockMode::kW), OpKind::kTableWrite);
  EXPECT_THROW(op_for_mode(LockMode::kNL), UsageError);
}

TEST(OpPlan, LockNamespace) {
  EXPECT_EQ(table_lock(), LockId{0});
  EXPECT_EQ(entry_lock(0), LockId{1});
  EXPECT_EQ(entry_lock(4), LockId{5});
  const auto locks = all_locks(3);
  EXPECT_EQ(locks.size(), 4u);
  EXPECT_EQ(locks.front(), table_lock());
}

TEST(OpPlan, HierarchicalEntryReadTakesIntentThenEntry) {
  const auto steps =
      plan_op(AppVariant::kHierarchical, OpKind::kEntryRead, 2, 4);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].lock, table_lock());
  EXPECT_EQ(steps[0].mode, LockMode::kIR);
  EXPECT_EQ(steps[1].lock, entry_lock(2));
  EXPECT_EQ(steps[1].mode, LockMode::kR);
  EXPECT_FALSE(steps[0].upgrade_midway);
}

TEST(OpPlan, HierarchicalUpgradePlansUThenMidwayUpgrade) {
  const auto steps =
      plan_op(AppVariant::kHierarchical, OpKind::kEntryUpgrade, 1, 4);
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].mode, LockMode::kIW);
  EXPECT_EQ(steps[1].mode, LockMode::kU);
  EXPECT_TRUE(steps[1].upgrade_midway);
}

TEST(OpPlan, HierarchicalTableOpsTakeOneLock) {
  for (OpKind kind : {OpKind::kTableRead, OpKind::kTableWrite}) {
    const auto steps = plan_op(AppVariant::kHierarchical, kind, 0, 4);
    ASSERT_EQ(steps.size(), 1u);
    EXPECT_EQ(steps[0].lock, table_lock());
  }
}

TEST(OpPlan, NaimiPureAlwaysOneLock) {
  for (OpKind kind :
       {OpKind::kEntryRead, OpKind::kTableRead, OpKind::kEntryUpgrade,
        OpKind::kEntryWrite, OpKind::kTableWrite}) {
    const auto steps = plan_op(AppVariant::kNaimiPure, kind, 3, 5);
    ASSERT_EQ(steps.size(), 1u) << to_string(kind);
  }
}

TEST(OpPlan, NaimiSameWorkExpandsTableOps) {
  const auto table = plan_op(AppVariant::kNaimiSameWork,
                             OpKind::kTableWrite, 0, 5);
  ASSERT_EQ(table.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(table[i].lock, entry_lock(i)) << "must be in ascending order";
  }
  const auto entry =
      plan_op(AppVariant::kNaimiSameWork, OpKind::kEntryWrite, 3, 5);
  ASSERT_EQ(entry.size(), 1u);
  EXPECT_EQ(entry[0].lock, entry_lock(3));
}

TEST(OpPlan, ValidatesArguments) {
  EXPECT_THROW(plan_op(AppVariant::kHierarchical, OpKind::kEntryRead, 4, 4),
               UsageError);
  EXPECT_THROW(plan_op(AppVariant::kHierarchical, OpKind::kEntryRead, 0, 0),
               UsageError);
}

// ---- Driver ----------------------------------------------------------------

WorkloadSpec fast_spec(AppVariant variant, std::size_t nodes, int ops) {
  WorkloadSpec spec;
  spec.variant = variant;
  spec.node_count = nodes;
  spec.ops_per_node = ops;
  spec.table_entries = 4;
  // Shrink times so tests run instantly in simulated time.
  spec.cs_length = DurationDist::uniform(SimTime::ms(2), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(10), 0.5);
  spec.seed = 11;
  return spec;
}

SimClusterOptions cluster_options(AppVariant variant, std::size_t nodes) {
  SimClusterOptions options;
  options.node_count = nodes;
  options.protocol = variant == AppVariant::kHierarchical
                         ? Protocol::kHierarchical
                         : Protocol::kNaimi;
  options.message_latency = DurationDist::uniform(SimTime::ms(1), 0.5);
  options.seed = 11;
  return options;
}

TEST(SimDriver, CompletesAllOpsAndCountsThem) {
  const WorkloadSpec spec = fast_spec(AppVariant::kHierarchical, 6, 20);
  SimCluster cluster{cluster_options(AppVariant::kHierarchical, 6)};
  SimWorkloadDriver driver{cluster, spec};
  driver.run();
  EXPECT_EQ(driver.stats().ops, 6u * 20u);
  EXPECT_EQ(driver.stats().op_latency.count(), 6u * 20u);
  std::uint64_t by_kind = 0;
  for (std::uint64_t count : driver.stats().ops_by_kind) by_kind += count;
  EXPECT_EQ(by_kind, 6u * 20u);
  EXPECT_GE(driver.stats().acquisitions, driver.stats().ops);
}

TEST(SimDriver, QuiescentStructureAfterRun) {
  const WorkloadSpec spec = fast_spec(AppVariant::kHierarchical, 8, 25);
  SimCluster cluster{cluster_options(AppVariant::kHierarchical, 8)};
  SimWorkloadDriver driver{cluster, spec};
  driver.run();
  const auto report = runtime::check_quiescent_structure(
      cluster, all_locks(spec.table_entries));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(SimDriver, SafetyHoldsThroughoutTheRun) {
  const WorkloadSpec spec = fast_spec(AppVariant::kHierarchical, 6, 30);
  SimCluster cluster{cluster_options(AppVariant::kHierarchical, 6)};
  SimWorkloadDriver driver{cluster, spec};
  const auto locks = all_locks(spec.table_entries);
  int checks = 0;
  driver.set_periodic_check(64, [&] {
    const auto report = runtime::check_safety(cluster, locks);
    ASSERT_TRUE(report.ok()) << report.to_string();
    ++checks;
  });
  driver.run();
  EXPECT_GT(checks, 0);
}

TEST(SimDriver, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    WorkloadSpec spec = fast_spec(AppVariant::kHierarchical, 5, 15);
    spec.seed = seed;
    SimClusterOptions copts = cluster_options(AppVariant::kHierarchical, 5);
    copts.seed = seed;
    SimCluster cluster{copts};
    SimWorkloadDriver driver{cluster, spec};
    driver.run();
    return std::make_tuple(cluster.metrics().messages().total(),
                           cluster.metrics().latency().summarize().mean,
                           cluster.simulator().now().count_ns());
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(std::get<0>(run_once(5)), std::get<0>(run_once(6)));
}

TEST(SimDriver, NaimiVariantsComplete) {
  for (AppVariant variant :
       {AppVariant::kNaimiPure, AppVariant::kNaimiSameWork}) {
    const WorkloadSpec spec = fast_spec(variant, 5, 15);
    SimCluster cluster{cluster_options(variant, 5)};
    SimWorkloadDriver driver{cluster, spec};
    driver.run();
    EXPECT_EQ(driver.stats().ops, 5u * 15u) << to_string(variant);
  }
}

TEST(SimDriver, SameWorkIssuesMoreAcquisitions) {
  const WorkloadSpec pure_spec = fast_spec(AppVariant::kNaimiPure, 6, 30);
  SimCluster pure_cluster{cluster_options(AppVariant::kNaimiPure, 6)};
  SimWorkloadDriver pure{pure_cluster, pure_spec};
  pure.run();

  const WorkloadSpec sw_spec = fast_spec(AppVariant::kNaimiSameWork, 6, 30);
  SimCluster sw_cluster{cluster_options(AppVariant::kNaimiSameWork, 6)};
  SimWorkloadDriver same_work{sw_cluster, sw_spec};
  same_work.run();

  EXPECT_EQ(pure.stats().acquisitions, pure.stats().ops);
  EXPECT_GT(same_work.stats().acquisitions, same_work.stats().ops)
      << "whole-table ops must expand to per-entry locks";
}

TEST(SimDriver, UpgradesAreExercised) {
  WorkloadSpec spec = fast_spec(AppVariant::kHierarchical, 6, 40);
  spec.mix = ModeMix::write_heavy();  // 15% upgrades
  SimCluster cluster{cluster_options(AppVariant::kHierarchical, 6)};
  SimWorkloadDriver driver{cluster, spec};
  driver.run();
  EXPECT_GT(driver.stats().upgrade_latency.count(), 0u);
  EXPECT_EQ(driver.stats().upgrade_latency.count(),
            driver.stats()
                .ops_by_kind[static_cast<std::size_t>(OpKind::kEntryUpgrade)]);
}

TEST(SimDriver, RejectsMismatchedVariantAndProtocol) {
  const WorkloadSpec spec = fast_spec(AppVariant::kHierarchical, 4, 5);
  SimCluster naimi{cluster_options(AppVariant::kNaimiPure, 4)};
  EXPECT_THROW(SimWorkloadDriver(naimi, spec), UsageError);
}

TEST(SimDriver, RejectsNodeCountMismatch) {
  const WorkloadSpec spec = fast_spec(AppVariant::kHierarchical, 4, 5);
  SimCluster cluster{cluster_options(AppVariant::kHierarchical, 5)};
  EXPECT_THROW(SimWorkloadDriver(cluster, spec), UsageError);
}

TEST(SimDriver, ZeroOpsCompletesImmediately) {
  const WorkloadSpec spec = fast_spec(AppVariant::kHierarchical, 3, 0);
  SimCluster cluster{cluster_options(AppVariant::kHierarchical, 3)};
  SimWorkloadDriver driver{cluster, spec};
  driver.run();
  EXPECT_EQ(driver.stats().ops, 0u);
}

}  // namespace
}  // namespace hlock::workload
