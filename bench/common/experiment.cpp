#include "bench/common/experiment.hpp"

#include <memory>

#include "runtime/sim_cluster.hpp"
#include "stats/summary.hpp"
#include "util/check.hpp"

namespace hlock::bench {

using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;
using workload::OpKind;
using workload::SimWorkloadDriver;
using workload::WorkloadSpec;

ExperimentResult run_experiment(const ExperimentConfig& config) {
  SimClusterOptions cluster_options;
  cluster_options.node_count = config.nodes;
  cluster_options.protocol = config.variant == AppVariant::kHierarchical
                                 ? Protocol::kHierarchical
                                 : Protocol::kNaimi;
  cluster_options.message_latency = config.net_latency;
  cluster_options.seed = config.seed;
  cluster_options.hier_config = config.hier_config;
  cluster_options.recovery = config.recovery;
  cluster_options.recovery_horizon = config.recovery_horizon;
  HLOCK_REQUIRE(config.kills.empty() || config.recovery.enabled,
                "a kill schedule requires ExperimentConfig::recovery");
  const bool wants_events = config.lint || config.capture_events != nullptr ||
                            config.collect_spans != nullptr ||
                            config.record_events != nullptr;
  if (wants_events) {
    HLOCK_REQUIRE(config.variant == AppVariant::kHierarchical,
                  "event tracing applies to the hierarchical variant");
    cluster_options.hier_config.trace_events = true;
  }
  SimCluster cluster{cluster_options};

  std::unique_ptr<lint::Checker> checker;
  if (config.lint) {
    lint::LintOptions lint_options;
    lint_options.initial_token = cluster_options.initial_root;
    lint_options.local_queueing = config.hier_config.local_queueing;
    lint_options.child_grants = config.hier_config.child_grants;
    lint_options.path_compression = config.hier_config.path_compression;
    lint_options.freezing = config.hier_config.freezing;
    checker = std::make_unique<lint::Checker>(lint_options);
  }
  if (wants_events) {
    cluster.set_event_observer(
        [&checker, capture = config.capture_events,
         spans = config.collect_spans,
         ring = config.record_events](trace::TraceEvent event) {
          if (checker) checker->add(event);
          if (spans != nullptr) spans->observe(event);
          if (ring != nullptr) ring->record(event);  // at already stamped
          if (capture != nullptr) capture->push_back(std::move(event));
        });
  }

  WorkloadSpec spec;
  spec.variant = config.variant;
  spec.node_count = config.nodes;
  spec.table_entries = config.table_entries;
  spec.ops_per_node = config.ops_per_node;
  spec.cs_length = config.cs_length;
  spec.idle_time = config.idle_time;
  spec.mix = config.mix;
  spec.seed = config.seed * 7919 + 13;  // decorrelated from network stream
  spec.kills = config.kills;

  SimWorkloadDriver driver{cluster, spec};
  ExperimentResult result;
  try {
    driver.run();
  } catch (const InvariantError& error) {
    result.aborted = true;
    result.abort_reason = error.what();
  } catch (const UsageError& error) {
    result.aborted = true;
    result.abort_reason = error.what();
  }
  // On abort the driver and cluster still hold everything collected up to
  // the failure; fall through and report the partial run.
  result.ops = driver.stats().ops;
  result.acquisitions = driver.stats().acquisitions;
  result.messages = cluster.metrics().messages().total();
  if (result.ops > 0) {
    result.msgs_per_op =
        static_cast<double>(result.messages) / static_cast<double>(result.ops);
  }
  if (result.acquisitions > 0) {
    result.msgs_per_acq = static_cast<double>(result.messages) /
                          static_cast<double>(result.acquisitions);
  }
  const stats::Summary latency = driver.stats().op_latency.summarize();
  result.mean_latency_ms = latency.mean;
  result.mean_request_latency_ms =
      driver.stats().acq_latency.summarize().mean;
  result.p90_latency_ms = latency.p90;
  result.max_latency_ms = latency.max;
  const stats::Summary w_latency =
      driver.stats()
          .latency_by_kind[static_cast<std::size_t>(OpKind::kTableWrite)]
          .summarize();
  result.w_latency_ms = w_latency.mean;
  result.request_latency_samples_ms = driver.stats().acq_latency.samples_ms();
  if (config.recovery.enabled) {
    double sum_ms = 0;
    std::size_t samples = 0;
    for (std::size_t i = 0; i < config.nodes; ++i) {
      const proto::NodeId node{static_cast<std::uint32_t>(i)};
      if (!cluster.alive(node)) {
        ++result.nodes_killed;
        continue;
      }
      recovery::Manager& manager = cluster.manager(node);
      result.recovery_epoch =
          std::max(result.recovery_epoch, manager.current_epoch());
      result.recoveries =
          std::max(result.recoveries, manager.counters().recoveries);
      for (const double ms : manager.recovery_durations_ms()) {
        sum_ms += ms;
        ++samples;
      }
    }
    result.stale_drops = cluster.total_stale_drops();
    if (samples > 0) {
      result.mean_recovery_ms = sum_ms / static_cast<double>(samples);
    }
  }
  if (checker) {
    const lint::LintReport report = checker->finish();
    result.lint_events_checked = report.events_checked;
    result.lint_violation_count = report.violations.size();
    if (!report.ok()) result.lint_report = report.render();
  }
  return result;
}

ExperimentResult run_averaged(ExperimentConfig config, int seeds) {
  ExperimentResult total;
  for (int s = 0; s < seeds; ++s) {
    config.seed = config.seed * 31 + static_cast<std::uint64_t>(s) + 1;
    const ExperimentResult one = run_experiment(config);
    total.ops += one.ops;
    total.acquisitions += one.acquisitions;
    total.messages += one.messages;
    total.msgs_per_op += one.msgs_per_op;
    total.msgs_per_acq += one.msgs_per_acq;
    total.mean_request_latency_ms += one.mean_request_latency_ms;
    total.mean_latency_ms += one.mean_latency_ms;
    total.p90_latency_ms += one.p90_latency_ms;
    total.max_latency_ms = std::max(total.max_latency_ms, one.max_latency_ms);
    total.w_latency_ms += one.w_latency_ms;
    total.request_latency_samples_ms.insert(
        total.request_latency_samples_ms.end(),
        one.request_latency_samples_ms.begin(),
        one.request_latency_samples_ms.end());
    total.lint_events_checked += one.lint_events_checked;
    total.lint_violation_count += one.lint_violation_count;
    total.lint_report += one.lint_report;
    total.recovery_epoch = std::max(total.recovery_epoch, one.recovery_epoch);
    total.recoveries += one.recoveries;
    total.stale_drops += one.stale_drops;
    total.mean_recovery_ms += one.mean_recovery_ms;
    total.nodes_killed += one.nodes_killed;
    if (one.aborted) {
      // Later seeds would only repeat the failure (or mask it by averaging
      // over fewer samples); stop and surface the partial aggregate.
      total.aborted = true;
      total.abort_reason = one.abort_reason;
      break;
    }
  }
  const double k = seeds > 0 ? static_cast<double>(seeds) : 1.0;
  total.msgs_per_op /= k;
  total.msgs_per_acq /= k;
  total.mean_request_latency_ms /= k;
  total.mean_latency_ms /= k;
  total.p90_latency_ms /= k;
  total.w_latency_ms /= k;
  total.mean_recovery_ms /= k;
  return total;
}

double paper_latency_metric_ms(AppVariant variant,
                               const ExperimentResult& r) {
  if (variant == AppVariant::kNaimiSameWork) return r.mean_latency_ms;
  return r.mean_request_latency_ms;
}

double paper_message_metric(AppVariant variant, const ExperimentResult& r) {
  if (variant == AppVariant::kNaimiSameWork) {
    // Normalize by functional requests: the same-work variant does the
    // same application work per operation as the other variants, with more
    // acquisitions; dividing by operations keeps the comparison on equal
    // functionality (this is what makes its curve superlinear, as in the
    // paper's Fig. 7).
    return r.msgs_per_op;
  }
  return r.msgs_per_acq;
}

std::string series_name(AppVariant variant) {
  return workload::to_string(variant);
}

}  // namespace hlock::bench
