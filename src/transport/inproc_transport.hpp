// In-process message transport over real threads.
//
// The simulated-cluster harness (runtime/sim_cluster.hpp) validates the
// protocol under modelled time; this transport validates it under real
// concurrency: every node runs on its own thread, messages cross true
// thread boundaries, and (by default) every message round-trips through
// the binary wire codec, exactly as a socket deployment would ship it.
// Injected latency is optional and small — the goal here is races, not
// timing realism.
//
// Channels are FIFO per ordered (from, to) pair, matching TCP/MPI and the
// simulator's network model.
//
// With batching enabled (the default), send_batch() coalesces the
// same-destination messages of one burst into a single batch envelope: one
// codec round-trip over a reused scratch buffer and one mailbox lock
// acquisition instead of one of each per message. Batching never changes
// what is delivered or in which order — see docs/performance.md.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "proto/ids.hpp"
#include "proto/message.hpp"
#include "transport/mailbox.hpp"
#include "transport/transport.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace hlock::transport {

/// Construction parameters for an in-process transport.
struct InProcOptions {
  std::size_t node_count = 2;
  /// Injected one-way latency (real time); zero by default.
  DurationDist latency = DurationDist::constant(SimTime::ns(0));
  std::uint64_t seed = 1;
  /// Round-trip every message through the binary codec (encode + decode)
  /// to keep the protocol honest about its wire representation.
  bool codec_roundtrip = true;
  /// Coalesce same-destination messages of one send_batch() call into a
  /// single batch envelope (protocol-invisible; off = per-message path).
  bool batching = true;
};

/// See file comment.
class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(const InProcOptions& options);

  /// Routes a message to its destination mailbox. Thread-safe. Throws
  /// InvariantError if the codec round-trip corrupts the message.
  void send(const proto::Message& message) override
      HLOCK_EXCLUDES(latency_mutex_);

  /// Routes a burst, coalescing same-channel runs into batch envelopes
  /// when options.batching is set (falls back to per-message sends
  /// otherwise). Thread-safe.
  void send_batch(std::vector<proto::Message> messages) override
      HLOCK_EXCLUDES(latency_mutex_);

  /// Blocks for the next deliverable message for `node` (nullopt once the
  /// transport is shut down and the mailbox drained).
  std::optional<proto::Message> recv(proto::NodeId node) override;

  /// Drains every already-matured message for `node` in one mailbox lock
  /// acquisition (empty once shut down and drained).
  std::vector<proto::Message> recv_ready(proto::NodeId node) override;

  /// Like recv() but bounded by `timeout`.
  std::optional<proto::Message> recv_for(
      proto::NodeId node, std::chrono::milliseconds timeout) override;

  /// Closes all mailboxes; blocked receivers wake up.
  void shutdown() override;

  /// Total messages accepted by send()/send_batch().
  std::uint64_t messages_sent() const override { return sent_.load(); }

  /// Encoded bytes shipped (0 when codec_roundtrip is off — nothing is
  /// encoded then).
  std::uint64_t bytes_sent() const override { return bytes_.load(); }

  std::size_t node_count() const { return mailboxes_.size(); }

  /// Messages waiting in `node`'s mailbox (matured or not).
  std::size_t inbox_depth(proto::NodeId node) const override {
    return node.value() < mailboxes_.size()
               ? mailboxes_[node.value()]->size()
               : 0;
  }

 private:
  Mailbox& mailbox(proto::NodeId node);
  /// Computes the delivery time of the next message/batch on (from, to),
  /// maintaining per-channel FIFO under injected latency.
  Mailbox::Clock::time_point schedule_delivery(proto::NodeId from,
                                               proto::NodeId to)
      HLOCK_EXCLUDES(latency_mutex_);
  /// Ships one same-channel run [begin, end) as a single batch envelope.
  void send_coalesced(std::vector<proto::Message>& messages,
                      std::size_t begin, std::size_t end);

  /// Immutable after construction (mailboxes themselves are thread-safe).
  InProcOptions options_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> bytes_{0};

  Mutex latency_mutex_;
  Rng latency_rng_ HLOCK_GUARDED_BY(latency_mutex_);
  /// Last delivery deadline per ordered channel (FIFO enforcement).
  std::map<std::pair<proto::NodeId, proto::NodeId>,
           Mailbox::Clock::time_point>
      channel_front_ HLOCK_GUARDED_BY(latency_mutex_);
};

}  // namespace hlock::transport
