#include "transport/mailbox.hpp"

#include <algorithm>

namespace hlock::transport {

void Mailbox::push_locked(proto::Message&& message,
                          Clock::time_point deliver_at) {
  heap_.push_back(Entry{deliver_at, next_seq_++, std::move(message)});
  std::push_heap(heap_.begin(), heap_.end());
  ++pushed_;
}

proto::Message Mailbox::pop_top_locked() {
  // pop_heap moves the earliest entry to the back, where it can be
  // extracted by move — the payload's queue buffer travels, not copies.
  std::pop_heap(heap_.begin(), heap_.end());
  proto::Message message = std::move(heap_.back().message);
  heap_.pop_back();
  return message;
}

void Mailbox::push(proto::Message message, Clock::time_point deliver_at) {
  // Explicit schedule point: under the explorer a racing pop/close may be
  // interleaved before the push takes the lock (docs/sched.md).
  sched::yield_point("mailbox.push");
  {
    MutexLock guard(mutex_);
    if (closed_) return;
    push_locked(std::move(message), deliver_at);
  }
  cv_.notify_one();
}

void Mailbox::push_all(std::vector<proto::Message> messages,
                       Clock::time_point deliver_at) {
  if (messages.empty()) return;
  sched::yield_point("mailbox.push-all");
  {
    MutexLock guard(mutex_);
    if (closed_) return;
    for (proto::Message& message : messages) {
      push_locked(std::move(message), deliver_at);
    }
  }
  cv_.notify_one();
}

std::optional<proto::Message> Mailbox::pop() {
  return pop_until(Clock::time_point::max());
}

std::optional<proto::Message> Mailbox::pop_until(Clock::time_point deadline) {
  MutexLock lock(mutex_);
  for (;;) {
    if (!heap_.empty()) {
      const Clock::time_point due = heap_.front().deliver_at;
      if (due <= Clock::now()) {
        return pop_top_locked();
      }
      // Wait until the head matures, the deadline passes, or a new
      // (possibly earlier) message arrives.
      const Clock::time_point until = std::min(due, deadline);
      if (cv_.wait_until(mutex_, until) == std::cv_status::timeout &&
          until == deadline && Clock::now() >= deadline) {
        // Deadline reached before the head matured.
        if (!heap_.empty() && heap_.front().deliver_at <= Clock::now()) {
          return pop_top_locked();
        }
        return std::nullopt;
      }
      continue;
    }
    if (closed_) return std::nullopt;
    if (deadline == Clock::time_point::max()) {
      cv_.wait(mutex_);
    } else if (cv_.wait_until(mutex_, deadline) == std::cv_status::timeout) {
      if (!heap_.empty() && heap_.front().deliver_at <= Clock::now()) {
        continue;
      }
      return std::nullopt;
    }
  }
}

std::vector<proto::Message> Mailbox::pop_all_ready() {
  MutexLock lock(mutex_);
  for (;;) {
    if (!heap_.empty()) {
      const Clock::time_point now = Clock::now();
      if (heap_.front().deliver_at <= now) {
        // Drain every message matured by `now` under this one lock hold;
        // later-matured messages wait for the next call.
        std::vector<proto::Message> ready;
        ready.reserve(heap_.size());  // upper bound: one allocation, no regrowth
        while (!heap_.empty() && heap_.front().deliver_at <= now) {
          ready.push_back(pop_top_locked());
        }
        return ready;
      }
      cv_.wait_until(mutex_, heap_.front().deliver_at);
      continue;
    }
    if (closed_) return {};
    cv_.wait(mutex_);
  }
}

void Mailbox::close() {
  sched::yield_point("mailbox.close");
  {
    MutexLock guard(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::uint64_t Mailbox::pushed() const {
  MutexLock guard(mutex_);
  return pushed_;
}

std::size_t Mailbox::size() const {
  MutexLock guard(mutex_);
  return heap_.size();
}

}  // namespace hlock::transport
