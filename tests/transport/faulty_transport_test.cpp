// Tests of the fault-injecting + self-healing transport decorator: the
// wire may drop, delay, duplicate, and reorder, but the layered transport
// must still hand the inner transport an exactly-once, in-order channel —
// and count every fault it injected and healed.
#include "transport/faulty_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "transport/inproc_transport.hpp"
#include "util/check.hpp"

namespace hlock::transport {
namespace {

using proto::LockId;
using proto::Message;
using proto::NodeId;

Message make_message(std::uint32_t from, std::uint32_t to,
                     std::uint64_t seq) {
  return Message{NodeId{from}, NodeId{to}, LockId{0},
                 proto::NaimiRequest{NodeId{from}, seq}};
}

std::unique_ptr<FaultyTransport> make_faulty(const FaultPlan& plan,
                                             std::size_t nodes = 2) {
  return std::make_unique<FaultyTransport>(
      std::make_unique<InProcTransport>(InProcOptions{nodes}), plan);
}

/// Receives `count` messages for `node`, asserting exactly-once in-order
/// delivery of sequences 0..count-1.
void expect_in_order(FaultyTransport& transport, std::uint32_t node,
                     std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto received =
        transport.recv_for(NodeId{node}, std::chrono::milliseconds(5000));
    ASSERT_TRUE(received.has_value()) << "after " << i << " messages";
    const auto* request =
        std::get_if<proto::NaimiRequest>(&received->payload);
    ASSERT_NE(request, nullptr);
    ASSERT_EQ(request->seq, i) << "channel not exactly-once in-order";
  }
}

TEST(FaultyTransport, ZeroPlanIsATransparentPassThrough) {
  auto transport = make_faulty(FaultPlan{});
  EXPECT_FALSE(FaultPlan{}.any());
  transport->send(make_message(0, 1, 0));
  expect_in_order(*transport, 1, 1);
  EXPECT_EQ(transport->counters().snapshot().faults_injected(), 0u);
  EXPECT_EQ(transport->messages_sent(), 1u);
}

TEST(FaultyTransport, ExactlyOnceFifoSurvivesEveryFaultClassAtOnce) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_probability = 0.15;
  plan.delay_probability = 0.2;
  plan.delay = DurationDist::uniform(SimTime::ms(1), 0.5);
  plan.duplicate_probability = 0.2;
  plan.reorder_probability = 0.2;
  plan.retransmit_delay = SimTime::ms(1);
  auto transport = make_faulty(plan);
  constexpr std::uint64_t kCount = 300;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    transport->send(make_message(0, 1, i));
  }
  expect_in_order(*transport, 1, kCount);
  // Nothing extra leaks through after the last in-order message.
  EXPECT_FALSE(
      transport->recv_for(NodeId{1}, std::chrono::milliseconds(50))
          .has_value());
  const auto counters = transport->counters().snapshot();
  EXPECT_GT(counters.drops, 0u);
  EXPECT_GT(counters.delays, 0u);
  EXPECT_GT(counters.duplicates, 0u);
  EXPECT_GT(counters.reorders, 0u);
  EXPECT_EQ(counters.retransmits, counters.drops);
  EXPECT_EQ(transport->messages_sent(), kCount);
}

TEST(FaultyTransport, ReordersAreResequencedAtTheEdge) {
  FaultPlan plan;
  plan.seed = 11;
  plan.reorder_probability = 0.5;
  plan.retransmit_delay = SimTime::ms(2);
  auto transport = make_faulty(plan);
  constexpr std::uint64_t kCount = 200;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    transport->send(make_message(0, 1, i));
  }
  expect_in_order(*transport, 1, kCount);
  const auto counters = transport->counters().snapshot();
  EXPECT_GT(counters.reorders, 0u);
  EXPECT_GT(counters.resequenced, 0u) << "no overtake ever happened";
}

TEST(FaultyTransport, DuplicatesAreDiscardedAtTheEdge) {
  FaultPlan plan;
  plan.seed = 3;
  plan.duplicate_probability = 1.0;
  plan.retransmit_delay = SimTime::ms(1);
  auto transport = make_faulty(plan);
  constexpr std::uint64_t kCount = 20;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    transport->send(make_message(0, 1, i));
  }
  expect_in_order(*transport, 1, kCount);
  EXPECT_FALSE(
      transport->recv_for(NodeId{1}, std::chrono::milliseconds(100))
          .has_value())
      << "a duplicate leaked through the edge";
  const auto counters = transport->counters().snapshot();
  EXPECT_EQ(counters.duplicates, kCount);
  EXPECT_EQ(counters.duplicates_discarded, kCount);
}

TEST(FaultyTransport, FaultDecisionsAreSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_probability = 0.3;
    plan.delay_probability = 0.25;
    plan.duplicate_probability = 0.2;
    plan.reorder_probability = 0.15;
    plan.retransmit_delay = SimTime::us(200);
    auto transport = make_faulty(plan);
    for (std::uint64_t i = 0; i < 200; ++i) {
      transport->send(make_message(0, 1, i));
    }
    // Injection counters are bumped synchronously in send(), so they are
    // final as soon as the last send returns.
    auto counters = transport->counters().snapshot();
    counters.retransmits = 0;          // healing-side noise out of the
    counters.duplicates_discarded = 0; // comparison: it depends on timing
    counters.resequenced = 0;
    return counters;
  };
  const auto first = run(42);
  const auto second = run(42);
  EXPECT_EQ(first, second);
  EXPECT_GT(first.faults_injected(), 0u);
}

TEST(FaultyTransport, PartitionBuffersTrafficUntilHeal) {
  FaultPlan plan;
  plan.partitions.push_back({{NodeId{0}}, SimTime::ms(150)});
  auto transport = make_faulty(plan);
  transport->send(make_message(0, 1, 0));
  // Blocked while the partition holds...
  EXPECT_FALSE(
      transport->recv_for(NodeId{1}, std::chrono::milliseconds(30))
          .has_value());
  // ...delivered after it heals.
  expect_in_order(*transport, 1, 1);
  EXPECT_EQ(transport->counters().snapshot().partition_drops, 1u);
}

TEST(FaultyTransport, DynamicPartitionAffectsBothDirections) {
  auto transport = make_faulty(FaultPlan{});
  transport->partition({NodeId{1}}, SimTime::ms(80));
  transport->send(make_message(0, 1, 0));
  transport->send(make_message(1, 0, 0));
  EXPECT_FALSE(
      transport->recv_for(NodeId{1}, std::chrono::milliseconds(20))
          .has_value());
  expect_in_order(*transport, 1, 1);
  expect_in_order(*transport, 0, 1);
  EXPECT_EQ(transport->counters().snapshot().partition_drops, 2u);
}

TEST(FaultyTransport, RejectsInvalidProbabilities) {
  FaultPlan plan;
  plan.drop_probability = 1.5;
  EXPECT_THROW(make_faulty(plan), UsageError);
  plan.drop_probability = 0.0;
  plan.reorder_probability = -0.1;
  EXPECT_THROW(make_faulty(plan), UsageError);
}

TEST(FaultyTransport, ShutdownUnblocksReceiversAndDropsPendingWire) {
  FaultPlan plan;
  plan.delay_probability = 1.0;
  plan.delay = DurationDist::constant(SimTime::sec(30));
  auto transport = make_faulty(plan);
  transport->send(make_message(0, 1, 0));  // parked far in the future
  std::thread receiver([&transport] {
    EXPECT_FALSE(transport->recv(NodeId{1}).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  transport->shutdown();
  receiver.join();
}

}  // namespace
}  // namespace hlock::transport
