// Cross-cutting coverage for corners the focused suites leave open:
// Raymond arity sweeps, fingerprint contracts of the mode-less automatons,
// deep trace filtering, analysis edge parameters, and Naimi/Raymond
// workloads under message-heavy settings.
#include <gtest/gtest.h>

#include "analysis/response_model.hpp"
#include "naimi/naimi_automaton.hpp"
#include "raymond/raymond_automaton.hpp"
#include "runtime/invariants.hpp"
#include "runtime/sim_cluster.hpp"
#include "trace/recorder.hpp"
#include "util/check.hpp"
#include "workload/sim_driver.hpp"

namespace hlock {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

TEST(RaymondArity, TreesOfEveryAritySupportTheWorkload) {
  // The engine uses arity 2; drive other arities through the automaton's
  // own topology builder to cover wide and degenerate (chain) trees.
  for (std::size_t arity : {1u, 3u, 5u}) {
    const auto tree = raymond::balanced_tree(9, arity);
    std::vector<raymond::RaymondAutomaton> nodes;
    for (std::size_t i = 0; i < 9; ++i) {
      nodes.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, LockId{0},
                         tree[i].holder, tree[i].neighbors);
    }
    // Everyone requests once; pump messages round-robin until all served.
    std::deque<proto::Message> wire;
    auto absorb = [&](core::Effects&& fx) {
      for (auto& message : fx.messages) wire.push_back(std::move(message));
    };
    int served = 0;
    for (auto& node : nodes) absorb(node.request());
    for (int guard = 0; guard < 100000 && served < 9; ++guard) {
      for (auto& node : nodes) {
        if (node.in_cs()) {
          ++served;
          absorb(node.release());
        }
      }
      if (wire.empty()) continue;
      const proto::Message message = wire.front();
      wire.pop_front();
      absorb(nodes[message.to.value()].on_message(message));
    }
    EXPECT_EQ(served, 9) << "arity " << arity;
  }
}

TEST(Fingerprints, ModelessAutomatonsCaptureTheirState) {
  naimi::NaimiAutomaton a{NodeId{0}, LockId{0}, true, NodeId::none()};
  naimi::NaimiAutomaton b{NodeId{0}, LockId{0}, true, NodeId::none()};
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  (void)a.request();
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  (void)b.request();
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  const auto tree = raymond::balanced_tree(3);
  raymond::RaymondAutomaton r1{NodeId{1}, LockId{0}, tree[1].holder,
                               tree[1].neighbors};
  raymond::RaymondAutomaton r2{NodeId{1}, LockId{0}, tree[1].holder,
                               tree[1].neighbors};
  EXPECT_EQ(r1.fingerprint(), r2.fingerprint());
  (void)r1.request();
  EXPECT_NE(r1.fingerprint(), r2.fingerprint());
}

TEST(AnalysisEdge, SingleNodeAndExtremeParameters) {
  analysis::ModelParams params;
  params.nodes = 1;
  const auto one = analysis::predict(params);
  EXPECT_EQ(one.queueing_ms, 0.0) << "no contention with one node";
  EXPECT_GT(one.response_ms, 0.0);

  params.nodes = 100000;  // absurd scale still yields a finite prediction
  const auto huge = analysis::predict(params);
  EXPECT_GT(huge.queueing_ms, 1000.0);
  EXPECT_THROW(analysis::predict(analysis::ModelParams{0}), UsageError);
}

TEST(AnalysisEdge, ZeroIdleTimeSaturatesImmediately) {
  analysis::ModelParams params;
  params.idle_ms = 0.0;
  params.nodes = 64;
  const auto prediction = analysis::predict(params);
  EXPECT_LT(prediction.knee_nodes, 20.0)
      << "no think time: the knee must arrive very early";
  EXPECT_GT(prediction.queueing_ms, prediction.demand_ms);
}

TEST(TraceFilter, MessagesMatchEitherEndpoint) {
  trace::TraceRecorder recorder;
  recorder.record_message(
      SimTime::ms(1),
      proto::Message{NodeId{1}, NodeId{2}, LockId{0},
                     proto::HierGrant{LockMode::kR, LockMode::kR, 1}});
  // Sender view and receiver view both include the message.
  EXPECT_NE(recorder.render(NodeId{1}).find("GRANT"), std::string::npos);
  EXPECT_NE(recorder.render(NodeId{2}).find("GRANT"), std::string::npos);
  EXPECT_EQ(recorder.render(NodeId{7}).find("GRANT"), std::string::npos);
}

TEST(MixedProtocols, RaymondAndNaimiAgreeOnWorkloadResults) {
  // Same exclusive workload, same seeds: both baselines must complete the
  // same operation count (they differ only in messages/latency).
  auto run = [](Protocol protocol) {
    SimClusterOptions cluster_options;
    cluster_options.node_count = 10;
    cluster_options.protocol = protocol;
    cluster_options.message_latency =
        DurationDist::uniform(SimTime::ms(1), 0.5);
    cluster_options.seed = 23;
    SimCluster cluster{cluster_options};
    workload::WorkloadSpec spec;
    spec.variant = workload::AppVariant::kNaimiPure;
    spec.node_count = 10;
    spec.ops_per_node = 40;
    spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
    spec.idle_time = DurationDist::uniform(SimTime::ms(3), 0.5);
    spec.seed = 23;
    workload::SimWorkloadDriver driver{cluster, spec};
    driver.run();
    return std::make_pair(driver.stats().ops,
                          cluster.metrics().messages().total());
  };
  const auto naimi = run(Protocol::kNaimi);
  const auto raymond = run(Protocol::kRaymond);
  EXPECT_EQ(naimi.first, raymond.first);
  EXPECT_NE(naimi.second, raymond.second)
      << "identical message counts would suggest a wiring mistake";
}

TEST(MixedProtocols, RaymondChaosLossIsAlsoDetected) {
  SimClusterOptions cluster_options;
  cluster_options.node_count = 8;
  cluster_options.protocol = Protocol::kRaymond;
  cluster_options.message_latency =
      DurationDist::uniform(SimTime::ms(1), 0.5);
  cluster_options.seed = 29;
  cluster_options.message_loss_probability = 0.2;
  SimCluster cluster{cluster_options};
  workload::WorkloadSpec spec;
  spec.variant = workload::AppVariant::kNaimiPure;
  spec.node_count = 8;
  spec.ops_per_node = 40;
  spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(3), 0.5);
  spec.seed = 29;
  workload::SimWorkloadDriver driver{cluster, spec};
  try {
    driver.run();
    EXPECT_EQ(driver.stats().ops, 8u * 40u);
  } catch (const InvariantError&) {
    SUCCEED();  // the detector fired, as designed
  }
}

}  // namespace
}  // namespace hlock
