// Tests of the Lamport clock: the tick/observe algebra, and the end-to-end
// causal-ordering guarantee on a threaded cluster whose transport reorders
// and delays messages — the case wall-clock timestamps get wrong.
#include "obs/lamport.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/span.hpp"
#include "runtime/thread_cluster.hpp"

namespace hlock::obs {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

TEST(LamportClock, TickAdvancesByOne) {
  LamportClock clock;
  EXPECT_EQ(clock.current(), 0u);
  EXPECT_EQ(clock.tick(), 1u);
  EXPECT_EQ(clock.tick(), 2u);
  EXPECT_EQ(clock.current(), 2u);
}

TEST(LamportClock, ObserveMergesToMaxPlusOne) {
  LamportClock clock;
  clock.tick();              // 1
  clock.observe(10);         // max(1, 10) + 1
  EXPECT_EQ(clock.current(), 11u);
  clock.observe(3);          // stale remote clock still advances locally
  EXPECT_EQ(clock.current(), 12u);
  EXPECT_EQ(clock.tick(), 13u);
}

// The protocol-level guarantee the runtimes' stamping discipline provides:
// along one request's lifecycle, every transition on a *different* node is
// separated by at least one message, so its Lamport stamp is strictly
// greater; same-node transitions may share a step (equal stamps). Run
// under a reordering, delaying transport where arrival order and wall
// order genuinely diverge.
TEST(LamportClock, SpanEventsAreCausallyOrderedUnderReorder) {
  runtime::ThreadClusterOptions options;
  options.node_count = 4;
  options.hier_config.trace_events = true;
  options.seed = 5;
  transport::FaultPlan plan;
  plan.seed = 5;
  plan.reorder_probability = 0.3;
  plan.delay_probability = 0.2;
  plan.delay = DurationDist::uniform(SimTime::us(300), 0.5);
  options.faults = plan;

  SpanCollector collector;
  const int ops = 6;
  {
    runtime::ThreadCluster cluster{options};
    cluster.set_event_sink(
        [&collector](trace::TraceEvent event) { collector.observe(event); });
    std::vector<std::thread> workers;
    for (std::uint32_t i = 0; i < options.node_count; ++i) {
      workers.emplace_back([&cluster, i] {
        for (int k = 0; k < ops; ++k) {
          cluster.lock(NodeId{i}, LockId{0}, LockMode::kW);
          cluster.unlock(NodeId{i}, LockId{0});
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  const auto spans = collector.spans();
  ASSERT_EQ(spans.size(), options.node_count * static_cast<std::size_t>(ops));
  EXPECT_EQ(collector.completed_count(), spans.size());
  for (const RequestSpan& span : spans) {
    ASSERT_FALSE(span.events.empty());
    for (std::size_t k = 0; k < span.events.size(); ++k) {
      EXPECT_GT(span.events[k].lamport, 0u)
          << "unstamped event in span " << to_string(span.id);
      if (k == 0) continue;
      const SpanEvent& prev = span.events[k - 1];
      const SpanEvent& cur = span.events[k];
      if (cur.node == prev.node) {
        EXPECT_GE(cur.lamport, prev.lamport)
            << to_string(prev.phase) << " -> " << to_string(cur.phase)
            << " in span " << to_string(span.id);
      } else {
        EXPECT_GT(cur.lamport, prev.lamport)
            << to_string(prev.phase) << " -> " << to_string(cur.phase)
            << " crossed nodes without a clock merge in span "
            << to_string(span.id);
      }
    }
  }
}

}  // namespace
}  // namespace hlock::obs
