// The Naimi-Tréhel-Arnold O(log n) token-based mutual exclusion protocol
// (paper §2), used as the non-hierarchical baseline in the evaluation.
//
// Two distributed structures are maintained:
//  * a dynamic logical tree of probable-owner links along which requests are
//    routed toward the last requester, with path reversal (every node on a
//    request's path re-points its link at the requester), which yields the
//    O(log n) average message complexity; and
//  * a distributed FIFO list of waiting requesters threaded through `next`
//    pointers, starting at the current token holder.
//
// The protocol has a single exclusive mode: lock modes are ignored, which is
// exactly the functional gap the paper's "same work" / "pure" workload
// variants explore.
#pragma once

#include <cstdint>
#include <string>

#include "core/effects.hpp"
#include "proto/ids.hpp"
#include "proto/message.hpp"

namespace hlock::naimi {

using core::Effects;
using proto::LockId;
using proto::NodeId;

/// Per-(node, lock) state machine of the Naimi-Tréhel protocol. Pure state
/// machine: all I/O is returned as Effects, exactly like HierAutomaton.
class NaimiAutomaton {
 public:
  /// Constructs the automaton for `self` on `lock`. Exactly one node is
  /// created with the token (`initially_token`); the probable-owner links of
  /// all other nodes must transitively reach it.
  /// `initial_epoch` is the recovery epoch the automaton starts in (see
  /// HierAutomaton; nonzero when a lock is first touched post-recovery).
  NaimiAutomaton(NodeId self, LockId lock, bool initially_token,
                 NodeId initial_owner, std::uint32_t initial_epoch = 0);

  // ---- Application API ----

  /// Requests the (exclusive) lock. Precondition: not holding, not waiting.
  /// Effects::entered_cs reports immediate entry (token already here).
  Effects request();

  /// Releases the lock; passes the token to `next` if somebody waits.
  Effects release();

  /// Delivers one protocol message addressed to this node. Messages whose
  /// envelope epoch differs from recovery_epoch() are dropped unprocessed
  /// (Effects::stale_drop) — see HierAutomaton::on_message.
  Effects on_message(const proto::Message& message);

  /// Applies one crash-recovery fence (docs/recovery.md): enters
  /// fence.epoch, seats the token at fence.new_root and rebuilds the
  /// distributed FIFO waiting list from fence.queue (the surviving
  /// requesters, in grant order). The pre-crash probable-owner tree and
  /// next pointers are discarded. Note the runtime must transmit the
  /// resulting messages: an idle re-elected root immediately passes the
  /// regenerated token to the first waiter. No-op when fence.epoch is not
  /// newer than recovery_epoch().
  Effects install_fence(const proto::EpochFence& fence);

  // ---- Introspection ----

  NodeId self() const { return self_; }
  /// Recovery epoch this automaton operates in (0 before any recovery).
  std::uint32_t recovery_epoch() const { return recovery_epoch_; }
  /// True if the token currently rests at this node.
  bool has_token() const { return has_token_; }
  /// True while inside the critical section.
  bool in_cs() const { return in_cs_; }
  /// True while waiting for the token.
  bool requesting() const { return requesting_; }
  /// Sequence number of the outstanding request (valid while requesting();
  /// requests never overlap, so it is the last issued seq).
  std::uint64_t pending_seq() const { return next_seq_ - 1; }
  /// Probable owner link; none when this node believes itself the root
  /// (i.e. it was the last requester it knows of).
  NodeId probable_owner() const { return owner_; }
  /// Successor in the distributed waiting list; none if no one queued here.
  NodeId next() const { return next_; }
  /// One-line state dump for traces and test diagnostics.
  std::string describe() const;

  /// Complete canonical state serialization (model-checker dedup).
  std::string fingerprint() const;

 private:
  void handle_request(const proto::NaimiRequest& request, Effects& fx);
  void handle_token(Effects& fx);
  /// `request` stamps the message's end-to-end RequestId, carried for
  /// observability (spans join token hand-offs to the requests they serve).
  void send(NodeId to, proto::Payload payload, Effects& fx,
            proto::RequestId request = proto::RequestId::none()) const;

  const NodeId self_;
  const LockId lock_;

  NodeId owner_;  ///< probable owner; none iff this node is the tree root
  NodeId next_;   ///< successor in the distributed FIFO list
  /// seq of the request that made next_ our successor; stamps the RequestId
  /// on the token hand-off so the transfer is attributable to that request.
  std::uint64_t next_req_seq_ = 0;
  bool has_token_ = false;
  bool in_cs_ = false;
  bool requesting_ = false;
  /// Starts at 1: seq 0 is the "unset" value in RequestIds (mirrors
  /// HierAutomaton's convention).
  std::uint64_t next_seq_ = 1;
  /// Recovery epoch (docs/recovery.md): stamped onto every outgoing
  /// message; mismatched incoming messages are dropped. Advanced only by
  /// install_fence().
  std::uint32_t recovery_epoch_ = 0;
};

}  // namespace hlock::naimi
