#include "telemetry/text_parse.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <string_view>
#include <unordered_map>

namespace hlock::telemetry {
namespace {

// The label block may contain spaces inside quoted values, so the
// name/value split point is the first space *outside* braces.
std::size_t value_split(std::string_view line) {
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) {
      in_quotes = !in_quotes;
    } else if (c == ' ' && !in_quotes) {
      return i;
    }
  }
  return std::string_view::npos;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

// Extracts the value of label `key` from a raw `{k="v",...}` block;
// empty when absent. Good enough for le="..." (values we emit ourselves).
std::string label_value(const std::string& labels, std::string_view key) {
  std::string needle(key);
  needle += "=\"";
  const auto at = labels.find(needle);
  if (at == std::string::npos) {
    return {};
  }
  const auto start = at + needle.size();
  const auto end = labels.find('"', start);
  if (end == std::string::npos) {
    return {};
  }
  return labels.substr(start, end - start);
}

// The histogram identity a `_bucket` series belongs to: the base family
// (suffix stripped) plus its labels minus the `le` pair — the same key the
// `_count` series of that histogram produces, so the +Inf and
// count-consistency checks line up.
std::string without_le(const ParsedSeries& series) {
  std::string base = series.family.substr(0, series.family.size() - 7);
  const auto at = series.labels.find("le=\"");
  if (at == std::string::npos) {
    return base + series.labels;
  }
  std::string labels = series.labels;
  auto cut_from = at;
  if (cut_from > 0 && labels[cut_from - 1] == ',') {
    --cut_from;
  }
  const auto close = labels.find('"', at + 4);
  auto cut_to = close == std::string::npos ? labels.size() : close + 1;
  labels.erase(cut_from, cut_to - cut_from);
  if (labels == "{}") {
    labels.clear();
  }
  return base + labels;
}

}  // namespace

const ParsedSeries* ParsedExposition::find(const std::string& name) const {
  for (const ParsedSeries& s : series) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

double ParsedExposition::prefixed_sum(const std::string& prefix) const {
  double total = 0.0;
  for (const ParsedSeries& s : series) {
    if (s.name.rfind(prefix, 0) == 0) {
      total += s.value;
    }
  }
  return total;
}

ParsedExposition parse_exposition(const std::string& text) {
  ParsedExposition out;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto eol = text.find('\n', pos);
    std::string_view line(text.data() + pos, (eol == std::string::npos
                                                  ? text.size()
                                                  : eol) -
                                                 pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // `# TYPE family type`; HELP and other comments pass through.
      constexpr std::string_view kType = "# TYPE ";
      if (line.rfind(kType, 0) == 0) {
        const std::string_view rest = line.substr(kType.size());
        const auto space = rest.find(' ');
        if (space == std::string_view::npos) {
          out.errors.push_back("line " + std::to_string(line_no) +
                               ": malformed TYPE line");
          continue;
        }
        const std::string family(trim(rest.substr(0, space)));
        const std::string type(trim(rest.substr(space + 1)));
        if (out.types.count(family) != 0 && out.types[family] != type) {
          out.errors.push_back("line " + std::to_string(line_no) +
                               ": family '" + family +
                               "' re-declared with type '" + type + "'");
        }
        out.types[family] = type;
      }
      continue;
    }
    const auto split = value_split(line);
    if (split == std::string_view::npos || split == 0) {
      out.errors.push_back("line " + std::to_string(line_no) +
                           ": no value separator");
      continue;
    }
    ParsedSeries series;
    series.name = std::string(trim(line.substr(0, split)));
    const std::string value_text(trim(line.substr(split + 1)));
    char* end = nullptr;
    series.value = std::strtod(value_text.c_str(), &end);
    if (end == value_text.c_str() || *end != '\0') {
      out.errors.push_back("line " + std::to_string(line_no) +
                           ": unparseable value '" + value_text + "'");
      continue;
    }
    const auto brace = series.name.find('{');
    if (brace == std::string::npos) {
      series.family = series.name;
    } else {
      series.family = series.name.substr(0, brace);
      series.labels = series.name.substr(brace);
      if (series.labels.back() != '}') {
        out.errors.push_back("line " + std::to_string(line_no) +
                             ": unterminated label block");
        continue;
      }
    }
    out.series.push_back(std::move(series));
  }
  return out;
}

std::vector<std::string> check_exposition(const ParsedExposition& parsed) {
  std::vector<std::string> violations = parsed.errors;

  std::set<std::string> seen;
  for (const ParsedSeries& s : parsed.series) {
    if (!seen.insert(s.name).second) {
      violations.push_back("duplicate series: " + s.name);
    }
  }

  // Histogram families declare their base name; samples arrive with
  // _bucket/_sum/_count suffixes. Strip a known suffix before the TYPE
  // lookup so those resolve to their family.
  const auto type_of = [&parsed](const ParsedSeries& s) -> std::string {
    for (const std::string_view suffix :
         {std::string_view("_bucket"), std::string_view("_sum"),
          std::string_view("_count")}) {
      if (s.family.size() > suffix.size() &&
          s.family.compare(s.family.size() - suffix.size(), suffix.size(),
                           suffix) == 0) {
        const std::string base =
            s.family.substr(0, s.family.size() - suffix.size());
        const auto it = parsed.types.find(base);
        if (it != parsed.types.end() && it->second == "histogram") {
          return it->second;
        }
      }
    }
    const auto it = parsed.types.find(s.family);
    return it == parsed.types.end() ? std::string() : it->second;
  };

  // Per-histogram bucket sequences, in file order, plus their _count.
  struct BucketRun {
    std::vector<std::pair<double, double>> le_and_value;
    double count = -1.0;
    bool has_inf = false;
  };
  std::unordered_map<std::string, BucketRun> histograms;

  for (const ParsedSeries& s : parsed.series) {
    const std::string type = type_of(s);
    if (type.empty()) {
      violations.push_back("series without TYPE line: " + s.name);
      continue;
    }
    if (type == "counter" && s.value < 0.0) {
      violations.push_back("negative counter: " + s.name);
    }
    if (type != "histogram") {
      continue;
    }
    if (s.family.size() > 7 &&
        s.family.compare(s.family.size() - 7, 7, "_bucket") == 0) {
      BucketRun& run = histograms[without_le(s)];
      const std::string le = label_value(s.labels, "le");
      if (le == "+Inf") {
        run.has_inf = true;
        run.le_and_value.emplace_back(
            std::numeric_limits<double>::infinity(), s.value);
      } else {
        run.le_and_value.emplace_back(std::strtod(le.c_str(), nullptr),
                                      s.value);
      }
    } else if (s.family.size() > 6 &&
               s.family.compare(s.family.size() - 6, 6, "_count") == 0) {
      histograms[s.family.substr(0, s.family.size() - 6) + s.labels].count =
          s.value;
    }
  }

  for (const auto& [key, run] : histograms) {
    if (!run.has_inf) {
      violations.push_back("histogram missing +Inf bucket: " + key);
    }
    for (std::size_t i = 1; i < run.le_and_value.size(); ++i) {
      if (run.le_and_value[i].first < run.le_and_value[i - 1].first) {
        violations.push_back("histogram buckets out of order: " + key);
        break;
      }
      if (run.le_and_value[i].second < run.le_and_value[i - 1].second) {
        violations.push_back("histogram buckets not cumulative: " + key);
        break;
      }
    }
    if (run.has_inf && run.count >= 0.0 &&
        run.le_and_value.back().second != run.count) {
      violations.push_back("histogram _count != +Inf bucket: " + key);
    }
  }

  return violations;
}

std::vector<std::string> check_monotone(const ParsedExposition& earlier,
                                        const ParsedExposition& later) {
  std::vector<std::string> violations;
  std::unordered_map<std::string, double> before;
  for (const ParsedSeries& s : earlier.series) {
    const auto it = earlier.types.find(s.family);
    if (it != earlier.types.end() && it->second == "counter") {
      before[s.name] = s.value;
    }
  }
  for (const ParsedSeries& s : later.series) {
    const auto it = before.find(s.name);
    if (it != before.end() && s.value < it->second) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " (%g -> %g)", it->second, s.value);
      violations.push_back("counter decreased: " + s.name + buf);
    }
  }
  return violations;
}

}  // namespace hlock::telemetry
