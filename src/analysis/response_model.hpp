// Analytical response-time model of the hierarchical protocol.
//
// The paper (§4.2) explains its latency curves via a model "in terms of
// network latencies and queuing delays" (derived in its journal version):
// the initial superlinear region is queueing-dominated, after which
// response time grows linearly with the node count. This module derives
// the same shape from first principles with the classic operational laws
// of closed queueing networks:
//
//   * Each node cycles: think (idle + non-conflicting critical work) ->
//     acquire (message transit + possible queueing) -> critical section.
//   * Two concurrent operations serialize only if they conflict; the
//     conflict probability is computed EXACTLY from the mode mix, the
//     operation plans and the compatibility table (Table 1a), including
//     the 1/entries chance of colliding on the same ticket entry.
//   * The serialized portion of the workload forms a single logical
//     server with per-operation demand D = conflict x cs. The closed-
//     network response-time bounds give
//         R(n) >= max(D, n*D - Z),   Z = think time,
//     which is flat for small n and exactly linear beyond the knee
//     n* = (Z + D) / D — the paper's observed behavior, with the knee
//     moving right as the non-critical : critical ratio grows.
//
// The hard bound is smoothed with the machine-repairman fixed point, which
// keeps the same linear asymptote while giving the gradual pre-knee rise
// observed in simulation.
//
// The model is deliberately coarse: it ignores path-length growth and —
// most visibly — freeze amplification (a queued whole-table write briefly
// serializes even compatible readers, Rule 6), so it under-predicts the
// level in the transition region while matching the asymptotic slope
// (one conflict-weighted critical section per added node). Its job is to
// predict SHAPES — the model-vs-simulation benchmark (bench/model_vs_sim)
// quantifies how well it does.
#pragma once

#include <cstddef>

#include "workload/mode_mix.hpp"

namespace hlock::analysis {

/// Inputs of one prediction (the Fig. 10 experiment's parameters).
struct ModelParams {
  std::size_t nodes = 16;
  double cs_ms = 15.0;
  double idle_ms = 150.0;
  /// Mean one-way network latency.
  double net_ms = 0.15;
  workload::ModeMix mix = workload::ModeMix::paper();
  std::size_t entries = 6;
};

/// Outputs; all times in milliseconds.
struct ModelPrediction {
  /// Probability that two random operations conflict somewhere in their
  /// lock plans (exact, from Table 1a and the op plans).
  double conflict_probability = 0;
  /// Serialized demand per operation: conflict x cs.
  double demand_ms = 0;
  /// Think time per cycle: idle plus the non-serialized critical work.
  double think_ms = 0;
  /// Node count at which the linear regime begins.
  double knee_nodes = 0;
  /// Message-transit component of the response time.
  double transit_ms = 0;
  /// Queueing component (operational-law lower bound).
  double queueing_ms = 0;
  /// Predicted mean operation response time (acquire to CS entry).
  double response_ms = 0;
};

/// Probability that two independent operations drawn from `mix` over
/// `entries` table entries conflict (hierarchical variant plans).
double conflict_probability(const workload::ModeMix& mix,
                            std::size_t entries);

/// Evaluates the model. See file comment for the derivation.
ModelPrediction predict(const ModelParams& params);

}  // namespace hlock::analysis
