#include "workload/mode_mix.hpp"

#include <cmath>

#include "util/check.hpp"

namespace hlock::workload {

bool ModeMix::valid() const {
  if (ir < 0 || r < 0 || u < 0 || iw < 0 || w < 0) return false;
  return std::fabs(ir + r + u + iw + w - 1.0) < 1e-9;
}

LockMode ModeMix::sample(Rng& rng) const {
  HLOCK_REQUIRE(valid(), "mode mix probabilities must sum to 1");
  double draw = rng.uniform01();
  if ((draw -= ir) < 0) return LockMode::kIR;
  if ((draw -= r) < 0) return LockMode::kR;
  if ((draw -= u) < 0) return LockMode::kU;
  if ((draw -= iw) < 0) return LockMode::kIW;
  return LockMode::kW;
}

}  // namespace hlock::workload
