// Lock access modes of the hierarchical protocol (paper §3.1).
//
// The five modes follow the CORBA Concurrency Service / classic
// multi-granularity locking model: Intent Read (IR), Read (R), Upgrade (U),
// Intent Write (IW) and Write (W), plus the "no lock" pseudo-mode NL used
// for empty owned/held/pending fields. Mode *semantics* (compatibility,
// strength, grant/queue/freeze tables) live in core/mode_tables.hpp; this
// header only defines the wire-visible vocabulary.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace hlock::proto {

/// A lock access mode. Numeric values are wire-stable and index the rule
/// tables; kNL sorts first so iteration over "real" modes can skip it.
enum class LockMode : std::uint8_t {
  kNL = 0,  ///< No lock (the empty mode, "–" in the paper's tables).
  kIR = 1,  ///< Intent Read: announces reads at a finer granularity below.
  kR = 2,   ///< Read: shared access.
  kU = 3,   ///< Upgrade: exclusive read, convertible to W without release.
  kIW = 4,  ///< Intent Write: announces writes at a finer granularity below.
  kW = 5,   ///< Write: exclusive access.
};

/// Number of distinct LockMode values including kNL.
inline constexpr std::size_t kModeCount = 6;

/// The five real (non-NL) modes in table order; handy for sweeps and tests.
inline constexpr std::array<LockMode, 5> kRealModes = {
    LockMode::kIR, LockMode::kR, LockMode::kU, LockMode::kIW, LockMode::kW};

/// All six modes including kNL.
inline constexpr std::array<LockMode, 6> kAllModes = {
    LockMode::kNL, LockMode::kIR, LockMode::kR,
    LockMode::kU,  LockMode::kIW, LockMode::kW};

/// Table/array index of a mode (its numeric value).
constexpr std::size_t mode_index(LockMode m) {
  return static_cast<std::size_t>(m);
}

/// "NL", "IR", "R", "U", "IW" or "W".
std::string to_string(LockMode m);

/// A small value-type set of lock modes (used for frozen-mode sets and the
/// rule tables). Internally a 6-bit mask.
class ModeSet {
 public:
  constexpr ModeSet() = default;

  /// Builds a set from an explicit list, e.g. ModeSet::of({kIR, kR}).
  static constexpr ModeSet of(std::initializer_list<LockMode> modes) {
    ModeSet s;
    for (LockMode m : modes) s.insert(m);
    return s;
  }

  /// The set of all five real modes (excludes kNL).
  static constexpr ModeSet all_real() {
    return of({LockMode::kIR, LockMode::kR, LockMode::kU, LockMode::kIW,
               LockMode::kW});
  }

  constexpr bool contains(LockMode m) const {
    return (bits_ & bit(m)) != 0;
  }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr void insert(LockMode m) { bits_ |= bit(m); }
  constexpr void erase(LockMode m) { bits_ &= static_cast<std::uint8_t>(~bit(m)); }
  constexpr void clear() { bits_ = 0; }

  constexpr ModeSet operator|(ModeSet o) const {
    return ModeSet{static_cast<std::uint8_t>(bits_ | o.bits_)};
  }
  constexpr ModeSet operator&(ModeSet o) const {
    return ModeSet{static_cast<std::uint8_t>(bits_ & o.bits_)};
  }
  constexpr ModeSet& operator|=(ModeSet o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr bool operator==(const ModeSet&) const = default;

  /// Number of modes in the set.
  constexpr int size() const {
    int n = 0;
    for (LockMode m : kAllModes)
      if (contains(m)) ++n;
    return n;
  }

  /// Raw bit mask; wire representation and hashing.
  constexpr std::uint8_t bits() const { return bits_; }
  /// Reconstructs a set from its wire mask (top bits ignored).
  static constexpr ModeSet from_bits(std::uint8_t b) {
    return ModeSet{static_cast<std::uint8_t>(b & 0x3F)};
  }

 private:
  constexpr explicit ModeSet(std::uint8_t b) : bits_(b) {}
  static constexpr std::uint8_t bit(LockMode m) {
    return static_cast<std::uint8_t>(1u << mode_index(m));
  }
  std::uint8_t bits_ = 0;
};

/// "{IR,R,U}" — for logs and diagnostics.
std::string to_string(ModeSet s);

}  // namespace hlock::proto
