// Tests of the in-process transport and its mailbox primitive.
#include "transport/inproc_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "transport/mailbox.hpp"
#include "util/check.hpp"

namespace hlock::transport {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NaimiToken;
using proto::NodeId;

Message make_message(std::uint32_t from, std::uint32_t to) {
  return Message{NodeId{from}, NodeId{to}, LockId{0},
                 proto::HierRequest{NodeId{from}, LockMode::kR, 0}};
}

TEST(Mailbox, DeliversInDeliveryTimeOrder) {
  Mailbox box;
  const auto now = Mailbox::Clock::now();
  box.push(make_message(2, 0), now + std::chrono::microseconds(200));
  box.push(make_message(1, 0), now + std::chrono::microseconds(100));
  const auto first = box.pop();
  const auto second = box.pop();
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->from, NodeId{1});
  EXPECT_EQ(second->from, NodeId{2});
}

TEST(Mailbox, PopBlocksUntilMessageMatures) {
  Mailbox box;
  const auto start = Mailbox::Clock::now();
  box.push(make_message(1, 0), start + std::chrono::milliseconds(20));
  const auto message = box.pop();
  ASSERT_TRUE(message.has_value());
  EXPECT_GE(Mailbox::Clock::now() - start, std::chrono::milliseconds(19));
}

TEST(Mailbox, PopUntilTimesOut) {
  Mailbox box;
  const auto result =
      box.pop_until(Mailbox::Clock::now() + std::chrono::milliseconds(10));
  EXPECT_FALSE(result.has_value());
}

TEST(Mailbox, PopUntilDeliversMessageDueExactlyAtDeadline) {
  // Deadline edge: when the head's delivery time coincides with the
  // caller's deadline, the matured message wins over the timeout.
  Mailbox box;
  const auto deadline =
      Mailbox::Clock::now() + std::chrono::milliseconds(25);
  box.push(make_message(1, 0), deadline);
  const auto message = box.pop_until(deadline);
  ASSERT_TRUE(message.has_value()) << "due == deadline returned timeout";
  EXPECT_EQ(message->from, NodeId{1});
}

TEST(Mailbox, PopUntilTimesOutWhenHeadMaturesAfterDeadline) {
  Mailbox box;
  const auto deadline =
      Mailbox::Clock::now() + std::chrono::milliseconds(15);
  box.push(make_message(1, 0), deadline + std::chrono::milliseconds(30));
  EXPECT_FALSE(box.pop_until(deadline).has_value());
  // The unripe message stays deliverable afterwards.
  EXPECT_TRUE(box.pop().has_value());
}

TEST(Mailbox, CloseWakesBlockedConsumer) {
  Mailbox box;
  std::thread consumer([&box] {
    const auto result = box.pop();
    EXPECT_FALSE(result.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  box.close();
  consumer.join();
}

TEST(Mailbox, CloseDropsNewPushesButDrainsExisting) {
  Mailbox box;
  box.push(make_message(1, 0), Mailbox::Clock::now());
  box.close();
  box.push(make_message(2, 0), Mailbox::Clock::now());
  EXPECT_TRUE(box.pop().has_value());
  EXPECT_FALSE(box.pop().has_value());
  EXPECT_EQ(box.pushed(), 1u);
}

TEST(Mailbox, CrossThreadProducerConsumer) {
  Mailbox box;
  constexpr int kMessages = 500;
  std::thread producer([&box] {
    for (int i = 0; i < kMessages; ++i) {
      box.push(make_message(1, 0), Mailbox::Clock::now());
    }
    box.close();
  });
  int received = 0;
  while (box.pop().has_value()) ++received;
  producer.join();
  EXPECT_EQ(received, kMessages);
}

TEST(InProcTransport, RoutesToDestination) {
  InProcTransport transport{InProcOptions{3}};
  transport.send(make_message(0, 2));
  const auto received =
      transport.recv_for(NodeId{2}, std::chrono::milliseconds(100));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->from, NodeId{0});
  EXPECT_EQ(transport.messages_sent(), 1u);
  // Nothing for node 1.
  EXPECT_FALSE(
      transport.recv_for(NodeId{1}, std::chrono::milliseconds(1)).has_value());
}

TEST(InProcTransport, CodecRoundTripPreservesAllPayloads) {
  InProcTransport transport{InProcOptions{2}};
  const Message token{NodeId{0}, NodeId{1}, LockId{7},
                      proto::HierToken{LockMode::kW, LockMode::kIR,
                                       {proto::QueuedRequest{
                                           NodeId{0}, LockMode::kR, 3}}}};
  transport.send(token);
  const auto received =
      transport.recv_for(NodeId{1}, std::chrono::milliseconds(100));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, token);
}

TEST(InProcTransport, ChannelFifoUnderRandomLatency) {
  InProcOptions options;
  options.node_count = 2;
  options.latency = DurationDist::uniform(SimTime::us(300), 0.9);
  InProcTransport transport{options};
  constexpr std::uint64_t kCount = 64;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    transport.send(Message{NodeId{0}, NodeId{1}, LockId{0},
                           proto::NaimiRequest{NodeId{0}, i}});
  }
  for (std::uint64_t i = 0; i < kCount; ++i) {
    const auto received =
        transport.recv_for(NodeId{1}, std::chrono::milliseconds(500));
    ASSERT_TRUE(received.has_value());
    const auto* request =
        std::get_if<proto::NaimiRequest>(&received->payload);
    ASSERT_NE(request, nullptr);
    EXPECT_EQ(request->seq, i) << "FIFO violated on the channel";
  }
}

TEST(InProcTransport, UnknownDestinationRejected) {
  InProcTransport transport{InProcOptions{2}};
  EXPECT_THROW(transport.send(make_message(0, 9)), UsageError);
}

TEST(Mailbox, PushAllPreservesBurstOrder) {
  Mailbox box;
  std::vector<Message> burst;
  for (std::uint32_t i = 1; i <= 8; ++i) burst.push_back(make_message(i, 0));
  box.push_all(std::move(burst), Mailbox::Clock::now());
  EXPECT_EQ(box.pushed(), 8u);
  for (std::uint32_t i = 1; i <= 8; ++i) {
    const auto message = box.pop();
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(message->from, NodeId{i});
  }
}

TEST(Mailbox, PopAllReadyDrainsOnlyMaturedMessages) {
  Mailbox box;
  const auto now = Mailbox::Clock::now();
  box.push(make_message(1, 0), now);
  box.push(make_message(2, 0), now);
  // Not yet deliverable: must stay behind after the drain.
  box.push(make_message(3, 0), now + std::chrono::seconds(60));
  const auto drained = box.pop_all_ready();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].from, NodeId{1});
  EXPECT_EQ(drained[1].from, NodeId{2});
  EXPECT_FALSE(
      box.pop_until(Mailbox::Clock::now() + std::chrono::milliseconds(5))
          .has_value());
}

TEST(Mailbox, PopAllReadyReturnsEmptyOnlyWhenClosedAndDrained) {
  Mailbox box;
  box.push(make_message(1, 0), Mailbox::Clock::now());
  box.close();
  EXPECT_EQ(box.pop_all_ready().size(), 1u);
  EXPECT_TRUE(box.pop_all_ready().empty());
}

TEST(Mailbox, PopAllReadyBlocksUntilFirstMessageMatures) {
  Mailbox box;
  const auto start = Mailbox::Clock::now();
  box.push(make_message(1, 0), start + std::chrono::milliseconds(20));
  const auto drained = box.pop_all_ready();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_GE(Mailbox::Clock::now() - start, std::chrono::milliseconds(19));
}

// send_batch must look identical to per-message send from the receiver's
// point of view, with batching on or off. The protocol layers never learn
// which path shipped their messages.
class InProcBatchTest : public ::testing::TestWithParam<bool> {};

INSTANTIATE_TEST_SUITE_P(
    BatchingOnOff, InProcBatchTest, ::testing::Values(true, false),
    [](const ::testing::TestParamInfo<bool>& param_info) {
      return std::string{param_info.param ? "Batched" : "PerMessage"};
    });

TEST_P(InProcBatchTest, SendBatchPreservesChannelFifo) {
  InProcOptions options;
  options.node_count = 2;
  options.batching = GetParam();
  InProcTransport transport{options};
  std::vector<Message> burst;
  for (std::uint64_t i = 0; i < 32; ++i) {
    burst.push_back(Message{NodeId{0}, NodeId{1}, LockId{0},
                            proto::NaimiRequest{NodeId{0}, i}});
  }
  transport.send_batch(std::move(burst));
  EXPECT_EQ(transport.messages_sent(), 32u);
  std::uint64_t expected = 0;
  while (expected < 32) {
    const auto ready = transport.recv_ready(NodeId{1});
    ASSERT_FALSE(ready.empty()) << "transport drained early";
    for (const auto& message : ready) {
      const auto* request = std::get_if<proto::NaimiRequest>(&message.payload);
      ASSERT_NE(request, nullptr);
      EXPECT_EQ(request->seq, expected++) << "FIFO violated under batching";
    }
  }
}

TEST_P(InProcBatchTest, SendBatchSplitsMixedDestinations) {
  InProcOptions options;
  options.node_count = 3;
  options.batching = GetParam();
  InProcTransport transport{options};
  // Alternating destinations force run boundaries inside the burst.
  transport.send_batch({make_message(0, 1), make_message(0, 2),
                        make_message(0, 1), make_message(0, 2),
                        make_message(0, 1)});
  std::size_t to_one = 0;
  std::size_t to_two = 0;
  while (to_one < 3) to_one += transport.recv_ready(NodeId{1}).size();
  while (to_two < 2) to_two += transport.recv_ready(NodeId{2}).size();
  EXPECT_EQ(to_one, 3u);
  EXPECT_EQ(to_two, 2u);
  EXPECT_EQ(transport.messages_sent(), 5u);
}

TEST_P(InProcBatchTest, SendBatchRoundTripsEveryPayloadIntact) {
  InProcOptions options;
  options.node_count = 2;
  options.batching = GetParam();
  InProcTransport transport{options};
  const Message token{NodeId{0}, NodeId{1}, LockId{7},
                      proto::HierToken{LockMode::kW, LockMode::kIR,
                                       {proto::QueuedRequest{
                                           NodeId{0}, LockMode::kR, 3}}}};
  const Message release{NodeId{0}, NodeId{1}, LockId{7},
                        proto::HierRelease{LockMode::kNL, 2}};
  transport.send_batch({token, release});
  std::vector<Message> received;
  while (received.size() < 2) {
    auto ready = transport.recv_ready(NodeId{1});
    received.insert(received.end(), ready.begin(), ready.end());
  }
  EXPECT_EQ(received[0], token);
  EXPECT_EQ(received[1], release);
}

TEST(InProcTransport, BatchingCountsEncodedBytes) {
  InProcTransport transport{InProcOptions{2}};
  transport.send_batch({make_message(0, 1), make_message(0, 1)});
  // Batch envelope: 1-byte marker + u32 count + per message u32 length
  // prefix on top of each encoded message (>= 34 bytes each).
  EXPECT_GE(transport.bytes_sent(), 2u * (4u + 34u) + 5u);
}

TEST(InProcTransport, EmptySendBatchIsANoOp) {
  InProcTransport transport{InProcOptions{2}};
  transport.send_batch({});
  EXPECT_EQ(transport.messages_sent(), 0u);
  EXPECT_EQ(transport.bytes_sent(), 0u);
}

TEST(InProcTransport, RecvReadyReturnsEmptyAfterShutdown) {
  InProcTransport transport{InProcOptions{2}};
  transport.send(make_message(0, 1));
  transport.shutdown();
  // Pending messages drain first; only then does empty mean "shut down".
  std::size_t drained = 0;
  while (true) {
    const auto ready = transport.recv_ready(NodeId{1});
    if (ready.empty()) break;
    drained += ready.size();
  }
  EXPECT_EQ(drained, 1u);
}

TEST(InProcTransport, ShutdownUnblocksReceivers) {
  InProcTransport transport{InProcOptions{2}};
  std::thread receiver([&transport] {
    EXPECT_FALSE(transport.recv(NodeId{1}).has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  transport.shutdown();
  receiver.join();
}

}  // namespace
}  // namespace hlock::transport
