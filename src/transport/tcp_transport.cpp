#include "transport/tcp_transport.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "transport/tcp_socket.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::transport {

TcpTransport::TcpTransport(std::size_t node_count) {
  HLOCK_REQUIRE(node_count >= 1, "a transport needs at least one node");
  nodes_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    auto endpoint = std::make_unique<NodeEndpoint>();
    endpoint->listen_fd = listen_loopback(0);
    endpoint->port = local_port(endpoint->listen_fd);
    nodes_.push_back(std::move(endpoint));
  }
  for (std::size_t i = 0; i < node_count; ++i) {
    nodes_[i]->acceptor = std::thread([this, i] { acceptor_loop(i); });
  }
}

TcpTransport::~TcpTransport() {
  shutdown();
  for (auto& endpoint : nodes_) {
    if (endpoint->acceptor.joinable()) endpoint->acceptor.join();
  }
  std::lock_guard<std::mutex> guard(readers_mutex_);
  for (std::thread& reader : readers_) {
    if (reader.joinable()) reader.join();
  }
}

std::uint16_t TcpTransport::port_of(proto::NodeId node) const {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return nodes_[node.value()]->port;
}

void TcpTransport::acceptor_loop(std::size_t node) {
  for (;;) {
    const int fd = ::accept(nodes_[node]->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed during shutdown
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::lock_guard<std::mutex> guard(readers_mutex_);
    readers_.emplace_back([this, node, fd] { reader_loop(node, fd); });
  }
}

void TcpTransport::reader_loop(std::size_t node, int fd) {
  while (auto message = read_frame(fd)) {
    if (message->to.value() != node) {
      HLOCK_LOG(kWarn, "tcp: frame addressed to " << to_string(message->to)
                                                  << " arrived at node "
                                                  << node);
      break;
    }
    nodes_[node]->inbox.push(std::move(*message), Mailbox::Clock::now());
  }
  ::close(fd);
}

int TcpTransport::channel_fd(std::uint32_t /*from*/, std::uint32_t to) {
  // Caller holds the channel's send mutex; this only creates the socket.
  return connect_loopback(nodes_[to]->port);
}

void TcpTransport::send(const proto::Message& message) {
  if (stopping_.load()) return;
  HLOCK_REQUIRE(message.to.value() < nodes_.size(), "unknown node id");
  HLOCK_REQUIRE(!message.from.is_none(), "message without a sender");

  Channel* channel = nullptr;
  {
    std::lock_guard<std::mutex> guard(channels_mutex_);
    auto& slot = channels_[{message.from.value(), message.to.value()}];
    if (!slot) slot = std::make_unique<Channel>();
    channel = slot.get();
  }

  std::lock_guard<std::mutex> guard(channel->send_mutex);
  if (channel->fd < 0) {
    channel->fd = channel_fd(message.from.value(), message.to.value());
  }
  if (!write_frame(channel->fd, message)) {
    ::close(channel->fd);
    channel->fd = -1;
    if (!stopping_.load()) {
      throw UsageError("tcp: send to node " +
                       std::to_string(message.to.value()) + " failed");
    }
    return;
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<proto::Message> TcpTransport::recv(proto::NodeId node) {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return nodes_[node.value()]->inbox.pop();
}

std::optional<proto::Message> TcpTransport::recv_for(
    proto::NodeId node, std::chrono::milliseconds timeout) {
  HLOCK_REQUIRE(node.value() < nodes_.size(), "unknown node id");
  return nodes_[node.value()]->inbox.pop_until(Mailbox::Clock::now() +
                                               timeout);
}

void TcpTransport::shutdown() {
  if (stopping_.exchange(true)) return;
  for (auto& endpoint : nodes_) {
    // Closing the listener wakes the acceptor; shutdown() on it first is
    // portable across accept() implementations.
    ::shutdown(endpoint->listen_fd, SHUT_RDWR);
    ::close(endpoint->listen_fd);
    endpoint->inbox.close();
  }
  std::lock_guard<std::mutex> guard(channels_mutex_);
  for (auto& [key, channel] : channels_) {
    std::lock_guard<std::mutex> send_guard(channel->send_mutex);
    if (channel->fd >= 0) {
      ::shutdown(channel->fd, SHUT_RDWR);
      ::close(channel->fd);
      channel->fd = -1;
    }
  }
}

}  // namespace hlock::transport
