// Protocol messages.
//
// Both protocols (the hierarchical multi-mode protocol of the paper and the
// Naimi-Tréhel baseline) communicate exclusively through the Message
// envelope below. Payloads are a closed std::variant so transports and the
// simulator can route and count messages without knowing protocol details,
// while automatons dispatch exhaustively (a new payload type is a compile
// error in every switch).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"

namespace hlock::proto {

/// One request waiting in a local queue: who wants the lock, in which mode
/// and at which priority. `seq` is the issuer-side sequence number, carried
/// for diagnostics and FIFO-fairness checks in tests (the queue order
/// itself defines FIFO within a priority level).
///
/// `priority` (0 = default, larger = more urgent) implements the prioritized
/// token-based extension of Mueller's prior work the paper builds on
/// (its refs [15, 16]): queues order by priority first, FIFO within equal
/// priorities. All-zero priorities reduce to the paper's pure FIFO.
struct QueuedRequest {
  NodeId requester;
  LockMode mode = LockMode::kNL;
  std::uint64_t seq = 0;
  std::uint8_t priority = 0;

  bool operator==(const QueuedRequest&) const = default;
};

// ---- Hierarchical protocol payloads (paper §3.2-§3.4) ----

/// A lock request travelling up the probable-owner (parent) chain toward a
/// node able to grant it (Rules 2-4). `requester` is the origin, which may
/// differ from the envelope sender when the request has been forwarded.
/// `priority` as in QueuedRequest.
struct HierRequest {
  NodeId requester;
  LockMode mode = LockMode::kNL;
  std::uint64_t seq = 0;
  std::uint8_t priority = 0;

  bool operator==(const HierRequest&) const = default;
};

/// A copy grant (Rule 3): the sender admits the requester into its copyset
/// in `mode`; the requester becomes a child of the sender.
///
/// `epoch` versions the parent-child relationship: the granter increments
/// it on every grant and stamps its copyset entry; the child stamps all
/// subsequent RELEASE messages with it. A release that crosses a newer
/// grant in flight carries an older epoch and is discarded by the parent —
/// without this, a weaken-to-NL release generated just before a re-grant
/// would make the parent evict a child that holds the lock.
/// `entry_mode` is the resulting copyset entry (stronger_of of the previous
/// entry and `mode`), so the child can mirror the parent's record exactly.
struct HierGrant {
  LockMode mode = LockMode::kNL;
  LockMode entry_mode = LockMode::kNL;
  std::uint32_t epoch = 0;

  bool operator==(const HierGrant&) const = default;
};

/// Token transfer (Rule 3 case 2, owned < requested): the requester becomes
/// the new token node and the parent of the old token node.
struct HierToken {
  /// Mode granted to the requester (its pending mode).
  LockMode granted_mode = LockMode::kNL;
  /// The old token node's owned mode after the handover; kNL if it neither
  /// holds the lock nor has holding children, in which case it does not
  /// join the new token's copyset.
  LockMode sender_owned = LockMode::kNL;
  /// The old token's local queue, in FIFO order; responsibility for these
  /// requests moves with the token.
  std::vector<QueuedRequest> queue;

  bool operator==(const HierToken&) const = default;
};

/// Release notification (Rule 5.2): the sending child's owned mode weakened
/// to `new_owned` (kNL removes it from the parent's copyset). `epoch` is
/// the epoch of the grant that created/refreshed the relationship (see
/// HierGrant); the parent discards releases whose epoch does not match its
/// current entry.
struct HierRelease {
  LockMode new_owned = LockMode::kNL;
  std::uint32_t epoch = 0;

  bool operator==(const HierRelease&) const = default;
};

/// Freeze notification (Rule 6): the receiver must stop granting the listed
/// modes until its own owned mode drains to kNL (or it re-enters a copyset
/// via a fresh grant). Propagated transitively down the copyset.
struct HierFreeze {
  ModeSet modes;

  bool operator==(const HierFreeze&) const = default;
};

// ---- Naimi-Tréhel baseline payloads (paper §2) ----

/// A mutual-exclusion request routed along probable-owner links with path
/// reversal; `requester` queues at the current tail of the distributed list.
struct NaimiRequest {
  NodeId requester;
  std::uint64_t seq = 0;

  bool operator==(const NaimiRequest&) const = default;
};

/// The token: possession is the right to enter the critical section.
struct NaimiToken {
  bool operator==(const NaimiToken&) const = default;
};

/// All payloads a Message can carry.
using Payload = std::variant<HierRequest, HierGrant, HierToken, HierRelease,
                             HierFreeze, NaimiRequest, NaimiToken>;

/// Payload discriminator, used by stats counters and the codec. Values are
/// wire-stable.
enum class MessageKind : std::uint8_t {
  kHierRequest = 0,
  kHierGrant = 1,
  kHierToken = 2,
  kHierRelease = 3,
  kHierFreeze = 4,
  kNaimiRequest = 5,
  kNaimiToken = 6,
};

/// Number of distinct MessageKind values.
inline constexpr std::size_t kMessageKindCount = 7;

/// Returns the discriminator of a payload.
MessageKind kind_of(const Payload& payload);

/// "REQUEST", "GRANT", "TOKEN", "RELEASE", "FREEZE", "NREQUEST", "NTOKEN".
std::string to_string(MessageKind kind);

/// The envelope every transport routes: point-to-point, per-lock.
///
/// Beyond routing, the envelope carries two observability fields that cross
/// the wire with the payload (src/obs): `request`, the application-level
/// lock request this message causally serves (the origin request for
/// REQUEST, the request being satisfied for GRANT/TOKEN; none for RELEASE/
/// FREEZE, which serve no single request), and `lamport`, a Lamport clock
/// stamped by the runtime at send time and merged at receive time so span
/// events from different nodes order causally even under reordering
/// transports. Automatons fill `request`; runtimes own `lamport`.
struct Message {
  NodeId from;
  NodeId to;
  LockId lock;
  Payload payload;
  RequestId request = RequestId::none();
  std::uint64_t lamport = 0;

  bool operator==(const Message&) const = default;
};

/// One-line rendering for traces: "node1->node2 lock0 REQUEST(node1, R)".
std::string to_string(const Message& m);

}  // namespace hlock::proto
