// Per-request causal spans.
//
// Every application-level lock request becomes one RequestSpan: an ordered
// list of phase transitions (issued → queued-local → frozen → forwarded →
// granted → cs-enter → cs-exit) assembled from the structured trace-event
// stream the hierarchical automaton already emits. The SpanCollector is a
// pure consumer — it adds no instrumentation of its own; it joins events
// across nodes by RequestId (the requester/seq pair that the protocol
// already uses to identify requests) and attributes each transition to the
// node that performed it, with the runtime-stamped Lamport timestamp (see
// obs/lamport.hpp) preserving causal order even when transports reorder.
//
// Downstream consumers: the phase-latency breakdown table (p50/p95/max per
// phase interval), the Chrome-trace exporter (obs/chrome_trace.hpp) and the
// flight recorder (obs/flight_recorder.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"
#include "stats/summary.hpp"
#include "trace/event.hpp"
#include "util/sim_time.hpp"
#include "util/sync.hpp"

namespace hlock::obs {

/// Lifecycle phase of a lock request, in nominal order. A request may skip
/// phases (a local grant never queues), and kQueuedLocal/kForwarded may
/// repeat as a request travels the hierarchy; the other phases are recorded
/// once per span (kFrozen on the first freeze only).
enum class Phase : std::uint8_t {
  kIssued = 0,   ///< the requester called request()
  kQueuedLocal,  ///< some node queued the request locally (Rule 4, Q)
  kFrozen,       ///< the queueing node froze the request's mode (Rule 5)
  kForwarded,    ///< some node forwarded the request up/down (Rule 4.1, F)
  kGranted,      ///< a grant/token/local decision granted the mode
  kCsEntered,    ///< the requester entered its critical section
  kCsExited,     ///< the requester released the mode
};

/// Number of distinct Phase values.
inline constexpr std::size_t kPhaseCount = 7;

/// "issued", "queued-local", "frozen", "forwarded", "granted", "cs-enter"
/// or "cs-exit".
std::string to_string(Phase phase);

/// One phase transition, attributed to the node that performed it.
struct SpanEvent {
  Phase phase = Phase::kIssued;
  /// Runtime timestamp of the underlying trace event (simulated or
  /// wall-since-start, depending on the runtime).
  SimTime at{};
  /// Lamport timestamp of the acting node at the transition (0 when the
  /// runtime ran no Lamport clock).
  std::uint64_t lamport = 0;
  /// The node that performed the transition (the queueing node for
  /// kQueuedLocal, the granter for kGranted, the requester for the rest).
  proto::NodeId node;
  bool operator==(const SpanEvent&) const = default;
};

/// The full observed lifecycle of one application-level lock request.
struct RequestSpan {
  proto::RequestId id;
  proto::LockId lock{};
  proto::LockMode mode = proto::LockMode::kNL;
  std::uint8_t priority = 0;
  /// Phase transitions in observation order.
  std::vector<SpanEvent> events;

  /// First event of `phase`, or nullptr if the span never reached it.
  const SpanEvent* find(Phase phase) const;
  /// True once the request released (reached kCsExited).
  bool complete() const { return find(Phase::kCsExited) != nullptr; }
};

/// One row of the phase-latency breakdown: an interval between two
/// successive observed phases ("issued->granted") and its exact summary
/// statistics in milliseconds.
struct PhaseStats {
  std::string interval;
  stats::Summary summary_ms;
};

/// Assembles RequestSpans from a structured trace-event stream.
///
/// Internally synchronized (same contract as trace::TraceRecorder):
/// collectors are wired as ThreadCluster event sinks and queried by driver
/// threads, so every observe/query takes the collector's mutex.
class SpanCollector {
 public:
  /// Consumes one structured event. Events that do not concern a request's
  /// lifecycle (messages, copyset changes, notes) are ignored.
  void observe(const trace::TraceEvent& event);

  /// Snapshot of all spans, in first-observation order.
  std::vector<RequestSpan> spans() const;

  /// Number of spans observed so far.
  std::size_t span_count() const;

  /// Number of spans that reached kCsExited.
  std::size_t completed_count() const;

  /// issued → cs-enter latency in milliseconds for every span that entered
  /// its critical section, in issue order. Definitionally the same quantity
  /// as stats::LatencyRecorder's "request latency" samples, which makes the
  /// two reconcilable run-for-run.
  std::vector<double> acquire_latencies_ms() const;

  /// Summary statistics per observed phase interval, plus a synthetic
  /// "acquire (issued->cs-enter)" total row. Rows are ordered by nominal
  /// phase order of the interval start.
  std::vector<PhaseStats> phase_breakdown() const;

 private:
  /// Per-span bookkeeping that is not part of the exported span.
  struct Aux {
    /// Node currently holding the request in its local queue (none until a
    /// kQueue event names one).
    proto::NodeId queued_at;
    bool granted = false;
  };

  /// Span identity. RequestIds are only unique per lock (each per-lock
  /// automaton runs its own sequence counter), so the lock is part of the
  /// key — keying by RequestId alone would splice unrelated requests from
  /// different locks into one span.
  using SpanKey = std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>;

  std::size_t ensure(proto::RequestId id, const trace::TraceEvent& event)
      HLOCK_REQUIRES(mutex_);
  void append(std::size_t index, Phase phase, const trace::TraceEvent& event)
      HLOCK_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::vector<RequestSpan> spans_ HLOCK_GUARDED_BY(mutex_);
  std::vector<Aux> aux_ HLOCK_GUARDED_BY(mutex_);
  std::map<SpanKey, std::size_t> index_ HLOCK_GUARDED_BY(mutex_);
  /// (node, lock) -> span currently in its critical section there;
  /// attributes the seq-less kExitCs events.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t>
      holder_ HLOCK_GUARDED_BY(mutex_);
};

/// Renders the breakdown as an aligned table (count/mean/p50/p95/p99/max in
/// milliseconds), one interval per row — the hlock_sim "--spans" output.
std::string render_phase_table(const std::vector<PhaseStats>& rows);

}  // namespace hlock::obs
