// Bridges the table tests and the scenario tests: for EVERY (held-by-token,
// requested) mode pair, drive a live two/three-node cluster and verify the
// observable outcome (immediate grant vs. queued; copy vs. transfer)
// matches what Tables 1(a)/(b) and Rule 3 prescribe.
#include <gtest/gtest.h>

#include "core/mode_tables.hpp"
#include "tests/core/test_net.hpp"

namespace hlock::test {
namespace {

using core::at_least_as_strong;
using core::compatible;
using proto::kRealModes;

class ModePairSweep
    : public ::testing::TestWithParam<std::tuple<LockMode, LockMode>> {};

TEST_P(ModePairSweep, TokenGrantDecisionMatchesTheTables) {
  const auto [held, requested] = GetParam();

  HierNet net{2};
  net.request(0, held);  // token self-grants anything over owned NL
  ASSERT_EQ(net.node(0).held(), held);

  net.request(1, requested);
  net.settle();

  if (compatible(held, requested)) {
    // Rule 3.2: the token grants; owned >= requested means a copy grant,
    // otherwise the token itself moves.
    EXPECT_EQ(net.cs_entries(1), 1)
        << to_string(held) << " + " << to_string(requested);
    EXPECT_EQ(net.node(1).held(), requested);
    if (at_least_as_strong(held, requested)) {
      EXPECT_TRUE(net.node(0).is_token()) << "copy grant keeps the token";
      EXPECT_FALSE(net.node(1).is_token());
    } else {
      EXPECT_TRUE(net.node(1).is_token()) << "transfer moves the token";
      EXPECT_FALSE(net.node(0).is_token());
    }
    // Both holds coexist — verify the pair really is concurrent.
    EXPECT_EQ(net.node(0).held(), held);
  } else {
    // Rule 4.2: queued until the holder releases.
    EXPECT_EQ(net.cs_entries(1), 0)
        << to_string(held) << " + " << to_string(requested);
    net.release(0);
    net.settle();
    EXPECT_EQ(net.cs_entries(1), 1) << "queued request served on release";
    EXPECT_EQ(net.node(1).held(), requested);
  }
}

TEST_P(ModePairSweep, IntermediateHolderDecisionMatchesItsRole) {
  const auto [child_owned, requested] = GetParam();

  // Token(0) first takes the same mode itself, then node 1 requests it:
  // for self-compatible modes (IR, R, IW) node 1 becomes a NON-token
  // copyset member; for self-incompatible ones (U, W) the token transfers
  // after the release and node 1 ends up the token. Either way node 2's
  // request routes THROUGH node 1, and the decision must match its role.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(0, child_owned);
  net.request(1, child_owned);
  net.settle();
  if (net.node(1).held() != child_owned) {
    net.release(0);  // self-incompatible pair: unblock the queued request
    net.settle();
  }
  ASSERT_EQ(net.node(1).held(), child_owned);
  const bool node1_is_token = net.node(1).is_token();

  const std::uint64_t before = net.total_messages();
  net.request(2, requested);
  net.settle();

  const bool local_grant =
      node1_is_token
          ? core::token_can_grant(child_owned, requested)
          : core::non_token_can_grant(child_owned, requested);
  if (local_grant) {
    // Granted at node 1 itself: one REQUEST plus one GRANT/TOKEN —
    // Table 1(b) for a copyset member, Rule 3.2 for a token.
    EXPECT_EQ(net.cs_entries(2), 1)
        << to_string(child_owned) << " granting " << to_string(requested);
    EXPECT_EQ(net.total_messages() - before, 2u);
  } else if (!node1_is_token && compatible(child_owned, requested)) {
    // Node 1 may not grant (Table 1(b)) but the token can: forwarded.
    EXPECT_EQ(net.cs_entries(2), 1);
    EXPECT_GT(net.total_messages() - before, 2u);
  } else {
    // Incompatible with node 1's mode: waits for the holders to release.
    EXPECT_EQ(net.cs_entries(2), 0);
    net.release(1);
    net.settle();
    if (net.cs_entries(2) == 0 && net.node(0).held() != LockMode::kNL) {
      net.release(0);
      net.settle();
    }
    EXPECT_EQ(net.cs_entries(2), 1);
  }
}

std::string pair_name(
    const ::testing::TestParamInfo<std::tuple<LockMode, LockMode>>& info) {
  return to_string(std::get<0>(info.param)) + "_" +
         to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllPairs, ModePairSweep,
                         ::testing::Combine(::testing::ValuesIn(kRealModes),
                                            ::testing::ValuesIn(kRealModes)),
                         pair_name);

}  // namespace
}  // namespace hlock::test
