// Priority effectiveness (extension; paper refs [15, 16]).
//
// One node issues "urgent" whole-table writes at a given priority while
// the cluster runs the ordinary workload. Reported: the urgent writer's
// mean acquisition latency vs. the ordinary writers', with and without the
// priority boost. Priorities reorder waiting queues only, so the benefit
// is bounded by how much of a writer's wait is spent behind OTHER QUEUED
// writers rather than behind current holders.
#include <cstdio>

#include "runtime/sim_cluster.hpp"
#include "sim/network_model.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "workload/mode_mix.hpp"
#include "workload/op_plan.hpp"

using namespace hlock;
using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

namespace {

/// A bespoke driver: node 0 is the urgent writer (W on the table at the
/// given priority); all other nodes loop ordinary W table writes. Closed
/// loop, fixed op counts, measuring per-class acquisition latency.
struct Result {
  double urgent_mean_ms;
  double ordinary_mean_ms;
};

Result run(std::uint8_t urgent_priority, std::uint64_t seed) {
  constexpr std::size_t kNodes = 24;
  constexpr int kOpsPerNode = 40;
  SimClusterOptions options;
  options.node_count = kNodes;
  options.protocol = Protocol::kHierarchical;
  options.message_latency = sim::ibm_sp_preset().message_latency;
  options.seed = seed;
  SimCluster cluster{options};
  sim::Simulator& sim = cluster.simulator();
  const LockId lock = workload::table_lock();

  struct NodeState {
    Rng rng;
    int remaining = kOpsPerNode;
    SimTime issue{};
    bool done = false;
  };
  std::vector<NodeState> nodes(kNodes);
  Rng root{seed};
  for (std::size_t i = 0; i < kNodes; ++i) nodes[i].rng = root.split(i);

  std::vector<double> urgent_ms;
  std::vector<double> ordinary_ms;
  const DurationDist cs = DurationDist::uniform(SimTime::ms(5), 0.5);
  const DurationDist idle = DurationDist::uniform(SimTime::ms(40), 0.5);

  std::function<void(std::uint32_t)> begin = [&](std::uint32_t i) {
    NodeState& st = nodes[i];
    st.issue = sim.now();
    cluster.request(NodeId{i}, lock, LockMode::kW,
                    i == 0 ? urgent_priority : std::uint8_t{0});
  };
  cluster.set_grant_handler([&](NodeId node, LockId, bool) {
    NodeState& st = nodes[node.value()];
    const double waited = (sim.now() - st.issue).to_ms();
    (node.value() == 0 ? urgent_ms : ordinary_ms).push_back(waited);
    sim.schedule_in(cs.sample(st.rng), [&, node] {
      cluster.release(node, lock);
      NodeState& state = nodes[node.value()];
      if (--state.remaining > 0) {
        sim.schedule_in(idle.sample(state.rng),
                        [&, node] { begin(node.value()); });
      } else {
        state.done = true;
      }
    });
  });
  for (std::uint32_t i = 0; i < kNodes; ++i) {
    sim.schedule_in(idle.sample(nodes[i].rng), [&, i] { begin(i); });
  }
  sim.run_to_completion();

  return {stats::summarize(urgent_ms).mean,
          stats::summarize(ordinary_ms).mean};
}

}  // namespace

int main() {
  std::printf("Priority effectiveness — 24 contending table writers, node 0 "
              "urgent\n\n");
  stats::TextTable table;
  table.set_header({"urgent priority", "urgent mean wait (ms)",
                    "ordinary mean wait (ms)", "speedup"});
  for (std::uint8_t priority : {std::uint8_t{0}, std::uint8_t{4},
                                std::uint8_t{16}}) {
    const Result r1 = run(priority, 7);
    const Result r2 = run(priority, 11);
    const double urgent = (r1.urgent_mean_ms + r2.urgent_mean_ms) / 2;
    const double ordinary = (r1.ordinary_mean_ms + r2.ordinary_mean_ms) / 2;
    table.add_row({std::to_string(priority),
                   stats::TextTable::num(urgent, 2),
                   stats::TextTable::num(ordinary, 2),
                   stats::TextTable::num(ordinary / urgent, 2) + "x"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
