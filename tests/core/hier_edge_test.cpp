// Remaining edge behaviors of the hierarchical automaton: stale message
// handling, drain ordering, alternative upgrade-completion paths, token
// self-queueing, and fingerprint semantics.
#include <gtest/gtest.h>

#include "core/mode_tables.hpp"
#include "tests/core/test_net.hpp"

namespace hlock::test {
namespace {

using proto::HierFreeze;
using proto::Message;
using proto::ModeSet;
constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kU = LockMode::kU;
constexpr LockMode kIW = LockMode::kIW;
constexpr LockMode kW = LockMode::kW;
constexpr std::size_t A = 0, B = 1, C = 2, D = 3;

TEST(Edge, StaleFreezeAtTokenIsIgnored) {
  // A FREEZE that raced a token transfer arrives at the new token: the
  // token's own queue governs its frozen set, so the message is dropped.
  HierNet net{2};
  net.request(B, kW);
  net.settle();
  ASSERT_TRUE(net.node(B).is_token());
  const Message stale{NodeId{0}, NodeId{1}, HierNet::kLock,
                      HierFreeze{ModeSet::of({kIR, kR})}};
  EXPECT_NO_THROW(net.node(B).on_message(stale));
  EXPECT_TRUE(net.node(B).frozen().empty());
}

TEST(Edge, TokenQueuesOwnRequestBehindEarlierWaiters) {
  // The token's own ungrantable request respects FIFO: an earlier queued
  // waiter is served first.
  HierNet net{3};
  net.request(A, kW);      // A token, holds W
  net.settle();
  net.request(B, kW);      // queued first
  net.settle();
  net.release(A);
  net.settle();
  ASSERT_TRUE(net.node(B).is_token());
  ASSERT_EQ(net.node(B).held(), kW);

  net.request(C, kW);      // queued at B
  net.settle();
  // B releases and immediately wants W again: C must win first.
  net.release(B);
  net.settle();
  ASSERT_TRUE(net.node(C).is_token());
  net.request(B, kW);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kNL);
  net.release(C);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kW);
}

TEST(Edge, DrainMixesGrantsAndForwards) {
  // B absorbs one grantable (IR) and one ungrantable (W) request while
  // pending R; on B's grant the IR is granted locally and the W forwarded.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{1}};
  HierNet net{parents};
  net.request(A, kIW);
  net.request(B, kR);  // conflicts with IW: queued at A, B pending
  net.settle();
  net.request(C, kIR);  // absorbed at B (pending, queue-all)
  net.settle();
  net.request(D, kW);   // absorbed at B
  net.settle();
  ASSERT_EQ(net.node(B).queue().size(), 2u);

  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kR);
  EXPECT_EQ(net.node(C).held(), kIR) << "IR granted by B from its drain";
  EXPECT_EQ(net.cs_entries(D), 0) << "W forwarded and queued at the token";
  net.release(B);
  net.release(C);
  net.settle();
  EXPECT_EQ(net.node(D).held(), kW);
}

TEST(Edge, UpgradeCompletesViaOwnPathWhenLastChildAlreadyLeft) {
  // The completion check runs on every release notification; if children
  // drain BEFORE upgrade() is called, completion is immediate.
  HierNet net{3};
  net.request(B, kIR);
  net.settle();
  net.request(A, kU);
  net.settle();
  net.release(B);
  net.settle();  // child gone before the upgrade starts
  net.upgrade(A);
  EXPECT_EQ(net.upgrades(A), 1);
  EXPECT_EQ(net.node(A).held(), kW);
}

TEST(Edge, UpgradeBlocksNewReadersUntilWriteCompletes) {
  HierNet net{4};
  net.request(A, kU);
  net.upgrade(A);  // immediate (no children)
  ASSERT_EQ(net.node(A).held(), kW);
  net.request(B, kIR);
  net.request(C, kR);
  net.settle();
  EXPECT_EQ(net.cs_entries(B), 0);
  EXPECT_EQ(net.cs_entries(C), 0);
  net.release(A);
  net.settle();
  EXPECT_EQ(net.node(B).held(), kIR);
  EXPECT_EQ(net.node(C).held(), kR);
}

TEST(Edge, CompatibleQueueBypassRespectsFreezeExactly) {
  // Token owns IW; queue holds (B, R) [conflicts] freezing {IW}; a later
  // IR is compatible with both IW and R -> it may be granted despite the
  // earlier queued entry.
  HierNet net{4};
  net.request(A, kIW);
  net.request(B, kR);
  net.settle();
  EXPECT_EQ(net.node(A).frozen(), ModeSet::of({kIW}))
      << "Table 1(d) row IW, column R";
  net.request(C, kIR);
  net.settle();
  EXPECT_EQ(net.node(C).held(), kIR)
      << "IR conflicts with neither IW nor R: benign bypass";
  // But a second IW (frozen) must wait even though it is compatible with
  // the owner's IW.
  net.request(D, kIW);
  net.settle();
  EXPECT_EQ(net.cs_entries(D), 0);
}

TEST(Edge, ReleaseOrderAmongChildrenIsIrrelevant) {
  // Any permutation of child releases converges to the same drained state.
  for (int permutation = 0; permutation < 2; ++permutation) {
    HierNet net{4};
    net.request(A, kR);
    net.request(B, kR);
    net.request(C, kR);
    net.settle();
    if (permutation == 0) {
      net.release(B);
      net.settle();
      net.release(C);
      net.settle();
    } else {
      net.release(C);
      net.settle();
      net.release(B);
      net.settle();
    }
    net.release(A);
    net.settle();
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(net.node(i).owned(), kNL) << "perm " << permutation;
      EXPECT_TRUE(net.node(i).copyset().empty()) << "perm " << permutation;
    }
  }
}

TEST(Edge, FingerprintDistinguishesStateAndConverges) {
  HierNet a{2};
  HierNet b{2};
  EXPECT_EQ(a.node(0).fingerprint(), b.node(0).fingerprint());
  a.request(0, kR);
  EXPECT_NE(a.node(0).fingerprint(), b.node(0).fingerprint());
  b.request(0, kR);
  EXPECT_EQ(a.node(0).fingerprint(), b.node(0).fingerprint());
  a.release(0);
  b.release(0);
  EXPECT_EQ(a.node(0).fingerprint(), b.node(0).fingerprint());
}

TEST(Edge, DescribeReflectsUpgradeState) {
  HierNet net{3};
  net.request(B, kIR);
  net.settle();
  net.request(A, kU);
  net.settle();
  net.upgrade(A);
  net.settle();
  const std::string description = net.node(A).describe();
  EXPECT_NE(description.find("(upg)"), std::string::npos);
  EXPECT_NE(description.find("held=U"), std::string::npos);
}

TEST(Edge, SelfGrantWhileOwningThroughChildAndReleaseOrder) {
  // X self-grants IR (owned R through a child), then the child leaves
  // FIRST: X's owned weakens R->IR and the release message carries IR,
  // not NL.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1}};
  HierNet net{parents};
  net.request(A, kR);
  net.request(B, kR);
  net.settle();
  net.request(C, kR);  // child of B
  net.settle();
  net.release(B);
  net.request(B, kIR);  // Rule 2 self-grant: B owns R via C
  EXPECT_EQ(net.node(B).held(), kIR);

  net.release(C);
  net.settle();
  EXPECT_EQ(net.node(B).owned(), kIR);
  EXPECT_EQ(net.node(B).reported_owned(), kIR);
  net.release(B);
  net.settle();
  EXPECT_EQ(net.node(B).owned(), kNL);
  EXPECT_EQ(net.node(A).owned(), kR) << "A itself still holds R";
}

TEST(Edge, IndependentLocksHaveIndependentTokens) {
  core::HierAutomaton lock1{NodeId{0}, LockId{1}, true, NodeId::none()};
  core::HierAutomaton lock2{NodeId{0}, LockId{2}, false, NodeId{1}};
  EXPECT_TRUE(lock1.is_token());
  EXPECT_FALSE(lock2.is_token());
  EXPECT_EQ(lock1.lock(), LockId{1});
  EXPECT_EQ(lock2.lock(), LockId{2});
}

}  // namespace
}  // namespace hlock::test
