#include "transport/faulty_transport.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace hlock::transport {

namespace {

std::chrono::nanoseconds chrono_ns(SimTime t) {
  return std::chrono::nanoseconds(t.count_ns());
}

std::uint64_t channel_key_of(std::uint32_t from, std::uint32_t to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

void require_probability(double p, const char* name) {
  HLOCK_REQUIRE(p >= 0.0 && p <= 1.0,
                std::string("fault plan: ") + name + " must be in [0, 1]");
}

}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 const FaultPlan& plan)
    : inner_(std::move(inner)), plan_(plan) {
  HLOCK_REQUIRE(inner_ != nullptr, "faulty transport needs an inner one");
  require_probability(plan_.drop_probability, "drop_probability");
  require_probability(plan_.delay_probability, "delay_probability");
  require_probability(plan_.duplicate_probability, "duplicate_probability");
  require_probability(plan_.reorder_probability, "reorder_probability");
  const Clock::time_point now = Clock::now();
  for (const FaultPlan::Partition& partition : plan_.partitions) {
    ActivePartition active;
    for (proto::NodeId node : partition.side_a) {
      active.side_a.insert(node.value());
    }
    active.heal_at = now + chrono_ns(partition.heal_after);
    partitions_.push_back(std::move(active));
  }
  pump_ = sched::Thread("faulty-pump", [this] { pump_loop(); });
}

FaultyTransport::~FaultyTransport() { shutdown(); }

FaultyTransport::ChannelState& FaultyTransport::channel_state(
    std::uint64_t key) {
  auto it = channels_.find(key);
  if (it == channels_.end()) {
    it = channels_.try_emplace(key).first;
    // Every channel gets its own split stream: fault decisions on one
    // channel are independent of the traffic on every other.
    it->second.rng = Rng(plan_.seed).split(key);
  }
  return it->second;
}

bool FaultyTransport::crosses_partition(std::uint32_t from, std::uint32_t to,
                                        Clock::time_point now,
                                        Clock::time_point* release_at) {
  bool crossed = false;
  auto it = partitions_.begin();
  while (it != partitions_.end()) {
    if (it->heal_at <= now) {
      it = partitions_.erase(it);  // healed
      continue;
    }
    const bool from_in_a = it->side_a.count(from) > 0;
    const bool to_in_a = it->side_a.count(to) > 0;
    if (from_in_a != to_in_a) {
      crossed = true;
      *release_at = std::max(*release_at, it->heal_at);
    }
    ++it;
  }
  return crossed;
}

void FaultyTransport::send(const proto::Message& message) {
  HLOCK_REQUIRE(!message.from.is_none(), "message without a sender");
  {
    MutexLock lock(mutex_);
    if (stopping_) return;
    const std::uint64_t key =
        channel_key_of(message.from.value(), message.to.value());
    ChannelState& ch = channel_state(key);
    const Clock::time_point now = Clock::now();
    const std::chrono::nanoseconds rto = chrono_ns(plan_.retransmit_delay);

    // Fault decisions are drawn unconditionally and in a fixed order, so
    // which faults hit message k of a channel depends only on (seed,
    // channel, k) — never on wall-clock state such as partitions.
    const bool dropped = plan_.drop_probability > 0.0 &&
                         ch.rng.chance(plan_.drop_probability);
    const bool delayed = plan_.delay_probability > 0.0 &&
                         ch.rng.chance(plan_.delay_probability);
    const SimTime extra_delay =
        delayed ? plan_.delay.sample(ch.rng) : SimTime::ns(0);
    bool overtakable = plan_.reorder_probability > 0.0 &&
                       ch.rng.chance(plan_.reorder_probability);
    const bool duplicated = plan_.duplicate_probability > 0.0 &&
                            ch.rng.chance(plan_.duplicate_probability);

    Clock::time_point deliver_at = now;
    Clock::time_point release_at = now;
    if (crosses_partition(message.from.value(), message.to.value(), now,
                          &release_at)) {
      // The partition dominates: the message waits for the heal, and the
      // layered retransmission is what finally carries it across.
      counters_.partition_drops.fetch_add(1, std::memory_order_relaxed);
      counters_.retransmits.fetch_add(1, std::memory_order_relaxed);
      deliver_at = release_at;
      overtakable = false;
    } else {
      if (dropped) {
        counters_.drops.fetch_add(1, std::memory_order_relaxed);
        counters_.retransmits.fetch_add(1, std::memory_order_relaxed);
        deliver_at += rto;
      }
      if (delayed) {
        counters_.delays.fetch_add(1, std::memory_order_relaxed);
        deliver_at += chrono_ns(extra_delay);
      }
      if (overtakable) {
        counters_.reorders.fetch_add(1, std::memory_order_relaxed);
      }
    }

    if (overtakable) {
      // Lag one retransmit window behind and do NOT raise the FIFO floor:
      // a successor sent inside the window genuinely arrives first, and
      // the edge resequencer has to put the channel back in order.
      deliver_at = std::max(deliver_at + rto, ch.fifo_floor);
    } else {
      deliver_at = std::max(deliver_at, ch.fifo_floor);
      ch.fifo_floor = deliver_at;
    }

    const std::uint64_t seq = ch.next_send_seq++;
    wire_.push(WireEntry{deliver_at, next_wire_seq_++, key, seq, message});
    if (duplicated) {
      counters_.duplicates.fetch_add(1, std::memory_order_relaxed);
      wire_.push(
          WireEntry{deliver_at + rto, next_wire_seq_++, key, seq, message});
    }
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_all();
}

bool FaultyTransport::collect_ready(std::vector<proto::Message>& ready) {
  for (;;) {
    if (stopping_) return false;  // undelivered wire entries are dropped
    if (wire_.empty()) {
      cv_.wait(mutex_);
      continue;
    }
    const Clock::time_point due = wire_.top().deliver_at;
    if (due > Clock::now()) {
      cv_.wait_until(mutex_, due);
      continue;
    }
    WireEntry entry = wire_.top();
    wire_.pop();
    ChannelState& ch = channel_state(entry.channel_key);
    if (entry.channel_seq < ch.next_deliver_seq) {
      // A wire copy of a message the edge already delivered.
      counters_.duplicates_discarded.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (entry.channel_seq > ch.next_deliver_seq) {
      // Arrived ahead of a gap (its predecessor was overtaken): hold it
      // until the gap fills so the inner transport only ever sees the
      // channel in order.
      const bool inserted =
          ch.held.emplace(entry.channel_seq, std::move(entry.message)).second;
      if (!inserted) {
        counters_.duplicates_discarded.fetch_add(1,
                                                 std::memory_order_relaxed);
      }
      continue;
    }
    ready.push_back(std::move(entry.message));
    ++ch.next_deliver_seq;
    while (!ch.held.empty() &&
           ch.held.begin()->first == ch.next_deliver_seq) {
      ready.push_back(std::move(ch.held.begin()->second));
      ch.held.erase(ch.held.begin());
      ++ch.next_deliver_seq;
      counters_.resequenced.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
}

void FaultyTransport::pump_loop() {
  for (;;) {
    std::vector<proto::Message> ready;
    {
      MutexLock lock(mutex_);
      if (!collect_ready(ready)) return;
    }
    // Forward with the lock dropped: the inner send may block (TCP
    // backoff), and senders must be able to keep depositing onto the wire
    // meanwhile — forwarding while holding `mutex_` is exactly the
    // lock-held-across-callback pattern the capability analysis exists to
    // keep out of this layer.
    sched::yield_point("faulty_transport.forward");
    for (const proto::Message& message : ready) inner_->send(message);
  }
}

std::vector<proto::Message> FaultyTransport::recv_ready(proto::NodeId node) {
  return inner_->recv_ready(node);
}

std::optional<proto::Message> FaultyTransport::recv(proto::NodeId node) {
  return inner_->recv(node);
}

std::optional<proto::Message> FaultyTransport::recv_for(
    proto::NodeId node, std::chrono::milliseconds timeout) {
  return inner_->recv_for(node, timeout);
}

void FaultyTransport::partition(const std::vector<proto::NodeId>& side_a,
                                SimTime heal_after) {
  ActivePartition active;
  for (proto::NodeId node : side_a) active.side_a.insert(node.value());
  active.heal_at = Clock::now() + chrono_ns(heal_after);
  MutexLock lock(mutex_);
  partitions_.push_back(std::move(active));
}

void FaultyTransport::shutdown() {
  if (!shutdown_done_.exchange(true)) {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_.notify_all();
    if (pump_.joinable()) pump_.join();
    const auto snapshot = counters_.snapshot();
    if (snapshot.faults_injected() > 0) {
      HLOCK_LOG(kInfo, "faulty transport: " << stats::to_string(snapshot));
    }
    inner_->shutdown();
  }
}

}  // namespace hlock::transport
