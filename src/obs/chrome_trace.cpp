#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <set>
#include <sstream>

namespace hlock::obs {

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Microsecond timestamp field from a nanosecond SimTime stamp.
std::string ts_us(SimTime at) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(at.count_ns()) / 1000.0);
  return buf;
}

/// Appends one JSON event object, managing the leading comma.
class EventList {
 public:
  explicit EventList(std::ostringstream& os) : os_(os) {}

  std::ostringstream& next() {
    if (!first_) os_ << ",\n";
    first_ = false;
    return os_;
  }

 private:
  std::ostringstream& os_;
  bool first_ = true;
};

}  // namespace

std::string chrome_trace_json(const std::vector<RequestSpan>& spans,
                              const ChromeTraceOptions& options) {
  // The set of node tracks: every declared node plus every node any span
  // event touched (so an undeclared node still gets a named track).
  std::set<std::uint32_t> nodes;
  for (std::size_t i = 0; i < options.node_count; ++i) {
    nodes.insert(static_cast<std::uint32_t>(i));
  }
  for (const RequestSpan& span : spans) {
    if (!span.id.origin.is_none()) nodes.insert(span.id.origin.value());
    for (const SpanEvent& event : span.events) {
      if (!event.node.is_none()) nodes.insert(event.node.value());
    }
  }

  std::ostringstream os;
  os << "{\"traceEvents\": [\n";
  EventList events{os};

  for (std::uint32_t node : nodes) {
    events.next() << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
                  << node << ", \"tid\": 0, \"args\": {\"name\": \"node"
                  << node << "\"}}";
  }

  for (const RequestSpan& span : spans) {
    if (span.events.empty()) continue;
    // Chrome correlates async b/e pairs by (cat, id): scope the id by lock,
    // since per-lock sequence counters make bare RequestIds collide across
    // locks.
    const std::string id =
        json_escape("lock" + std::to_string(span.lock.value()) + "/" +
                    to_string(span.id));
    const std::string name =
        json_escape("lock" + std::to_string(span.lock.value()) + " " +
                    to_string(span.mode) + " " + to_string(span.id));
    const std::uint32_t pid =
        span.id.origin.is_none() ? 0 : span.id.origin.value();

    // One async span per request on the origin node's track, opened at the
    // first observed phase and closed at the last (cs-exit when complete).
    const SpanEvent& first = span.events.front();
    const SpanEvent& last = span.events.back();
    events.next() << "{\"name\": \"" << name
                  << "\", \"cat\": \"request\", \"ph\": \"b\", \"id\": \""
                  << id << "\", \"pid\": " << pid
                  << ", \"tid\": 0, \"ts\": " << ts_us(first.at)
                  << ", \"args\": {\"mode\": \"" << to_string(span.mode)
                  << "\", \"priority\": "
                  << static_cast<unsigned>(span.priority) << "}}";
    events.next() << "{\"name\": \"" << name
                  << "\", \"cat\": \"request\", \"ph\": \"e\", \"id\": \""
                  << id << "\", \"pid\": " << pid
                  << ", \"tid\": 0, \"ts\": " << ts_us(last.at)
                  << ", \"args\": {\"complete\": "
                  << (span.complete() ? "true" : "false") << "}}";

    // One instant per phase transition on the acting node's track.
    for (const SpanEvent& event : span.events) {
      const std::uint32_t event_pid =
          event.node.is_none() ? pid : event.node.value();
      events.next() << "{\"name\": \"" << to_string(event.phase)
                    << "\", \"cat\": \"phase\", \"ph\": \"i\", \"s\": \"t\""
                    << ", \"pid\": " << event_pid
                    << ", \"tid\": 0, \"ts\": " << ts_us(event.at)
                    << ", \"args\": {\"request\": \"" << id
                    << "\", \"lamport\": " << event.lamport << "}}";
    }

    // Critical-section slice on the requester's track.
    const SpanEvent* enter = span.find(Phase::kCsEntered);
    const SpanEvent* exit = span.find(Phase::kCsExited);
    if (enter != nullptr && exit != nullptr && exit->at >= enter->at) {
      events.next() << "{\"name\": \"CS lock"
                    << span.lock.value() << " " << to_string(span.mode)
                    << "\", \"cat\": \"cs\", \"ph\": \"X\", \"pid\": " << pid
                    << ", \"tid\": 0, \"ts\": " << ts_us(enter->at)
                    << ", \"dur\": " << ts_us(exit->at - enter->at)
                    << ", \"args\": {\"request\": \"" << id << "\"}}";
    }
  }

  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

namespace {

/// Recursive-descent RFC 8259 validator. No allocation, no extension
/// syntax; nesting capped so hostile input cannot exhaust the stack.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (eof() || depth_ > kMaxDepth) return false;
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++depth_;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return --depth_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return --depth_, true;
      return false;
    }
  }

  bool array() {
    ++depth_;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return --depth_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return --depth_, true;
      return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control characters are invalid
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (eof() || std::isxdigit(static_cast<unsigned char>(
                             text_[pos_])) == 0) {
              return false;
            }
          }
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos_;
    }
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // leading zero: no further integer digits allowed
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool validate_json(std::string_view text) {
  return JsonValidator{text}.valid();
}

}  // namespace hlock::obs
