// hlock_top — live terminal dashboard over the telemetry exposition.
//
// Polls a metrics source — the file a chaos run rewrites via
// --metrics-out, or a live `GET /metrics` endpoint — and renders the
// cluster's vitals in place: per-mode request/grant rates, message and
// stall counters, token locations, queue and mailbox depths, and the
// wait/hold-time distributions as render_bucketed_histogram bars.
//
//   hlock_top --from /tmp/metrics.prom
//   hlock_top --connect 9100 --interval-ms 500
//   hlock_top --from m.prom --iterations 1 --no-clear   # one-shot, CI-safe
//
// Rates are deltas between consecutive polls; the first frame shows
// totals only. The dashboard is read-only and shares nothing with the
// process it watches beyond the exposition text (docs/telemetry.md).
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stats/histogram.hpp"
#include "telemetry/text_parse.hpp"
#include "transport/tcp_socket.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace hlock;
using telemetry::ParsedExposition;
using telemetry::ParsedSeries;

namespace {

/// The value of label `key` inside a series' raw label block ("" when
/// absent). Exposition values here never contain escaped quotes.
std::string label_of(const ParsedSeries& series, const std::string& key) {
  const std::string needle = key + "=\"";
  std::size_t pos = series.labels.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  const std::size_t end = series.labels.find('"', pos);
  if (end == std::string::npos) return "";
  return series.labels.substr(pos, end - pos);
}

/// Sums `family` series grouped by the value of one label.
std::map<std::string, double> sum_by_label(const ParsedExposition& parsed,
                                           const std::string& family,
                                           const std::string& key) {
  std::map<std::string, double> out;
  for (const ParsedSeries& series : parsed.series) {
    if (series.family != family) continue;
    out[label_of(series, key)] += series.value;
  }
  return out;
}

/// Re-aggregates one histogram family across all its label sets: bucket
/// upper bounds (ascending) plus per-bucket (non-cumulative) counts with
/// the trailing overflow bucket — the render_bucketed_histogram shape.
bool aggregate_histogram(const ParsedExposition& parsed,
                         const std::string& family,
                         std::vector<double>* bounds,
                         std::vector<std::uint64_t>* counts) {
  std::map<double, double> cumulative;  // le -> summed cumulative count
  double inf_total = 0.0;
  bool any = false;
  for (const ParsedSeries& series : parsed.series) {
    if (series.family != family + "_bucket") continue;
    const std::string le = label_of(series, "le");
    if (le.empty()) continue;
    any = true;
    if (le == "+Inf") {
      inf_total += series.value;
    } else {
      cumulative[std::strtod(le.c_str(), nullptr)] += series.value;
    }
  }
  if (!any) return false;
  bounds->clear();
  counts->clear();
  double previous = 0.0;
  for (const auto& [bound, total] : cumulative) {
    bounds->push_back(bound);
    counts->push_back(total >= previous
                          ? static_cast<std::uint64_t>(total - previous)
                          : 0u);
    previous = total;
  }
  counts->push_back(inf_total >= previous
                        ? static_cast<std::uint64_t>(inf_total - previous)
                        : 0u);
  return true;
}

/// One `GET /metrics` scrape (body only). Throws UsageError on failure.
std::string scrape(std::uint16_t port) {
  const int fd = transport::connect_loopback(port);
  const std::string request =
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      ::close(fd);
      throw UsageError("scrape: write failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      ::close(fd);
      throw UsageError("scrape: read failed");
    }
    if (n == 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t body_at = response.find("\r\n\r\n");
  if (response.compare(0, 9, "HTTP/1.1 ") != 0 ||
      body_at == std::string::npos) {
    throw UsageError("scrape: malformed HTTP response");
  }
  if (response.substr(9, 3) != "200") {
    throw UsageError("scrape: HTTP status " + response.substr(9, 3));
  }
  return response.substr(body_at + 4);
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw UsageError("cannot read: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// `current - previous` per elapsed second; 0 on the first frame.
double rate(const ParsedExposition& current, const ParsedExposition* previous,
            const std::string& family, double dt_s) {
  if (previous == nullptr || dt_s <= 0.0) return 0.0;
  const double delta =
      current.prefixed_sum(family) - previous->prefixed_sum(family);
  return delta > 0.0 ? delta / dt_s : 0.0;
}

/// Renders one dashboard frame into a string (tests snapshot this).
std::string render_frame(const ParsedExposition& parsed,
                         const ParsedExposition* previous, double dt_s,
                         const std::string& source, std::uint64_t tick) {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "hlock_top — %zu series from %s (frame %llu)\n\n",
                parsed.series.size(), source.c_str(),
                static_cast<unsigned long long>(tick));
  out << line;

  // Headline counters + rates.
  const struct {
    const char* label;
    const char* family;
  } headliners[] = {
      {"requests", "hlock_engine_requests_total"},
      {"grants", "hlock_engine_grants_total"},
      {"releases", "hlock_engine_releases_total"},
      {"forwards", "hlock_engine_forwards_total"},
      {"freezes", "hlock_engine_freezes_total"},
      {"messages", "hlock_messages_sent_total"},
      {"stalls", "hlock_stalled_requests_total"},
  };
  out << "  counter        total      per-second\n";
  for (const auto& h : headliners) {
    std::snprintf(line, sizeof(line), "  %-12s %10.0f %11.1f\n", h.label,
                  parsed.prefixed_sum(h.family),
                  rate(parsed, previous, h.family, dt_s));
    out << line;
  }

  // Per-mode breakdown (hierarchical runs; empty for mode-less baselines).
  const std::map<std::string, double> requests_by_mode =
      sum_by_label(parsed, "hlock_engine_requests_total", "mode");
  const std::map<std::string, double> grants_by_mode =
      sum_by_label(parsed, "hlock_engine_grants_total", "mode");
  bool mode_header = false;
  for (const auto& [mode, requested] : requests_by_mode) {
    if (mode.empty() || requested <= 0.0) continue;
    if (!mode_header) {
      out << "\n  mode   requests     grants\n";
      mode_header = true;
    }
    const auto granted = grants_by_mode.find(mode);
    std::snprintf(line, sizeof(line), "  %-4s %10.0f %10.0f\n", mode.c_str(),
                  requested,
                  granted == grants_by_mode.end() ? 0.0 : granted->second);
    out << line;
  }

  // Token locations, per lock.
  bool token_header = false;
  for (const ParsedSeries& series : parsed.series) {
    if (series.family != "hlock_token_location") continue;
    if (!token_header) {
      out << "\n  tokens:";
      token_header = true;
    }
    std::snprintf(line, sizeof(line), " lock %s @ node %.0f",
                  label_of(series, "lock").c_str(), series.value);
    out << line;
  }
  if (token_header) out << "\n";

  // Depth gauges, summed across shards/nodes.
  std::snprintf(line, sizeof(line),
                "\n  queued requests %.0f   tokens held %.0f   "
                "mailbox backlog %.0f   pending %.0f\n",
                parsed.prefixed_sum("hlock_engine_queue_depth"),
                parsed.prefixed_sum("hlock_tokens_held"),
                parsed.prefixed_sum("hlock_mailbox_depth"),
                parsed.prefixed_sum("hlock_pending_requests"));
  out << line;

  // Latency distributions, re-aggregated across nodes.
  const struct {
    const char* title;
    const char* family;
  } histograms[] = {
      {"wait time", "hlock_wait_ms"},
      {"hold time", "hlock_hold_ms"},
  };
  for (const auto& h : histograms) {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    if (!aggregate_histogram(parsed, h.family, &bounds, &counts)) continue;
    stats::HistogramOptions options;
    options.bar_width = 30;
    out << "\n  " << h.title << ":\n"
        << stats::render_bucketed_histogram(bounds, counts, options);
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli{"hlock_top",
                "live terminal dashboard over hlock telemetry exposition"};
  cli.add_option("from", "",
                 "poll this exposition file (a chaos run's --metrics-out)");
  cli.add_option("connect", "0",
                 "poll http://127.0.0.1:PORT/metrics instead of a file");
  cli.add_option("interval-ms", "1000", "poll interval, milliseconds");
  cli.add_option("iterations", "0", "frames to render (0 = until ^C)");
  cli.add_flag("no-clear",
               "append frames instead of redrawing in place (logs, CI)");

  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return 0;
    }
    const std::string from = cli.get_string("from");
    const bool live = cli.was_set("connect");
    if (from.empty() == !live) {
      throw UsageError("exactly one of --from or --connect is required");
    }
    const auto port =
        static_cast<std::uint16_t>(cli.get_int("connect", 0, 65535));
    const std::string source =
        live ? "http://127.0.0.1:" + std::to_string(port) + "/metrics"
             : from;
    const auto interval =
        std::chrono::milliseconds(cli.get_int("interval-ms", 10, 600000));
    const std::int64_t iterations = cli.get_int("iterations", 0, 1000000000);
    const bool clear = !cli.get_flag("no-clear");

    ParsedExposition previous;
    bool have_previous = false;
    for (std::int64_t frame = 0; iterations == 0 || frame < iterations;
         ++frame) {
      if (frame > 0) std::this_thread::sleep_for(interval);
      const std::string text = live ? scrape(port) : read_file(from);
      const ParsedExposition parsed = telemetry::parse_exposition(text);
      const double dt_s =
          static_cast<double>(interval.count()) / 1000.0;
      if (clear) std::fputs("\x1b[2J\x1b[H", stdout);
      std::fputs(render_frame(parsed, have_previous ? &previous : nullptr,
                              dt_s, source, static_cast<std::uint64_t>(frame))
                     .c_str(),
                 stdout);
      std::fflush(stdout);
      previous = parsed;
      have_previous = true;
    }
    return 0;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }
}
