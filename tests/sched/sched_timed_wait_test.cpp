// CondVar timed-wait path coverage under the deterministic scheduler —
// replacing sleep-based timing tests. Under the explorer a timed waiter
// parks in the scheduler and self-wakes on its real deadline, so "the
// deadline expired" and "a wakeup won the race" are *schedules*, not
// outcomes of sleep lotteries: the expiry case needs no generous margins
// (nothing else is runnable, so the deadline fires as soon as it is due)
// and the race case is explored across seeds instead of being timed just
// so. See docs/sched.md.
#include <chrono>
#include <optional>

#include <gtest/gtest.h>

#include "tests/sched/sched_test.hpp"
#include "transport/mailbox.hpp"
#include "util/sync.hpp"
#include "util/sync_observer.hpp"

namespace hlock {
namespace {

using transport::Mailbox;

proto::Message make_message(std::uint64_t seq) {
  return proto::Message{proto::NodeId{0}, proto::NodeId{1}, proto::LockId{0},
                        proto::NaimiRequest{proto::NodeId{0}, seq}};
}

TEST(SchedTimedWait, PopUntilDeadlineExpiresWithNoProducer) {
  sched_test::ExploreOptions options;
  options.seeds = 4;  // no race to vary: every schedule must time out
  sched_test::explore(
      [] {
        Mailbox mailbox;
        const auto before = Mailbox::Clock::now();
        const auto deadline = before + std::chrono::milliseconds(20);
        EXPECT_FALSE(mailbox.pop_until(deadline).has_value());
        EXPECT_GE(Mailbox::Clock::now(), deadline);
      },
      options);
}

TEST(SchedTimedWait, PopUntilDeadlineVersusWakeupRace) {
  sched_test::explore([] {
    Mailbox mailbox;
    std::optional<proto::Message> popped;
    sched::Thread consumer("consumer", [&mailbox, &popped] {
      popped = mailbox.pop_until(Mailbox::Clock::now() +
                                 std::chrono::milliseconds(200));
    });
    // The push races the consumer's wait. Schedules where the push lands
    // first hand the message over without any wait; schedules where the
    // consumer parks first must wake it via the push's notify — 200ms of
    // deadline means a lost wakeup would surface as the expiry path
    // (nullopt), which the assertion below rejects.
    mailbox.push(make_message(42), Mailbox::Clock::now());
    consumer.join();
    ASSERT_TRUE(popped.has_value()) << "wakeup lost: deadline won a race "
                                       "it should never win";
    EXPECT_EQ(std::get<proto::NaimiRequest>(popped->payload).seq, 42u);
  });
}

TEST(SchedTimedWait, MaturingHeadBeatsLaterDeadline) {
  sched_test::ExploreOptions options;
  options.seeds = 8;
  sched_test::explore(
      [] {
        Mailbox mailbox;
        // The head matures 10ms from now; the pop deadline is far later.
        // The waiter must wake on the head's maturity (the inner
        // wait_until on `due`), not sit until its own deadline.
        mailbox.push(make_message(7),
                     Mailbox::Clock::now() + std::chrono::milliseconds(10));
        const auto popped = mailbox.pop_until(
            Mailbox::Clock::now() + std::chrono::seconds(5));
        ASSERT_TRUE(popped.has_value());
        EXPECT_EQ(std::get<proto::NaimiRequest>(popped->payload).seq, 7u);
      },
      options);
}

TEST(SchedTimedWait, CondVarWaitForTimesOutUnderTheScheduler) {
  sched_test::ExploreOptions options;
  options.seeds = 4;
  sched_test::explore(
      [] {
        Mutex mu{"timed.mu"};
        CondVar cv{"timed.cv"};
        MutexLock lock(mu);
        // Nothing will ever notify: the only exit is the deadline.
        const auto status =
            cv.wait_for(mu, std::chrono::milliseconds(15));
        EXPECT_EQ(status, std::cv_status::timeout);
      },
      options);
}

}  // namespace
}  // namespace hlock
