#include "sim/simulator.hpp"

namespace hlock::sim {

void Simulator::schedule_in(SimTime delay, std::function<void()> action) {
  HLOCK_REQUIRE(delay.count_ns() >= 0, "cannot schedule into the past");
  queue_.push(now_ + delay, std::move(action));
}

void Simulator::schedule_at(SimTime at, std::function<void()> action) {
  HLOCK_REQUIRE(at >= now_, "cannot schedule into the past");
  queue_.push(at, std::move(action));
}

std::uint64_t Simulator::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    Event event = queue_.pop();
    now_ = event.at;
    ++executed_;
    ++count;
    event.action();
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

std::uint64_t Simulator::run_to_completion() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    Event event = queue_.pop();
    now_ = event.at;
    ++executed_;
    ++count;
    event.action();
  }
  return count;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && !queue_.empty()) {
    Event event = queue_.pop();
    now_ = event.at;
    ++executed_;
    ++count;
    event.action();
  }
  return count;
}

}  // namespace hlock::sim
