#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hlock::sim {

bool EventQueue::later(const Entry& a, const Entry& b) {
  if (a.at != b.at) return a.at > b.at;
  return a.seq > b.seq;
}

std::uint64_t EventQueue::push(SimTime at, std::function<void()> action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{at, seq, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  return seq;
}

SimTime EventQueue::next_time() const {
  HLOCK_REQUIRE(!heap_.empty(), "next_time on an empty event queue");
  return heap_.front().at;
}

Event EventQueue::pop() {
  HLOCK_REQUIRE(!heap_.empty(), "pop on an empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return Event{entry.at, entry.seq, std::move(entry.action)};
}

}  // namespace hlock::sim
