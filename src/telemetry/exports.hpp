// Bridges from the pre-existing hand-maintained counter structs
// (stats::TransportCounters, stats::MessageCounter) into registry-backed
// series, using the structs' X-macro/for_each field tables — so a counter
// added to the table shows up on /metrics with no further edits.
//
// Both helpers register *callback* series over the caller's struct: no
// double bookkeeping, the existing record paths keep writing the same
// atomics. The caller owns the struct's lifetime and MUST unregister
// before it dies:
//
//     telemetry::export_transport_counters(reg, counters, prefix);
//     ...
//     reg.unregister_callbacks(prefix);   // in the owner's destructor
#pragma once

#include <string>

#include "stats/metrics.hpp"
#include "telemetry/registry.hpp"

namespace hlock::telemetry {

/// Registers one counter series per TransportCounters field, named
/// `<prefix><field>_total` (e.g. "hlock_transport_" ->
/// `hlock_transport_drops_total`). `prefix` doubles as the
/// unregister_callbacks() key.
void export_transport_counters(Registry& registry,
                               const stats::TransportCounters& counters,
                               const std::string& prefix);

/// Registers `<prefix>{kind="REQUEST"}` etc. — one counter series per
/// protocol message kind. `prefix` should be a full family name such as
/// `hlock_messages_sent_total` and doubles as the unregister key.
void export_message_counter(Registry& registry,
                            const stats::MessageCounter& counter,
                            const std::string& prefix);

}  // namespace hlock::telemetry
