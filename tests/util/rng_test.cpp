#include "util/rng.hpp"

#include <gtest/gtest.h>

#include "util/check.hpp"

#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace hlock {
namespace {

TEST(Splitmix64, MatchesReferenceVectors) {
  // Reference outputs for seed 1234567 from the public-domain splitmix64
  // reference implementation by Sebastiano Vigna.
  std::uint64_t x = 1234567;
  EXPECT_EQ(splitmix64_next(x), 6457827717110365317ull);
  EXPECT_EQ(splitmix64_next(x), 3203168211198807973ull);
  EXPECT_EQ(splitmix64_next(x), 9817491932198370423ull);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b()) << "diverged at draw " << i;
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng{7};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroRejected) {
  Rng rng{7};
  EXPECT_THROW(rng.below(0), UsageError);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng{99};
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> histogram{};
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.below(kBuckets)];
  for (int count : histogram) {
    // Each bucket expects 10000 draws; 4-sigma tolerance ~ +-380.
    EXPECT_NEAR(count, kDraws / kBuckets, 500);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng{11};
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSingleton) {
  Rng rng{11};
  EXPECT_EQ(rng.range(5, 5), 5);
}

TEST(Rng, RangeRejectsInvertedBounds) {
  Rng rng{11};
  EXPECT_THROW(rng.range(2, 1), UsageError);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng{13};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng{19};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Rng, SplitStreamsAreDeterministic) {
  Rng parent{123};
  Rng a1 = parent.split(5);
  Rng a2 = Rng{123}.split(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a1(), a2());
}

TEST(Rng, SplitStreamsIndependentOfParentDraws) {
  Rng parent{123};
  Rng before = parent.split(7);
  for (int i = 0; i < 50; ++i) (void)parent();
  Rng after = parent.split(7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(before(), after());
}

TEST(Rng, DistinctStreamIdsProduceDistinctStreams) {
  Rng parent{123};
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ManyStreamsNoFirstDrawCollision) {
  Rng parent{321};
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    Rng stream = parent.split(s);
    first_draws.insert(stream());
  }
  EXPECT_EQ(first_draws.size(), 1000u);
}

}  // namespace
}  // namespace hlock
