// Failure-injection (chaos) tests: the protocol assumes reliable FIFO
// transport, so injected message loss must never corrupt safety — it must
// instead wedge the run in a way the harness DETECTS. These tests verify
// the detectors, which every other test relies on for liveness checking.
#include <gtest/gtest.h>

#include "runtime/invariants.hpp"
#include "runtime/sim_cluster.hpp"
#include "util/check.hpp"
#include "workload/sim_driver.hpp"

namespace hlock::workload {
namespace {

using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

SimClusterOptions lossy_options(double loss, std::uint64_t seed) {
  SimClusterOptions options;
  options.node_count = 8;
  options.protocol = Protocol::kHierarchical;
  options.message_latency = DurationDist::uniform(SimTime::ms(1), 0.5);
  options.seed = seed;
  options.message_loss_probability = loss;
  return options;
}

WorkloadSpec chaos_spec(std::uint64_t seed) {
  WorkloadSpec spec;
  spec.variant = AppVariant::kHierarchical;
  spec.node_count = 8;
  spec.ops_per_node = 40;
  spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(4), 0.5);
  spec.seed = seed;
  return spec;
}

TEST(Chaos, MessageLossIsDetectedNotSilent) {
  // With 10% loss a run of this size loses some protocol message; the
  // driver must end with a detection (deadlock/lost request), never a
  // silent "pass" with fewer completed operations.
  int detections = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimCluster cluster{lossy_options(0.10, seed)};
    SimWorkloadDriver driver{cluster, chaos_spec(seed)};
    try {
      driver.run();
      // A run can survive if every dropped message happened to be... none:
      // then all ops completed. Anything else must have thrown.
      EXPECT_EQ(driver.stats().ops, 8u * 40u)
          << "run 'completed' with missing operations";
    } catch (const InvariantError&) {
      ++detections;
    }
  }
  EXPECT_GT(detections, 0) << "10% loss never tripped the detectors";
}

TEST(Chaos, SafetyHoldsEvenUnderLoss) {
  // Loss may wedge progress but must never produce incompatible holders:
  // a lost GRANT/TOKEN means nobody holds, never two holders.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimCluster cluster{lossy_options(0.15, seed)};
    SimWorkloadDriver driver{cluster, chaos_spec(seed)};
    const auto locks = all_locks(6);
    driver.set_periodic_check(256, [&] {
      const auto report = runtime::check_safety(cluster, locks);
      ASSERT_TRUE(report.ok()) << report.to_string();
    });
    try {
      driver.run();
    } catch (const InvariantError&) {
      // Expected: progress detection fired. Safety was asserted throughout.
    }
  }
}

TEST(Chaos, ZeroLossIsTheDefaultAndLossless) {
  SimClusterOptions options = lossy_options(0.0, 3);
  EXPECT_EQ(SimClusterOptions{}.message_loss_probability, 0.0);
  SimCluster cluster{options};
  SimWorkloadDriver driver{cluster, chaos_spec(3)};
  driver.run();
  EXPECT_EQ(driver.stats().ops, 8u * 40u);
}

TEST(Chaos, InvalidLossProbabilityRejected) {
  EXPECT_THROW(SimCluster{lossy_options(-0.1, 1)}, UsageError);
  EXPECT_THROW(SimCluster{lossy_options(1.5, 1)}, UsageError);
}

}  // namespace
}  // namespace hlock::workload
