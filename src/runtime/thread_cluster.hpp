// A cluster of protocol nodes on real threads with a blocking client API.
//
// Each node owns a receiver thread that drains its transport mailbox and
// feeds the protocol engine; application threads call lock()/unlock()/
// upgrade() and block until the grant arrives. Per-node protocol state is
// sharded by lock id: each shard owns its own LockEngine (and therefore its
// own lazily-created per-lock automaton map) behind its own mutex, so
// operations on different locks — the airline workload's table lock vs its
// entry locks — proceed concurrently instead of serializing on one node
// mutex. Within a shard the automatons' single-threaded contract holds
// exactly as before, and a given lock maps to the same shard index on every
// node, so a lock's entire causal chain stays on one shard per node.
//
// The receiver drains every matured message in one transport call
// (recv_ready) and dispatches consecutive same-shard runs under a single
// shard lock acquisition; outgoing step effects ship through
// Transport::send_batch so the transport can coalesce same-destination
// messages into one wire frame. See docs/performance.md.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/hier_config.hpp"
#include "obs/lamport.hpp"
#include "recovery/manager.hpp"
#include "runtime/engine.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/watchdog.hpp"
#include "trace/event.hpp"
#include "transport/faulty_transport.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/tcp_transport.hpp"
#include "util/sync.hpp"

namespace hlock::runtime {

/// Which transport carries the cluster's messages.
enum class TransportKind {
  kInProc,  ///< in-process mailboxes (fast; supports injected latency)
  kTcp,     ///< real TCP sockets over loopback (paper's Linux testbed)
};

/// Construction parameters of a threaded cluster.
struct ThreadClusterOptions {
  std::size_t node_count = 2;
  Protocol protocol = Protocol::kHierarchical;
  core::HierConfig hier_config = {};
  TransportKind transport = TransportKind::kInProc;
  /// Injected one-way message latency (real time; kInProc only — TCP has
  /// its own genuine latency).
  DurationDist message_latency = DurationDist::constant(SimTime::ns(0));
  std::uint64_t seed = 1;
  /// Round-trip messages through the wire codec (kInProc only; TCP always
  /// ships real encoded frames).
  bool codec_roundtrip = true;
  /// Coalesce same-destination messages of one automaton step into a
  /// single batch wire frame (both transports). Protocol-invisible — the
  /// lint / span streams are identical either way; the toggle exists for
  /// the transparency tests and A/B benchmarking (docs/performance.md).
  bool batching = true;
  /// Engine shards per node (lock ids route to shard `lock % shards`).
  /// 0 picks the default; 1 reproduces the legacy one-mutex-per-node
  /// behavior.
  std::size_t engine_shards = 0;
  NodeId initial_root = NodeId{0};
  /// Fault-injection plan; when it injects anything the chosen transport is
  /// wrapped in a transport::FaultyTransport (self-healing, so the cluster
  /// still makes progress — see docs/faults.md). A zero plan seed inherits
  /// the cluster seed.
  transport::FaultPlan faults;
  /// When set, the cluster instruments itself into this registry: every
  /// engine is wrapped in an InstrumentedEngine, per-shard queue-depth /
  /// tokens-held gauges and per-node mailbox-depth and receive-batch
  /// series appear, and the transport counters are exported as callback
  /// series (docs/telemetry.md lists the catalog). The registry must
  /// outlive the cluster. nullptr = zero telemetry overhead beyond a
  /// pointer test per operation.
  telemetry::Registry* metrics = nullptr;
  /// When set, every blocking lock()/upgrade() call brackets its wait with
  /// the stall watchdog, so requests waiting far beyond the observed p99
  /// are flagged. Must outlive the cluster; independent of `metrics` (the
  /// watchdog carries its own registry reference).
  telemetry::StallWatchdog* watchdog = nullptr;
  /// Crash-recovery configuration (docs/recovery.md). When enabled, every
  /// node runs a recovery::Manager driven by a cluster ticker thread,
  /// crash_stop() becomes available, and (with `metrics` set) the
  /// hlock_epoch / hlock_recovery_ms / hlock_stale_drops_total series
  /// export. Requires engine_shards <= 1 — the manager reports over the
  /// node's whole lock space, which must live in one engine — and is not
  /// supported for the Raymond baseline.
  recovery::Options recovery;
};

/// Engine shards per node when ThreadClusterOptions::engine_shards is 0.
inline constexpr std::size_t kDefaultEngineShards = 8;

/// See file comment.
class ThreadCluster {
 public:
  explicit ThreadCluster(const ThreadClusterOptions& options);

  /// Shuts down and joins all receiver threads. Outstanding blocked client
  /// calls are woken with an exception-free spurious return, and the
  /// destructor waits until every such call has left its wait before
  /// tearing the node state down.
  ~ThreadCluster();

  /// Acquires `lock` in `mode` on behalf of `node`; blocks until granted.
  /// Higher `priority` requests overtake queued lower-priority waiters
  /// (never current holders).
  void lock(NodeId node, LockId lock, LockMode mode,
            std::uint8_t priority = 0);

  /// Releases `lock` held by `node`.
  void unlock(NodeId node, LockId lock);

  /// Upgrades `node`'s U hold on `lock` to W; blocks until complete
  /// (hierarchical protocol only).
  void upgrade(NodeId node, LockId lock);

  /// True if `node` currently holds `lock`.
  bool holds(NodeId node, LockId lock);

  /// Total protocol messages sent so far.
  std::uint64_t messages_sent() const { return transport_->messages_sent(); }

  /// Total encoded wire bytes shipped so far (0 when nothing encodes —
  /// kInProc with codec_roundtrip off).
  std::uint64_t bytes_sent() const { return transport_->bytes_sent(); }

  std::size_t node_count() const { return nodes_.size(); }

  /// Engine shards per node this cluster runs with.
  std::size_t engine_shards() const { return shard_count_; }

  /// The fault-injecting transport wrapper, or nullptr when the cluster
  /// runs on a fault-free transport.
  transport::FaultyTransport* faulty_transport() { return faulty_; }

  /// Fault/healing counters of the faulty transport (nullptr without one).
  const stats::TransportCounters* fault_counters() const {
    return faulty_ == nullptr ? nullptr : &faulty_->counters();
  }

  /// Exceptions caught (and survived) on receiver threads so far.
  std::uint64_t receiver_errors() const {
    return receiver_errors_.load(std::memory_order_relaxed);
  }

  /// Receives every structured protocol event (hier config must enable
  /// trace_events), stamped with wall time since cluster start. Calls are
  /// serialized by an internal mutex, and each step's events are sunk
  /// BEFORE its messages are transmitted, so the sink observes a causally
  /// consistent global order (an exit-cs always precedes the enter-cs it
  /// enables). May be (re)set while operations are in flight; the sink
  /// must not call back into the cluster.
  using EventSink = std::function<void(trace::TraceEvent event)>;
  void set_event_sink(EventSink sink) HLOCK_EXCLUDES(event_mutex_);

  // ---- Crash-stop failure injection (docs/recovery.md; requires the
  //      recovery option to be enabled) ----

  /// Crash-stops `node`: its receiver thread exits on its next wake-up,
  /// pending and future messages to it are discarded unread, its manager
  /// stops ticking, and application calls on it throw UsageError. The
  /// survivors detect the silence and run an epoch-fenced recovery.
  void crash_stop(NodeId node);

  /// False once crash_stop(node) has been called.
  bool alive(NodeId node) const;

  /// Snapshot of `node`'s recovery state (taken under its shard mutex).
  std::uint32_t recovery_epoch_of(NodeId node);
  recovery::RecoveryCounters recovery_counters(NodeId node);
  /// Protocol messages `node` dropped for carrying a pre-fence epoch.
  std::uint64_t stale_drops(NodeId node);

 private:
  /// One lock-id shard of a node: its own engine (and per-lock automaton
  /// map), grant bookkeeping and mutex, preserving the automatons'
  /// single-threaded contract per shard while shards run concurrently.
  struct Shard {
    Mutex mutex;
    CondVar cv;
    std::unique_ptr<LockEngine> engine HLOCK_GUARDED_BY(mutex)
        HLOCK_PT_GUARDED_BY(mutex);
    /// Locks whose grant / upgrade-completion arrived but has not been
    /// consumed by the blocked client call yet.
    std::unordered_set<LockId> granted HLOCK_GUARDED_BY(mutex);
    std::unordered_set<LockId> upgraded HLOCK_GUARDED_BY(mutex);
    /// Client calls currently blocked on `cv`; the destructor waits for
    /// this to reach zero so a woken call never touches freed node state.
    int waiters HLOCK_GUARDED_BY(mutex) = 0;
    /// Telemetry gauges (nullptr without a registry), refreshed after every
    /// engine step under this shard's mutex. Value gauges, not callbacks:
    /// a snapshot-time callback would acquire shard mutexes under the
    /// registry mutex, the reverse of the engine's lazy-registration order
    /// (InstrumentedEngine::token_gauge) — a lock-order cycle.
    telemetry::Gauge* queue_depth = nullptr;
    telemetry::Gauge* tokens_held = nullptr;
  };

  struct NodeRuntime {
    /// The node's Lamport clock: ticked per step/send, merged per delivery,
    /// stamped onto every event and message (obs/lamport.hpp). Shared by
    /// every shard of the node, hence the lock-free variant.
    obs::AtomicLamportClock clock;
    std::vector<std::unique_ptr<Shard>> shards;
    /// sched::Thread (not std::thread) so the schedule explorer can
    /// control receiver interleavings (docs/sched.md); identical to
    /// std::thread when no observer is installed.
    sched::Thread receiver;
    /// Receive-batch-size histogram (nullptr without a registry); set
    /// before the receiver thread starts, recorded only by it.
    telemetry::Histogram* recv_batch = nullptr;

    // ---- Crash recovery (null/unused unless the option is enabled).
    //      All mutable recovery state below is guarded by the node's
    //      single shard mutex (recovery forces engine_shards == 1). ----

    /// False after crash_stop(); read by receiver, ticker and clients.
    std::atomic<bool> alive{true};
    std::unique_ptr<recovery::Manager> manager;
    /// Protocol messages received while halted, replayed on unhalt.
    std::vector<proto::Message> halted_msgs;
    /// Messages from a newer recovery epoch than the local automaton's,
    /// parked until the matching fence lands.
    std::vector<proto::Message> parked_msgs;
    std::uint64_t stale_drops = 0;

    /// Telemetry series (nullptr without a registry) and the cumulative
    /// values already published to them (manager counters only grow).
    telemetry::Gauge* epoch_gauge = nullptr;
    telemetry::Counter* suspicions = nullptr;
    telemetry::Counter* fences = nullptr;
    telemetry::Counter* recoveries = nullptr;
    telemetry::Counter* stale_drops_metric = nullptr;
    telemetry::Histogram* recovery_ms = nullptr;
    recovery::RecoveryCounters published;
    std::size_t published_samples = 0;
    std::uint64_t published_stale = 0;
  };

  void receiver_loop(NodeId node);
  /// Registers the transport-level callback series (message/byte totals,
  /// fault/retry counters, per-node mailbox depths) into metrics_.
  void register_transport_metrics(std::size_t node_count);
  /// Applies effects under the owning shard's mutex (sends after unlocking
  /// would also be correct; sends never block so holding it is safe and
  /// simpler).
  void apply(NodeRuntime& rt, Shard& shard, LockId lock, Effects&& effects)
      HLOCK_REQUIRES(shard.mutex) HLOCK_EXCLUDES(event_mutex_);
  /// Wall-clock time since cluster start as a SimTime (the recovery
  /// manager's clock domain in this runtime).
  SimTime wall_now() const;
  /// Drives every live node's failure detector roughly each heartbeat
  /// interval; exits when the destructor raises stopping_.
  void ticker_loop();
  /// Receive-side protocol routing with recovery on: halt buffering,
  /// newer-epoch parking, stale-drop counting, then normal delivery.
  void deliver_protocol(NodeRuntime& rt, Shard& shard,
                        const proto::Message& message)
      HLOCK_REQUIRES(shard.mutex) HLOCK_EXCLUDES(event_mutex_);
  /// Applies one Manager step: events, sends, fence effects, buffer
  /// replay on unhalt, cv wake-ups and telemetry refresh.
  void apply_outcome(NodeRuntime& rt, Shard& shard,
                     recovery::Outcome&& outcome)
      HLOCK_REQUIRES(shard.mutex) HLOCK_EXCLUDES(event_mutex_);
  /// Blocks while the node is halted (no-op with recovery off).
  void wait_unhalted(NodeRuntime& rt, Shard& shard)
      HLOCK_REQUIRES(shard.mutex);
  void publish_recovery_metrics(NodeRuntime& rt)
      HLOCK_NO_THREAD_SAFETY_ANALYSIS;
  NodeRuntime& runtime_of(NodeId node);
  Shard& shard_of(NodeRuntime& rt, LockId lock) {
    return *rt.shards[lock.value() % shard_count_];
  }

  std::unique_ptr<transport::Transport> transport_;
  /// Serializes event_sink_ calls across nodes and guards the sink slot
  /// itself, so installing a sink is safe while receivers run.
  Mutex event_mutex_;
  EventSink event_sink_ HLOCK_GUARDED_BY(event_mutex_);
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  /// Non-owning view of transport_ when the options wrapped it in faults.
  transport::FaultyTransport* faulty_ = nullptr;
  /// Non-owning view of the TCP transport when one carries the cluster
  /// (possibly underneath the faulty wrapper) — its retry counters export.
  transport::TcpTransport* tcp_ = nullptr;
  /// Telemetry hooks from the options (nullptr = uninstrumented).
  telemetry::Registry* metrics_ = nullptr;
  telemetry::StallWatchdog* watchdog_ = nullptr;
  std::size_t shard_count_ = kDefaultEngineShards;
  /// Recovery configuration; recovery_.enabled gates every recovery path.
  recovery::Options recovery_;
  /// Heartbeat ticker (joinable only when recovery is enabled); its cv
  /// exists so the destructor can cut a sleep short.
  sched::Thread ticker_;
  Mutex ticker_mutex_;
  CondVar ticker_cv_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  /// Read by client threads in cv predicates under shard mutexes while
  /// the destructor writes it: atomic, not mutex-protected.
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> receiver_errors_{0};
};

}  // namespace hlock::runtime
