// Cross-validates the linter's first-principles spec derivation against
// both the core's literal table encoding and independent copies of the
// paper's printed matrices. The two modules must agree on every cell of
// every table: the core encodes Table 1 as constexpr data tuned for the
// hot path, the lint module derives each cell from mode semantics, and
// these tests are the adjudicator that keeps them one source of truth.
#include "lint/spec_tables.hpp"

#include <gtest/gtest.h>

#include "core/mode_tables.hpp"

namespace hlock::lint {
namespace {

using proto::kAllModes;
using proto::kRealModes;
constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kU = LockMode::kU;
constexpr LockMode kIW = LockMode::kIW;
constexpr LockMode kW = LockMode::kW;

// ---- semantics axioms ------------------------------------------------------

TEST(SpecSemantics, AxiomsMatchTheModeDefinitions) {
  EXPECT_TRUE(semantics(kR).reads_all);
  EXPECT_FALSE(semantics(kR).upgrade_claim);
  EXPECT_TRUE(semantics(kU).reads_all);
  EXPECT_TRUE(semantics(kU).upgrade_claim);
  EXPECT_TRUE(semantics(kIW).reads_some);
  EXPECT_TRUE(semantics(kIW).writes_some);
  EXPECT_TRUE(semantics(kW).writes_all);
  EXPECT_FALSE(semantics(kIR).writes_some);
  const ModeSemantics nl = semantics(kNL);
  EXPECT_FALSE(nl.reads_all || nl.writes_all || nl.reads_some ||
               nl.writes_some || nl.upgrade_claim);
}

// ---- Table 1(a): Incompatible ---------------------------------------------

TEST(SpecTable1a, EveryCellMatchesThePaper) {
  // Independent copy of the printed matrix (rows M1, columns M2).
  const bool expected[5][5] = {
      // M2:   IR     R      U      IW     W
      /*IR*/ {false, false, false, false, true},
      /*R */ {false, false, false, true, true},
      /*U */ {false, false, true, true, true},
      /*IW*/ {false, true, true, false, true},
      /*W */ {true, true, true, true, true},
  };
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(spec_incompatible(kRealModes[i], kRealModes[j]),
                expected[i][j])
          << to_string(kRealModes[i]) << " vs " << to_string(kRealModes[j]);
    }
  }
}

TEST(SpecTable1a, AgreesWithCoreOnEveryPair) {
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      EXPECT_EQ(spec_incompatible(a, b), core::incompatible(a, b))
          << to_string(a) << " vs " << to_string(b);
      EXPECT_EQ(spec_incompatible(a, b), spec_incompatible(b, a))
          << "symmetry: " << to_string(a) << " vs " << to_string(b);
    }
  }
  for (LockMode m : kAllModes) {
    EXPECT_EQ(spec_compatible_set(m), core::compatible_set(m))
        << to_string(m);
  }
}

TEST(SpecTable1a, IncompatibleSetIsTheComplement) {
  for (LockMode m : kAllModes) {
    EXPECT_EQ(spec_compatible_set(m) | spec_incompatible_set(m),
              ModeSet::all_real())
        << to_string(m);
    EXPECT_EQ(spec_compatible_set(m) & spec_incompatible_set(m), ModeSet{})
        << to_string(m);
  }
}

// ---- Definition 1: strength ------------------------------------------------

TEST(SpecStrength, SameOrderAsCoreOnEveryPair) {
  // The absolute ranks differ (the spec counts incompatibilities, the core
  // hand-assigns 0..4) but every pairwise comparison must agree — the
  // order is all any rule consumes.
  for (LockMode a : kAllModes) {
    for (LockMode b : kAllModes) {
      EXPECT_EQ(spec_stronger(a, b), core::stronger(a, b))
          << to_string(a) << " vs " << to_string(b);
      EXPECT_EQ(spec_strength(a) == spec_strength(b),
                core::strength_rank(a) == core::strength_rank(b))
          << to_string(a) << " vs " << to_string(b);
    }
  }
}

TEST(SpecStrength, PaperInequations) {
  // NL < IR < R < U < W and IR < IW < W.
  EXPECT_TRUE(spec_stronger(kIR, kNL));
  EXPECT_TRUE(spec_stronger(kR, kIR));
  EXPECT_TRUE(spec_stronger(kU, kR));
  EXPECT_TRUE(spec_stronger(kW, kU));
  EXPECT_TRUE(spec_stronger(kIW, kIR));
  EXPECT_TRUE(spec_stronger(kW, kIW));
}

// ---- Table 1(b): No Child Grant -------------------------------------------

TEST(SpecTable1b, EveryCellMatchesThePaper) {
  // True = a non-token copyset member MAY grant (complement of the X marks).
  const bool may_grant[6][5] = {
      // M2:   IR     R      U      IW     W
      /*NL*/ {false, false, false, false, false},
      /*IR*/ {true, false, false, false, false},
      /*R */ {true, true, false, false, false},
      /*U */ {true, true, false, false, false},
      /*IW*/ {true, false, false, true, false},
      /*W */ {false, false, false, false, false},
  };
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(spec_non_token_can_grant(kAllModes[i], kRealModes[j]),
                may_grant[i][j])
          << to_string(kAllModes[i]) << " granting "
          << to_string(kRealModes[j]);
    }
  }
}

TEST(SpecTable1b, AgreesWithCoreOnEveryPair) {
  // The core derives "compatible and at least as strong"; the spec derives
  // compatible-set inclusion. Same table, two independent routes.
  for (LockMode owned : kAllModes) {
    for (LockMode req : kRealModes) {
      EXPECT_EQ(spec_non_token_can_grant(owned, req),
                core::non_token_can_grant(owned, req))
          << to_string(owned) << " granting " << to_string(req);
    }
  }
}

// ---- Rule 3.2: token grants ------------------------------------------------

TEST(SpecTokenGrant, AgreesWithCore) {
  for (LockMode owned : kAllModes) {
    for (LockMode req : kRealModes) {
      EXPECT_EQ(spec_token_can_grant(owned, req),
                core::token_can_grant(owned, req))
          << to_string(owned) << " vs " << to_string(req);
      if (core::token_can_grant(owned, req)) {
        // The transfer decision is only consulted on grantable pairs.
        EXPECT_EQ(spec_token_grant_transfers(owned, req),
                  core::token_grant_transfers(owned, req))
            << to_string(owned) << " vs " << to_string(req);
      }
    }
  }
}

// ---- Table 1(c): Queue/Forward --------------------------------------------

TEST(SpecTable1c, EveryCellMatchesThePaper) {
  constexpr auto Q = SpecQueueOrForward::kQueue;
  constexpr auto F = SpecQueueOrForward::kForward;
  const SpecQueueOrForward expected[6][5] = {
      // M2:  IR R  U  IW W      (rows: pending mode M1)
      /*NL*/ {F, F, F, F, F},
      /*IR*/ {Q, F, F, F, F},
      /*R */ {F, Q, F, F, F},
      /*U */ {F, F, Q, Q, Q},
      /*IW*/ {F, F, F, Q, F},
      /*W */ {Q, Q, Q, Q, Q},
  };
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(spec_queue_or_forward(kAllModes[i], kRealModes[j]),
                expected[i][j])
          << "pending " << to_string(kAllModes[i]) << ", request "
          << to_string(kRealModes[j]);
    }
  }
}

TEST(SpecTable1c, AgreesWithCoreOnEveryPair) {
  for (LockMode pending : kAllModes) {
    for (LockMode req : kRealModes) {
      const bool spec_queues = spec_queue_or_forward(pending, req) ==
                               SpecQueueOrForward::kQueue;
      const bool core_queues = core::queue_or_forward(pending, req) ==
                               core::QueueOrForward::kQueue;
      EXPECT_EQ(spec_queues, core_queues)
          << "pending " << to_string(pending) << ", request "
          << to_string(req);
    }
  }
}

// ---- Table 1(d): Freezing --------------------------------------------------

TEST(SpecTable1d, EveryCellMatchesThePaperAndCore) {
  for (LockMode owned : kAllModes) {
    for (LockMode req : kRealModes) {
      EXPECT_EQ(spec_freeze_set(owned, req), core::freeze_set(owned, req))
          << to_string(owned) << " vs " << to_string(req);
    }
  }
  // Spot-check the paper's worked examples directly.
  EXPECT_EQ(spec_freeze_set(kR, kW), ModeSet::of({kIR, kR, kU}))
      << "Fig. 5: token owns R, W request freezes IR,R,U";
  EXPECT_EQ(spec_freeze_set(kU, kW), ModeSet::of({kIR, kR}))
      << "Fig. 6 / Rule 7 upgrade freeze";
  EXPECT_EQ(spec_freeze_set(kU, kU), ModeSet{})
      << "compatible in the queue sense: nothing grantable can bypass";
}

TEST(SpecTable1d, FrozenModesAreExactlyTheBypassGrants) {
  for (LockMode owned : kAllModes) {
    for (LockMode queued : kRealModes) {
      const ModeSet frozen = spec_freeze_set(owned, queued);
      for (LockMode m : kRealModes) {
        const bool bypass = spec_incompatible(owned, queued) &&
                            spec_compatible(owned, m) &&
                            spec_incompatible(m, queued);
        EXPECT_EQ(frozen.contains(m), bypass)
            << to_string(owned) << '/' << to_string(queued) << " freeze of "
            << to_string(m);
      }
    }
  }
}

}  // namespace
}  // namespace hlock::lint
