// hlock_lint — conformance-lint a dumped protocol trace.
//
// Reads a trace file of format_event() lines (one event per line, as
// produced by `hlock_trace --dump` or any TraceRecorder dump), replays it
// against the paper's spec tables (src/lint) and reports every violation of
// Rules 1-7 / Tables 1(a)-(d) with its offending event window. Exits 0 on
// a conforming trace, 1 on violations, 2 on usage/parse errors.
//
//   hlock_trace --scenario priority --dump > priority.trace
//   hlock_lint priority.trace
//   hlock_lint --freezing 0 unfair.trace   # run had freezing disabled
#include <cstdio>
#include <fstream>
#include <string>

#include "lint/checker.hpp"
#include "trace/event.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

using namespace hlock;

int main(int argc, char** argv) {
  CliParser cli{"hlock_lint",
                "check a dumped event trace against the paper's spec"};
  cli.add_option("initial-token", "-1",
                 "node holding the token at trace start (-1 = infer from "
                 "the first token-flagged event)");
  cli.add_option("local-queueing", "1",
                 "the traced run had Table 1(c) local queueing on");
  cli.add_option("child-grants", "1",
                 "the traced run had Table 1(b) non-token grants on");
  cli.add_option("path-compression", "1",
                 "the traced run had dynamic path compression on");
  cli.add_option("freezing", "1",
                 "the traced run had Rule 6 freezing on (0 waives the "
                 "fairness checks)");
  cli.add_option("starvation-limit", "50000",
                 "events a request may wait before being reported starved");
  cli.allow_positionals("TRACE-FILE");

  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text().c_str(), stdout);
      return 0;
    }
    const std::vector<std::string>& files = cli.positional();
    if (files.size() != 1) {
      throw UsageError("expected exactly one trace file argument");
    }

    lint::LintOptions options;
    const std::int64_t token = cli.get_int("initial-token", -1, 1 << 20);
    if (token >= 0) {
      options.initial_token = proto::NodeId{static_cast<std::uint32_t>(token)};
    }
    options.local_queueing = cli.get_int("local-queueing", 0, 1) != 0;
    options.child_grants = cli.get_int("child-grants", 0, 1) != 0;
    options.path_compression = cli.get_int("path-compression", 0, 1) != 0;
    options.freezing = cli.get_int("freezing", 0, 1) != 0;
    options.starvation_limit = static_cast<std::size_t>(
        cli.get_int("starvation-limit", 1, 1'000'000'000));

    std::ifstream in{files.front()};
    if (!in) throw UsageError("cannot open trace file: " + files.front());

    lint::Checker checker{options};
    std::size_t line_number = 0;
    std::size_t parsed = 0;
    std::string line;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty() || line.front() == '#') continue;
      const auto event = trace::parse_event(line);
      if (!event) {
        throw UsageError("malformed event at line " +
                         std::to_string(line_number) + ": " + line);
      }
      checker.add(*event);
      ++parsed;
    }
    if (parsed == 0) throw UsageError("trace file holds no events");

    const lint::LintReport report = checker.finish();
    std::fputs(report.render().c_str(), stdout);
    return report.ok() ? 0 : 1;
  } catch (const UsageError& error) {
    std::fprintf(stderr, "error: %s\n\n%s", error.what(),
                 cli.help_text().c_str());
    return 2;
  }
}
