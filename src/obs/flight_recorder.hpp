// Post-mortem flight recorder.
//
// When a run dies — an invariant fires, the conformance linter reports a
// violation, or a chaos run shuts down on a crash path — the in-memory
// observability state (trace ring buffer, request spans, metrics) is
// exactly the evidence a post-mortem needs, and exactly what evaporates
// with the process. dump_flight_record() writes it all to a timestamped
// report under a chosen directory: the triggering reason, a metrics
// snapshot, the phase-latency breakdown, the rendered event ring (with its
// drop count, so truncated history is never mistaken for complete history)
// and a sibling Chrome-trace JSON file when spans are available.
//
// The dump path is crash-adjacent by design: it never throws — any I/O
// failure is logged and reported through the empty return value.
#pragma once

#include <cstddef>
#include <string>

#include "obs/span.hpp"
#include "stats/metrics.hpp"
#include "trace/recorder.hpp"

namespace hlock::obs {

/// What to include in a flight-record dump. Null members are skipped.
struct FlightRecordSources {
  const trace::TraceRecorder* recorder = nullptr;
  const SpanCollector* spans = nullptr;
  const stats::MetricsRegistry* metrics = nullptr;
  /// Node tracks for the Chrome-trace sibling file (0 = infer from spans).
  std::size_t node_count = 0;
};

/// Writes `<dir>/flight-<UTC timestamp>-<n>.txt` (creating `dir` if
/// needed) plus, when spans are present, the sibling
/// `flight-<timestamp>-<n>.trace.json` Chrome trace. Returns the report
/// path, or an empty string if writing failed (already logged; never
/// throws — this runs on crash paths).
std::string dump_flight_record(const std::string& dir,
                               const std::string& reason,
                               const FlightRecordSources& sources);

}  // namespace hlock::obs
