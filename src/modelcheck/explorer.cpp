#include "modelcheck/explorer.hpp"

#include <deque>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "core/hier_automaton.hpp"
#include "core/mode_tables.hpp"
#include "lint/checker.hpp"
#include "naimi/naimi_automaton.hpp"
#include "raymond/raymond_automaton.hpp"
#include "util/check.hpp"

namespace hlock::modelcheck {

namespace {

using core::Effects;
using core::HierAutomaton;
using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NodeId;

constexpr LockId kLock{0};

/// What a node is doing with respect to its script.
enum class Status : std::uint8_t {
  kIdle,        ///< ready to issue its next script op
  kWaiting,     ///< acquire issued, grant not yet received
  kUpgrading,   ///< upgrade issued, completion not yet received
  kDone,        ///< script exhausted
};

/// One complete system state. Copyable; branching copies it.
struct State {
  std::vector<HierAutomaton> nodes;
  /// FIFO channels keyed by (from, to); only nonempty ones are stored.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<Message>>
      channels;
  std::vector<std::size_t> pc;       // next script index per node
  std::vector<Status> status;

  std::string fingerprint() const {
    std::ostringstream os;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      os << 'N' << i << '[' << nodes[i].fingerprint() << ']' << pc[i]
         << static_cast<int>(status[i]);
    }
    for (const auto& [key, queue] : channels) {
      os << 'C' << key.first << '>' << key.second << '{';
      for (const Message& message : queue) os << to_string(message) << ';';
      os << '}';
    }
    return os.str();
  }
};

class Explorer {
 public:
  Explorer(const std::vector<Script>& scripts, const ExploreOptions& options)
      : scripts_(scripts), options_(options), config_(options.config) {
    if (options_.lint) config_.trace_events = true;
  }

  ExploreResult run() {
    State initial;
    for (std::size_t i = 0; i < scripts_.size(); ++i) {
      const NodeId self{static_cast<std::uint32_t>(i)};
      initial.nodes.emplace_back(self, kLock, i == 0,
                                 i == 0 ? NodeId::none() : NodeId{0},
                                 config_);
    }
    initial.pc.assign(scripts_.size(), 0);
    initial.status.assign(scripts_.size(), Status::kIdle);
    for (std::size_t i = 0; i < scripts_.size(); ++i) {
      if (scripts_[i].empty()) initial.status[i] = Status::kDone;
    }

    dfs(initial);
    if (result_.violation.empty()) result_.ok = true;
    return result_;
  }

 private:
  /// Applies one automaton step's effects to the state; returns false and
  /// records a violation if a safety property broke.
  bool absorb(State& state, std::size_t node, Effects&& fx) {
    for (trace::TraceEvent& event : fx.events) {
      // There is no simulated clock here; stamp events with a logical one
      // so counterexample dumps order and replay deterministically.
      event.at = SimTime::ns(static_cast<std::int64_t>(events_.size()) + 1);
      events_.push_back(std::move(event));
    }
    for (Message& message : fx.messages) {
      state.channels[{message.from.value(), message.to.value()}].push_back(
          std::move(message));
    }
    if (fx.entered_cs) {
      HLOCK_INVARIANT(state.status[node] == Status::kWaiting ||
                          state.status[node] == Status::kIdle,
                      "grant delivered to a node that was not waiting");
      state.status[node] = Status::kIdle;
    }
    if (fx.upgraded) {
      state.status[node] = Status::kIdle;
    }
    if (state.status[node] == Status::kIdle &&
        state.pc[node] >= scripts_[node].size()) {
      state.status[node] = Status::kDone;
    }
    return check_safety(state);
  }

  bool check_safety(const State& state) {
    std::size_t tokens = 0;
    for (const HierAutomaton& node : state.nodes) {
      if (node.is_token()) ++tokens;
    }
    for (const auto& [key, queue] : state.channels) {
      for (const Message& message : queue) {
        if (std::holds_alternative<proto::HierToken>(message.payload)) {
          ++tokens;
        }
      }
    }
    if (tokens != 1) {
      return fail("token conservation violated: " + std::to_string(tokens) +
                  " tokens");
    }
    for (std::size_t a = 0; a < state.nodes.size(); ++a) {
      for (std::size_t b = a + 1; b < state.nodes.size(); ++b) {
        const LockMode ma = state.nodes[a].held();
        const LockMode mb = state.nodes[b].held();
        if (ma != LockMode::kNL && mb != LockMode::kNL &&
            core::incompatible(ma, mb)) {
          return fail("incompatible holds: node" + std::to_string(a) + "=" +
                      to_string(ma) + " with node" + std::to_string(b) +
                      "=" + to_string(mb));
        }
      }
    }
    return true;
  }

  bool fail(const std::string& message) {
    if (result_.violation.empty()) {
      result_.violation = message;
      result_.trace = trace_;
      result_.events = events_;
    }
    return false;
  }

  /// Conformance lint (Tables 1(a)-(d), FIFO fairness) of the event trace
  /// along the current path; only meaningful at terminal states, where
  /// every queued request has resolved.
  bool lint_path() {
    lint::LintOptions lint_options;
    lint_options.initial_token = NodeId{0};
    lint_options.local_queueing = config_.local_queueing;
    lint_options.child_grants = config_.child_grants;
    lint_options.path_compression = config_.path_compression;
    lint_options.freezing = config_.freezing;
    const lint::LintReport report = lint::check(events_, lint_options);
    if (report.ok()) return true;
    const lint::Violation& first = report.violations.front();
    return fail("conformance lint: " + to_string(first.kind) + " — " +
                first.message);
  }

  void check_terminal(const State& state) {
    ++result_.terminal_states;
    for (std::size_t i = 0; i < state.nodes.size(); ++i) {
      if (state.status[i] != Status::kDone) {
        fail("terminal state with unfinished script at node" +
             std::to_string(i) + " (deadlock or lost request): " +
             state.nodes[i].describe());
        return;
      }
    }
    if (options_.lint && !lint_path()) return;
    // Quiescent structure: copysets mutual and accurate.
    for (std::size_t i = 0; i < state.nodes.size(); ++i) {
      for (const core::CopysetEntry& entry : state.nodes[i].copyset()) {
        const HierAutomaton& child = state.nodes[entry.node.value()];
        if (child.parent().value() != i) {
          fail("terminal state with non-mutual copyset at node" +
               std::to_string(i));
          return;
        }
        if (child.owned() != entry.mode) {
          fail("terminal state with stale copyset mode at node" +
               std::to_string(i));
          return;
        }
      }
    }
  }

  void dfs(const State& state) {
    if (!result_.violation.empty()) return;
    if (!visited_.insert(state.fingerprint()).second) return;
    ++result_.states_explored;
    if (result_.states_explored > options_.max_states) {
      fail("state limit exceeded (" + std::to_string(options_.max_states) +
           ")");
      return;
    }

    bool any_action = false;

    // Action class 1: deliver the head of any nonempty channel.
    for (const auto& [key, queue] : state.channels) {
      any_action = true;
      State next = state;
      auto it = next.channels.find(key);
      const Message message = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) next.channels.erase(it);

      ++result_.transitions;
      trace_.push_back("deliver " + to_string(message));
      const std::size_t events_mark = events_.size();
      const std::size_t to = message.to.value();
      if (absorb(next, to, next.nodes[to].on_message(message))) {
        dfs(next);
      }
      trace_.pop_back();
      events_.resize(events_mark);
      if (!result_.violation.empty()) return;
    }

    // Action class 2: a node issues its next script op.
    for (std::size_t i = 0; i < state.nodes.size(); ++i) {
      if (state.status[i] != Status::kIdle) continue;
      if (state.pc[i] >= scripts_[i].size()) continue;
      const ScriptOp op = scripts_[i][state.pc[i]];
      any_action = true;

      State next = state;
      ++next.pc[i];
      ++result_.transitions;
      const std::size_t events_mark = events_.size();
      Effects fx;
      switch (op.kind) {
        case ScriptOp::Kind::kAcquire:
          trace_.push_back("node" + std::to_string(i) + " acquire " +
                           to_string(op.mode) + "/p" +
                           std::to_string(op.priority));
          next.status[i] = Status::kWaiting;
          fx = next.nodes[i].request(op.mode, op.priority);
          break;
        case ScriptOp::Kind::kRelease:
          trace_.push_back("node" + std::to_string(i) + " release");
          fx = next.nodes[i].release();
          break;
        case ScriptOp::Kind::kUpgrade:
          trace_.push_back("node" + std::to_string(i) + " upgrade");
          next.status[i] = Status::kUpgrading;
          fx = next.nodes[i].upgrade();
          break;
      }
      if (absorb(next, i, std::move(fx))) dfs(next);
      trace_.pop_back();
      events_.resize(events_mark);
      if (!result_.violation.empty()) return;
    }

    if (!any_action) check_terminal(state);
  }

  const std::vector<Script>& scripts_;
  const ExploreOptions& options_;
  /// options_.config with trace_events forced on under options_.lint.
  core::HierConfig config_;
  ExploreResult result_;
  std::unordered_set<std::string> visited_;
  std::vector<std::string> trace_;
  /// Structured events along the current DFS path (push in absorb(),
  /// truncate on backtrack) — the linter's input and the counterexample
  /// event trace captured by fail().
  std::vector<trace::TraceEvent> events_;
};

// ---------------------------------------------------------------------------
// Mode-less protocols (Naimi, Raymond): a smaller exhaustive explorer over
// acquire/release scripts, parameterized by the automaton type and its
// structural terminal check.
// ---------------------------------------------------------------------------

template <typename Automaton>
class ModelessExplorer {
 public:
  using TerminalCheck = std::string (*)(const std::vector<Automaton>&);

  ModelessExplorer(const std::vector<Script>& scripts,
                   std::vector<Automaton> initial_nodes,
                   TerminalCheck terminal_check, std::uint64_t max_states)
      : scripts_(scripts), initial_nodes_(std::move(initial_nodes)),
        terminal_check_(terminal_check), max_states_(max_states) {}

  ExploreResult run() {
    // Aggregate construction: the automatons have const members, so the
    // vector must be moved in (element copy-assignment is deleted).
    State initial{std::move(initial_nodes_),
                  {},
                  std::vector<std::size_t>(scripts_.size(), 0)};
    dfs(initial);
    if (result_.violation.empty()) result_.ok = true;
    return result_;
  }

 private:
  struct State {
    std::vector<Automaton> nodes;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<Message>>
        channels;
    std::vector<std::size_t> pc;

    std::string fingerprint() const {
      std::ostringstream os;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        os << 'N' << i << '[' << nodes[i].fingerprint() << ']' << pc[i];
      }
      for (const auto& [key, queue] : channels) {
        os << 'C' << key.first << '>' << key.second << '{';
        for (const Message& message : queue) os << to_string(message) << ';';
        os << '}';
      }
      return os.str();
    }
  };

  bool fail(const std::string& message) {
    if (result_.violation.empty()) {
      result_.violation = message;
      result_.trace = trace_;
    }
    return false;
  }

  bool absorb(State& state, Effects&& fx) {
    for (Message& message : fx.messages) {
      state.channels[{message.from.value(), message.to.value()}].push_back(
          std::move(message));
    }
    // Safety: at most one node inside its critical section; exactly one
    // token at rest or in flight.
    std::size_t in_cs = 0;
    std::size_t tokens = 0;
    for (const Automaton& node : state.nodes) {
      in_cs += node.in_cs() ? 1u : 0u;
      tokens += node.has_token() ? 1u : 0u;
    }
    for (const auto& [key, queue] : state.channels) {
      for (const Message& message : queue) {
        if (std::holds_alternative<proto::NaimiToken>(message.payload)) {
          ++tokens;
        }
      }
    }
    if (in_cs > 1) return fail("mutual exclusion violated");
    if (tokens != 1) {
      return fail("token conservation violated: " + std::to_string(tokens));
    }
    return true;
  }

  void check_terminal(const State& state) {
    ++result_.terminal_states;
    for (std::size_t i = 0; i < state.nodes.size(); ++i) {
      if (state.pc[i] < scripts_[i].size() || state.nodes[i].requesting() ||
          state.nodes[i].in_cs()) {
        fail("terminal state with unfinished script at node" +
             std::to_string(i) + ": " + state.nodes[i].describe());
        return;
      }
    }
    const std::string structural = terminal_check_(state.nodes);
    if (!structural.empty()) fail(structural);
  }

  void dfs(const State& state) {
    if (!result_.violation.empty()) return;
    if (!visited_.insert(state.fingerprint()).second) return;
    ++result_.states_explored;
    if (result_.states_explored > max_states_) {
      fail("state limit exceeded");
      return;
    }

    bool any_action = false;
    for (const auto& [key, queue] : state.channels) {
      any_action = true;
      State next = state;
      auto it = next.channels.find(key);
      const Message message = it->second.front();
      it->second.pop_front();
      if (it->second.empty()) next.channels.erase(it);
      ++result_.transitions;
      trace_.push_back("deliver " + to_string(message));
      if (absorb(next, next.nodes[message.to.value()].on_message(message))) {
        dfs(next);
      }
      trace_.pop_back();
      if (!result_.violation.empty()) return;
    }

    for (std::size_t i = 0; i < state.nodes.size(); ++i) {
      if (state.pc[i] >= scripts_[i].size()) continue;
      const ScriptOp op = scripts_[i][state.pc[i]];
      // An acquire may only be issued when idle; a release when inside.
      if (op.kind == ScriptOp::Kind::kAcquire &&
          (state.nodes[i].in_cs() || state.nodes[i].requesting())) {
        continue;
      }
      if (op.kind == ScriptOp::Kind::kRelease && !state.nodes[i].in_cs()) {
        continue;
      }
      any_action = true;
      State next = state;
      ++next.pc[i];
      ++result_.transitions;
      trace_.push_back("node" + std::to_string(i) +
                       (op.kind == ScriptOp::Kind::kAcquire ? " acquire"
                                                            : " release"));
      Effects fx = op.kind == ScriptOp::Kind::kAcquire
                       ? next.nodes[i].request()
                       : next.nodes[i].release();
      if (absorb(next, std::move(fx))) dfs(next);
      trace_.pop_back();
      if (!result_.violation.empty()) return;
    }

    if (!any_action) check_terminal(state);
  }

  const std::vector<Script>& scripts_;
  std::vector<Automaton> initial_nodes_;
  TerminalCheck terminal_check_;
  std::uint64_t max_states_;
  ExploreResult result_;
  std::unordered_set<std::string> visited_;
  std::vector<std::string> trace_;
};

void validate_modeless_scripts(const std::vector<Script>& scripts) {
  HLOCK_REQUIRE(!scripts.empty(), "explore needs at least one node script");
  for (const Script& script : scripts) {
    bool holding = false;
    for (const ScriptOp& op : script) {
      switch (op.kind) {
        case ScriptOp::Kind::kAcquire:
          HLOCK_REQUIRE(!holding, "script acquires while holding");
          holding = true;
          break;
        case ScriptOp::Kind::kRelease:
          HLOCK_REQUIRE(holding, "script releases without holding");
          holding = false;
          break;
        case ScriptOp::Kind::kUpgrade:
          throw UsageError("mode-less protocols have no upgrade");
      }
    }
  }
}

std::string naimi_terminal_check(
    const std::vector<naimi::NaimiAutomaton>& nodes) {
  std::size_t roots = 0;
  std::size_t tokens = 0;
  for (const auto& node : nodes) {
    roots += node.probable_owner().is_none() ? 1u : 0u;
    tokens += node.has_token() ? 1u : 0u;
  }
  if (roots != 1) return "terminal state with " + std::to_string(roots) +
                         " roots";
  if (tokens != 1) return "terminal state with " + std::to_string(tokens) +
                          " tokens";
  return "";
}

std::string raymond_terminal_check(
    const std::vector<raymond::RaymondAutomaton>& nodes) {
  std::size_t holders = 0;
  for (const auto& node : nodes) holders += node.has_token() ? 1u : 0u;
  if (holders != 1) {
    return "terminal state with " + std::to_string(holders) +
           " privilege holders";
  }
  // Every holder chain must reach the token holder within n hops.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    std::size_t walker = i;
    std::size_t hops = 0;
    while (!nodes[walker].has_token()) {
      walker = nodes[walker].holder().value();
      if (++hops > nodes.size()) {
        return "terminal holder cycle from node" + std::to_string(i);
      }
    }
  }
  return "";
}

}  // namespace

ExploreResult explore_naimi(const std::vector<Script>& scripts,
                            std::uint64_t max_states) {
  validate_modeless_scripts(scripts);
  std::vector<naimi::NaimiAutomaton> nodes;
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    nodes.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, kLock, i == 0,
                       i == 0 ? NodeId::none() : NodeId{0});
  }
  ModelessExplorer<naimi::NaimiAutomaton> explorer{
      scripts, std::move(nodes), naimi_terminal_check, max_states};
  return explorer.run();
}

ExploreResult explore_raymond(const std::vector<Script>& scripts,
                              std::uint64_t max_states) {
  validate_modeless_scripts(scripts);
  const auto tree = raymond::balanced_tree(scripts.size());
  std::vector<raymond::RaymondAutomaton> nodes;
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    nodes.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, kLock,
                       i == 0 ? NodeId{0} : tree[i].holder,
                       tree[i].neighbors);
  }
  ModelessExplorer<raymond::RaymondAutomaton> explorer{
      scripts, std::move(nodes), raymond_terminal_check, max_states};
  return explorer.run();
}

ExploreResult explore(const std::vector<Script>& scripts,
                      const ExploreOptions& options) {
  HLOCK_REQUIRE(!scripts.empty(), "explore needs at least one node script");
  // Scripts must be locally well-formed (acquire/release alternation) or
  // the automaton preconditions fire mid-exploration.
  for (const Script& script : scripts) {
    bool holding = false;
    for (const ScriptOp& op : script) {
      switch (op.kind) {
        case ScriptOp::Kind::kAcquire:
          HLOCK_REQUIRE(!holding, "script acquires while holding");
          HLOCK_REQUIRE(op.mode != proto::LockMode::kNL,
                        "script acquires NL");
          holding = true;
          break;
        case ScriptOp::Kind::kRelease:
          HLOCK_REQUIRE(holding, "script releases without holding");
          holding = false;
          break;
        case ScriptOp::Kind::kUpgrade:
          HLOCK_REQUIRE(holding, "script upgrades without holding");
          break;
      }
    }
  }
  Explorer explorer{scripts, options};
  return explorer.run();
}

}  // namespace hlock::modelcheck
