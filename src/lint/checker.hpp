// Protocol conformance linter.
//
// Replays a structured trace (trace/event.hpp) against the paper's spec as
// re-derived in lint/spec_tables.hpp and reports every divergence from
// Rules 1-7 / Tables 1(a)-(d): incompatible concurrent holds, grants
// without Table 1(b)/3.2 authority, queue-vs-forward decisions
// contradicting Table 1(c), queued incompatible requests without their
// Table 1(d) freezes, grants of frozen modes, FIFO-fairness inversions,
// starved requests and token-conservation breaks.
//
// The checker is linear in the trace length and streaming: feed events in
// order via add(), collect the report with finish(). Convenience check()
// overloads lint a whole container in one call. It never inspects
// automaton internals — everything is judged from the events alone, which
// is what makes it usable on simulator runs, threaded chaos runs, dumped
// trace files (tools/hlock_lint) and model-checker counterexamples alike.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "lint/spec_tables.hpp"
#include "proto/ids.hpp"
#include "trace/event.hpp"

namespace hlock::lint {

/// Tuning and protocol-configuration knobs for one lint pass. The config
/// flags mirror core::HierConfig (kept as plain bools so the linter stays
/// independent of core); they matter because two features lawfully amend
/// the paper's tables: path compression queues every request at a pending
/// node, and disabled freezing waives the fairness guarantees.
struct LintOptions {
  /// The node holding the token at trace start; none = infer from the
  /// first event flagged token=true.
  proto::NodeId initial_token;

  // Mirrors of core::HierConfig for the run that produced the trace.
  bool local_queueing = true;
  bool child_grants = true;
  bool path_compression = true;
  bool freezing = true;

  /// A request still waiting this many events after being queued is
  /// reported as starved (generous default: real runs resolve in far
  /// fewer; lower it for targeted tests).
  std::size_t starvation_limit = 50000;

  /// Events of preceding context captured into each violation.
  std::size_t context_window = 4;
};

/// What went wrong. Each value maps to one rule/table of the paper.
enum class ViolationKind : std::uint8_t {
  kIncompatibleHolds,     ///< Rule 1 / Table 1(a): conflicting concurrent CS
  kUnauthorizedGrant,     ///< Rule 3 / Table 1(b): grant without authority
  kQueueForwardMismatch,  ///< Rule 4 / Table 1(c): wrong queue/forward call
  kMissingFreeze,         ///< Rule 6 / Table 1(d): queued conflict unfrozen
  kFrozenGrant,           ///< Rule 6: granted a mode the node had frozen
  kFifoInversion,         ///< Rule 6 outcome: a later request overtook an
                          ///< earlier incompatible one
  kStarvation,            ///< a queued request never resolved in time
  kTokenConservation,     ///< token moved/claimed by a non-holder
};

std::string to_string(ViolationKind kind);

/// One detected violation, anchored to the offending event.
struct Violation {
  ViolationKind kind;
  std::size_t event_index = 0;  ///< 0-based index of the offending event
  proto::LockId lock{};
  std::string message;  ///< human explanation with nodes/modes spelled out
  /// The offending event preceded by up to LintOptions::context_window
  /// events of context, one rendered line each (oldest first).
  std::vector<std::string> window;
};

/// Result of one lint pass.
struct LintReport {
  std::vector<Violation> violations;
  std::size_t events_checked = 0;

  bool ok() const { return violations.empty(); }
  /// Multi-line human rendering: one block per violation including its
  /// event window, plus a one-line summary.
  std::string render() const;
};

/// Streaming conformance checker; see file comment.
class Checker {
 public:
  explicit Checker(LintOptions options = {});

  /// Feeds the next event (events must arrive in trace order).
  void add(const trace::TraceEvent& event);

  /// Runs end-of-trace checks (pending freezes, starvation) and returns
  /// the accumulated report. The checker is spent afterwards.
  LintReport finish();

 private:
  /// A request observed queued and not yet granted/forwarded away.
  struct Waiting {
    proto::NodeId requester;
    std::uint64_t seq = 0;
    LockMode mode = LockMode::kNL;
    std::uint8_t priority = 0;
    bool at_token = false;   ///< in the token's FIFO (vs a local queue)
    std::uint64_t order = 0; ///< admission order among at-token entries
    std::size_t queued_index = 0;  ///< event index when first queued
    bool starved_reported = false;
  };

  /// Everything the checker tracks about one lock.
  struct LockState {
    proto::NodeId token;  ///< tracked holder; none until known
    /// True between a token-transfer event and the first token-flagged act
    /// of its destination: the token is in a message, nobody holds it, and
    /// the destination still lawfully acts as a non-token node.
    bool token_in_flight = false;
    std::map<std::uint32_t, LockMode> held;
    std::map<std::uint32_t, ModeSet> frozen;
    /// granter -> (child -> reported owned mode), mirrored from
    /// kCopysetJoin/kCopysetLeave.
    std::map<std::uint32_t, std::map<std::uint32_t, LockMode>> copyset;
    std::vector<Waiting> waiting;
    std::uint64_t next_order = 0;
    bool upgrading = false;
    /// Highest recovery-fence epoch observed (docs/recovery.md); token
    /// conservation is judged per epoch.
    std::uint32_t epoch = 0;
    /// Root appointed by the fence that opened `epoch`. Later same-epoch
    /// fences must agree on it even after the token has legitimately moved
    /// on from the fenced root.
    proto::NodeId fence_root;
    /// FIFO-inversion reporting stops once the lock has been fenced: the
    /// reconstructed queue's admissions are invisible to the trace (no
    /// kQueue re-emission) and late re-requests carry pre-crash seqs, so
    /// arrival-order fairness judgments are unsound from then on. Safety,
    /// token-conservation and starvation checks keep running.
    bool fifo_suspended = false;
    /// Freezes owed since the last token queue admission, checked at the
    /// token's next grant (Table 1(d) may be satisfied by an existing
    /// frozen set, in which case no kFreeze event is ever emitted).
    ModeSet pending_freeze;
  };

  LockState& state(proto::LockId lock);
  /// Definition 3 estimate for `node`: its held mode joined with its
  /// mirrored copyset entries.
  LockMode owned_estimate(const LockState& ls, proto::NodeId node) const;
  /// Union of Table 1(d) freeze sets demanded by the still-waiting token
  /// queue entries admitted before `before_order` (and a pending upgrade),
  /// evaluated at the current owned estimate.
  ModeSet required_frozen(const LockState& ls,
                          std::uint64_t before_order) const;

  void report(ViolationKind kind, const trace::TraceEvent& event,
              std::size_t index, std::string message);

  void on_grant(LockState& ls, const trace::TraceEvent& event,
                std::size_t index);
  void on_queue(LockState& ls, const trace::TraceEvent& event,
                std::size_t index);
  void on_forward(LockState& ls, const trace::TraceEvent& event,
                  std::size_t index);
  void on_token_transfer(LockState& ls, const trace::TraceEvent& event,
                         std::size_t index);
  void check_hold_compatibility(LockState& ls,
                                const trace::TraceEvent& event,
                                std::size_t index, LockMode entering);
  /// Fairness outcome check: flags the grant if an earlier-admitted,
  /// same-or-higher-priority, still-waiting token entry conflicts with it.
  void check_fifo(LockState& ls, const trace::TraceEvent& event,
                  std::size_t index, std::uint64_t grant_order,
                  std::uint8_t priority);
  /// Clears (peer, seq) from the waiting list; returns its admission order
  /// or next_order if it was never queued.
  std::uint64_t resolve_waiting(LockState& ls, proto::NodeId requester,
                                std::uint64_t seq);
  void check_token_flag(LockState& ls, const trace::TraceEvent& event,
                        std::size_t index);
  /// Crash-recovery events (docs/recovery.md): a kNodeDead erases the dead
  /// node from every lock's tracked state; a kFence reseats the token for
  /// its epoch and flags same-epoch fences that disagree on the root.
  void on_node_dead(proto::NodeId dead);
  void on_fence(LockState& ls, const trace::TraceEvent& event,
                std::size_t index);
  void check_pending_freeze(LockState& ls, const trace::TraceEvent& event,
                            std::size_t index);
  void check_starvation(std::size_t index);

  LintOptions options_;
  LintReport report_;
  std::map<std::uint32_t, LockState> locks_;
  std::size_t index_ = 0;
  /// Rolling window of rendered recent events for violation context.
  std::deque<std::string> context_;
};

/// Lints a complete trace in one call.
LintReport check(const std::vector<trace::TraceEvent>& events,
                 const LintOptions& options = {});
/// Overload for TraceRecorder::events() storage.
LintReport check(const std::deque<trace::TraceEvent>& events,
                 const LintOptions& options = {});

}  // namespace hlock::lint
