// SchedTest harness: runs a test body under the deterministic schedule
// explorer across many seeds (tests/CMakeLists.txt gives these binaries
// the `sched` ctest label).
//
// Each seed forks a child (sched/harness.hpp): the explorer must end the
// process on a proven deadlock, so the parent classifies exit statuses and
// turns anything but a clean completion into a gtest failure carrying the
// child's captured output and the replay instructions. Set
// HLOCK_SCHED_SEED=<seed> to replay exactly one schedule in-process — the
// debugger-friendly path a failure's message points at. See docs/sched.md.
#pragma once

#include <cstdlib>
#include <functional>
#include <string>

#include "gtest/gtest.h"
#include "sched/harness.hpp"

namespace hlock::sched_test {

struct ExploreOptions {
  /// First seed; seeds base_seed .. base_seed + seeds - 1 are explored.
  std::uint64_t base_seed = 1;
  int seeds = 16;
  std::uint32_t change_interval = 12;
  std::uint64_t max_steps = 2'000'000;
};

/// Explores `options.seeds` schedules of `body`, failing the test on any
/// seed that deadlocks, exceeds its budget, crashes, or whose body records
/// a gtest failure. With HLOCK_SCHED_SEED set, replays that single seed
/// in-process instead (a deadlock then exits the whole test binary with
/// the report — that is the point of a replay).
inline void explore(const std::function<void()>& body,
                    const ExploreOptions& options = {}) {
  sched::ExplorerOptions explorer_options;
  explorer_options.change_interval = options.change_interval;
  explorer_options.max_steps = options.max_steps;

  if (const char* replay = std::getenv("HLOCK_SCHED_SEED")) {
    explorer_options.seed = std::strtoull(replay, nullptr, 10);
    sched::Explorer explorer{explorer_options};
    explorer.run(body);
    return;
  }

  for (int i = 0; i < options.seeds; ++i) {
    explorer_options.seed = options.base_seed + static_cast<std::uint64_t>(i);
    const sched::SeedResult result = sched::run_seed(
        explorer_options, body, [] { return ::testing::Test::HasFailure(); });
    if (result.verdict == sched::SeedVerdict::kOk) continue;
    ADD_FAILURE() << "schedule seed " << explorer_options.seed << ": "
                  << sched::seed_verdict_name(result.verdict)
                  << " (exit status " << result.status << ")\n"
                  << result.output
                  << "replay in-process: HLOCK_SCHED_SEED="
                  << explorer_options.seed
                  << " ./<this test binary> "
                     "--gtest_filter=<this test>";
    return;  // one report is enough; later seeds would repeat the noise
  }
}

}  // namespace hlock::sched_test
