// Minimal HTTP/1.1 server exposing `GET /metrics` over loopback TCP.
//
// One accept thread serves connections serially (a scrape is a short
// read-respond-close exchange; Prometheus-style pollers open one
// connection per scrape). The exporter reuses the transport layer's
// loopback socket helpers and renders the owning Registry fresh on every
// request, so a scrape always sees current values — no sampler
// dependency. Anything other than `GET /metrics` (or `GET /`) gets a 404;
// malformed requests get a 400. Plain text, Content-Length framing,
// `Connection: close`.
//
// This is deliberately not a general HTTP server: loopback only, no
// keep-alive, no TLS, request line + headers capped at 8 KiB.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "telemetry/registry.hpp"
#include "util/sync.hpp"

namespace hlock::telemetry {

/// See file comment.
class HttpExporter {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving. Throws
  /// UsageError when the bind fails.
  HttpExporter(Registry& registry, std::uint16_t port);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// The bound port (useful with port 0).
  std::uint16_t port() const { return port_; }

  /// Scrapes served so far (2xx responses only).
  std::uint64_t scrapes_served() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

  /// Stops accepting and joins the server thread. Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int fd);

  Registry& registry_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> scrapes_{0};
  sched::Thread thread_;
};

}  // namespace hlock::telemetry
