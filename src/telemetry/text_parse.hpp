// Parsing and validation of Prometheus text exposition — the read side of
// telemetry/exposition.hpp, used by hlock_top (dashboard over scraped
// text), hlock_metrics_check (the CI format checker) and tests.
//
// The parser accepts the subset render_prometheus() emits (plus `# HELP`
// and blank lines, for tolerance): `# TYPE family type` lines and
// `name{labels} value` samples. It is strict about everything it does
// parse — malformed lines land in ParsedExposition::errors rather than
// being skipped silently, because the CI checker's whole job is to fail
// on malformed output.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace hlock::telemetry {

/// One `name value` sample line, split into family and raw label block.
struct ParsedSeries {
  std::string name;    ///< full series name, labels included
  std::string family;  ///< name up to '{'
  std::string labels;  ///< raw label block incl. braces; "" when bare
  double value = 0.0;
};

struct ParsedExposition {
  std::vector<ParsedSeries> series;           ///< in file order
  std::map<std::string, std::string> types;   ///< family -> declared type
  std::vector<std::string> errors;            ///< malformed-line messages

  /// The first series with exactly this name, or nullptr.
  const ParsedSeries* find(const std::string& name) const;
  /// Sum of every series whose name starts with `prefix` (family match or
  /// full labeled-series match alike).
  double prefixed_sum(const std::string& prefix) const;
};

/// Parses exposition text. Never throws; syntax problems are collected in
/// the result's `errors`.
ParsedExposition parse_exposition(const std::string& text);

/// Validates one scrape: every sample's family has a TYPE line, no
/// duplicate series names, histogram buckets cumulative-monotone with
/// `_count` equal to the `+Inf` bucket, counters non-negative. Returns
/// human-readable violations (empty = clean). Parser errors are included.
std::vector<std::string> check_exposition(const ParsedExposition& parsed);

/// Validates counter monotonicity across two scrapes of the same process:
/// every counter-typed series present in both must not decrease. Returns
/// violations (empty = clean).
std::vector<std::string> check_monotone(const ParsedExposition& earlier,
                                        const ParsedExposition& later);

}  // namespace hlock::telemetry
