// Regression for the unguarded-counter pattern in stats/metrics.hpp: a
// harness thread snapshot-reads message counts (progress displays, chaos
// summaries) while sender threads are still counting. Before MessageCounter
// went atomic every such read was a data race — invisible until an
// interleaving hit it, flagged immediately by TSan and by the capability
// analysis once the fields were annotated. This test is part of the TSan CI
// job precisely so the plain-integer version can never come back.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "stats/metrics.hpp"

namespace hlock::stats {
namespace {

using proto::MessageKind;

TEST(MessageCounterConcurrency, SnapshotReadsDuringConcurrentAdds) {
  MessageCounter counter;
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 50000;

  std::atomic<bool> stop{false};
  // The snapshot reader races the writers on purpose; it can only assert
  // monotone sanity. The per-kind count must be read BEFORE the total:
  // counts only grow, so count(t1) <= total(t1) <= total(t2). The other
  // order is itself racy — the count could overtake an older total.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t requests = counter.count(MessageKind::kHierRequest);
      EXPECT_LE(requests, counter.total());
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&counter, w] {
      const MessageKind kind =
          w % 2 == 0 ? MessageKind::kHierRequest : MessageKind::kHierGrant;
      for (std::uint64_t i = 0; i < kPerWriter; ++i) counter.add(kind);
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  // No increment may be lost once the writers are quiescent.
  EXPECT_EQ(counter.total(), kWriters * kPerWriter);
  EXPECT_EQ(counter.count(MessageKind::kHierRequest),
            kWriters / 2 * kPerWriter);
  EXPECT_EQ(counter.count(MessageKind::kHierGrant),
            kWriters / 2 * kPerWriter);
  EXPECT_EQ(counter.count(MessageKind::kHierToken), 0u);
}

TEST(MessageCounterConcurrency, MetricsRegistrySnapshotDuringTraffic) {
  MetricsRegistry metrics;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)metrics.messages().total();
    }
  });
  for (int i = 0; i < 20000; ++i) {
    metrics.messages().add(MessageKind::kHierRelease);
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  EXPECT_EQ(metrics.messages().count(MessageKind::kHierRelease), 20000u);
}

}  // namespace
}  // namespace hlock::stats
