// Randomized differential crash-recovery harness (docs/recovery.md): each
// seed derives a random workload and a random kill schedule, runs the SAME
// scenario on the hierarchical protocol and the Naimi baseline, and checks
// the engine-independent recovery contract on both:
//   * safety  — never two same-epoch (unfenced) grants of incompatible
//               modes on one lock among live nodes, checked mid-flight;
//   * liveness — every surviving requester drains within the driver's
//               deadline (SimWorkloadDriver::run throws otherwise);
//   * agreement — all survivors converge on one post-kill epoch;
//   * lint    — the hierarchical trace passes the epoch-aware conformance
//               checker.
// Runs kSeedCount seeds; set HLOCK_RECOVERY_SEED=<seed> to replay exactly
// one scenario (the failure message names the seed), mirroring the sched
// harness's HLOCK_SCHED_SEED workflow.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/mode_tables.hpp"
#include "lint/checker.hpp"
#include "runtime/sim_cluster.hpp"
#include "trace/event.hpp"
#include "util/rng.hpp"
#include "workload/op_plan.hpp"
#include "workload/sim_driver.hpp"

namespace hlock {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;
using workload::AppVariant;
using workload::WorkloadSpec;

constexpr std::uint64_t kSeedCount = 64;

/// The seed-derived part of a run: cluster size, contention surface and
/// the kill schedule (shared verbatim by both engines).
struct Scenario {
  std::size_t nodes = 3;
  std::size_t entries = 2;
  int ops_per_node = 6;
  std::vector<WorkloadSpec::Kill> kills;

  std::string describe() const {
    std::string out = std::to_string(nodes) + " nodes, " +
                      std::to_string(entries) + " entries, " +
                      std::to_string(ops_per_node) + " ops/node, kills:";
    for (const auto& kill : kills) {
      out += " node" + std::to_string(kill.node.value()) + "@" +
             std::to_string(kill.at.to_ms()) + "ms";
    }
    return out;
  }
};

Scenario draw_scenario(std::uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 1);
  Scenario s;
  s.nodes = 3 + static_cast<std::size_t>(rng.below(4));  // 3..6
  s.entries = 2 + static_cast<std::size_t>(rng.below(2));
  s.ops_per_node = 5 + static_cast<int>(rng.below(4));
  // One kill always; a second on the larger clusters — at least two
  // survivors remain so a quorumless wedge is never the expected outcome.
  const std::size_t kills = (s.nodes >= 5 && rng.chance(0.5)) ? 2 : 1;
  std::vector<std::uint32_t> victims;
  while (victims.size() < kills) {
    const auto victim = static_cast<std::uint32_t>(rng.below(s.nodes));
    if (std::find(victims.begin(), victims.end(), victim) == victims.end()) {
      victims.push_back(victim);
    }
  }
  for (const std::uint32_t victim : victims) {
    // Anywhere from early contention to the tail of the workload, so kills
    // land before, during and after the victim's holds across the seeds.
    const auto at =
        SimTime::ms(500 + static_cast<std::int64_t>(rng.below(9'500)));
    s.kills.push_back({NodeId{victim}, at});
  }
  return s;
}

bool is_killed(const Scenario& s, std::uint32_t node) {
  for (const auto& kill : s.kills) {
    if (kill.node.value() == node) return true;
  }
  return false;
}

/// Mid-flight safety sweep: among LIVE nodes, two same-epoch holds of one
/// lock must be mode-compatible (hierarchical) / mutually exclusive
/// (Naimi). Cross-epoch overlap is the fence doing its job, not a bug.
void check_no_unfenced_conflict(SimCluster& cluster, const Scenario& s) {
  const auto locks = workload::all_locks(s.entries);
  const bool hier = cluster.options().protocol == Protocol::kHierarchical;
  for (const LockId lock : locks) {
    struct Hold {
      std::uint32_t node;
      LockMode mode;
      std::uint32_t epoch;
    };
    std::vector<Hold> holds;
    for (std::uint32_t n = 0; n < s.nodes; ++n) {
      if (!cluster.alive(NodeId{n})) continue;
      if (hier) {
        const auto& automaton = cluster.hier_automaton(NodeId{n}, lock);
        if (automaton.held() != LockMode::kNL) {
          holds.push_back({n, automaton.held(), automaton.recovery_epoch()});
        }
      } else {
        const auto& automaton = cluster.naimi_automaton(NodeId{n}, lock);
        if (automaton.in_cs()) {
          holds.push_back({n, LockMode::kW, automaton.recovery_epoch()});
        }
      }
    }
    for (std::size_t a = 0; a < holds.size(); ++a) {
      for (std::size_t b = a + 1; b < holds.size(); ++b) {
        if (holds[a].epoch != holds[b].epoch) continue;
        EXPECT_TRUE(core::compatible(holds[a].mode, holds[b].mode))
            << "unfenced conflicting grants on lock " << lock.value()
            << ": node" << holds[a].node << " holds "
            << proto::to_string(holds[a].mode) << ", node" << holds[b].node
            << " holds " << proto::to_string(holds[b].mode) << " in epoch "
            << holds[a].epoch;
      }
    }
  }
}

/// Runs one engine over the scenario and checks the whole contract.
void run_engine(Protocol protocol, const Scenario& s, std::uint64_t seed) {
  SimClusterOptions options;
  options.node_count = s.nodes;
  options.protocol = protocol;
  options.seed = seed;
  options.recovery.enabled = true;
  options.recovery.heartbeat_interval = SimTime::ms(100);
  options.recovery.suspect_after = SimTime::ms(600);
  options.recovery_horizon = SimTime::ms(60'000);
  const bool hier = protocol == Protocol::kHierarchical;
  options.hier_config.trace_events = hier;
  SimCluster cluster(options);

  std::vector<trace::TraceEvent> events;
  if (hier) {
    cluster.set_event_observer(
        [&](trace::TraceEvent event) { events.push_back(std::move(event)); });
  }

  WorkloadSpec spec;
  spec.variant = hier ? AppVariant::kHierarchical : AppVariant::kNaimiPure;
  spec.node_count = s.nodes;
  spec.table_entries = s.entries;
  spec.ops_per_node = s.ops_per_node;
  spec.seed = seed;
  spec.kills = s.kills;
  workload::SimWorkloadDriver driver(cluster, spec);
  driver.set_periodic_check(
      64, [&] { check_no_unfenced_conflict(cluster, s); });

  // Liveness: run() throws if the survivors fail to drain every operation
  // (deadlock / lost waiter) or the event budget explodes (livelock).
  ASSERT_NO_THROW(driver.run()) << "survivors failed to drain";

  // Epoch agreement: every survivor adopted the same post-kill epoch, the
  // campaign counters fired, and nobody is left halted.
  std::uint32_t epoch = 0;
  bool first = true;
  for (std::uint32_t n = 0; n < s.nodes; ++n) {
    if (is_killed(s, n)) {
      EXPECT_FALSE(cluster.alive(NodeId{n}));
      continue;
    }
    auto& manager = cluster.manager(NodeId{n});
    EXPECT_FALSE(manager.halted()) << "node" << n << " stuck halted";
    EXPECT_GT(manager.current_epoch(), 0u) << "node" << n << " never fenced";
    EXPECT_GE(manager.counters().recoveries, 1u);
    if (first) {
      epoch = manager.current_epoch();
      first = false;
    } else {
      EXPECT_EQ(manager.current_epoch(), epoch)
          << "node" << n << " disagrees on the final epoch";
    }
  }

  if (hier) {
    lint::LintOptions lint_options;
    lint_options.initial_token = NodeId{0};
    const lint::LintReport report = lint::check(events, lint_options);
    EXPECT_TRUE(report.ok()) << report.render();
  }
}

/// One seed, both engines, with a replay hint on any failure.
void run_seed(std::uint64_t seed) {
  const Scenario s = draw_scenario(seed);
  SCOPED_TRACE("seed " + std::to_string(seed) + " (" + s.describe() +
               ") — replay just this one with HLOCK_RECOVERY_SEED=" +
               std::to_string(seed));
  run_engine(Protocol::kHierarchical, s, seed);
  run_engine(Protocol::kNaimi, s, seed);
}

TEST(RecoveryDifferential, RandomKillSchedulesHoldOnBothEngines) {
  if (const char* replay = std::getenv("HLOCK_RECOVERY_SEED")) {
    run_seed(std::strtoull(replay, nullptr, 10));
    return;
  }
  for (std::uint64_t seed = 1; seed <= kSeedCount; ++seed) {
    run_seed(seed);
    if (::testing::Test::HasFailure()) return;  // one report is enough
  }
}

}  // namespace
}  // namespace hlock
