// Deterministic pseudo-random number generation.
//
// Simulation reproducibility is a hard requirement: the evaluation harness
// must produce identical traces for identical seeds across platforms and
// standard-library versions. <random> engines are specified, but its
// *distributions* are not, so hlock implements both the engine
// (xoshiro256++, the current general-purpose recommendation from
// Blackman & Vigna) and the distributions (see distributions.hpp) itself.
#pragma once

#include <array>
#include <cstdint>

namespace hlock {

/// xoshiro256++ pseudo-random generator with splitmix64 seeding.
///
/// Satisfies std::uniform_random_bit_generator so it can also be plugged
/// into standard algorithms, but hlock code uses the explicit helpers below
/// for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single seed via splitmix64, as
  /// recommended by the xoshiro authors (avoids correlated low-entropy
  /// states for small seeds).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit output.
  std::uint64_t operator()();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double uniform01();

  /// Bernoulli trial with probability p (clamped to [0, 1]).
  bool chance(double p);

  /// Returns a generator whose stream is statistically independent of this
  /// one, derived deterministically: stream k of a given seed is always the
  /// same sequence. Used to give every simulated node its own stream so
  /// that adding a node does not perturb the draws of the others.
  Rng split(std::uint64_t stream_id) const;

 private:
  explicit Rng(const std::array<std::uint64_t, 4>& state) : s_(state) {}
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t origin_seed_ = 0;
};

/// splitmix64 step: mixes `x` and returns the next value. Exposed for
/// seeding/hashing utilities and tested against the reference vectors.
std::uint64_t splitmix64_next(std::uint64_t& x);

}  // namespace hlock
