// Message-by-message reproductions of the paper's worked examples
// (Figures 2-6). Node letters map to indices: A=0, B=1, C=2, D=3, E=4.
#include <gtest/gtest.h>

#include "core/mode_tables.hpp"
#include "tests/core/test_net.hpp"

namespace hlock::test {
namespace {

using core::CopysetEntry;
using proto::ModeSet;
constexpr LockMode kNL = LockMode::kNL;
constexpr LockMode kIR = LockMode::kIR;
constexpr LockMode kR = LockMode::kR;
constexpr LockMode kU = LockMode::kU;
constexpr LockMode kIW = LockMode::kIW;
constexpr LockMode kW = LockMode::kW;
constexpr std::size_t A = 0, B = 1, C = 2, D = 3, E = 4;

bool copyset_has(const HierAutomaton& node, std::size_t child,
                 LockMode mode) {
  for (const CopysetEntry& entry : node.copyset()) {
    if (entry.node == NodeId{static_cast<std::uint32_t>(child)}) {
      return entry.mode == mode;
    }
  }
  return false;
}

// ---- Figure 2: request granting -------------------------------------------

TEST(Fig2, IntentReadGrantedAsCopy) {
  // (a): A is the token and holds IR; E requests IR.
  HierNet net{5};
  net.request(A, kIR);
  EXPECT_EQ(net.cs_entries(A), 1);  // token self-grant, zero messages
  EXPECT_EQ(net.total_messages(), 0u);

  net.request(E, kIR);
  ASSERT_EQ(net.wire().size(), 1u);  // one REQUEST to A
  net.settle();

  // E holds IR as a child of A; one REQUEST plus one GRANT crossed.
  EXPECT_EQ(net.cs_entries(E), 1);
  EXPECT_EQ(net.node(E).held(), kIR);
  EXPECT_EQ(net.node(E).parent(), NodeId{0});
  EXPECT_TRUE(copyset_has(net.node(A), E, kIR));
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(Fig2, ReadRequestTransfersToken) {
  // (b): B requests R while the token node A owns only IR -> the token is
  // transferred; A becomes B's child. (c): final state.
  HierNet net{5};
  net.request(A, kIR);
  net.request(E, kIR);
  net.settle();

  net.request(B, kR);
  net.settle();

  EXPECT_TRUE(net.node(B).is_token());
  EXPECT_FALSE(net.node(A).is_token());
  EXPECT_EQ(net.node(B).held(), kR);
  EXPECT_EQ(net.node(B).owned(), kR);
  EXPECT_EQ(net.node(A).parent(), NodeId{1});
  EXPECT_TRUE(copyset_has(net.node(B), A, kIR));
  // A keeps holding IR and keeps its own child E.
  EXPECT_EQ(net.node(A).held(), kIR);
  EXPECT_TRUE(copyset_has(net.node(A), E, kIR));
  // Safety: IR + IR + R are pairwise compatible, all three hold.
  EXPECT_EQ(net.node(E).held(), kIR);
}

// ---- Figure 3: queue / forward ---------------------------------------------

TEST(Fig3, ForwardWithoutPendingThenQueueWithPending) {
  // Topology of the figure: C and D are children of B, B of A.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{1}};
  HierNet net{parents};
  net.request(A, kIW);  // A(IW,IW,0), token
  EXPECT_EQ(net.cs_entries(A), 1);

  // (a)-(b): C requests IR; B has no pending request, so Table 1(c) row "-"
  // forces a forward to A; A grants C directly (IW and IR are compatible).
  net.request(C, kIR);
  ASSERT_EQ(net.wire().size(), 1u);
  EXPECT_EQ(net.wire().front().to, NodeId{1});  // C -> B
  net.deliver_one();
  ASSERT_EQ(net.wire().size(), 1u);
  EXPECT_EQ(net.wire().front().to, NodeId{0});  // forwarded B -> A
  EXPECT_EQ(net.node(B).parent(), NodeId{0}) << "B must keep its parent";
  net.settle();
  EXPECT_EQ(net.node(C).held(), kIR);
  EXPECT_EQ(net.node(C).parent(), NodeId{0}) << "grant re-parents C to A";

  // (c): B and D request R concurrently. D's request reaches B, which now
  // has pending R -> Table 1(c) row R / column R says queue.
  net.request(B, kR);
  net.request(D, kR);
  net.settle();

  // B's R is incompatible with A's IW: queued at A (Rule 4.2); D's R is
  // queued at B (Rule 4.1).
  EXPECT_EQ(net.node(A).queue().size(), 1u);
  EXPECT_EQ(net.node(B).queue().size(), 1u);
  EXPECT_EQ(net.node(B).queue().front().requester, NodeId{3});
  EXPECT_EQ(net.node(B).pending(), kR);
  EXPECT_EQ(net.node(D).pending(), kR);

  // (d): A releases IW -> B gets the token (IR < R at the release point),
  // and B grants D from its local queue.
  net.release(A);
  net.settle();
  EXPECT_TRUE(net.node(B).is_token());
  EXPECT_EQ(net.node(B).held(), kR);
  EXPECT_EQ(net.node(D).held(), kR);
  EXPECT_TRUE(copyset_has(net.node(B), D, kR));
  EXPECT_EQ(net.cs_entries(B), 1);
  EXPECT_EQ(net.cs_entries(D), 1);
}

// ---- Figure 4: lock release ------------------------------------------------

TEST(Fig4, ReleaseCascadeAndTokenHandover) {
  // Build the initial state of Fig. 4(a): A token holding R with child B;
  // B with child D (both holding R); C waiting for IW, queued at A.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{0},
                              NodeId{1}};
  HierNet net{parents};
  net.request(A, kR);
  net.request(B, kR);
  net.settle();
  const std::uint64_t before = net.total_messages();
  net.request(D, kR);  // D -> B; B owns R and grants it itself (Rule 3.1)
  net.settle();
  EXPECT_EQ(net.total_messages() - before, 2u)
      << "child grant: one REQUEST to B plus one GRANT back";
  EXPECT_TRUE(copyset_has(net.node(B), D, kR));

  net.request(C, kIW);
  net.settle();
  ASSERT_EQ(net.node(A).queue().size(), 1u);
  EXPECT_EQ(net.node(A).queue().front().requester, NodeId{2});

  // (a): B releases R; its owned mode stays R because of D -> no message.
  const std::uint64_t msgs_before_release = net.total_messages();
  net.release(B);
  EXPECT_EQ(net.total_messages(), msgs_before_release)
      << "Rule 5.2: no release message while a child still owns R";
  EXPECT_EQ(net.node(B).owned(), kR);
  EXPECT_EQ(net.node(B).held(), kNL);

  // (b): D releases R -> RELEASE to B -> B's owned drops to NL -> RELEASE
  // propagates to A.
  net.release(D);
  net.settle();
  EXPECT_EQ(net.node(B).owned(), kNL);

  // (c)+(d): A releases R; with B's release processed its owned mode is NL
  // and the token moves to C for IW.
  net.release(A);
  net.settle();
  EXPECT_TRUE(net.node(C).is_token());
  EXPECT_EQ(net.node(C).held(), kIW);
  EXPECT_EQ(net.node(A).parent(), NodeId{2});
  EXPECT_EQ(net.node(A).owned(), kNL);
  EXPECT_EQ(net.cs_entries(C), 1);
}

TEST(Fig4, StaleOwnedModeDefersGrant) {
  // The intermediate state of Fig. 4(c): A released R but has not yet seen
  // B's release -> C's IW stays queued on the stale owned mode R.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{0},
                              NodeId{1}};
  HierNet net{parents};
  net.request(A, kR);
  net.request(B, kR);
  net.settle();
  net.request(C, kIW);
  net.settle();

  net.release(B);   // RELEASE(NL) to A now in flight
  net.release(A);   // A still believes owned == R
  EXPECT_EQ(net.node(A).queue().size(), 1u);
  EXPECT_FALSE(net.node(C).is_token());

  net.settle();  // B's release arrives; the token moves
  EXPECT_TRUE(net.node(C).is_token());
}

// ---- Figure 5: frozen modes ------------------------------------------------

TEST(Fig5, FreezePropagatesDownTheCopyset) {
  // A token holds R; B owns IR through its child C; D and E detached.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{0}, NodeId{0}};
  HierNet net{parents};
  net.request(B, kIR);
  net.settle();
  net.request(C, kIR);  // B owns IR and grants C itself
  net.settle();
  net.release(B);       // B(IR, 0, 0): owns through C, holds nothing
  EXPECT_EQ(net.node(B).owned(), kIR);
  EXPECT_EQ(net.node(B).held(), kNL);
  net.request(A, kR);  // the token moved to B above; A pulls it back
  net.settle();
  EXPECT_EQ(net.cs_entries(A), 1);
  EXPECT_TRUE(net.node(A).is_token());

  // (a)-(b): D requests W. It must be queued at A, and FREEZE(IR) must
  // reach B and transitively C (both could otherwise grant IR).
  net.request(D, kW);
  net.settle();
  ASSERT_EQ(net.node(A).queue().size(), 1u);
  EXPECT_EQ(net.node(A).frozen(), ModeSet::of({kIR, kR, kU}))
      << "Table 1(d) row R, column W";
  EXPECT_TRUE(net.node(B).frozen().contains(kIR));
  EXPECT_TRUE(net.node(C).frozen().contains(kIR));

  // A frozen node must refuse Rule 3.1 grants: E requests IR via A -> it
  // cannot bypass the queued W and queues at the token.
  net.request(E, kIR);
  net.settle();
  EXPECT_EQ(net.cs_entries(E), 0) << "IR must not bypass the queued W";
  EXPECT_EQ(net.node(A).queue().size(), 2u);

  // (c): all R/IR holders release; the token moves to D with W; E's IR is
  // then granted after D completes (FIFO), not before.
  net.release(C);
  net.settle();
  net.release(A);
  net.settle();
  EXPECT_TRUE(net.node(D).is_token());
  EXPECT_EQ(net.node(D).held(), kW);
  EXPECT_EQ(net.cs_entries(E), 0);
  net.release(D);
  net.settle();
  EXPECT_EQ(net.cs_entries(E), 1);
  EXPECT_EQ(net.node(E).held(), kIR);
}

TEST(Fig5, ChildGrantsDuringFreezeOfOtherModes) {
  // Frozen modes are exactly Table 1(d): modes compatible with the waiting
  // request keep flowing. With IW queued at a token owning R, IR stays
  // grantable (IR is compatible with IW).
  HierNet net{4};
  net.request(A, kR);
  net.request(B, kIW);
  net.settle();
  EXPECT_EQ(net.node(A).frozen(), ModeSet::of({kR, kU}));

  net.request(C, kIR);
  net.settle();
  EXPECT_EQ(net.cs_entries(C), 1) << "IR is not frozen and may proceed";
  net.request(D, kR);
  net.settle();
  EXPECT_EQ(net.cs_entries(D), 0) << "R is frozen and must wait";
}

// ---- Figure 6: upgrade -----------------------------------------------------

TEST(Fig6, UpgradeWaitsForChildrenAndCompletesAtomically) {
  // A owns U as the token; B owns IR through child C.
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{0}, NodeId{0}};
  HierNet net{parents};
  net.request(B, kIR);
  net.settle();
  net.request(C, kIR);
  net.settle();
  net.release(B);
  net.request(A, kU);  // pulls the token back from B
  net.settle();
  EXPECT_EQ(net.cs_entries(A), 1);
  EXPECT_TRUE(net.node(A).is_token());

  // (a): A requests the upgrade; FREEZE(IR) goes out; U is not released.
  net.upgrade(A);
  net.settle();
  EXPECT_TRUE(net.node(A).upgrading());
  EXPECT_EQ(net.node(A).held(), kU) << "atomic upgrade: U is never released";
  EXPECT_EQ(net.node(A).pending(), kW);
  EXPECT_TRUE(net.node(B).frozen().contains(kIR));
  EXPECT_TRUE(net.node(C).frozen().contains(kIR));
  EXPECT_EQ(net.upgrades(A), 0);

  // (b): C releases IR; the release cascades; the upgrade completes.
  net.release(C);
  net.settle();
  EXPECT_EQ(net.upgrades(A), 1);
  EXPECT_EQ(net.node(A).held(), kW);
  EXPECT_FALSE(net.node(A).upgrading());
  EXPECT_EQ(net.node(A).owned(), kW);
}

TEST(Fig6, UpgradeWithNoChildrenIsImmediate) {
  HierNet net{2};
  net.request(A, kU);
  net.upgrade(A);
  EXPECT_EQ(net.upgrades(A), 1);
  EXPECT_EQ(net.node(A).held(), kW);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(Upgrade, QueuedRequestsWaitBehindTheUpgrade) {
  // While an upgrade is pending, even compatible IR requests are frozen
  // (Table 1(d) row U, column W freezes IR and R).
  std::vector<NodeId> parents{NodeId::none(), NodeId{0}, NodeId{1},
                              NodeId{0}, NodeId{0}};
  HierNet net{parents};
  net.request(B, kIR);
  net.settle();
  net.request(A, kU);
  net.settle();
  net.upgrade(A);
  net.settle();

  net.request(D, kIR);
  net.settle();
  EXPECT_EQ(net.cs_entries(D), 0);

  net.release(B);
  net.settle();
  EXPECT_EQ(net.upgrades(A), 1);
  EXPECT_EQ(net.cs_entries(D), 0) << "IR waits for W to be released";
  net.release(A);
  net.settle();
  EXPECT_EQ(net.cs_entries(D), 1);
}

}  // namespace
}  // namespace hlock::test
