// Detailed workload-driver behaviors: per-kind accounting, latency metric
// relationships, observer integration and upgrade timing.
#include <gtest/gtest.h>

#include "runtime/sim_cluster.hpp"
#include "trace/recorder.hpp"
#include "workload/sim_driver.hpp"

namespace hlock::workload {
namespace {

using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

SimClusterOptions small_cluster(std::size_t nodes, std::uint64_t seed) {
  SimClusterOptions options;
  options.node_count = nodes;
  options.protocol = Protocol::kHierarchical;
  options.message_latency = DurationDist::uniform(SimTime::us(500), 0.5);
  options.seed = seed;
  return options;
}

WorkloadSpec small_spec(std::size_t nodes, int ops, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.variant = AppVariant::kHierarchical;
  spec.node_count = nodes;
  spec.ops_per_node = ops;
  spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
  spec.idle_time = DurationDist::uniform(SimTime::ms(3), 0.5);
  spec.seed = seed;
  return spec;
}

TEST(DriverDetail, PerKindCountsMatchLatencyRecorders) {
  SimCluster cluster{small_cluster(8, 3)};
  SimWorkloadDriver driver{cluster, small_spec(8, 60, 3)};
  driver.run();
  const DriverStats& stats = driver.stats();
  for (std::size_t kind = 0; kind < 5; ++kind) {
    EXPECT_EQ(stats.ops_by_kind[kind],
              stats.latency_by_kind[kind].count())
        << "kind " << kind;
  }
}

TEST(DriverDetail, AcquisitionCountMatchesPlanArithmetic) {
  SimCluster cluster{small_cluster(6, 5)};
  SimWorkloadDriver driver{cluster, small_spec(6, 80, 5)};
  driver.run();
  const DriverStats& stats = driver.stats();
  // Hierarchical plans: entry ops (IR/U/IW draws) take 2 locks, table ops
  // (R/W draws) take 1.
  const std::uint64_t entry_ops =
      stats.ops_by_kind[static_cast<std::size_t>(OpKind::kEntryRead)] +
      stats.ops_by_kind[static_cast<std::size_t>(OpKind::kEntryUpgrade)] +
      stats.ops_by_kind[static_cast<std::size_t>(OpKind::kEntryWrite)];
  const std::uint64_t table_ops =
      stats.ops_by_kind[static_cast<std::size_t>(OpKind::kTableRead)] +
      stats.ops_by_kind[static_cast<std::size_t>(OpKind::kTableWrite)];
  EXPECT_EQ(stats.acquisitions, entry_ops * 2 + table_ops);
  EXPECT_EQ(stats.acq_latency.count(), stats.acquisitions);
}

TEST(DriverDetail, OpLatencyDominatesItsAcquisitions) {
  // Operation latency (first request -> all held) is at least the mean
  // per-acquisition latency; with two sequential acquisitions per entry op
  // the aggregate mean must be strictly larger.
  SimCluster cluster{small_cluster(10, 7)};
  SimWorkloadDriver driver{cluster, small_spec(10, 60, 7)};
  driver.run();
  const double op_mean = driver.stats().op_latency.summarize().mean;
  const double acq_mean = driver.stats().acq_latency.summarize().mean;
  EXPECT_GT(op_mean, acq_mean);
}

TEST(DriverDetail, UpgradeLatencyIsRecordedPerUpgradeOp) {
  WorkloadSpec spec = small_spec(6, 60, 9);
  spec.mix = ModeMix{0.0, 0.0, 1.0, 0.0, 0.0};  // every op upgrades
  SimCluster cluster{small_cluster(6, 9)};
  SimWorkloadDriver driver{cluster, spec};
  driver.run();
  EXPECT_EQ(driver.stats().upgrade_latency.count(), 6u * 60u);
  EXPECT_EQ(driver.stats()
                .ops_by_kind[static_cast<std::size_t>(OpKind::kEntryUpgrade)],
            6u * 60u);
}

TEST(DriverDetail, MessageObserverSeesEveryCountedMessage) {
  SimCluster cluster{small_cluster(6, 11)};
  std::uint64_t observed = 0;
  cluster.set_message_observer(
      [&observed](SimTime, const proto::Message&) { ++observed; });
  SimWorkloadDriver driver{cluster, small_spec(6, 40, 11)};
  driver.run();
  EXPECT_EQ(observed, cluster.metrics().messages().total());
  EXPECT_GT(observed, 0u);
}

TEST(DriverDetail, TraceRecorderSurvivesAWholeRun) {
  SimCluster cluster{small_cluster(6, 13)};
  trace::TraceRecorder recorder{512};  // force ring-buffer wrap
  cluster.set_message_observer(
      [&recorder](SimTime at, const proto::Message& message) {
        recorder.record_message(at, message);
      });
  SimWorkloadDriver driver{cluster, small_spec(6, 60, 13)};
  driver.run();
  EXPECT_TRUE(recorder.truncated());
  EXPECT_EQ(recorder.events().size(), 512u);
  EXPECT_EQ(recorder.total_recorded(),
            cluster.metrics().messages().total());
}

TEST(DriverDetail, EntryLocalityReducesEntryLockTraffic) {
  // With full locality and one private entry per node, entry locks never
  // contend after the first acquisition — message cost must drop well
  // below the uniform workload's.
  auto run = [](double locality) {
    SimCluster cluster{small_cluster(8, 21)};
    WorkloadSpec spec = small_spec(8, 60, 21);
    spec.table_entries = 8;
    spec.mix = ModeMix{0.0, 0.0, 0.0, 1.0, 0.0};  // entry writes only
    spec.entry_locality = locality;
    SimWorkloadDriver driver{cluster, spec};
    driver.run();
    return static_cast<double>(cluster.metrics().messages().total()) /
           static_cast<double>(driver.stats().acquisitions);
  };
  EXPECT_LT(run(1.0), run(0.0) * 0.8);
}

TEST(DriverDetail, SimulatedTimeIsPlausible) {
  // Each node performs ops sequentially: total simulated time must be at
  // least (ops x mean idle) for the busiest node and bounded by a
  // generous multiple under light contention.
  SimCluster cluster{small_cluster(4, 17)};
  SimWorkloadDriver driver{cluster, small_spec(4, 50, 17)};
  driver.run();
  const double elapsed_ms = cluster.simulator().now().to_ms();
  EXPECT_GT(elapsed_ms, 50 * 3.0 * 0.5) << "finished impossibly fast";
  EXPECT_LT(elapsed_ms, 50 * (3.0 + 1.0) * 20) << "pathological stalls";
}

}  // namespace
}  // namespace hlock::workload
