// Live metric instruments: counters, gauges and streaming histograms.
//
// These are the write-side primitives of the telemetry registry
// (telemetry/registry.hpp). The record path is lock-free by construction —
// every instrument is a handful of relaxed atomics — mirroring the
// SyncObserver "one relaxed load when idle" discipline (util/
// sync_observer.hpp): code holding a shard mutex on the delivery hot path
// may bump counters and record histogram samples without ever taking
// another lock, and a cluster built without a registry pays nothing but a
// pointer test. Relaxed ordering is sufficient throughout — these are
// statistics, not synchronization; readers (the sampler, the /metrics
// endpoint) take per-value atomic snapshots, not cross-value ones.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace hlock::telemetry {

/// A monotonically increasing event count (Prometheus "counter"; name them
/// `*_total` by convention — the exposition checker flags decreases).
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that goes up and down (queue depths, token locations).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a histogram's state (per-value atomic reads; the
/// set is not a cross-bucket snapshot, which statistics do not need).
struct HistogramSnapshot {
  /// Bucket upper bounds, ascending; counts has one extra overflow bucket.
  std::vector<double> bounds;
  /// counts[i] = samples with value <= bounds[i] (and > bounds[i-1]);
  /// counts.back() = samples above every bound (the "+Inf" bucket).
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Approximate q-quantile (0 <= q <= 1) by linear interpolation inside
  /// the bucket holding the rank; 0 when empty. The overflow bucket
  /// reports the largest finite bound (a floor for the true value).
  double quantile(double q) const;
};

/// A fixed-bucket streaming histogram. Bucket bounds are immutable after
/// construction, so record() is a binary search over a constant array plus
/// three relaxed atomic adds — no mutex, ever.
class Histogram {
 public:
  /// `bounds` are the bucket upper bounds (ascending, deduplicated by the
  /// caller); an implicit overflow bucket catches everything above.
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)),
        buckets_(std::make_unique<std::atomic<std::uint64_t>[]>(
            bounds_.size() + 1)) {}

  void record(double v) {
    const auto index = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  HistogramSnapshot snapshot() const;

  /// Convenience: quantile over a fresh snapshot.
  double quantile(double q) const { return snapshot().quantile(q); }

 private:
  const std::vector<double> bounds_;
  const std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` exponentially spaced bounds starting at `start` (> 0), each
/// `factor` (> 1) apart — the stock layout for latency histograms.
std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count);

/// `count` linearly spaced bounds `start, start+step, ...` — for small
/// integer-valued distributions (queue depths, batch sizes).
std::vector<double> linear_bounds(double start, double step,
                                  std::size_t count);

/// Default wait/hold-time layout: 0.05 ms .. ~105 s in x2 steps.
std::vector<double> default_latency_bounds_ms();

}  // namespace hlock::telemetry
