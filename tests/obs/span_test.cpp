// Tests of the per-request span collector: phase assembly from hand-built
// event streams, the cross-lock sequence-collision regression, and the
// end-to-end reconciliation of span-derived acquire latencies against the
// workload driver's own latency recorder.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/sim_cluster.hpp"
#include "trace/event.hpp"
#include "workload/sim_driver.hpp"

namespace hlock::obs {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::ModeSet;
using proto::NodeId;
using trace::EventKind;
using trace::TraceEvent;

TraceEvent make_event(EventKind kind, SimTime at, std::uint64_t lamport,
                      NodeId node, NodeId peer, LockId lock, LockMode mode,
                      std::uint64_t seq) {
  TraceEvent event;
  event.at = at;
  event.lamport = lamport;
  event.kind = kind;
  event.node = node;
  event.peer = peer;
  event.lock = lock;
  event.mode = mode;
  event.seq = seq;
  return event;
}

TEST(SpanCollector, AssemblesFullLifecycle) {
  SpanCollector collector;
  const NodeId requester{2};
  const NodeId hub{0};
  const LockId lock{3};
  // node2 issues W#5; node0 queues it, freezes W, then grants; node2
  // enters and exits its critical section.
  collector.observe(make_event(EventKind::kRequest, SimTime::ms(1), 1,
                               requester, NodeId::none(), lock, LockMode::kW,
                               5));
  collector.observe(make_event(EventKind::kQueue, SimTime::ms(2), 3, hub,
                               requester, lock, LockMode::kW, 5));
  TraceEvent freeze = make_event(EventKind::kFreeze, SimTime::ms(3), 4, hub,
                                 NodeId::none(), lock, LockMode::kW, 0);
  freeze.modes = ModeSet::of({LockMode::kW});
  collector.observe(freeze);
  collector.observe(make_event(EventKind::kGrant, SimTime::ms(4), 5, hub,
                               requester, lock, LockMode::kW, 5));
  collector.observe(make_event(EventKind::kEnterCs, SimTime::ms(5), 7,
                               requester, NodeId::none(), lock, LockMode::kW,
                               5));
  collector.observe(make_event(EventKind::kExitCs, SimTime::ms(9), 8,
                               requester, NodeId::none(), lock, LockMode::kW,
                               0));

  ASSERT_EQ(collector.span_count(), 1u);
  EXPECT_EQ(collector.completed_count(), 1u);
  const RequestSpan span = collector.spans()[0];
  EXPECT_EQ(span.id.origin, requester);
  EXPECT_EQ(span.id.seq, 5u);
  EXPECT_EQ(span.lock, lock);
  EXPECT_EQ(span.mode, LockMode::kW);
  ASSERT_EQ(span.events.size(), 6u);
  EXPECT_EQ(span.events[0].phase, Phase::kIssued);
  EXPECT_EQ(span.events[1].phase, Phase::kQueuedLocal);
  EXPECT_EQ(span.events[1].node, hub);
  EXPECT_EQ(span.events[2].phase, Phase::kFrozen);
  EXPECT_EQ(span.events[3].phase, Phase::kGranted);
  EXPECT_EQ(span.events[3].node, hub);
  EXPECT_EQ(span.events[4].phase, Phase::kCsEntered);
  EXPECT_EQ(span.events[5].phase, Phase::kCsExited);
  EXPECT_EQ(span.events[5].lamport, 8u);

  const auto latencies = collector.acquire_latencies_ms();
  ASSERT_EQ(latencies.size(), 1u);
  EXPECT_DOUBLE_EQ(latencies[0], 4.0);  // issued at 1 ms, entered at 5 ms
}

// Regression: per-lock automatons run independent sequence counters, so
// the same (origin, seq) pair legitimately appears on different locks.
// Those must become distinct spans, not one spliced-together span.
TEST(SpanCollector, SameSeqOnDifferentLocksStaysSeparate) {
  SpanCollector collector;
  const NodeId node{1};
  for (std::uint32_t lock = 0; lock < 2; ++lock) {
    collector.observe(make_event(EventKind::kRequest, SimTime::ms(lock), 1,
                                 node, NodeId::none(), LockId{lock},
                                 LockMode::kR, 1));
    collector.observe(make_event(EventKind::kLocalGrant,
                                 SimTime::ms(lock) + SimTime::us(100), 1,
                                 node, NodeId::none(), LockId{lock},
                                 LockMode::kR, 1));
    collector.observe(make_event(EventKind::kEnterCs,
                                 SimTime::ms(lock) + SimTime::us(100), 1,
                                 node, NodeId::none(), LockId{lock},
                                 LockMode::kR, 1));
  }
  collector.observe(make_event(EventKind::kExitCs, SimTime::ms(5), 2, node,
                               NodeId::none(), LockId{0}, LockMode::kR, 0));
  collector.observe(make_event(EventKind::kExitCs, SimTime::ms(6), 3, node,
                               NodeId::none(), LockId{1}, LockMode::kR, 0));

  ASSERT_EQ(collector.span_count(), 2u);
  EXPECT_EQ(collector.completed_count(), 2u);
  for (const RequestSpan& span : collector.spans()) {
    ASSERT_EQ(span.events.size(), 4u);  // issued, granted, enter, exit
    EXPECT_EQ(span.events.back().phase, Phase::kCsExited);
  }
  // The seq-less exits were attributed per lock, not to one shared span.
  EXPECT_EQ(collector.spans()[0].lock, LockId{0});
  EXPECT_EQ(collector.spans()[1].lock, LockId{1});
}

TEST(SpanCollector, FreezeOnlyMarksQueuedMatchingSpans) {
  SpanCollector collector;
  const NodeId hub{0};
  const LockId lock{0};
  // W#1 queued at the hub; R#1 from another node already granted.
  collector.observe(make_event(EventKind::kQueue, SimTime::ms(1), 1, hub,
                               NodeId{1}, lock, LockMode::kW, 1));
  collector.observe(make_event(EventKind::kGrant, SimTime::ms(1), 1, hub,
                               NodeId{2}, lock, LockMode::kR, 1));
  TraceEvent freeze = make_event(EventKind::kFreeze, SimTime::ms(2), 2, hub,
                                 NodeId::none(), lock, LockMode::kNL, 0);
  freeze.modes = ModeSet::of({LockMode::kW, LockMode::kIW});
  collector.observe(freeze);

  ASSERT_EQ(collector.span_count(), 2u);
  const auto spans = collector.spans();
  const RequestSpan& queued = spans[0];
  const RequestSpan& granted = spans[1];
  EXPECT_NE(queued.find(Phase::kFrozen), nullptr);
  EXPECT_EQ(granted.find(Phase::kFrozen), nullptr);
}

TEST(SpanCollector, BreakdownListsIntervalsAndAcquireRow) {
  SpanCollector collector;
  const NodeId node{0};
  collector.observe(make_event(EventKind::kRequest, SimTime::ms(0), 1, node,
                               NodeId::none(), LockId{0}, LockMode::kR, 1));
  collector.observe(make_event(EventKind::kLocalGrant, SimTime::ms(2), 1,
                               node, NodeId::none(), LockId{0}, LockMode::kR,
                               1));
  collector.observe(make_event(EventKind::kEnterCs, SimTime::ms(3), 1, node,
                               NodeId::none(), LockId{0}, LockMode::kR, 1));

  const auto rows = collector.phase_breakdown();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].interval, "issued->granted");
  EXPECT_DOUBLE_EQ(rows[0].summary_ms.mean, 2.0);
  EXPECT_EQ(rows[1].interval, "granted->cs-enter");
  EXPECT_DOUBLE_EQ(rows[1].summary_ms.mean, 1.0);
  EXPECT_EQ(rows[2].interval, "acquire (issued->cs-enter)");
  EXPECT_DOUBLE_EQ(rows[2].summary_ms.mean, 3.0);

  const std::string table = render_phase_table(rows);
  EXPECT_NE(table.find("phase (ms)"), std::string::npos);
  EXPECT_NE(table.find("p999"), std::string::npos);
  EXPECT_NE(table.find("acquire (issued->cs-enter)"), std::string::npos);
}

// The acceptance check of the observability layer: the span-derived
// acquire latencies must be the same samples the workload driver's own
// acq-latency recorder collects — the spans are an independent derivation
// of the paper's headline metric from the event stream.
TEST(SpanCollector, ReconcilesWithDriverLatencies) {
  runtime::SimClusterOptions options;
  options.node_count = 6;
  options.protocol = runtime::Protocol::kHierarchical;
  options.seed = 7;
  options.hier_config.trace_events = true;
  runtime::SimCluster cluster{options};

  SpanCollector collector;
  cluster.set_event_observer(
      [&collector](trace::TraceEvent event) { collector.observe(event); });

  workload::WorkloadSpec spec;
  spec.variant = workload::AppVariant::kHierarchical;
  spec.node_count = options.node_count;
  spec.ops_per_node = 12;
  spec.seed = 99;
  workload::SimWorkloadDriver driver{cluster, spec};
  driver.run();

  EXPECT_EQ(collector.span_count(), driver.stats().acquisitions);
  EXPECT_EQ(collector.completed_count(), collector.span_count());

  std::vector<double> from_spans = collector.acquire_latencies_ms();
  std::vector<double> from_driver = driver.stats().acq_latency.samples_ms();
  ASSERT_EQ(from_spans.size(), from_driver.size());
  // Completion order differs (spans index by first observation, the driver
  // by grant); the sorted samples must match exactly — both sides read the
  // same simulated clock at the same instants.
  std::sort(from_spans.begin(), from_spans.end());
  std::sort(from_driver.begin(), from_driver.end());
  for (std::size_t i = 0; i < from_spans.size(); ++i) {
    EXPECT_DOUBLE_EQ(from_spans[i], from_driver[i]) << "sample " << i;
  }
}

}  // namespace
}  // namespace hlock::obs
