// Concurrent metrics registry: named instruments + consistent snapshots.
//
// One Registry holds every live series of a process (or of one cluster —
// tests give each cluster its own). Registration (get-or-create by full
// series name, labels included) takes the registry mutex; the returned
// references are stable for the registry's lifetime, so instrumented code
// registers once at construction and then records through cached pointers
// with no lock at all (see telemetry/metric.hpp for the record-path
// discipline).
//
// Two kinds of series exist:
//   * owned instruments (Counter / Gauge / Histogram) allocated by the
//     registry and written by instrumented code, and
//   * callback series, polled at snapshot time — the fold that turns
//     pre-existing atomic counter structs (stats::TransportCounters,
//     stats::MessageCounter, Transport::messages_sent) into registry
//     series without double bookkeeping. Callbacks may reference state
//     owned by a component; the component unregisters them on destruction
//     (unregister_callbacks), after which snapshots stop polling them.
//
// Series names follow Prometheus conventions: `base{label="value",...}`;
// use labeled() to build them with proper escaping. The name up to `{` is
// the series' family; every series of a family shares one metric type.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/metric.hpp"
#include "util/sync.hpp"

namespace hlock::telemetry {

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

/// "counter", "gauge" or "histogram" (the exposition TYPE vocabulary).
std::string to_string(MetricType type);

/// One series in a snapshot.
struct Sample {
  std::string name;  ///< full series name, labels included
  MetricType type = MetricType::kCounter;
  double value = 0.0;          ///< counter/gauge value
  HistogramSnapshot histogram; ///< histogram series only
};

/// Point-in-time view of every series, sorted by name (deterministic
/// exposition order). Per-value atomic reads; not a cross-series snapshot.
struct Snapshot {
  std::vector<Sample> samples;

  /// The sample with exactly this name, or nullptr.
  const Sample* find(std::string_view name) const;
  /// Sum of the values of every series whose family (name up to '{') is
  /// `family`; 0 when none exist.
  double family_sum(std::string_view family) const;
};

/// See file comment.
class Registry {
 public:
  /// Get-or-create by full series name. The same name always returns the
  /// same instrument; a name that exists with a different metric type
  /// throws UsageError (one family, one type).
  Counter& counter(const std::string& name) HLOCK_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name) HLOCK_EXCLUDES(mutex_);
  /// `bounds` applies on first creation only (later calls return the
  /// existing instrument regardless); empty picks
  /// default_latency_bounds_ms().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {})
      HLOCK_EXCLUDES(mutex_);

  /// Callback series, polled under the registry mutex at snapshot time.
  /// Re-registering a name replaces the callback.
  void register_counter_fn(const std::string& name,
                           std::function<std::uint64_t()> fn)
      HLOCK_EXCLUDES(mutex_);
  void register_gauge_fn(const std::string& name, std::function<double()> fn)
      HLOCK_EXCLUDES(mutex_);

  /// Drops every callback series whose name starts with `prefix` (owned
  /// instruments stay — their storage lives in the registry and remains
  /// valid). Components registering callbacks over their own state MUST
  /// call this before that state dies.
  void unregister_callbacks(const std::string& prefix)
      HLOCK_EXCLUDES(mutex_);

  Snapshot snapshot() const HLOCK_EXCLUDES(mutex_);

  /// Number of registered series (owned + callbacks).
  std::size_t series_count() const HLOCK_EXCLUDES(mutex_);

 private:
  template <typename T>
  using Table = std::map<std::string, std::unique_ptr<T>, std::less<>>;

  void require_unclaimed(const std::string& name, MetricType type) const
      HLOCK_REQUIRES(mutex_);

  mutable Mutex mutex_;
  Table<Counter> counters_ HLOCK_GUARDED_BY(mutex_);
  Table<Gauge> gauges_ HLOCK_GUARDED_BY(mutex_);
  Table<Histogram> histograms_ HLOCK_GUARDED_BY(mutex_);
  std::map<std::string, std::function<std::uint64_t()>, std::less<>>
      counter_fns_ HLOCK_GUARDED_BY(mutex_);
  std::map<std::string, std::function<double()>, std::less<>> gauge_fns_
      HLOCK_GUARDED_BY(mutex_);
};

/// Builds `base{k1="v1",k2="v2"}` with label values escaped per the
/// exposition format (backslash, double quote, newline). An empty label
/// list returns `base` unchanged. Labels must be pre-sorted by the caller
/// if a canonical order matters (instrumentation sites use fixed orders).
std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string>> labels);

/// The family of a series name: everything before the first '{'.
std::string_view family_of(std::string_view name);

}  // namespace hlock::telemetry
