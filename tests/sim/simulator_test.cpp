#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.hpp"

namespace hlock::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), SimTime{});
}

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<std::int64_t> observed;
  sim.schedule_in(SimTime::ms(5), [&] { observed.push_back(sim.now().count_ns()); });
  sim.schedule_in(SimTime::ms(2), [&] { observed.push_back(sim.now().count_ns()); });
  sim.run_to_completion();
  EXPECT_EQ(observed,
            (std::vector<std::int64_t>{SimTime::ms(2).count_ns(),
                                       SimTime::ms(5).count_ns()}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_in(SimTime::ms(1), chain);
  };
  sim.schedule_in(SimTime::ms(1), chain);
  sim.run_to_completion();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), SimTime::ms(5));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(SimTime::ms(1), [&] { ++fired; });
  sim.schedule_in(SimTime::ms(10), [&] { ++fired; });
  const std::uint64_t ran = sim.run_until(SimTime::ms(5));
  EXPECT_EQ(ran, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::ms(5));
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run_to_completion();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilIncludesEventsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_in(SimTime::ms(5), [&] { ++fired; });
  sim.run_until(SimTime::ms(5));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, RunEventsBoundsExecution) {
  Simulator sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_in(SimTime::ms(i), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run_events(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.run_events(100), 7u);
  EXPECT_EQ(fired, 10);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  sim.schedule_in(SimTime::ms(3), [&] {
    sim.schedule_in(SimTime{}, [&] { EXPECT_EQ(sim.now(), SimTime::ms(3)); });
  });
  sim.run_to_completion();
  EXPECT_EQ(sim.now(), SimTime::ms(3));
}

TEST(Simulator, SchedulingIntoThePastRejected) {
  Simulator sim;
  sim.schedule_in(SimTime::ms(5), [&] {
    EXPECT_THROW(sim.schedule_at(SimTime::ms(1), [] {}), hlock::UsageError);
    EXPECT_THROW(sim.schedule_in(SimTime::ms(-1), [] {}), hlock::UsageError);
  });
  sim.run_to_completion();
}

TEST(Simulator, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(SimTime::ms(1), [] {});
  sim.run_to_completion();
  EXPECT_EQ(sim.events_executed(), 7u);
}

}  // namespace
}  // namespace hlock::sim
