// A replicated key-value store with multi-key transactions — the paper's
// "server farm with replicated information" setting (§1).
//
// Every node keeps a full replica; hierarchical locks give transactions
// exactly the isolation they need and no more:
//   * single-key reads share (store IR + key R),
//   * single-key writes exclude per key (store IW + key W),
//   * multi-key transfers take both keys in W via MultiGuard (canonical
//     order, no deadlock) under one store IW,
//   * consistent snapshots take the whole store in R,
// and replica application is trivially correct because the lock protocol
// orders conflicting updates.
//
// Build & run:  ./build/examples/replicated_kv
#include <array>
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/lock_guard.hpp"
#include "runtime/multi_guard.hpp"
#include "runtime/thread_cluster.hpp"
#include "util/rng.hpp"

using namespace hlock;
using proto::LockId;
using proto::LockMode;
using proto::NodeId;
using runtime::HierGuard;
using runtime::LockGuard;
using runtime::MultiGuard;

namespace {

constexpr std::size_t kReplicas = 4;
constexpr std::size_t kAccounts = 8;
constexpr long kInitialBalance = 1000;

const LockId kStore{0};
LockId account_lock(std::size_t account) {
  return LockId{static_cast<std::uint32_t>(account + 1)};
}

/// The replicated state. One copy per node; protected by the lock
/// protocol, deliberately without any of its own synchronization.
struct Replica {
  std::array<long, kAccounts> balance;
};

}  // namespace

int main() {
  runtime::ThreadClusterOptions options;
  options.node_count = kReplicas;
  runtime::ThreadCluster cluster{options};

  std::array<Replica, kReplicas> replicas;
  for (Replica& replica : replicas) replica.balance.fill(kInitialBalance);

  // Applying an update to every replica stands in for the replication
  // fan-out; the lock protocol guarantees conflicting appliers never run
  // concurrently.
  auto apply_transfer = [&replicas](std::size_t from, std::size_t to,
                                    long amount) {
    for (Replica& replica : replicas) {
      replica.balance[from] -= amount;
      replica.balance[to] += amount;
    }
  };

  std::vector<std::thread> clients;
  for (std::uint32_t r = 0; r < kReplicas; ++r) {
    clients.emplace_back([&, r] {
      const NodeId node{r};
      Rng rng{100 + r};
      for (int op = 0; op < 40; ++op) {
        const std::size_t a = rng.below(kAccounts);
        std::size_t b = rng.below(kAccounts);
        if (b == a) b = (b + 1) % kAccounts;

        if (rng.chance(0.6)) {
          // Balance inquiry: store intent-read + key read.
          HierGuard guard{cluster, node, kStore, account_lock(a),
                          LockMode::kR};
          (void)replicas[r].balance[a];
        } else if (rng.chance(0.8)) {
          // Transfer: both account locks in W (canonical order via
          // MultiGuard) under one store intent-write.
          LockGuard store{cluster, node, kStore, LockMode::kIW};
          MultiGuard accounts{cluster,
                              node,
                              {{account_lock(a), LockMode::kW},
                               {account_lock(b), LockMode::kW}}};
          const long amount = 1 + static_cast<long>(rng.below(50));
          apply_transfer(a, b, amount);
        } else {
          // Consistent snapshot: whole store in R — sums must always be
          // exact because no transfer can be half-applied.
          LockGuard store{cluster, node, kStore, LockMode::kR};
          long total = 0;
          for (long value : replicas[r].balance) total += value;
          if (total != kInitialBalance * static_cast<long>(kAccounts)) {
            std::printf("TORN SNAPSHOT at node%u: %ld\n", r, total);
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Every replica converged to the same state, and money was conserved.
  long total = 0;
  bool converged = true;
  for (std::size_t account = 0; account < kAccounts; ++account) {
    for (std::size_t r = 1; r < kReplicas; ++r) {
      converged &=
          replicas[r].balance[account] == replicas[0].balance[account];
    }
    total += replicas[0].balance[account];
  }
  std::printf("replicas converged: %s\n", converged ? "yes" : "NO");
  std::printf("total balance     : %ld (expected %ld)\n", total,
              kInitialBalance * static_cast<long>(kAccounts));
  std::printf("protocol messages : %llu\n",
              static_cast<unsigned long long>(cluster.messages_sent()));
  return converged &&
                 total == kInitialBalance * static_cast<long>(kAccounts)
             ? 0
             : 1;
}
