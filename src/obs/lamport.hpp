// Lamport logical clocks for causal ordering of cross-node span events.
//
// Wall clocks on different nodes (and per-node simulated delivery times
// under reordering transports) do not agree, so the observability layer
// stamps every trace event and every wire message with a Lamport timestamp:
// ticked on each local protocol step and send, merged (max + 1) on each
// receive. Two events related by message flow then always compare in causal
// order, which is what the span collector and Chrome-trace export rely on
// when the faulty transport delays or reorders delivery. The runtimes own
// the clocks (one per node) because automatons are pure state machines that
// hold no clock of any kind — see runtime/sim_cluster.hpp and
// runtime/thread_cluster.hpp for the stamping points.
#pragma once

#include <algorithm>
#include <cstdint>

namespace hlock::obs {

/// One node's Lamport clock. Deliberately unsynchronized: each clock is
/// owned by exactly one node's runtime state, which already serializes
/// access (the simulator is single-threaded; ThreadCluster guards each
/// node's state with its per-node mutex).
class LamportClock {
 public:
  /// Advances for a local step or send; returns the new time. The first
  /// tick returns 1, so a zero timestamp always means "no clock ran".
  std::uint64_t tick() { return ++now_; }

  /// Merges a received message's timestamp and advances past it:
  /// now = max(now, received) + 1. Returns the new time.
  std::uint64_t observe(std::uint64_t received) {
    now_ = std::max(now_, received) + 1;
    return now_;
  }

  /// The last returned time (0 before any tick).
  std::uint64_t current() const { return now_; }

 private:
  std::uint64_t now_ = 0;
};

}  // namespace hlock::obs
