// Soak tests: larger simulated clusters, longer runs, adversarial mixes.
// These are the heavy end of the test pyramid — still deterministic and
// bounded (a few seconds total), sweeping sizes and mixes the unit tests
// cannot reach.
#include <gtest/gtest.h>

#include "runtime/invariants.hpp"
#include "runtime/sim_cluster.hpp"
#include "workload/sim_driver.hpp"

namespace hlock::workload {
namespace {

using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;

struct SoakParam {
  std::size_t nodes;
  int ops;
  const char* mix_name;
  ModeMix mix;
  std::uint64_t seed;
};

class Soak : public ::testing::TestWithParam<SoakParam> {};

TEST_P(Soak, CompletesWithSafetyAndConvergence) {
  const SoakParam& param = GetParam();

  SimClusterOptions cluster_options;
  cluster_options.node_count = param.nodes;
  cluster_options.protocol = Protocol::kHierarchical;
  cluster_options.message_latency =
      DurationDist::exponential(SimTime::us(200));
  cluster_options.seed = param.seed;
  SimCluster cluster{cluster_options};

  WorkloadSpec spec;
  spec.variant = AppVariant::kHierarchical;
  spec.node_count = param.nodes;
  spec.ops_per_node = param.ops;
  spec.cs_length = DurationDist::exponential(SimTime::ms(2));
  spec.idle_time = DurationDist::exponential(SimTime::ms(6));
  spec.mix = param.mix;
  spec.seed = param.seed;

  SimWorkloadDriver driver{cluster, spec};
  const auto locks = all_locks(spec.table_entries);
  driver.set_periodic_check(4096, [&] {
    const auto report = runtime::check_safety(cluster, locks);
    ASSERT_TRUE(report.ok()) << report.to_string();
  });
  driver.run();

  EXPECT_EQ(driver.stats().ops,
            static_cast<std::uint64_t>(param.ops) * param.nodes);
  const auto report = runtime::check_quiescent_structure(cluster, locks);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

std::vector<SoakParam> soak_params() {
  return {
      {64, 60, "paper", ModeMix::paper(), 1},
      {96, 40, "paper", ModeMix::paper(), 2},
      {32, 80, "write-heavy", ModeMix::write_heavy(), 3},
      {48, 60, "write-heavy", ModeMix::write_heavy(), 4},
      {40, 60, "read-only", ModeMix::read_only(), 5},
      {24, 100, "upgrade-heavy", ModeMix{0.30, 0.10, 0.40, 0.15, 0.05}, 6},
      {128, 30, "paper", ModeMix::paper(), 7},
  };
}

std::string soak_name(const ::testing::TestParamInfo<SoakParam>& info) {
  std::string name = std::string(info.param.mix_name) + "_n" +
                     std::to_string(info.param.nodes) + "_s" +
                     std::to_string(info.param.seed);
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Soak, ::testing::ValuesIn(soak_params()),
                         soak_name);

TEST(SoakNaimi, LargeClusterBothVariants) {
  for (AppVariant variant :
       {AppVariant::kNaimiPure, AppVariant::kNaimiSameWork}) {
    SimClusterOptions cluster_options;
    cluster_options.node_count = 64;
    cluster_options.protocol = Protocol::kNaimi;
    cluster_options.message_latency =
        DurationDist::exponential(SimTime::us(200));
    cluster_options.seed = 11;
    SimCluster cluster{cluster_options};

    WorkloadSpec spec;
    spec.variant = variant;
    spec.node_count = 64;
    spec.ops_per_node = 40;
    spec.cs_length = DurationDist::exponential(SimTime::ms(2));
    spec.idle_time = DurationDist::exponential(SimTime::ms(6));
    spec.seed = 11;

    SimWorkloadDriver driver{cluster, spec};
    driver.run();
    EXPECT_EQ(driver.stats().ops, 64u * 40u) << to_string(variant);
    const auto report = runtime::check_quiescent_structure(
        cluster, all_locks(spec.table_entries));
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(SoakAblation, EveryFlagCombinationSurvivesAt32Nodes) {
  for (int flags = 0; flags < 16; ++flags) {
    SimClusterOptions cluster_options;
    cluster_options.node_count = 32;
    cluster_options.protocol = Protocol::kHierarchical;
    cluster_options.message_latency =
        DurationDist::uniform(SimTime::us(300), 0.5);
    cluster_options.seed = 17;
    cluster_options.hier_config.local_queueing = (flags & 1) != 0;
    cluster_options.hier_config.child_grants = (flags & 2) != 0;
    cluster_options.hier_config.path_compression = (flags & 4) != 0;
    cluster_options.hier_config.freezing = (flags & 8) != 0;
    SimCluster cluster{cluster_options};

    WorkloadSpec spec;
    spec.variant = AppVariant::kHierarchical;
    spec.node_count = 32;
    spec.ops_per_node = 30;
    spec.cs_length = DurationDist::uniform(SimTime::ms(1), 0.5);
    spec.idle_time = DurationDist::uniform(SimTime::ms(4), 0.5);
    spec.seed = 17;

    SimWorkloadDriver driver{cluster, spec};
    driver.run();
    EXPECT_EQ(driver.stats().ops, 32u * 30u) << "flags=" << flags;
  }
}

}  // namespace
}  // namespace hlock::workload
