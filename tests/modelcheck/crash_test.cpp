// Crash-stop exploration (ExploreOptions::crash): every crash timing,
// suspicion order and recovery interleaving of a small configuration is
// enumerated, and the per-epoch safety claims are checked in every state.
// The doctored double-regeneration config is the expect-violation probe
// that proves the per-epoch token check has teeth.
#include <string>

#include <gtest/gtest.h>

#include "modelcheck/explorer.hpp"
#include "util/check.hpp"

namespace hlock::modelcheck {
namespace {

using proto::LockMode;
using proto::NodeId;
constexpr LockMode kW = LockMode::kW;

Script cycle(LockMode mode) {
  return {ScriptOp::acquire(mode), ScriptOp::release()};
}

/// Node 0 takes W and never releases; the others contend for W. Without
/// recovery the waiters can never be served.
std::vector<Script> hold_scripts(std::size_t nodes) {
  std::vector<Script> scripts(nodes, cycle(kW));
  scripts[0] = {ScriptOp::acquire(kW)};
  return scripts;
}

ExploreOptions crash_options(std::vector<NodeId> victims,
                             bool doctored = false) {
  ExploreOptions options;
  options.crash.victims = std::move(victims);
  options.crash.recovery.doctor_double_fence = doctored;
  return options;
}

std::string render_trace(const ExploreResult& result) {
  std::string out;
  for (const auto& line : result.trace) out += "  " + line + "\n";
  return out;
}

TEST(CrashExplorer, HoldingVictimDeadlocksSurvivorsWithoutRecovery) {
  // Baseline: the crash-during-hold scripts genuinely wedge the survivors
  // when nobody crashes — what passes below passes BECAUSE of recovery.
  const auto result = explore(hold_scripts(3));
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, Verdict::kDeadlock) << result.violation;
}

TEST(CrashExplorer, TokenRecoversFromCrashDuringHold) {
  // The central claim: killing the token holder mid-hold, at every
  // reachable point, under every suspicion order and every interleaving
  // of the recovery campaign with in-flight traffic, always ends with
  // both survivors' scripts complete, one token in the final epoch and
  // at most one token per epoch along the way.
  const auto result = explore(hold_scripts(3), crash_options({NodeId{0}}));
  EXPECT_TRUE(result.ok) << result.violation << "\ntrace:\n"
                         << render_trace(result);
  EXPECT_EQ(result.verdict, Verdict::kOk);
  EXPECT_GT(result.states_explored, 1000u);
  EXPECT_GT(result.terminal_states, 0u);
}

TEST(CrashExplorer, ReleasingVictimMayCrashAtAnyPoint) {
  // The victim runs a full acquire/release cycle, so crashes land before,
  // during and after its hold — including while its RELEASE-era messages
  // are still in flight (zombie traffic must be stale-dropped, not
  // double-counted by token conservation).
  const auto result =
      explore({cycle(kW), cycle(kW), cycle(kW)}, crash_options({NodeId{0}}));
  EXPECT_TRUE(result.ok) << result.violation << "\ntrace:\n"
                         << render_trace(result);
  EXPECT_GT(result.terminal_states, 0u);
}

TEST(CrashExplorer, NonHolderVictimIsAlsoCovered) {
  // Crashing a waiter instead of the holder exercises the queue
  // reconstruction side of the fence: the dead node's request must
  // disappear without wedging the remaining waiter.
  std::vector<Script> scripts(3, cycle(kW));
  scripts[0] = {ScriptOp::acquire(kW)};
  const auto result = explore(scripts, crash_options({NodeId{2}}));
  // Node 0 still never releases, so survivors deadlock — but ONLY with
  // the expected unfinished-script diagnosis, never a safety violation.
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, Verdict::kDeadlock) << result.violation;
}

TEST(CrashExplorer, DoctoredDoubleRegenerationIsCaught) {
  // Seeded bug: the coordinator also sends a conflicting same-epoch fence
  // with an alternate root. The per-epoch token count must flag two
  // tokens in one epoch — if this ever starts passing, the safety check
  // has gone blind.
  const auto result =
      explore(hold_scripts(3), crash_options({NodeId{0}}, true));
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, Verdict::kSafety) << result.violation;
  EXPECT_EQ(result.violation_fingerprint.rfind("tokens:2@e", 0), 0u)
      << result.violation_fingerprint;
  EXPECT_FALSE(result.trace.empty());
}

TEST(CrashExplorer, PartialOrderReductionAgreesOnCrashConfigs) {
  // POR only prunes recovery-quiescent states under crashes; verdicts and
  // violation fingerprints must match the unreduced run regardless.
  for (const bool doctored : {false, true}) {
    const auto options = crash_options({NodeId{0}}, doctored);
    auto reduced = options;
    reduced.por = true;
    const auto plain = explore(hold_scripts(3), options);
    const auto por = explore(hold_scripts(3), reduced);
    EXPECT_EQ(plain.ok, por.ok) << "doctored=" << doctored;
    EXPECT_EQ(plain.verdict, por.verdict) << "doctored=" << doctored;
    EXPECT_EQ(plain.violation_fingerprint, por.violation_fingerprint);
  }
}

TEST(CrashExplorer, MinimizedCounterexampleStaysMinimal) {
  // BFS parent links give a depth-minimal schedule to the seeded bug; the
  // known-minimal depth is a regression anchor for trace quality.
  auto options = crash_options({NodeId{0}}, true);
  options.minimize = true;
  const auto result = explore(hold_scripts(3), options);
  ASSERT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, Verdict::kSafety);
  EXPECT_LE(result.trace.size(), 8u) << render_trace(result);
}

TEST(CrashExplorer, RejectsUnsupportedCombinations) {
  auto liveness = crash_options({NodeId{0}});
  liveness.liveness = true;
  EXPECT_THROW(explore(hold_scripts(3), liveness), UsageError);

  auto bounced = crash_options({NodeId{0}});
  bounced.doctor.bounce = NodeId{1};
  EXPECT_THROW(explore(hold_scripts(3), bounced), UsageError);

  EXPECT_THROW(explore(hold_scripts(3), crash_options({NodeId{7}})),
               UsageError);
}

}  // namespace
}  // namespace hlock::modelcheck
