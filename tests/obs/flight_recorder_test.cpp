// Tests of the post-mortem flight recorder: a dump carries every wired
// source, the sibling Chrome trace is valid JSON, and the crash-adjacent
// path degrades (empty sources, unwritable directory) instead of throwing.
#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "obs/span.hpp"
#include "stats/metrics.hpp"
#include "trace/recorder.hpp"

namespace hlock::obs {
namespace {

using proto::LockId;
using proto::LockMode;
using proto::NodeId;

std::string read_file(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void observe_complete_request(SpanCollector& collector) {
  trace::TraceEvent event;
  event.lock = LockId{0};
  event.mode = LockMode::kW;
  event.node = NodeId{1};
  event.seq = 1;
  event.kind = trace::EventKind::kRequest;
  event.at = SimTime::ms(1);
  collector.observe(event);
  event.kind = trace::EventKind::kLocalGrant;
  event.at = SimTime::ms(2);
  collector.observe(event);
  event.kind = trace::EventKind::kEnterCs;
  collector.observe(event);
  event.kind = trace::EventKind::kExitCs;
  event.at = SimTime::ms(3);
  collector.observe(event);
}

TEST(FlightRecorder, DumpsAllSourcesAndChromeSibling) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "flight_all").string();

  trace::TraceRecorder recorder;
  recorder.note(SimTime::ms(1), NodeId{0}, "before the failure");
  SpanCollector collector;
  observe_complete_request(collector);
  stats::MetricsRegistry metrics;
  metrics.messages().add(proto::MessageKind::kHierRequest);
  metrics.latency().record(SimTime::ms(4));

  FlightRecordSources sources;
  sources.recorder = &recorder;
  sources.spans = &collector;
  sources.metrics = &metrics;
  sources.node_count = 2;
  const std::string path =
      dump_flight_record(dir, "invariant violated: test reason", sources);

  ASSERT_FALSE(path.empty());
  ASSERT_TRUE(std::filesystem::exists(path));
  const std::string report = read_file(path);
  EXPECT_NE(report.find("reason: invariant violated: test reason"),
            std::string::npos);
  EXPECT_NE(report.find("== metrics snapshot =="), std::string::npos);
  EXPECT_NE(report.find("messages total: 1"), std::string::npos);
  EXPECT_NE(report.find("== request spans =="), std::string::npos);
  EXPECT_NE(report.find("spans: 1 (1 complete)"), std::string::npos);
  EXPECT_NE(report.find("== trace ring =="), std::string::npos);
  EXPECT_NE(report.find("before the failure"), std::string::npos);

  // The sibling Chrome trace exists, is referenced, and parses.
  const std::string trace_path =
      path.substr(0, path.size() - 4) + ".trace.json";
  EXPECT_NE(report.find(trace_path), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(trace_path));
  EXPECT_TRUE(validate_json(read_file(trace_path)));
}

TEST(FlightRecorder, ConsecutiveDumpsGetDistinctPaths) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "flight_two").string();
  const std::string first = dump_flight_record(dir, "first", {});
  const std::string second = dump_flight_record(dir, "second", {});
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(second.empty());
  EXPECT_NE(first, second);
}

TEST(FlightRecorder, EmptySourcesStillWriteAReport) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "flight_empty").string();
  const std::string path = dump_flight_record(dir, "shutdown", {});
  ASSERT_FALSE(path.empty());
  const std::string report = read_file(path);
  EXPECT_NE(report.find("reason: shutdown"), std::string::npos);
  // No spans → no sibling trace file next to the report.
  EXPECT_EQ(report.find("chrome trace:"), std::string::npos);
}

TEST(FlightRecorder, UnwritableDirectoryReturnsEmptyWithoutThrowing) {
  // A path under a regular file cannot be created as a directory.
  const std::string blocker =
      (std::filesystem::path(::testing::TempDir()) / "flight_blocker")
          .string();
  std::ofstream{blocker} << "not a directory";
  const std::string path =
      dump_flight_record(blocker + "/sub", "reason", {});
  EXPECT_TRUE(path.empty());
}

}  // namespace
}  // namespace hlock::obs
