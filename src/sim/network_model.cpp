#include "sim/network_model.hpp"

namespace hlock::sim {

NetworkModel::NetworkModel(DurationDist latency, Rng rng)
    : latency_(latency), rng_(rng) {}

SimTime NetworkModel::delivery_time(SimTime now, proto::NodeId from,
                                    proto::NodeId to) {
  SimTime at = now + latency_.sample(rng_);
  SimTime& front = channel_front_[{from, to}];
  if (at <= front) {
    // FIFO channel: this message may not overtake the previous one.
    at = front + SimTime::ns(1);
  }
  front = at;
  return at;
}

TestbedPreset linux_cluster_preset() {
  return TestbedPreset{"linux-cluster",
                       DurationDist::uniform(SimTime::ms(150), 0.5)};
}

TestbedPreset ibm_sp_preset() {
  return TestbedPreset{"ibm-sp", DurationDist::uniform(SimTime::us(150), 0.5)};
}

}  // namespace hlock::sim
