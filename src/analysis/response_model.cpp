#include "analysis/response_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "core/mode_tables.hpp"
#include "util/check.hpp"
#include "workload/op_plan.hpp"

namespace hlock::analysis {

namespace {

using proto::LockMode;
using workload::AppVariant;
using workload::LockStep;
using workload::OpKind;

/// The five operation kinds with their mix probabilities.
struct WeightedOp {
  OpKind kind;
  double probability;
};

std::array<WeightedOp, 5> weighted_ops(const workload::ModeMix& mix) {
  return {WeightedOp{OpKind::kEntryRead, mix.ir},
          WeightedOp{OpKind::kTableRead, mix.r},
          WeightedOp{OpKind::kEntryUpgrade, mix.u},
          WeightedOp{OpKind::kEntryWrite, mix.iw},
          WeightedOp{OpKind::kTableWrite, mix.w}};
}

/// Strongest mode an operation's plan ever takes on a given lock level;
/// upgrade operations count as W at the entry level (they will hold W).
LockMode effective_mode(const LockStep& step) {
  return step.upgrade_midway ? LockMode::kW : step.mode;
}

/// Probability that concrete instances of the two op kinds conflict,
/// accounting for the 1/entries chance of hitting the same entry.
double pair_conflict(OpKind a, OpKind b, std::size_t entries) {
  const auto plan_a = plan_op(AppVariant::kHierarchical, a, 0, entries);
  const auto plan_b = plan_op(AppVariant::kHierarchical, b, 0, entries);
  double no_conflict = 1.0;
  for (const LockStep& sa : plan_a) {
    for (const LockStep& sb : plan_b) {
      const bool table_a = sa.lock == workload::table_lock();
      const bool table_b = sb.lock == workload::table_lock();
      if (table_a != table_b) continue;  // different granularity level
      if (!core::incompatible(effective_mode(sa), effective_mode(sb))) {
        continue;
      }
      // Same level and incompatible: certain conflict at the table level,
      // 1/entries at the entry level (independent uniform entry choices).
      const double p =
          table_a ? 1.0 : 1.0 / static_cast<double>(entries);
      no_conflict *= 1.0 - p;
    }
  }
  return 1.0 - no_conflict;
}

}  // namespace

double conflict_probability(const workload::ModeMix& mix,
                            std::size_t entries) {
  HLOCK_REQUIRE(mix.valid(), "mode mix probabilities must sum to 1");
  HLOCK_REQUIRE(entries >= 1, "the table needs at least one entry");
  double conflict = 0.0;
  for (const WeightedOp& a : weighted_ops(mix)) {
    for (const WeightedOp& b : weighted_ops(mix)) {
      conflict +=
          a.probability * b.probability * pair_conflict(a.kind, b.kind,
                                                        entries);
    }
  }
  return conflict;
}

ModelPrediction predict(const ModelParams& params) {
  HLOCK_REQUIRE(params.nodes >= 1, "the model needs at least one node");
  ModelPrediction out;
  out.conflict_probability =
      conflict_probability(params.mix, params.entries);

  // Serialized demand per operation: only the conflicting fraction of the
  // critical section contends for the logical serialization server.
  out.demand_ms = out.conflict_probability * params.cs_ms;

  // Message transit: requests travel a compressed path (empirically 1-2
  // hops plus the grant); 3 one-way latencies model the request/grant
  // round trip with one forwarding hop — a fixed cost, not a shape driver.
  out.transit_ms = 3.0 * params.net_ms;

  // Think time per cycle: idle plus the non-serialized critical work.
  out.think_ms =
      params.idle_ms + (1.0 - out.conflict_probability) * params.cs_ms;

  const double n = static_cast<double>(params.nodes);
  if (out.demand_ms <= 0.0) {
    out.knee_nodes = std::numeric_limits<double>::infinity();
    out.queueing_ms = 0.0;
  } else {
    out.knee_nodes = (out.think_ms + out.demand_ms) / out.demand_ms;
    // Machine-repairman approximation (smoothed closed-network MVA):
    // a requester finds each of the other n-1 nodes contending with
    // probability (D + W) / cycle and waits one demand behind each.
    // The fixed point W converges in a handful of iterations and has the
    // operational-law asymptote W -> n*D - (Z + D) built in.
    double waiting = 0.0;
    for (int iteration = 0; iteration < 64; ++iteration) {
      const double cycle =
          out.think_ms + out.transit_ms + out.demand_ms + waiting;
      const double next =
          (n - 1.0) * out.demand_ms * (out.demand_ms + waiting) / cycle;
      if (std::fabs(next - waiting) < 1e-9) {
        waiting = next;
        break;
      }
      waiting = next;
    }
    out.queueing_ms = waiting;
  }
  out.response_ms = out.transit_ms + out.demand_ms + out.queueing_ms;
  return out;
}

}  // namespace hlock::analysis
