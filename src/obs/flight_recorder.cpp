#include "obs/flight_recorder.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/chrome_trace.hpp"
#include "util/log.hpp"

namespace hlock::obs {

namespace {

/// "20260806-142233" in UTC. gmtime_r keeps the crash path thread-safe.
std::string utc_stamp() {
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y%m%d-%H%M%S", &tm);
  return buf;
}

void write_metrics_section(std::ostringstream& os,
                           const stats::MetricsRegistry& metrics) {
  os << "== metrics snapshot ==\n";
  os << "messages total: " << metrics.messages().total() << '\n';
  for (std::size_t k = 0; k < proto::kMessageKindCount; ++k) {
    const auto kind = static_cast<proto::MessageKind>(k);
    const std::uint64_t count = metrics.messages().count(kind);
    if (count > 0) {
      os << "  " << to_string(kind) << ": " << count << '\n';
    }
  }
  os << "completed requests: " << metrics.latency().count() << '\n';
  os << "messages/request: " << metrics.messages_per_request() << '\n';
  os << "latency (ms): " << to_string(metrics.latency().summarize()) << '\n';
}

void write_span_section(std::ostringstream& os, const SpanCollector& spans) {
  os << "== request spans ==\n";
  os << "spans: " << spans.span_count() << " ("
     << spans.completed_count() << " complete)\n";
  os << render_phase_table(spans.phase_breakdown());
}

void write_ring_section(std::ostringstream& os,
                        const trace::TraceRecorder& recorder) {
  os << "== trace ring ==\n";
  os << "events retained: " << recorder.events().size() << " of "
     << recorder.total_recorded() << " recorded";
  if (recorder.dropped() > 0) {
    os << " (" << recorder.dropped() << " dropped by the ring cap)";
  }
  os << '\n' << recorder.render();
}

}  // namespace

std::string dump_flight_record(const std::string& dir,
                               const std::string& reason,
                               const FlightRecordSources& sources) {
  // Disambiguates dumps within the same second (and same-process reuse).
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);

  try {
    std::filesystem::create_directories(dir);
    const std::string stem =
        "flight-" + utc_stamp() + "-" + std::to_string(n);
    const std::filesystem::path report_path =
        std::filesystem::path(dir) / (stem + ".txt");

    std::ostringstream os;
    os << "hlock flight record\n";
    os << "reason: " << reason << '\n';
    os << "written: " << utc_stamp() << " UTC\n\n";
    if (sources.metrics != nullptr) {
      write_metrics_section(os, *sources.metrics);
      os << '\n';
    }
    if (sources.spans != nullptr) {
      write_span_section(os, *sources.spans);
      os << '\n';
    }

    std::string trace_note;
    if (sources.spans != nullptr && sources.spans->span_count() > 0) {
      const std::filesystem::path trace_path =
          std::filesystem::path(dir) / (stem + ".trace.json");
      std::ofstream trace_out{trace_path};
      trace_out << chrome_trace_json(sources.spans->spans(),
                                     ChromeTraceOptions{sources.node_count});
      if (trace_out.good()) {
        trace_note = trace_path.string();
      }
    }
    if (!trace_note.empty()) {
      os << "chrome trace: " << trace_note << '\n';
    }
    if (sources.recorder != nullptr) {
      write_ring_section(os, *sources.recorder);
    }

    std::ofstream out{report_path};
    out << os.str();
    if (!out.good()) {
      HLOCK_LOG(kWarn, "flight recorder could not write "
                           << report_path.string());
      return "";
    }
    return report_path.string();
  } catch (const std::exception& e) {
    HLOCK_LOG(kWarn, "flight recorder failed: " << e.what());
    return "";
  }
}

}  // namespace hlock::obs
