// Deterministic in-memory harness for protocol automaton tests.
//
// Wires N automatons of one protocol together with an explicit FIFO message
// queue under test control: tests issue API calls, then deliver messages
// one at a time (or until quiescence) and inspect intermediate states. No
// latency, no randomness — every scenario is exactly reproducible, which is
// what the paper-figure tests (Figs. 2-6) need.
#pragma once

#include <deque>
#include <vector>

#include "core/hier_automaton.hpp"
#include "naimi/naimi_automaton.hpp"
#include "util/check.hpp"

namespace hlock::test {

using core::Effects;
using core::HierAutomaton;
using core::HierConfig;
using proto::LockId;
using proto::LockMode;
using proto::Message;
using proto::NodeId;

/// Harness over HierAutomaton instances. Node 0 is the initial token holder
/// unless a custom parent topology is supplied.
class HierNet {
 public:
  /// Star topology: node 0 is the token, everyone else points at it.
  explicit HierNet(std::size_t n, HierConfig config = {})
      : HierNet(star_parents(n), config) {}

  /// Custom topology: parents[i] is node i's initial parent; exactly one
  /// node (the token) must have NodeId::none().
  HierNet(const std::vector<NodeId>& parents, HierConfig config = {}) {
    nodes_.reserve(parents.size());
    cs_entries_.assign(parents.size(), 0);
    upgrades_.assign(parents.size(), 0);
    for (std::size_t i = 0; i < parents.size(); ++i) {
      nodes_.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, kLock,
                          parents[i].is_none(), parents[i], config);
    }
  }

  HierAutomaton& node(std::size_t i) { return nodes_.at(i); }

  void request(std::size_t i, LockMode mode, std::uint8_t priority = 0) {
    absorb(i, nodes_.at(i).request(mode, priority));
  }
  void release(std::size_t i) { absorb(i, nodes_.at(i).release()); }
  void upgrade(std::size_t i) { absorb(i, nodes_.at(i).upgrade()); }

  /// Delivers the oldest in-flight message; false if none.
  bool deliver_one() {
    if (wire_.empty()) return false;
    const Message message = wire_.front();
    wire_.pop_front();
    const std::size_t to = message.to.value();
    absorb(to, nodes_.at(to).on_message(message));
    return true;
  }

  /// Delivers the oldest in-flight message addressed to `node` (messages
  /// to other destinations stay queued — per-channel FIFO is preserved
  /// because channels to distinct destinations are independent). False if
  /// nothing is in flight for that node. Race tests use this to pick
  /// interleavings that global FIFO order cannot express.
  bool deliver_to(std::size_t node) {
    for (auto it = wire_.begin(); it != wire_.end(); ++it) {
      if (it->to.value() != node) continue;
      const Message message = *it;
      wire_.erase(it);
      absorb(node, nodes_.at(node).on_message(message));
      return true;
    }
    return false;
  }

  /// Pumps messages until the network is quiet; returns messages delivered.
  std::size_t settle() {
    std::size_t delivered = 0;
    while (deliver_one()) {
      ++delivered;
      HLOCK_INVARIANT(delivered < 100000, "test network does not quiesce");
    }
    return delivered;
  }

  const std::deque<Message>& wire() const { return wire_; }
  std::uint64_t total_messages() const { return total_messages_; }

  /// Times node i entered its critical section so far.
  int cs_entries(std::size_t i) const { return cs_entries_.at(i); }
  /// Times node i completed a Rule 7 upgrade so far.
  int upgrades(std::size_t i) const { return upgrades_.at(i); }

  static std::vector<NodeId> star_parents(std::size_t n) {
    std::vector<NodeId> parents(n, NodeId{0});
    parents.at(0) = NodeId::none();
    return parents;
  }

  static constexpr LockId kLock{0};

 private:
  void absorb(std::size_t i, Effects&& fx) {
    for (Message& message : fx.messages) {
      wire_.push_back(std::move(message));
      ++total_messages_;
    }
    if (fx.entered_cs) ++cs_entries_.at(i);
    if (fx.upgraded) ++upgrades_.at(i);
  }

  std::vector<HierAutomaton> nodes_;
  std::deque<Message> wire_;
  std::vector<int> cs_entries_;
  std::vector<int> upgrades_;
  std::uint64_t total_messages_ = 0;
};

/// Same harness over the Naimi baseline.
class NaimiNet {
 public:
  explicit NaimiNet(std::size_t n) {
    nodes_.reserve(n);
    cs_entries_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.emplace_back(NodeId{static_cast<std::uint32_t>(i)}, kLock,
                          i == 0, i == 0 ? NodeId::none() : NodeId{0});
    }
  }

  naimi::NaimiAutomaton& node(std::size_t i) { return nodes_.at(i); }

  void request(std::size_t i) { absorb(i, nodes_.at(i).request()); }
  void release(std::size_t i) { absorb(i, nodes_.at(i).release()); }

  bool deliver_one() {
    if (wire_.empty()) return false;
    const Message message = wire_.front();
    wire_.pop_front();
    const std::size_t to = message.to.value();
    absorb(to, nodes_.at(to).on_message(message));
    return true;
  }

  std::size_t settle() {
    std::size_t delivered = 0;
    while (deliver_one()) {
      ++delivered;
      HLOCK_INVARIANT(delivered < 100000, "test network does not quiesce");
    }
    return delivered;
  }

  const std::deque<Message>& wire() const { return wire_; }
  std::uint64_t total_messages() const { return total_messages_; }
  int cs_entries(std::size_t i) const { return cs_entries_.at(i); }

  static constexpr LockId kLock{0};

 private:
  void absorb(std::size_t i, Effects&& fx) {
    for (Message& message : fx.messages) {
      wire_.push_back(std::move(message));
      ++total_messages_;
    }
    if (fx.entered_cs) ++cs_entries_.at(i);
  }

  std::vector<naimi::NaimiAutomaton> nodes_;
  std::deque<Message> wire_;
  std::vector<int> cs_entries_;
  std::uint64_t total_messages_ = 0;
};

}  // namespace hlock::test
