// Figure 9 — Messages for Non-Critical : Critical Ratios (paper §4.2).
//
// Average messages per lock request for the hierarchical protocol on the
// IBM SP testbed model, with the critical-section length fixed at 15 ms and
// the non-critical (idle) time set to ratio x 15 ms for ratios 1, 5, 10
// and 25, as the node count grows to 120.
//
// Paper shape to reproduce: asymptotic (logarithmic-looking) curves with
// low asymptotes that ORDER BY RATIO — roughly 3.5, 5, 6.5 and ~9 messages
// for ratios 1, 5, 10 and 25 (higher ratios mean lower concurrency, fewer
// copy grants, longer propagation paths).
#include <cstdio>

#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"

using namespace hlock;
using bench::ExperimentConfig;
using bench::ExperimentResult;

int main() {
  const auto preset = sim::ibm_sp_preset();
  const int ratios[] = {1, 5, 10, 25};

  stats::TextTable table;
  table.set_header(
      {"nodes", "ratio=1", "ratio=5", "ratio=10", "ratio=25"});

  std::printf("Fig. 9 — messages per lock request vs. number of nodes, per "
              "non-critical:critical ratio\n");
  std::printf("testbed: %s, latency %s, CS 15 ms, idle = ratio x 15 ms\n\n",
              preset.name.c_str(),
              preset.message_latency.describe().c_str());

  for (std::size_t nodes : {2u, 5u, 10u, 20u, 30u, 40u, 60u, 80u, 100u,
                            120u}) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (int ratio : ratios) {
      ExperimentConfig config;
      config.nodes = nodes;
      config.net_latency = preset.message_latency;
      config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
      config.idle_time =
          DurationDist::uniform(SimTime::ms(15L * ratio), 0.5);
      config.ops_per_node = 40;
      config.seed = 23 + nodes + static_cast<std::uint64_t>(ratio);
      const ExperimentResult result = bench::run_averaged(config, 2);
      row.push_back(stats::TextTable::num(result.msgs_per_acq));
    }
    table.add_row(std::move(row));
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
