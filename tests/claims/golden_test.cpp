// Golden regression pins: exact metric values for canonical seeded runs.
//
// Deliberately brittle: ANY change to protocol logic, RNG streams, event
// ordering or message generation shifts these numbers. That is the point —
// a diff here forces a conscious decision ("the protocol changed, results
// were re-validated, goldens updated") instead of silent drift in the
// reproduction. Update procedure: re-run, inspect EXPERIMENTS.md shapes,
// then paste the new values.
#include <gtest/gtest.h>

#include "bench/common/experiment.hpp"
#include "sim/network_model.hpp"

namespace hlock::bench {
namespace {

ExperimentConfig golden_config(AppVariant variant) {
  ExperimentConfig config;
  config.variant = variant;
  config.nodes = 12;
  config.net_latency = sim::ibm_sp_preset().message_latency;
  config.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
  config.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
  config.table_entries = 6;
  config.ops_per_node = 50;
  config.seed = 424242;
  return config;
}

TEST(Golden, HierarchicalCanonicalRun) {
  const ExperimentResult result =
      run_experiment(golden_config(AppVariant::kHierarchical));
  EXPECT_EQ(result.ops, 600u);
  // Exact pins for the canonical seed; see the file comment before
  // "fixing" a mismatch here.
  EXPECT_EQ(result.acquisitions, 1135u);
  EXPECT_EQ(result.messages, 4296u);
}

TEST(Golden, NaimiCanonicalRun) {
  const ExperimentResult result =
      run_experiment(golden_config(AppVariant::kNaimiPure));
  EXPECT_EQ(result.ops, 600u);
  EXPECT_EQ(result.acquisitions, 600u);
  EXPECT_EQ(result.messages, 1893u);
}

TEST(Golden, SameWorkCanonicalRun) {
  const ExperimentResult result =
      run_experiment(golden_config(AppVariant::kNaimiSameWork));
  EXPECT_EQ(result.ops, 600u);
  EXPECT_EQ(result.acquisitions, 925u);
  EXPECT_EQ(result.messages, 3025u);
}

TEST(Golden, RunsAreBitForBitRepeatable) {
  // The deeper property the pins rest on: identical configs produce
  // identical traces, down to every latency sample.
  const ExperimentResult a =
      run_experiment(golden_config(AppVariant::kHierarchical));
  const ExperimentResult b =
      run_experiment(golden_config(AppVariant::kHierarchical));
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.request_latency_samples_ms, b.request_latency_samples_ms);
}

}  // namespace
}  // namespace hlock::bench
