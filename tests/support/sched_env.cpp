// Default-on lockdep for every test binary.
//
// hlock_add_test (tests/CMakeLists.txt) compiles this file into each gtest
// target, so the lock-order recorder (src/sched/lockdep.hpp) watches every
// hlock::Mutex / hlock::CondVar operation of every test run. Any lock-order
// inversion observed anywhere in the binary — even one that never
// manifests as a deadlock — fails the run at global teardown with the
// recorded cycle and both acquisition stacks.
//
// Tests that deliberately provoke inversions (tests/sched/) install their
// own local Lockdep via exchange_sync_observer and restore it afterwards,
// so their doctored cycles never reach this instance.
#include <string>

#include "gtest/gtest.h"
#include "sched/lockdep.hpp"

namespace {

class LockdepEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    lockdep_ = hlock::sched::install_global_lockdep();
  }

  void TearDown() override {
    if (lockdep_ == nullptr || lockdep_->violation_count() == 0) return;
    std::string rendered;
    for (const auto& report : lockdep_->reports()) {
      rendered += report.render();
    }
    FAIL() << "lockdep recorded " << lockdep_->violation_count()
           << " lock-order inversion(s) during this run:\n"
           << rendered
           << "lock hierarchy conventions: docs/static-analysis.md";
  }

 private:
  hlock::sched::Lockdep* lockdep_ = nullptr;
};

const ::testing::Environment* const kLockdepEnv =
    ::testing::AddGlobalTestEnvironment(new LockdepEnvironment);

}  // namespace
