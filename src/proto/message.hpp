// Protocol messages.
//
// Both protocols (the hierarchical multi-mode protocol of the paper and the
// Naimi-Tréhel baseline) communicate exclusively through the Message
// envelope below. Payloads are a closed std::variant so transports and the
// simulator can route and count messages without knowing protocol details,
// while automatons dispatch exhaustively (a new payload type is a compile
// error in every switch).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "proto/ids.hpp"
#include "proto/lock_mode.hpp"

namespace hlock::proto {

/// One request waiting in a local queue: who wants the lock, in which mode
/// and at which priority. `seq` is the issuer-side sequence number, carried
/// for diagnostics and FIFO-fairness checks in tests (the queue order
/// itself defines FIFO within a priority level).
///
/// `priority` (0 = default, larger = more urgent) implements the prioritized
/// token-based extension of Mueller's prior work the paper builds on
/// (its refs [15, 16]): queues order by priority first, FIFO within equal
/// priorities. All-zero priorities reduce to the paper's pure FIFO.
struct QueuedRequest {
  NodeId requester;
  LockMode mode = LockMode::kNL;
  std::uint64_t seq = 0;
  std::uint8_t priority = 0;

  bool operator==(const QueuedRequest&) const = default;
};

// ---- Hierarchical protocol payloads (paper §3.2-§3.4) ----

/// A lock request travelling up the probable-owner (parent) chain toward a
/// node able to grant it (Rules 2-4). `requester` is the origin, which may
/// differ from the envelope sender when the request has been forwarded.
/// `priority` as in QueuedRequest.
struct HierRequest {
  NodeId requester;
  LockMode mode = LockMode::kNL;
  std::uint64_t seq = 0;
  std::uint8_t priority = 0;

  bool operator==(const HierRequest&) const = default;
};

/// A copy grant (Rule 3): the sender admits the requester into its copyset
/// in `mode`; the requester becomes a child of the sender.
///
/// `epoch` versions the parent-child relationship: the granter increments
/// it on every grant and stamps its copyset entry; the child stamps all
/// subsequent RELEASE messages with it. A release that crosses a newer
/// grant in flight carries an older epoch and is discarded by the parent —
/// without this, a weaken-to-NL release generated just before a re-grant
/// would make the parent evict a child that holds the lock.
/// `entry_mode` is the resulting copyset entry (stronger_of of the previous
/// entry and `mode`), so the child can mirror the parent's record exactly.
struct HierGrant {
  LockMode mode = LockMode::kNL;
  LockMode entry_mode = LockMode::kNL;
  std::uint32_t epoch = 0;

  bool operator==(const HierGrant&) const = default;
};

/// Token transfer (Rule 3 case 2, owned < requested): the requester becomes
/// the new token node and the parent of the old token node.
struct HierToken {
  /// Mode granted to the requester (its pending mode).
  LockMode granted_mode = LockMode::kNL;
  /// The old token node's owned mode after the handover; kNL if it neither
  /// holds the lock nor has holding children, in which case it does not
  /// join the new token's copyset.
  LockMode sender_owned = LockMode::kNL;
  /// The old token's local queue, in FIFO order; responsibility for these
  /// requests moves with the token.
  std::vector<QueuedRequest> queue;

  bool operator==(const HierToken&) const = default;
};

/// Release notification (Rule 5.2): the sending child's owned mode weakened
/// to `new_owned` (kNL removes it from the parent's copyset). `epoch` is
/// the epoch of the grant that created/refreshed the relationship (see
/// HierGrant); the parent discards releases whose epoch does not match its
/// current entry.
struct HierRelease {
  LockMode new_owned = LockMode::kNL;
  std::uint32_t epoch = 0;

  bool operator==(const HierRelease&) const = default;
};

/// Freeze notification (Rule 6): the receiver must stop granting the listed
/// modes until its own owned mode drains to kNL (or it re-enters a copyset
/// via a fresh grant). Propagated transitively down the copyset.
struct HierFreeze {
  ModeSet modes;

  bool operator==(const HierFreeze&) const = default;
};

// ---- Crash-recovery payloads (src/recovery, docs/recovery.md) ----
//
// These four kinds never reach a protocol automaton: runtimes route them to
// the node's recovery::Manager. They are protocol-agnostic — the same
// report/fence exchange recovers the hierarchical protocol and the Naimi
// baseline.

/// Failure-detector liveness probe, broadcast periodically to every peer a
/// node believes alive. Any received message refreshes the sender's
/// last-heard time; heartbeats exist so an idle cluster still detects
/// crashes.
struct Heartbeat {
  bool operator==(const Heartbeat&) const = default;
};

/// Gossip that `dead` is believed crashed. A receiver that did not already
/// suspect `dead` adopts the suspicion (and re-gossips), so one node's
/// timeout converges the whole cluster onto the same dead set.
struct Suspect {
  NodeId dead;

  bool operator==(const Suspect&) const = default;
};

/// One node's per-lock state report to the recovery coordinator (the lowest
/// live node id). A campaign is identified by its sorted `dead` set; the
/// coordinator gathers complete reports from every live node before minting
/// fences. The reporter has halted protocol processing for the duration, so
/// the report reflects every message it will ever act on in the old epoch.
///
/// `lock_count` reports span one message per lock the reporter has touched;
/// `lock_count == 0` is the report of a node with no per-lock state (the
/// envelope's lock id is then a placeholder).
struct ElectToken {
  std::vector<NodeId> dead;     ///< campaign id: sorted suspected-dead set
  std::uint32_t lock_count = 0;  ///< per-lock reports this node sends
  std::uint32_t lock_index = 0;  ///< position of this report in [0, count)
  std::uint32_t epoch = 0;       ///< reporter's current recovery epoch
  bool has_token = false;
  LockMode held = LockMode::kNL;  ///< Naimi reports kW while inside its CS
  bool waiting = false;           ///< a request is pending at the reporter
  LockMode wait_mode = LockMode::kNL;
  std::uint64_t wait_seq = 0;
  std::uint8_t wait_priority = 0;
  bool upgrading = false;  ///< a Rule 7 upgrade is in flight (hier only)

  bool operator==(const ElectToken&) const = default;
};

/// One surviving holder recorded in an EpochFence: the node and the mode it
/// holds (its copyset entry at the new root).
struct FenceHolder {
  NodeId node;
  LockMode mode = LockMode::kNL;

  bool operator==(const FenceHolder&) const = default;
};

/// The coordinator's per-lock recovery verdict, broadcast to every live
/// node: enter `epoch`, re-root the lock's tree as a star at `new_root`
/// (which mints/keeps the token), install `holders` as the root's copyset
/// and `queue` as the root's waiting queue. Applied only when `epoch`
/// exceeds the local epoch, so duplicated or reordered fences are no-ops.
///
/// `fence_index`/`fence_count` let receivers know when a campaign's fence
/// set is complete (unhalt point); `fence_count == 0` is the fence of a
/// campaign with no per-lock state anywhere (unhalt only, placeholder lock).
struct EpochFence {
  std::vector<NodeId> dead;  ///< campaign id: sorted suspected-dead set
  std::uint32_t epoch = 0;
  NodeId new_root;
  std::vector<FenceHolder> holders;
  std::vector<QueuedRequest> queue;
  std::uint32_t fence_index = 0;
  std::uint32_t fence_count = 0;

  bool operator==(const EpochFence&) const = default;
};

// ---- Naimi-Tréhel baseline payloads (paper §2) ----

/// A mutual-exclusion request routed along probable-owner links with path
/// reversal; `requester` queues at the current tail of the distributed list.
struct NaimiRequest {
  NodeId requester;
  std::uint64_t seq = 0;

  bool operator==(const NaimiRequest&) const = default;
};

/// The token: possession is the right to enter the critical section.
struct NaimiToken {
  bool operator==(const NaimiToken&) const = default;
};

/// All payloads a Message can carry. Variant order must match MessageKind.
using Payload = std::variant<HierRequest, HierGrant, HierToken, HierRelease,
                             HierFreeze, NaimiRequest, NaimiToken, Heartbeat,
                             Suspect, ElectToken, EpochFence>;

/// Payload discriminator, used by stats counters and the codec. Values are
/// wire-stable.
enum class MessageKind : std::uint8_t {
  kHierRequest = 0,
  kHierGrant = 1,
  kHierToken = 2,
  kHierRelease = 3,
  kHierFreeze = 4,
  kNaimiRequest = 5,
  kNaimiToken = 6,
  kHeartbeat = 7,
  kSuspect = 8,
  kElectToken = 9,
  kEpochFence = 10,
};

/// Number of distinct MessageKind values.
inline constexpr std::size_t kMessageKindCount = 11;

/// True for the payload kinds routed to the recovery manager instead of a
/// protocol automaton (and exempt from the envelope epoch gate).
inline bool is_recovery_kind(MessageKind kind) {
  return kind >= MessageKind::kHeartbeat;
}

/// Returns the discriminator of a payload.
MessageKind kind_of(const Payload& payload);

/// "REQUEST", "GRANT", "TOKEN", "RELEASE", "FREEZE", "NREQUEST", "NTOKEN".
std::string to_string(MessageKind kind);

/// The envelope every transport routes: point-to-point, per-lock.
///
/// Beyond routing, the envelope carries two observability fields that cross
/// the wire with the payload (src/obs): `request`, the application-level
/// lock request this message causally serves (the origin request for
/// REQUEST, the request being satisfied for GRANT/TOKEN; none for RELEASE/
/// FREEZE, which serve no single request), and `lamport`, a Lamport clock
/// stamped by the runtime at send time and merged at receive time so span
/// events from different nodes order causally even under reordering
/// transports. Automatons fill `request`; runtimes own `lamport`.
/// The recovery epoch (`epoch` below) versions the whole per-lock protocol
/// state across crash recoveries (docs/recovery.md): automatons stamp every
/// outgoing protocol message with their current epoch and drop mismatched
/// ones, so a message minted before a crash fence can never corrupt the
/// regenerated state. Distinct from HierGrant::epoch, which versions one
/// parent-child copyset relationship between consecutive grants. Recovery
/// kinds (is_recovery_kind) leave it 0 — they carry their own campaign ids.
struct Message {
  NodeId from;
  NodeId to;
  LockId lock;
  Payload payload;
  RequestId request = RequestId::none();
  std::uint64_t lamport = 0;
  std::uint32_t epoch = 0;

  bool operator==(const Message&) const = default;
};

/// One-line rendering for traces: "node1->node2 lock0 REQUEST(node1, R)".
std::string to_string(const Message& m);

}  // namespace hlock::proto
