#include "trace/event.hpp"

#include <array>
#include <charconv>
#include <sstream>
#include <vector>

namespace hlock::trace {

namespace {

using proto::LockMode;
using proto::ModeSet;
using proto::NodeId;

/// Names indexed by EventKind; also the wire vocabulary of format_event().
constexpr std::array<const char*, kEventKindCount> kKindNames = {
    "message",       "request",      "grant",         "local-grant",
    "queue",         "forward",      "freeze",        "unfreeze",
    "token-transfer", "copyset-join", "copyset-leave", "enter-cs",
    "exit-cs",       "upgrade-begin", "upgraded",      "note",
    "node-dead",     "fence",
};

LockMode parse_mode(const std::string& token, bool& ok) {
  for (LockMode m : proto::kAllModes) {
    if (token == to_string(m)) return m;
  }
  ok = false;
  return LockMode::kNL;
}

/// "node7" / "-" <-> NodeId. format_event never emits the "node" prefix;
/// raw indices keep the format compact and trivially parseable.
std::string encode_node(NodeId id) {
  return id.is_none() ? "-" : std::to_string(id.value());
}

NodeId decode_node(const std::string& token, bool& ok) {
  if (token == "-") return NodeId::none();
  std::uint32_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    ok = false;
    return NodeId::none();
  }
  return NodeId{value};
}

template <typename T>
T decode_int(const std::string& token, bool& ok) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) ok = false;
  return value;
}

std::string escape_detail(const std::string& detail) {
  std::string out;
  out.reserve(detail.size());
  for (char c : detail) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_detail(const std::string& detail) {
  std::string out;
  out.reserve(detail.size());
  for (std::size_t i = 0; i < detail.size(); ++i) {
    if (detail[i] == '\\' && i + 1 < detail.size()) {
      out += detail[i + 1] == 'n' ? '\n' : detail[i + 1];
      ++i;
    } else {
      out += detail[i];
    }
  }
  return out;
}

}  // namespace

std::string to_string(EventKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < kKindNames.size() ? kKindNames[index] : "?";
}

std::optional<EventKind> parse_event_kind(const std::string& name) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (name == kKindNames[i]) return static_cast<EventKind>(i);
  }
  return std::nullopt;
}

std::string to_string(const TraceEvent& event) {
  std::ostringstream os;
  os << to_string(event.kind);
  switch (event.kind) {
    case EventKind::kMessage:
    case EventKind::kNote:
      if (!event.detail.empty()) os << "  " << event.detail;
      return os.str();
    default:
      break;
  }
  if (event.mode != LockMode::kNL) os << ' ' << to_string(event.mode);
  if (!event.peer.is_none()) {
    os << (event.kind == EventKind::kQueue ? " from " : " -> ")
       << to_string(event.peer);
  }
  if (!event.modes.empty()) os << ' ' << to_string(event.modes);
  os << " (";
  os << "ctx=" << to_string(event.ctx);
  if (event.token) os << ", token";
  if (event.seq != 0) os << ", seq=" << event.seq;
  if (event.priority != 0) os << ", p" << static_cast<int>(event.priority);
  if (event.epoch != 0) os << ", epoch=" << event.epoch;
  os << ')';
  if (!event.detail.empty()) os << "  " << event.detail;
  return os.str();
}

std::string format_event(const TraceEvent& event) {
  std::ostringstream os;
  os << event.at.count_ns() << ' ' << to_string(event.kind) << ' '
     << encode_node(event.node) << ' ' << encode_node(event.peer) << ' '
     << event.lock.value() << ' ' << to_string(event.mode) << ' '
     << to_string(event.ctx) << ' '
     << static_cast<unsigned>(event.modes.bits()) << ' '
     << (event.token ? 'T' : '.') << ' ' << event.seq << ' '
     << static_cast<unsigned>(event.priority) << ' ' << event.lamport << ' '
     << event.epoch << " |" << escape_detail(event.detail);
  return os.str();
}

std::optional<TraceEvent> parse_event(const std::string& line) {
  // Split the 13 space-separated fields (12 in pre-epoch dumps, 11 in
  // pre-Lamport dumps); everything after " |" is detail.
  const std::size_t detail_mark = line.find(" |");
  if (detail_mark == std::string::npos) return std::nullopt;
  std::istringstream head{line.substr(0, detail_mark)};
  std::vector<std::string> fields;
  std::string field;
  while (head >> field) fields.push_back(field);
  if (fields.size() < 11 || fields.size() > 13) return std::nullopt;

  bool ok = true;
  TraceEvent event;
  event.at = SimTime::ns(decode_int<std::int64_t>(fields[0], ok));
  const auto kind = parse_event_kind(fields[1]);
  if (!kind.has_value()) return std::nullopt;
  event.kind = *kind;
  event.node = decode_node(fields[2], ok);
  event.peer = decode_node(fields[3], ok);
  event.lock = proto::LockId{decode_int<std::uint32_t>(fields[4], ok)};
  event.mode = parse_mode(fields[5], ok);
  event.ctx = parse_mode(fields[6], ok);
  event.modes =
      ModeSet::from_bits(decode_int<std::uint8_t>(fields[7], ok));
  if (fields[8] != "T" && fields[8] != ".") return std::nullopt;
  event.token = fields[8] == "T";
  event.seq = decode_int<std::uint64_t>(fields[9], ok);
  event.priority = decode_int<std::uint8_t>(fields[10], ok);
  if (fields.size() >= 12) {
    event.lamport = decode_int<std::uint64_t>(fields[11], ok);
  }
  if (fields.size() >= 13) {
    event.epoch = decode_int<std::uint32_t>(fields[12], ok);
  }
  if (!ok) return std::nullopt;
  event.detail = unescape_detail(line.substr(detail_mark + 2));
  return event;
}

}  // namespace hlock::trace
