// Message composition analysis (supplementary to Fig. 9).
//
// Breaks the hierarchical protocol's message overhead down by kind
// (REQUEST / GRANT / TOKEN / RELEASE / FREEZE) across node counts, on the
// IBM SP setup at ratio 10. Explains WHERE the per-request cost goes:
// request forwarding dominates growth, releases track grants one-for-one
// minus the Rule 5.2 aggregation savings, and freezing stays a small
// constant tax.
#include <cstdio>

#include "runtime/sim_cluster.hpp"
#include "sim/network_model.hpp"
#include "stats/table.hpp"
#include "workload/sim_driver.hpp"

using namespace hlock;
using runtime::Protocol;
using runtime::SimCluster;
using runtime::SimClusterOptions;
using workload::SimWorkloadDriver;
using workload::WorkloadSpec;

int main() {
  const auto preset = sim::ibm_sp_preset();

  stats::TextTable table;
  table.set_header({"nodes", "REQUEST", "GRANT", "TOKEN", "RELEASE",
                    "FREEZE", "total"});

  std::printf("Message breakdown per lock request — hierarchical protocol, "
              "%s testbed, ratio 10\n\n",
              preset.name.c_str());

  for (std::size_t nodes : {4u, 8u, 16u, 32u, 64u, 96u, 120u}) {
    SimClusterOptions cluster_options;
    cluster_options.node_count = nodes;
    cluster_options.protocol = Protocol::kHierarchical;
    cluster_options.message_latency = preset.message_latency;
    cluster_options.seed = 53 + nodes;
    SimCluster cluster{cluster_options};

    WorkloadSpec spec;
    spec.variant = workload::AppVariant::kHierarchical;
    spec.node_count = nodes;
    spec.ops_per_node = 50;
    spec.cs_length = DurationDist::uniform(SimTime::ms(15), 0.5);
    spec.idle_time = DurationDist::uniform(SimTime::ms(150), 0.5);
    spec.seed = 7 + nodes;

    SimWorkloadDriver driver{cluster, spec};
    driver.run();

    const auto& messages = cluster.metrics().messages();
    const double acq = static_cast<double>(driver.stats().acquisitions);
    auto per_acq = [&](proto::MessageKind kind) {
      return stats::TextTable::num(
          static_cast<double>(messages.count(kind)) / acq);
    };
    table.add_row({std::to_string(nodes),
                   per_acq(proto::MessageKind::kHierRequest),
                   per_acq(proto::MessageKind::kHierGrant),
                   per_acq(proto::MessageKind::kHierToken),
                   per_acq(proto::MessageKind::kHierRelease),
                   per_acq(proto::MessageKind::kHierFreeze),
                   stats::TextTable::num(
                       static_cast<double>(messages.total()) / acq)});
  }

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nCSV:\n%s", table.render_csv().c_str());
  return 0;
}
