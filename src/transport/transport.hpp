// Abstract message transport.
//
// The threaded runtime runs over any Transport: the in-process mailbox
// transport (fast, latency-injectable) or the TCP loopback transport
// (real sockets, real wire format). Implementations must provide reliable
// per-ordered-channel FIFO delivery, which both TCP and the mailbox
// transport guarantee — the protocol's release/request ordering analysis
// depends on it.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>

#include "proto/ids.hpp"
#include "proto/message.hpp"

namespace hlock::transport {

/// See file comment.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Routes a message to its destination. Thread-safe.
  virtual void send(const proto::Message& message) = 0;

  /// Blocks for the next message addressed to `node`; std::nullopt once
  /// the transport is shut down and drained.
  virtual std::optional<proto::Message> recv(proto::NodeId node) = 0;

  /// Like recv() but bounded; std::nullopt on timeout too.
  virtual std::optional<proto::Message> recv_for(
      proto::NodeId node, std::chrono::milliseconds timeout) = 0;

  /// Unblocks all receivers; subsequent sends are dropped.
  virtual void shutdown() = 0;

  /// Messages accepted by send() so far.
  virtual std::uint64_t messages_sent() const = 0;
};

}  // namespace hlock::transport
